#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace sns::obs {

void
Histogram::record(uint64_t value)
{
    const size_t bucket =
        std::min<size_t>(std::bit_width(value), kBuckets - 1);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::quantileFromBuckets(
    const std::array<uint64_t, kBuckets> &buckets, uint64_t count,
    double q) const
{
    if (count == 0)
        return 0.0;
    const double rank = q * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        const uint64_t before = cumulative;
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) < rank)
            continue;
        // Linear interpolation inside bucket i = [2^(i-1), 2^i).
        const double lo = i == 0 ? 0.0 : std::ldexp(1.0, int(i) - 1);
        const double hi = std::ldexp(1.0, int(i));
        const double frac = (rank - static_cast<double>(before)) /
                            static_cast<double>(buckets[i]);
        return lo + frac * (hi - lo);
    }
    return std::ldexp(1.0, int(kBuckets));
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::array<uint64_t, kBuckets> buckets;
    for (size_t i = 0; i < kBuckets; ++i)
        buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    Snapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    // The bucket array may lag count_ by in-flight records; quantiles
    // use the bucket total so the cumulative walk stays consistent.
    uint64_t bucket_total = 0;
    for (const uint64_t b : buckets)
        bucket_total += b;
    snap.mean = snap.count == 0 ? 0.0
                                : static_cast<double>(snap.sum) /
                                      static_cast<double>(snap.count);
    snap.p50 = quantileFromBuckets(buckets, bucket_total, 0.50);
    snap.p90 = quantileFromBuckets(buckets, bucket_total, 0.90);
    snap.p99 = quantileFromBuckets(buckets, bucket_total, 0.99);
    return snap;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Registry::setGauge(const std::string &name, std::function<double()> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = std::move(fn);
}

void
Registry::removeGauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_.erase(name);
}

std::vector<Registry::Sample>
Registry::snapshot() const
{
    // Copy the gauge callbacks out so user callbacks run outside the
    // registry lock (a gauge may itself read instruments).
    std::vector<Sample> samples;
    std::vector<std::pair<std::string, std::function<double()>>> gauges;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, counter] : counters_) {
            samples.push_back(
                {name, static_cast<double>(counter->value())});
        }
        for (const auto &[name, histogram] : histograms_) {
            const auto snap = histogram->snapshot();
            samples.push_back(
                {name + ".count", static_cast<double>(snap.count)});
            samples.push_back(
                {name + ".sum", static_cast<double>(snap.sum)});
            samples.push_back({name + ".mean", snap.mean});
            samples.push_back({name + ".p50", snap.p50});
            samples.push_back({name + ".p90", snap.p90});
            samples.push_back({name + ".p99", snap.p99});
        }
        for (const auto &[name, fn] : gauges_)
            gauges.emplace_back(name, fn);
    }
    for (const auto &[name, fn] : gauges)
        samples.push_back({name, fn()});
    std::sort(samples.begin(), samples.end(),
              [](const Sample &a, const Sample &b) {
                  return a.name < b.name;
              });
    return samples;
}

std::string
Registry::render() const
{
    std::string out;
    for (const auto &sample : snapshot()) {
        out += sample.name;
        out += ' ';
        out += formatValue(sample.value);
        out += '\n';
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

std::string
formatValue(double value)
{
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        std::ostringstream out;
        out << static_cast<long long>(value);
        return out.str();
    }
    std::ostringstream out;
    out.precision(6);
    out << value;
    return out.str();
}

std::vector<StatsSample>
parseStats(const std::string &text)
{
    std::vector<StatsSample> samples;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const size_t space = line.find(' ');
        if (space == std::string::npos || space == 0)
            continue;
        StatsSample sample;
        sample.name = line.substr(0, space);
        try {
            sample.value = std::stod(line.substr(space + 1));
        } catch (const std::exception &) {
            continue;
        }
        samples.push_back(std::move(sample));
    }
    return samples;
}

bool
nonSummableStat(const std::string &name)
{
    for (const char *suffix : {".p50", ".p90", ".p99", ".mean",
                               ".hit_rate"}) {
        const size_t len = std::char_traits<char>::length(suffix);
        if (name.size() >= len &&
            name.compare(name.size() - len, len, suffix) == 0)
            return true;
    }
    return false;
}

std::vector<StatsSample>
mergeStats(const std::vector<std::vector<StatsSample>> &snapshots)
{
    std::map<std::string, double> merged;
    for (const auto &snapshot : snapshots) {
        for (const auto &sample : snapshot) {
            if (nonSummableStat(sample.name))
                continue;
            merged[sample.name] += sample.value;
        }
    }
    std::vector<StatsSample> out;
    out.reserve(merged.size());
    for (const auto &[name, value] : merged)
        out.push_back({name, value});
    return out;
}

std::string
statsJson(const std::string &text)
{
    std::string out = "{";
    bool first = true;
    for (const auto &sample : parseStats(text)) {
        if (!first)
            out += ", ";
        first = false;
        out += '"';
        out += sample.name;
        out += "\": ";
        out += formatValue(sample.value);
    }
    out += "}";
    return out;
}

std::string
formatCacheStats(const perf::CacheStats &stats)
{
    std::string out;
    const auto line = [&out](const char *name, double value) {
        out += name;
        out += ' ';
        out += formatValue(value);
        out += '\n';
    };
    line("cache.hits", static_cast<double>(stats.hits));
    line("cache.misses", static_cast<double>(stats.misses));
    line("cache.hit_rate", stats.hitRate());
    line("cache.inserts", static_cast<double>(stats.inserts));
    line("cache.evictions", static_cast<double>(stats.evictions));
    line("cache.entries", static_cast<double>(stats.entries));
    line("cache.bytes", static_cast<double>(stats.bytes));
    return out;
}

} // namespace sns::obs
