/**
 * @file
 * sns::obs — process-wide observability (docs/serving.md §Metrics).
 *
 * Three instrument kinds, all cheap enough for hot paths:
 *
 *   - Counter: a monotonic atomic; inc() is one relaxed fetch_add.
 *   - Histogram: power-of-two buckets with atomic counts; record() is
 *     a bit_width plus one relaxed fetch_add, quantiles come from the
 *     bucket cumulative at snapshot time (log-scale resolution — the
 *     right fidelity for latency tails, and no locks anywhere).
 *   - Gauge: a registered callback sampled at snapshot time (e.g. the
 *     current queue depth, a cache hit rate).
 *
 * Instruments live in a Registry. `Registry::global()` is the
 * process-wide instance the server and CLI publish into; tests that
 * want exact counts construct their own. Lookup by name takes a lock
 * once at setup; callers hold the returned reference (stable for the
 * registry's lifetime) and increment lock-free from then on.
 *
 * `render()` emits the canonical text form, one `name value` line per
 * sample — the same bytes the `STATS` protocol verb returns and the
 * CLI prints, so scripts parse one format everywhere.
 */

#ifndef SNS_OBS_METRICS_HH
#define SNS_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "perf/path_cache.hh"

namespace sns::obs {

/** Monotonic counter; relaxed atomic increments. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Lock-free latency histogram: bucket i counts values whose bit width
 * is i, i.e. [2^(i-1), 2^i); quantiles interpolate linearly inside the
 * winning bucket. Values are unit-agnostic — name the instrument with
 * its unit (`…_us`).
 */
class Histogram
{
  public:
    /** Covers values up to 2^47 (≈ 4.5 years in microseconds). */
    static constexpr size_t kBuckets = 48;

    void record(uint64_t value);

    /** A consistent-enough view for reporting (buckets are read
     * relaxed; a snapshot taken mid-record can be off by a count). */
    struct Snapshot
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
    };

    Snapshot snapshot() const;

    void reset();

  private:
    double quantileFromBuckets(
        const std::array<uint64_t, kBuckets> &buckets, uint64_t count,
        double q) const;

    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/** A named set of instruments. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry (server, CLI). */
    static Registry &global();

    /** Find-or-create; the reference stays valid for the registry's
     * lifetime. */
    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Register (or replace) a gauge callback, sampled at snapshot
     * time. The callback must stay valid until removeGauge() — objects
     * registering a `this`-capturing lambda remove it before dying.
     */
    void setGauge(const std::string &name, std::function<double()> fn);
    void removeGauge(const std::string &name);

    /** One flattened sample (histograms expand to .count/.p50/…). */
    struct Sample
    {
        std::string name;
        double value = 0.0;
    };

    /** Every instrument flattened, sorted by name. */
    std::vector<Sample> snapshot() const;

    /** The canonical text form: one `name value` line per sample. */
    std::string render() const;

    /** Zero every counter and histogram (gauges re-sample anyway).
     * For tests. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::function<double()>> gauges_;
};

/**
 * RAII gauge registration: setGauge() on construction, removeGauge()
 * on destruction. Transient publishers (a training run, a benchmark)
 * expose live gauges for their lifetime without risking a dangling
 * callback in the registry after they return.
 */
class ScopedGauge
{
  public:
    ScopedGauge(Registry &registry, std::string name,
                std::function<double()> fn)
        : registry_(registry), name_(std::move(name))
    {
        registry_.setGauge(name_, std::move(fn));
    }

    ~ScopedGauge() { registry_.removeGauge(name_); }

    ScopedGauge(const ScopedGauge &) = delete;
    ScopedGauge &operator=(const ScopedGauge &) = delete;

  private:
    Registry &registry_;
    std::string name_;
};

/**
 * The canonical rendering of perf::CacheStats — `cache.<field> value`
 * lines. `sns-cli predict --cache-stats` and the server's `STATS` verb
 * both emit exactly this, so tooling reads one format.
 */
std::string formatCacheStats(const perf::CacheStats &stats);

/** Format one sample value: integers bare, reals with 6 significant
 * digits ("12", "0.9375", "1.5e+06"). */
std::string formatValue(double value);

/** One parsed `name value` line of a STATS rendering. */
struct StatsSample
{
    std::string name;
    double value = 0.0;
};

/**
 * Parse the canonical STATS text (render() / statsText() output) back
 * into samples. Blank and malformed lines are skipped — the format is
 * ours end to end, so anything unparseable is noise, not data.
 */
std::vector<StatsSample> parseStats(const std::string &text);

/**
 * Merge N workers' STATS snapshots into one cluster-wide view
 * (docs/cluster.md): same-named samples are summed across workers —
 * except distribution lines (`.p50`/`.p90`/`.p99`/`.mean` suffixes and
 * `.hit_rate`), where a sum is meaningless; those are dropped from the
 * merged view and survive only in the per-worker breakdown the router
 * appends. The result is sorted by name.
 */
std::vector<StatsSample>
mergeStats(const std::vector<std::vector<StatsSample>> &snapshots);

/** True for sample names a cross-worker sum would corrupt
 * (quantiles, means, rates). */
bool nonSummableStat(const std::string &name);

/**
 * The STATS text as one flat JSON object, `{"name": value, ...}` in
 * line order — `sns-cli remote-predict --stats-json` and the cluster
 * bench harness parse this instead of the text form.
 */
std::string statsJson(const std::string &text);

} // namespace sns::obs

#endif // SNS_OBS_METRICS_HH
