#include "sampler/path_sampler.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hh"

namespace sns::sampler {

using graphir::Graph;
using graphir::NodeId;

namespace {

/** Recursive DFS state shared across one design's sampling run. */
struct DfsContext
{
    const Graph &graph;
    const SamplerOptions &options;
    Rng &rng;
    std::vector<SampledPath> &out;
    std::set<std::vector<NodeId>> &seen; // dedup vs deepest-path set
    size_t source_budget = 0;   // paths still allowed from this source
    std::vector<NodeId> stack;  // current partial path

    bool
    totalBudgetLeft() const
    {
        return out.size() < options.max_total_paths;
    }

    void
    emit()
    {
        if (!seen.insert(stack).second)
            return; // already present (e.g. a deepest-path duplicate)
        SampledPath path;
        path.nodes = stack;
        path.tokens.reserve(stack.size());
        for (NodeId id : stack)
            path.tokens.push_back(graph.token(id));
        out.push_back(std::move(path));
        --source_budget;
    }

    /**
     * Continue the path through vertex `node`. The vertex is pushed on
     * the partial path; if it is an endpoint (or a dead end) the path is
     * complete, otherwise ceil(|succ|/k) random successors are explored.
     */
    void
    extend(NodeId node)
    {
        if (source_budget == 0 || !totalBudgetLeft())
            return;
        if (stack.size() >= options.max_path_length)
            return;  // abandon over-long paths

        stack.push_back(node);
        if (graph.isEndpoint(node) || graph.successors(node).empty()) {
            emit();
        } else {
            descend(node);
        }
        stack.pop_back();
    }

    /** Explore a thinned random subset of `node`'s successors. */
    void
    descend(NodeId node)
    {
        const auto &succs = graph.successors(node);
        const size_t fanout = succs.size();
        const size_t pick = std::max<size_t>(
            1, static_cast<size_t>(
                   std::ceil(static_cast<double>(fanout) / options.k)));

        if (pick >= fanout) {
            for (NodeId next : succs)
                extend(next);
            return;
        }
        // Partial Fisher-Yates over an index scratch vector: the first
        // `pick` slots end up holding a uniform random subset.
        std::vector<size_t> order(fanout);
        for (size_t i = 0; i < fanout; ++i)
            order[i] = i;
        for (size_t i = 0; i < pick; ++i) {
            const size_t j = i + rng.uniformInt(fanout - i);
            std::swap(order[i], order[j]);
        }
        for (size_t i = 0; i < pick; ++i)
            extend(succs[order[i]]);
    }
};

} // namespace

PathSampler::PathSampler(SamplerOptions options) : options_(options)
{
    SNS_ASSERT(options_.k >= 1.0, "sampler k must be >= 1");
    SNS_ASSERT(options_.max_path_length >= 2,
               "paths need at least two vertices");
}

namespace {

/**
 * Deterministic deepest-path extraction: depth[u] = longest number of
 * vertices from combinational vertex u to (and including) a terminating
 * endpoint, computed over the combinational DAG; then the maximal path
 * from each of the deepest launch points is materialized by following
 * argmax successors.
 */
std::vector<SampledPath>
deepestPaths(const Graph &graph, size_t count, size_t max_length)
{
    const auto topo = graph.combinationalTopoOrder();
    const size_t n = graph.numNodes();
    std::vector<int> depth(n, 0);
    std::vector<NodeId> best_succ(n, graphir::kInvalidNode);

    // Reverse topological sweep: successors are finalized before their
    // predecessors.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const NodeId id = *it;
        if (graph.isEndpoint(id))
            continue;
        for (NodeId next : graph.successors(id)) {
            const int via =
                graph.isEndpoint(next) ? 1 : 1 + depth[next];
            if (via > depth[id]) {
                depth[id] = via;
                best_succ[id] = next;
            }
        }
    }

    // Rank launch endpoints by the depth reachable through them.
    std::vector<std::pair<int, NodeId>> launches;
    for (NodeId id : graph.endpoints()) {
        int best = 0;
        for (NodeId next : graph.successors(id)) {
            const int via =
                graph.isEndpoint(next) ? 1 : 1 + depth[next];
            best = std::max(best, via);
        }
        if (best > 0)
            launches.emplace_back(best, id);
    }
    std::sort(launches.begin(), launches.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first ||
                         (a.first == b.first && a.second < b.second);
              });

    std::vector<SampledPath> paths;
    for (const auto &[launch_depth, source] : launches) {
        if (paths.size() >= count)
            break;
        SampledPath path;
        path.nodes.push_back(source);
        // First hop: the deepest successor of the launch point.
        NodeId cursor = graphir::kInvalidNode;
        int best = -1;
        for (NodeId next : graph.successors(source)) {
            const int via =
                graph.isEndpoint(next) ? 1 : 1 + depth[next];
            if (via > best) {
                best = via;
                cursor = next;
            }
        }
        while (cursor != graphir::kInvalidNode &&
               path.nodes.size() < max_length) {
            path.nodes.push_back(cursor);
            if (graph.isEndpoint(cursor))
                break;
            cursor = best_succ[cursor];
        }
        if (path.nodes.size() < 2 ||
            !graph.isEndpoint(path.nodes.back())) {
            continue; // over-long chain truncated: skip
        }
        for (NodeId id : path.nodes)
            path.tokens.push_back(graph.token(id));
        paths.push_back(std::move(path));
    }
    return paths;
}

} // namespace

std::vector<SampledPath>
PathSampler::sample(const Graph &graph) const
{
    std::vector<SampledPath> paths;
    Rng rng(options_.seed);

    // Deterministic deep-path supplement first (deduplicated against
    // the random sample below).
    std::set<std::vector<NodeId>> seen;
    if (options_.longest_paths > 0) {
        for (auto &path : deepestPaths(graph, options_.longest_paths,
                                       options_.max_path_length)) {
            if (paths.size() >= options_.max_total_paths)
                break;
            if (seen.insert(path.nodes).second)
                paths.push_back(std::move(path));
        }
    }

    auto sources = graph.endpoints();
    // Randomize the source order so the total-path cap does not bias the
    // sample towards low-numbered vertices.
    rng.shuffle(sources);

    for (NodeId source : sources) {
        if (paths.size() >= options_.max_total_paths)
            break;
        if (graph.successors(source).empty())
            continue;
        DfsContext ctx{graph, options_, rng, paths, seen, 0, {}};
        ctx.source_budget = options_.max_paths_per_source;
        ctx.stack.push_back(source);
        ctx.descend(source);
    }
    return paths;
}

} // namespace sns::sampler
