/**
 * @file
 * Random sampling of complete circuit paths (§3.2, Algorithm 1).
 *
 * A complete circuit path starts and ends on a vertex containing a
 * flip-flop (a register or an I/O port) and traverses combinational
 * vertices in between — the "one-cycle behaviour" of the design. The
 * sampler performs a randomized DFS where at each vertex only
 * ceil(|successors| / k) successors (at least one) are traversed:
 * k = 1 is exhaustive enumeration, larger k samples ever more sparsely.
 * The paper chooses k = 5.
 */

#ifndef SNS_SAMPLER_PATH_SAMPLER_HH
#define SNS_SAMPLER_PATH_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "graphir/graph.hh"
#include "util/rng.hh"

namespace sns::sampler {

/** One sampled complete circuit path. */
struct SampledPath
{
    /** Vertices of the path in order, endpoints included. */
    std::vector<graphir::NodeId> nodes;

    /** Vocabulary tokens of the vertices, same order. */
    std::vector<graphir::TokenId> tokens;
};

/** Sampler configuration. */
struct SamplerOptions
{
    /** Branch-thinning parameter k of Algorithm 1 (paper default: 5). */
    double k = 5.0;

    /** Hard cap on path length (the Circuitformer input limit). */
    size_t max_path_length = 512;

    /** Cap on paths kept per starting endpoint (keeps blowup bounded). */
    size_t max_paths_per_source = 64;

    /** Cap on total paths sampled from one design. */
    size_t max_total_paths = 100000;

    /** RNG seed; equal seeds reproduce the identical sample. */
    uint64_t seed = 1;

    /**
     * Additionally extract the deepest complete circuit paths from the
     * top-N launch points (longest-path dynamic program over the
     * combinational DAG). Random sampling alone essentially never
     * follows a long chain end to end (the probability decays
     * geometrically with depth), yet those chains are exactly where
     * critical paths live; this deterministic supplement guarantees
     * they are represented. 0 disables.
     */
    size_t longest_paths = 8;
};

/** Randomized complete-circuit-path sampler (Algorithm 1). */
class PathSampler
{
  public:
    explicit PathSampler(SamplerOptions options = SamplerOptions());

    /**
     * Sample complete circuit paths from every endpoint of the design.
     * With options.k == 1 and generous caps this enumerates every
     * complete circuit path exactly once.
     */
    std::vector<SampledPath> sample(const graphir::Graph &graph) const;

    /** The options in effect. */
    const SamplerOptions &options() const { return options_; }

  private:
    SamplerOptions options_;
};

} // namespace sns::sampler

#endif // SNS_SAMPLER_PATH_SAMPLER_HH
