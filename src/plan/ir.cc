#include "plan/ir.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::plan {

namespace {

/** The eps LayerNorm's forward uses (autograd.hh default, truncated to
 * float exactly like the kernel does). */
constexpr float kLayerNormEps = 1e-5f;

/** Append a fresh buffer + the op writing it; returns the buffer id. */
uint32_t
emit(Plan &plan, OpKind kind, Epilogue epilogue,
     std::vector<uint32_t> inputs, std::vector<uint32_t> weights,
     Shape out_shape, float fattr = 0.0f, int32_t iattr = 0)
{
    const auto id = static_cast<uint32_t>(plan.buffers.size());
    plan.buffers.push_back(out_shape);
    Op op;
    op.kind = kind;
    op.epilogue = epilogue;
    op.inputs = std::move(inputs);
    op.weights = std::move(weights);
    op.out = id;
    op.fattr = fattr;
    op.iattr = iattr;
    plan.ops.push_back(std::move(op));
    return id;
}

/** Append a parameter reference; returns its weight-table index. */
uint32_t
refWeight(Plan &plan, uint32_t param_index, WeightRole role, int32_t rows,
          int32_t cols)
{
    plan.weights.push_back({param_index, role, rows, cols});
    return static_cast<uint32_t>(plan.weights.size() - 1);
}

} // namespace

Shape
makeShape(std::initializer_list<Dim> dims)
{
    SNS_ASSERT(dims.size() >= 1 && dims.size() <= 3,
               "plan shapes are 1- to 3-D");
    Shape shape;
    shape.ndim = static_cast<uint8_t>(dims.size());
    size_t i = 0;
    for (const Dim &dim : dims)
        shape.dims[i++] = dim;
    return shape;
}

Plan
buildCanonicalPlan(const PlanConfig &config, uint64_t fingerprint)
{
    SNS_ASSERT(config.vocab > 0 && config.max_positions > 0 &&
                   config.d_model > 0 && config.heads > 0 &&
                   config.layers > 0 && config.d_ff > 0 &&
                   config.head_hidden > 0 && config.batch_max > 0,
               "buildCanonicalPlan: config extents must be positive");
    SNS_ASSERT(config.d_model % config.heads == 0,
               "buildCanonicalPlan: d_model must divide into heads");

    const int32_t d = config.d_model;
    const int32_t dh = d / config.heads;
    const float scale =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(dh)));

    Plan plan;
    plan.config = config;
    plan.fingerprint = fingerprint;

    const Shape btd = makeShape({batchDim(), timeDim(), staticDim(d)});
    const Shape heads3 =
        makeShape({batchHeadsDim(), timeDim(), staticDim(dh)});

    // Linear projection + bias as one Gemm op with a fused epilogue.
    // `base` is the parameter index of the weight matrix; the bias is
    // always the next parameter in the canonical flat order.
    const auto linear = [&](uint32_t input, uint32_t base, int32_t in,
                            int32_t out, Epilogue epilogue,
                            Shape out_shape) {
        const uint32_t w =
            refWeight(plan, base, WeightRole::Matrix, in, out);
        const uint32_t b = refWeight(plan, base + 1, WeightRole::Bias,
                                     out, 0);
        return emit(plan, OpKind::Gemm, epilogue, {input}, {w, b},
                    out_shape);
    };
    const auto layer_norm = [&](uint32_t input, uint32_t gamma_index) {
        const uint32_t g =
            refWeight(plan, gamma_index, WeightRole::Gamma, d, 0);
        const uint32_t b =
            refWeight(plan, gamma_index + 1, WeightRole::Beta, d, 0);
        return emit(plan, OpKind::LayerNorm, Epilogue::None, {input},
                    {g, b}, btd, kLayerNormEps);
    };

    // Prologue: embeddings, residual add, input LayerNorm. Parameter
    // indices 0..3 (TransformerEncoder::parameters() order).
    const uint32_t tok = emit(
        plan, OpKind::TokenEmbed, Epilogue::None, {},
        {refWeight(plan, 0, WeightRole::Table, config.vocab, d)}, btd);
    const uint32_t pos = emit(
        plan, OpKind::PosEmbed, Epilogue::None, {},
        {refWeight(plan, 1, WeightRole::Table, config.max_positions, d)},
        btd);
    const uint32_t summed =
        emit(plan, OpKind::Add, Epilogue::None, {tok, pos}, {}, btd);
    uint32_t x = layer_norm(summed, 2);

    // Encoder layers. Per layer the flat parameter order is wq W,b,
    // wk W,b, wv W,b, wo W,b, up W,b, down W,b, norm1 g,b, norm2 g,b —
    // note norm1/norm2 are *stored* after the feed-forward parameters
    // even though norm1 is applied before it.
    for (int32_t layer = 0; layer < config.layers; ++layer) {
        const uint32_t base = 4 + static_cast<uint32_t>(layer) * 16;

        const auto split = [&](uint32_t projected) {
            return emit(plan, OpKind::SplitHeads, Epilogue::None,
                        {projected}, {}, heads3, 0.0f, config.heads);
        };
        const uint32_t q = split(
            linear(x, base + 0, d, d, Epilogue::Bias, btd));
        const uint32_t k = split(
            linear(x, base + 2, d, d, Epilogue::Bias, btd));
        const uint32_t v = split(
            linear(x, base + 4, d, d, Epilogue::Bias, btd));

        const uint32_t attn = emit(
            plan, OpKind::BmmTransB, Epilogue::ScaleMaskSoftmax, {q, k},
            {},
            makeShape({batchHeadsDim(), timeDim(), timeDim()}), scale,
            config.heads);
        const uint32_t ctx = emit(plan, OpKind::Bmm, Epilogue::None,
                                  {attn, v}, {}, heads3);
        const uint32_t merged =
            emit(plan, OpKind::MergeHeads, Epilogue::None, {ctx}, {},
                 btd, 0.0f, config.heads);
        const uint32_t attn_out =
            linear(merged, base + 6, d, d, Epilogue::Bias, btd);

        const uint32_t h1 = layer_norm(
            emit(plan, OpKind::Add, Epilogue::None, {x, attn_out}, {},
                 btd),
            base + 12);

        const uint32_t up = linear(
            h1, base + 8, d, config.d_ff, Epilogue::BiasGelu,
            makeShape({batchDim(), timeDim(), staticDim(config.d_ff)}));
        const uint32_t ffn =
            linear(up, base + 10, config.d_ff, d, Epilogue::Bias, btd);

        x = layer_norm(
            emit(plan, OpKind::Add, Epilogue::None, {h1, ffn}, {}, btd),
            base + 14);
    }

    // Tail: masked mean pooling + the {d_model, head_hidden, 3} MLP.
    const uint32_t head_base = 4 + static_cast<uint32_t>(config.layers) * 16;
    const uint32_t pooled =
        emit(plan, OpKind::MeanPool, Epilogue::None, {x}, {},
             makeShape({batchDim(), staticDim(d)}));
    const uint32_t hidden = linear(
        pooled, head_base, d, config.head_hidden, Epilogue::BiasRelu,
        makeShape({batchDim(), staticDim(config.head_hidden)}));
    linear(hidden, head_base + 2, config.head_hidden, 3, Epilogue::Bias,
           makeShape({batchDim(), staticDim(3)}));

    SNS_ASSERT(plan.ops.size() == canonicalOpCount(config) &&
                   plan.weights.size() == canonicalParamCount(config),
               "canonical plan op/weight count drifted");
    return plan;
}

int64_t
resolveDim(const Dim &dim, int batch, int time, int heads)
{
    switch (dim.kind) {
      case DimKind::Static: return dim.value;
      case DimKind::Batch: return batch;
      case DimKind::Time: return time;
      case DimKind::BatchHeads:
        return static_cast<int64_t>(batch) * heads;
    }
    return 0;
}

size_t
resolveNumel(const Shape &shape, int batch, int time, int heads)
{
    size_t numel = 1;
    for (uint8_t i = 0; i < shape.ndim; ++i) {
        const int64_t extent = resolveDim(shape.dims[i], batch, time,
                                          heads);
        numel *= extent > 0 ? static_cast<size_t>(extent) : 0;
    }
    return shape.ndim == 0 ? 0 : numel;
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::TokenEmbed: return "token-embed";
      case OpKind::PosEmbed: return "pos-embed";
      case OpKind::Add: return "add";
      case OpKind::LayerNorm: return "layer-norm";
      case OpKind::Gemm: return "gemm";
      case OpKind::SplitHeads: return "split-heads";
      case OpKind::MergeHeads: return "merge-heads";
      case OpKind::BmmTransB: return "bmm-trans-b";
      case OpKind::Bmm: return "bmm";
      case OpKind::MeanPool: return "mean-pool";
    }
    return "?";
}

const char *
epilogueName(Epilogue epilogue)
{
    switch (epilogue) {
      case Epilogue::None: return "none";
      case Epilogue::Bias: return "bias";
      case Epilogue::BiasGelu: return "bias+gelu";
      case Epilogue::BiasRelu: return "bias+relu";
      case Epilogue::ScaleMaskSoftmax: return "scale+mask+softmax";
    }
    return "?";
}

const char *
weightRoleName(WeightRole role)
{
    switch (role) {
      case WeightRole::Matrix: return "matrix";
      case WeightRole::Bias: return "bias";
      case WeightRole::Gamma: return "gamma";
      case WeightRole::Beta: return "beta";
      case WeightRole::Table: return "table";
    }
    return "?";
}

const char *
dimKindName(DimKind kind)
{
    switch (kind) {
      case DimKind::Static: return "static";
      case DimKind::Batch: return "B";
      case DimKind::Time: return "T";
      case DimKind::BatchHeads: return "B*H";
    }
    return "?";
}

std::string
toString(const Shape &shape)
{
    std::string out = "[";
    for (uint8_t i = 0; i < shape.ndim; ++i) {
        if (i > 0)
            out += ", ";
        const Dim &dim = shape.dims[i];
        out += dim.kind == DimKind::Static ? std::to_string(dim.value)
                                           : dimKindName(dim.kind);
    }
    return out + "]";
}

} // namespace sns::plan
