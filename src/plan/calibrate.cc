#include "plan/calibrate.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::plan {

void
Calibrator::observe(uint32_t op_index, const float *data, size_t count)
{
    float local = 0.0f;
    for (size_t i = 0; i < count; ++i)
        local = std::max(local, std::fabs(data[i]));
    const std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = absmax_.try_emplace(op_index, local);
    if (!inserted)
        it->second = std::max(it->second, local);
}

bool
Calibrator::has(uint32_t op_index) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return absmax_.count(op_index) != 0;
}

float
Calibrator::absmax(uint32_t op_index) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = absmax_.find(op_index);
    return it == absmax_.end() ? 0.0f : it->second;
}

size_t
Calibrator::observed() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return absmax_.size();
}

Plan
quantizePlan(const Plan &plan, const Calibrator &cal,
             const std::vector<tensor::Variable> &params)
{
    Plan out = plan;
    out.quant.clear();
    if (plan.ops.empty())
        return out;

    // The terminal op is the 3-output head projection; it stays full
    // precision so the AggregationHeads boundary sees fp64 inputs
    // (rule P-QUANT-BOUNDARY).
    const size_t last = plan.ops.size() - 1;
    for (size_t i = 0; i < last; ++i) {
        const Op &op = plan.ops[i];
        if (op.kind != OpKind::Gemm)
            continue;
        SNS_ASSERT(cal.has(static_cast<uint32_t>(i)),
                   "quantizePlan: Gemm op ", i,
                   " was never calibrated — run the calibration shard "
                   "through the fp64 plan first");
        const WeightRef &ref = plan.weights[op.weights[0]];
        SNS_ASSERT(ref.param_index < params.size() &&
                       params[ref.param_index].defined(),
                   "quantizePlan: plan references parameter ",
                   ref.param_index, " the model does not have");
        const float *w = params[ref.param_index].value().data();
        const int k = ref.rows;
        const int n = ref.cols;

        QuantizedGemm entry;
        entry.op_index = static_cast<uint32_t>(i);
        // An all-zero calibration shard would make the scale zero;
        // clamp to 1 — every activation then quantizes to the zero
        // point and the op output is exactly the bias path.
        const float xmax = cal.absmax(entry.op_index);
        entry.x_scale = xmax > 0.0f ? xmax / 63.0f : 1.0f;
        entry.w_scales.resize(static_cast<size_t>(n));
        for (int j = 0; j < n; ++j) {
            float wmax = 0.0f;
            for (int p = 0; p < k; ++p)
                wmax = std::max(
                    wmax,
                    std::fabs(w[static_cast<size_t>(p) * n + j]));
            entry.w_scales[j] = wmax > 0.0f ? wmax / 127.0f : 1.0f;
        }
        out.quant.push_back(std::move(entry));
    }
    return out;
}

} // namespace sns::plan
