/**
 * @file
 * Planned execution: compile a verified plan against a model's
 * parameters and run batches through it with zero per-batch heap
 * allocations (docs/plan.md).
 *
 * compilePlan() runs the full static-analysis pipeline
 * (verify::checkPlan + computePlanLayout) and enforce()s the result,
 * validates every WeightRef against the actual parameter tensors
 * (rule P-MODEL), and pre-packs each weight matrix into the 16-wide
 * B-panel layout the SIMD gemm consumes — packing happens once at
 * load, never per batch.
 *
 * CompiledPlan::run() then executes the op list over a thread-local
 * grow-only float arena at the offsets the layout pass proved
 * non-overlapping. Every op replicates the corresponding module-walk
 * kernel loop *exactly* (same accumulation order, same float/double
 * promotions), so planned output is bitwise-identical to the walk —
 * tests/test_plan.cc and bench/fig07_runtime.cc gate on that.
 *
 * A CompiledPlan snapshots nothing: it aliases the parameter tensors
 * it was compiled against (keeping them alive via Variable handles)
 * but pre-packed panels are copies frozen at compile time. Training a
 * model after compiling a plan for it therefore invalidates the plan;
 * like the path cache, planned execution assumes frozen weights —
 * re-compile after any parameter update.
 */

#ifndef SNS_PLAN_RUNTIME_HH
#define SNS_PLAN_RUNTIME_HH

#include <atomic>
#include <memory>
#include <vector>

#include "plan/ir.hh"
#include "tensor/autograd.hh"
#include "tensor/qgemm.hh"
#include "verify/plan_check.hh"

namespace sns::plan {

class Calibrator;

/**
 * Global kill switch for planned execution, also settable via the
 * SNS_PLAN environment variable ("0"/"off"/"false" disable it).
 * Defaults to enabled. Bound plans are ignored while disabled — the
 * module walk runs instead, which is what the bitwise A/B tests and
 * `tools/run_lint.sh` toggle.
 */
bool planEnabled();
void setPlanEnabled(bool enabled);

/** A verified plan bound to a concrete model's parameters. */
class CompiledPlan
{
  public:
    /** The verified IR this plan executes. */
    const Plan &plan() const { return plan_; }

    /** The arena layout proved by the static analyzer. */
    const verify::PlanLayout &layout() const { return layout_; }

    /** Fingerprint of the model the plan was traced from. */
    uint64_t fingerprint() const { return plan_.fingerprint; }

    /** Largest batch run() accepts. */
    int batchMax() const { return plan_.config.batch_max; }

    /**
     * Execute one padded batch. `ids` is row-major [batch, time],
     * `lengths` the per-row valid lengths (as produced by the
     * predictor's pack()). Returns a pointer to the [batch, 3]
     * output region inside a thread-local arena — valid until the
     * next run() on the same thread. Requires batch <= batchMax()
     * and time <= config.max_positions.
     */
    const float *run(const std::vector<int> &ids,
                     const std::vector<int> &lengths, int batch,
                     int time) const;

    /** True when the plan carries int8 scales and run() executes the
     * quantized Gemm kernels for the side-table ops. */
    bool quantized() const { return !plan_.quant.empty(); }

    /**
     * Attach (or detach, with nullptr) an activation-absmax observer:
     * while set, every run() feeds each Gemm op's input rows to
     * calibrator->observe() before multiplying. Observation never
     * changes the computed values. Logically const — the plan's
     * semantics are untouched — so a calibration pass can run through
     * the same shared const handle the predictor executes.
     */
    void setCalibrationObserver(Calibrator *calibrator) const
    {
        calibrator_.store(calibrator, std::memory_order_release);
    }

  private:
    friend std::shared_ptr<const CompiledPlan>
    compilePlan(const Plan &plan,
                const std::vector<tensor::Variable> &params);

    Plan plan_;
    verify::PlanLayout layout_;
    /** Keep-alive handles; weight_data_ aliases these tensors. */
    std::vector<tensor::Variable> params_;
    /** Raw value pointer per weight-table entry. */
    std::vector<const float *> weight_data_;
    /** Pre-packed B panels per weight-table entry (Matrix role only;
     * empty vectors otherwise). */
    std::vector<std::vector<float>> packed_;

    /** One compiled int8 kernel per quantized Gemm: the weight matrix
     * re-quantized and packed for tensor::qgemmI32, plus the fused
     * dequantization multipliers x_scale * w_scales[j]. */
    struct QuantKernel
    {
        float inv_x_scale = 0.0f;        ///< 1 / x_scale (quantize)
        tensor::QuantPanels panels;      ///< s8 weights, K4-interleaved
        std::vector<float> mult;         ///< per-column dequant factor
    };
    /** Indexed by op position; null for full-precision ops. */
    std::vector<std::unique_ptr<QuantKernel>> qkernels_;

    /** Calibration observer (normally null; see the setter). */
    mutable std::atomic<Calibrator *> calibrator_{nullptr};
};

/**
 * Verify `plan` (checkPlan + computePlanLayout, enforce()d under the
 * ambient SNS_VERIFY mode), validate it against `params` — the
 * model's parameters() in canonical flat order — and pre-pack the
 * weight matrices. Throws verify::VerifyError (under the default
 * Fatal mode) when the plan is malformed or does not match the
 * parameters.
 */
std::shared_ptr<const CompiledPlan>
compilePlan(const Plan &plan, const std::vector<tensor::Variable> &params);

} // namespace sns::plan

#endif // SNS_PLAN_RUNTIME_HH
