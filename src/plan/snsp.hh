/**
 * @file
 * The .snsp serialized execution-plan container.
 *
 * Layout (little-endian, fixed-width fields):
 *
 *   header, 24 bytes:
 *     "SNSP"            4-byte magic
 *     u32 version       currently 2 (1 still readable)
 *     u64 payload_len   bytes following the header
 *     u64 payload_hash  FNV-1a over the payload bytes
 *
 *   payload:
 *     u64 fingerprint
 *     i32 x 8           vocab, max_positions, d_model, heads, layers,
 *                       d_ff, head_hidden, batch_max
 *     u32 nbuffers      then per buffer: u8 ndim,
 *                       ndim x { u8 dim_kind, i32 value }
 *     u32 nweights      then per weight: u32 param_index, u8 role,
 *                       i32 rows, i32 cols
 *     u32 nops          then per op: u8 kind, u8 epilogue, u8 n_in,
 *                       u8 n_w, n_in x u32 inputs, n_w x u32 weights,
 *                       u32 out, f32 fattr, i32 iattr
 *     u32 nquant        (version >= 2) then per entry: u32 op_index,
 *                       f32 x_scale, u32 nscales, nscales x f32
 *
 * Version 1 files (pre-quantization) simply lack the quant section and
 * parse into a plan with an empty side table; version 2 is always
 * written, with nquant = 0 for pure fp64 plans.
 *
 * readPlanFile() performs the container checks (rules P-OPEN, P-MAGIC,
 * P-VERSION, P-TRUNCATED, P-HASH) and an offset-tracked payload parse:
 * every diagnostic carries the absolute byte offset and the field
 * being decoded (verify::atByte). It deliberately reports *into* a
 * Report instead of throwing, so sns_lint can keep going; enforcement
 * policy stays with the caller (verify::checkPlanFile, model load,
 * sns-serve RELOAD).
 */

#ifndef SNS_PLAN_SNSP_HH
#define SNS_PLAN_SNSP_HH

#include <string>
#include <vector>

#include "plan/ir.hh"
#include "verify/diagnostics.hh"

namespace sns::plan {

inline constexpr char kSnspMagic[4] = {'S', 'N', 'S', 'P'};
inline constexpr uint32_t kSnspVersion = 2;
/** Oldest container version readPlanFile still accepts. */
inline constexpr uint32_t kSnspMinVersion = 1;
inline constexpr size_t kSnspHeaderBytes = 24;

/** FNV-1a over a byte range (the hash in the .snsp header). */
uint64_t fnv1a(const void *data, size_t bytes);

/** Serialize a plan's payload (everything after the 24-byte header). */
std::vector<unsigned char> serializePlanPayload(const Plan &plan);

/** Serialize header + payload into one buffer. */
std::vector<unsigned char> serializePlan(const Plan &plan);

/** Write a plan to disk; throws std::runtime_error on I/O failure. */
void writePlanFile(const Plan &plan, const std::string &path);

/**
 * Parse a payload (header already stripped) into `out`. `version` is
 * the container version from the header and selects which sections to
 * expect (the quant side table exists from version 2). Diagnostics
 * carry byte offsets relative to the *file* start, i.e. payload
 * offsets shifted by kSnspHeaderBytes. Returns false — with at least
 * one error in `report` — when the payload is malformed.
 */
bool parsePlanPayload(const unsigned char *data, size_t size,
                      uint32_t version, Plan &out,
                      verify::Report &report, const std::string &where);

/**
 * Read + container-check + parse one .snsp file. Returns false when
 * `out` is unusable; `report` holds the P-* findings either way.
 */
bool readPlanFile(const std::string &path, Plan &out,
                  verify::Report &report);

} // namespace sns::plan

#endif // SNS_PLAN_SNSP_HH
