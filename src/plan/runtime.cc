#include "plan/runtime.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "perf/arena.hh"
#include "plan/calibrate.hh"
#include "tensor/gemm.hh"
#include "util/logging.hh"

namespace sns::plan {

namespace {

std::atomic<bool> &
planFlag()
{
    static std::atomic<bool> flag{[] {
        const char *env = std::getenv("SNS_PLAN");
        if (env == nullptr)
            return true;
        const std::string value(env);
        return !(value == "0" || value == "off" || value == "OFF" ||
                 value == "false" || value == "FALSE");
    }()};
    return flag;
}

/** The exact tanh-approximation GELU from the autograd forward kernel
 * (duplicated; the bitwise planned-vs-walk tests pin the two). */
float
geluForward(float v)
{
    const float c = 0.7978845608f; // sqrt(2/pi)
    const float inner = c * (v + 0.044715f * v * v * v);
    return 0.5f * v * (1.0f + std::tanh(inner));
}

} // namespace

bool
planEnabled()
{
    return planFlag().load(std::memory_order_relaxed);
}

void
setPlanEnabled(bool enabled)
{
    planFlag().store(enabled, std::memory_order_relaxed);
}

std::shared_ptr<const CompiledPlan>
compilePlan(const Plan &plan, const std::vector<tensor::Variable> &params)
{
    verify::Report report = verify::checkPlan(plan);
    verify::PlanLayout layout;
    if (!report.hasErrors())
        layout = verify::computePlanLayout(plan, report);

    // Bind each WeightRef to the actual parameter tensor and pre-pack
    // the matrices. A plan traced from a different architecture (or a
    // stale .snsp) fails here with P-MODEL.
    std::vector<const float *> weight_data;
    std::vector<std::vector<float>> packed(plan.weights.size());
    weight_data.reserve(plan.weights.size());
    for (size_t i = 0; i < plan.weights.size(); ++i) {
        const WeightRef &ref = plan.weights[i];
        const std::string where =
            "weight ref " + std::to_string(i) + " (parameter " +
            std::to_string(ref.param_index) + ")";
        if (ref.param_index >= params.size() ||
            !params[ref.param_index].defined()) {
            report.error(verify::rules::kPlanModel, where,
                         "plan references a parameter the model does "
                         "not have (model exposes " +
                             std::to_string(params.size()) + ")",
                         "re-trace the plan from this model");
            weight_data.push_back(nullptr);
            continue;
        }
        const tensor::Tensor &value = params[ref.param_index].value();
        const bool matches =
            ref.cols > 0 ? value.ndim() == 2 && value.dim(0) == ref.rows &&
                               value.dim(1) == ref.cols
                         : value.ndim() == 1 && value.dim(0) == ref.rows;
        if (!matches) {
            std::string actual = "[";
            for (int dim = 0; dim < value.ndim(); ++dim) {
                if (dim > 0)
                    actual += ", ";
                actual += std::to_string(value.dim(dim));
            }
            report.error(verify::rules::kPlanModel, where,
                         "parameter tensor is " + actual +
                             "], plan expects [" +
                             std::to_string(ref.rows) +
                             (ref.cols > 0
                                  ? ", " + std::to_string(ref.cols) + "]"
                                  : "]"),
                         "the plan was traced from a different "
                         "architecture");
            weight_data.push_back(nullptr);
            continue;
        }
        weight_data.push_back(value.data());
        if (ref.role == WeightRole::Matrix) {
            const size_t floats =
                tensor::gemmPackedFloats(ref.cols, ref.rows);
            packed[i].resize(floats);
            tensor::gemmPackB(value.data(), ref.cols, ref.rows, false,
                              packed[i].data());
        }
    }

    verify::enforce(report, "plan::compilePlan");
    // In Count/Off enforcement modes execution must still not proceed
    // through a plan that failed analysis.
    SNS_ASSERT(!report.hasErrors(),
               "compilePlan: plan failed static analysis");

    auto compiled = std::make_shared<CompiledPlan>();
    compiled->plan_ = plan;
    compiled->layout_ = std::move(layout);
    compiled->params_ = params;
    compiled->weight_data_ = std::move(weight_data);
    compiled->packed_ = std::move(packed);

    // Compile the int8 side table: re-quantize each referenced weight
    // matrix with its per-column scales and pack it for qgemmI32. The
    // P-QUANT pass (inside checkPlan above) already proved the table
    // well-formed, so indexing is safe here.
    if (!plan.quant.empty()) {
        compiled->qkernels_.resize(plan.ops.size());
        for (const QuantizedGemm &entry : plan.quant) {
            const Op &op = plan.ops[entry.op_index];
            const uint32_t w = op.weights[0];
            const WeightRef &ref = plan.weights[w];
            const float *wdata = compiled->weight_data_[w];
            const int k = ref.rows;
            const int n = ref.cols;
            auto kernel = std::make_unique<CompiledPlan::QuantKernel>();
            kernel->inv_x_scale = 1.0f / entry.x_scale;
            kernel->mult.resize(static_cast<size_t>(n));
            std::vector<int8_t> wq(static_cast<size_t>(k) * n);
            for (int j = 0; j < n; ++j) {
                const float inv = 1.0f / entry.w_scales[j];
                for (int p = 0; p < k; ++p) {
                    const float v =
                        wdata[static_cast<size_t>(p) * n + j] * inv;
                    const int q = std::clamp(
                        static_cast<int>(std::nearbyintf(v)), -127, 127);
                    wq[static_cast<size_t>(p) * n + j] =
                        static_cast<int8_t>(q);
                }
                kernel->mult[j] = entry.x_scale * entry.w_scales[j];
            }
            tensor::qgemmPackB(wq.data(), k, n, kernel->panels);
            compiled->qkernels_[entry.op_index] = std::move(kernel);
        }
    }
    return compiled;
}

const float *
CompiledPlan::run(const std::vector<int> &ids,
                  const std::vector<int> &lengths, int batch,
                  int time) const
{
    const PlanConfig &config = plan_.config;
    SNS_ASSERT(batch > 0 && batch <= config.batch_max,
               "plan run: batch out of range: ", batch);
    SNS_ASSERT(time > 0 && time <= config.max_positions,
               "plan run: time out of range: ", time);
    SNS_ASSERT(ids.size() == static_cast<size_t>(batch) * time &&
                   lengths.size() == static_cast<size_t>(batch),
               "plan run: ids/lengths size mismatch");
    const int heads = config.heads;

    thread_local perf::FloatArena arena;
    float *base = arena.ensure(layout_.total_floats);
    float *scratch = base + layout_.scratch_offset;

    const auto buffer = [&](uint32_t id) {
        return base + layout_.offsets[id];
    };
    const auto numel = [&](uint32_t id) {
        return resolveNumel(plan_.buffers[id], batch, time, heads);
    };
    // Static last dimension (the shape pass proved it static wherever
    // the executor relies on it).
    const auto lastDim = [&](uint32_t id) {
        const Shape &shape = plan_.buffers[id];
        return shape.dims[shape.ndim - 1].value;
    };

    for (size_t opi = 0; opi < plan_.ops.size(); ++opi) {
        const Op &op = plan_.ops[opi];
        float *out = buffer(op.out);
        switch (op.kind) {
          case OpKind::TokenEmbed:
          case OpKind::PosEmbed: {
            const WeightRef &table = plan_.weights[op.weights[0]];
            const float *w = weight_data_[op.weights[0]];
            const int d = table.cols;
            if (op.kind == OpKind::TokenEmbed) {
                for (size_t i = 0; i < ids.size(); ++i) {
                    const int id = ids[i];
                    SNS_ASSERT(id >= 0 && id < table.rows,
                               "plan run: token id out of range: ", id);
                    const float *src = w + static_cast<size_t>(id) * d;
                    std::copy(src, src + d, out + i * d);
                }
            } else {
                for (int bi = 0; bi < batch; ++bi) {
                    for (int ti = 0; ti < time; ++ti) {
                        const float *src = w + static_cast<size_t>(ti) * d;
                        std::copy(src, src + d,
                                  out + (static_cast<size_t>(bi) * time +
                                         ti) * d);
                    }
                }
            }
            break;
          }
          case OpKind::Add: {
            const float *a = buffer(op.inputs[0]);
            const float *b = buffer(op.inputs[1]);
            const size_t count = numel(op.out);
            // add() in the walk is copy + addScaled(alpha = 1).
            for (size_t i = 0; i < count; ++i)
                out[i] = a[i] + 1.0f * b[i];
            break;
          }
          case OpKind::LayerNorm: {
            const float *src_base = buffer(op.inputs[0]);
            const float *g = weight_data_[op.weights[0]];
            const float *bb = weight_data_[op.weights[1]];
            const int d = lastDim(op.out);
            const size_t rows = numel(op.out) / d;
            const float eps = op.fattr;
            for (size_t r = 0; r < rows; ++r) {
                const float *src = src_base + r * d;
                float mu = 0.0f;
                for (int j = 0; j < d; ++j)
                    mu += src[j];
                mu /= d;
                float var = 0.0f;
                for (int j = 0; j < d; ++j) {
                    const float delta = src[j] - mu;
                    var += delta * delta;
                }
                var /= d;
                const float inv = 1.0f / std::sqrt(var + eps);
                float *dst = out + r * d;
                for (int j = 0; j < d; ++j)
                    dst[j] = (src[j] - mu) * inv * g[j] + bb[j];
            }
            break;
          }
          case OpKind::Gemm: {
            const uint32_t w = op.weights[0];
            const WeightRef &matrix = plan_.weights[w];
            const int k = matrix.rows;
            const int n = matrix.cols;
            const float *a = buffer(op.inputs[0]);
            const size_t m = numel(op.inputs[0]) / static_cast<size_t>(k);
            if (Calibrator *cal =
                    calibrator_.load(std::memory_order_acquire)) {
                cal->observe(static_cast<uint32_t>(opi), a,
                             m * static_cast<size_t>(k));
            }
            if (const QuantKernel *qk = qkernels_.empty()
                                            ? nullptr
                                            : qkernels_[opi].get()) {
                // Int8 path (docs/quantization.md): scalar u7
                // activation quantize -> exact integer GEMM (the only
                // SIMD-dispatched stage; identical bits at every
                // level) -> scalar dequantize with the zero-point
                // correction and the fused bias/activation epilogue.
                const int kp = qk->panels.k_padded;
                thread_local std::vector<uint8_t> qa;
                thread_local std::vector<int32_t> qc;
                qa.assign(m * static_cast<size_t>(kp), 0);
                for (size_t r = 0; r < m; ++r) {
                    const float *src = a + r * static_cast<size_t>(k);
                    uint8_t *dst = qa.data() + r * static_cast<size_t>(kp);
                    for (int p = 0; p < k; ++p) {
                        const int q =
                            static_cast<int>(std::nearbyintf(
                                src[p] * qk->inv_x_scale)) +
                            64;
                        dst[p] = static_cast<uint8_t>(
                            std::clamp(q, 0, 127));
                    }
                }
                if (qc.size() < m * static_cast<size_t>(n))
                    qc.resize(m * static_cast<size_t>(n));
                tensor::qgemmI32(qa.data(), qk->panels, qc.data(),
                                 static_cast<int>(m));
                const float *bias =
                    op.epilogue != Epilogue::None
                        ? weight_data_[op.weights[1]]
                        : nullptr;
                for (size_t r = 0; r < m; ++r) {
                    const int32_t *acc = qc.data() + r * n;
                    float *dst = out + r * n;
                    for (int j = 0; j < n; ++j) {
                        float v = static_cast<float>(
                                      acc[j] -
                                      64 * qk->panels.colsum[j]) *
                                  qk->mult[j];
                        if (bias != nullptr)
                            v += bias[j];
                        dst[j] = v;
                    }
                }
                const size_t count = m * static_cast<size_t>(n);
                if (op.epilogue == Epilogue::BiasGelu) {
                    for (size_t i = 0; i < count; ++i)
                        out[i] = geluForward(out[i]);
                } else if (op.epilogue == Epilogue::BiasRelu) {
                    for (size_t i = 0; i < count; ++i)
                        out[i] = std::max(out[i], 0.0f);
                }
                break;
            }
            std::fill(out, out + m * n, 0.0f);
            const float *bt =
                packed_[w].empty() ? nullptr : packed_[w].data();
            tensor::gemmAccPacked(a, weight_data_[w], bt, out,
                                  static_cast<int>(m), n, k, false,
                                  false);
            if (op.epilogue != Epilogue::None) {
                const float *bias = weight_data_[op.weights[1]];
                for (size_t r = 0; r < m; ++r) {
                    float *dst = out + r * n;
                    for (int j = 0; j < n; ++j)
                        dst[j] += bias[j];
                }
            }
            const size_t count = m * static_cast<size_t>(n);
            if (op.epilogue == Epilogue::BiasGelu) {
                for (size_t i = 0; i < count; ++i)
                    out[i] = geluForward(out[i]);
            } else if (op.epilogue == Epilogue::BiasRelu) {
                for (size_t i = 0; i < count; ++i)
                    out[i] = std::max(out[i], 0.0f);
            }
            break;
          }
          case OpKind::SplitHeads: {
            const int d = lastDim(op.inputs[0]);
            const int dh = d / heads;
            const float *src_base = buffer(op.inputs[0]);
            for (int bi = 0; bi < batch; ++bi) {
                for (int ti = 0; ti < time; ++ti) {
                    const float *src =
                        src_base +
                        (static_cast<size_t>(bi) * time + ti) * d;
                    for (int h = 0; h < heads; ++h) {
                        float *dst =
                            out + ((static_cast<size_t>(bi) * heads + h) *
                                       time + ti) * dh;
                        std::copy(src + h * dh, src + (h + 1) * dh, dst);
                    }
                }
            }
            break;
          }
          case OpKind::MergeHeads: {
            const int dh = lastDim(op.inputs[0]);
            const int d = dh * heads;
            const float *src_base = buffer(op.inputs[0]);
            for (int bi = 0; bi < batch; ++bi) {
                for (int ti = 0; ti < time; ++ti) {
                    float *dst =
                        out + (static_cast<size_t>(bi) * time + ti) * d;
                    for (int h = 0; h < heads; ++h) {
                        const float *src =
                            src_base +
                            ((static_cast<size_t>(bi) * heads + h) *
                                 time + ti) * dh;
                        std::copy(src, src + dh, dst + h * dh);
                    }
                }
            }
            break;
          }
          case OpKind::BmmTransB: {
            // scores[i] = q[i] x k[i]^T per batch-head slice, exactly
            // like bmmTransB's per-batch gemmAcc loop.
            const int dh = lastDim(op.inputs[0]);
            const float *q = buffer(op.inputs[0]);
            const float *kmat = buffer(op.inputs[1]);
            const int bh = batch * heads;
            const size_t in_stride = static_cast<size_t>(time) * dh;
            const size_t out_stride = static_cast<size_t>(time) * time;
            const bool simd = tensor::gemmSimdActive();
            for (int i = 0; i < bh; ++i) {
                float *c = out + i * out_stride;
                std::fill(c, c + out_stride, 0.0f);
                const float *b = kmat + i * in_stride;
                const float *bt = nullptr;
                if (simd) {
                    tensor::gemmPackB(b, time, dh, true, scratch);
                    bt = scratch;
                }
                tensor::gemmAccPacked(q + i * in_stride, b, bt, c, time,
                                      time, dh, false, true);
            }
            if (op.epilogue == Epilogue::ScaleMaskSoftmax) {
                // The walk's exact pass order: scale the whole tensor,
                // assign the padding mask, then per-row softmax.
                const size_t total = static_cast<size_t>(bh) * out_stride;
                for (size_t i = 0; i < total; ++i)
                    out[i] *= op.fattr;
                constexpr float kNegInf = -1e9f;
                for (int i = 0; i < bh; ++i) {
                    const int len = lengths[i / heads];
                    for (int qi = 0; qi < time; ++qi) {
                        float *row =
                            out + (static_cast<size_t>(i) * time + qi) *
                                      time;
                        for (int j = len; j < time; ++j)
                            row[j] = kNegInf;
                    }
                }
                const size_t rows = static_cast<size_t>(bh) * time;
                for (size_t r = 0; r < rows; ++r) {
                    float *row = out + r * time;
                    float max_val = row[0];
                    for (int j = 1; j < time; ++j)
                        max_val = std::max(max_val, row[j]);
                    float sum = 0.0f;
                    for (int j = 0; j < time; ++j) {
                        row[j] = std::exp(row[j] - max_val);
                        sum += row[j];
                    }
                    const float inv = 1.0f / sum;
                    for (int j = 0; j < time; ++j)
                        row[j] *= inv;
                }
            }
            break;
          }
          case OpKind::Bmm: {
            // ctx[i] = attn[i] x v[i] per batch-head slice.
            const int dh = lastDim(op.inputs[1]);
            const float *a_base = buffer(op.inputs[0]);
            const float *b_base = buffer(op.inputs[1]);
            const int bh = batch * heads;
            const size_t a_stride = static_cast<size_t>(time) * time;
            const size_t b_stride = static_cast<size_t>(time) * dh;
            const bool simd = tensor::gemmSimdActive();
            for (int i = 0; i < bh; ++i) {
                float *c = out + i * b_stride;
                std::fill(c, c + b_stride, 0.0f);
                const float *b = b_base + i * b_stride;
                const float *bt = nullptr;
                if (simd) {
                    tensor::gemmPackB(b, dh, time, false, scratch);
                    bt = scratch;
                }
                tensor::gemmAccPacked(a_base + i * a_stride, b, bt, c,
                                      time, dh, time, false, false);
            }
            break;
          }
          case OpKind::MeanPool: {
            const int d = lastDim(op.inputs[0]);
            const float *src_base = buffer(op.inputs[0]);
            for (int bi = 0; bi < batch; ++bi) {
                const int len = std::max(1, std::min(lengths[bi], time));
                float *dst = out + static_cast<size_t>(bi) * d;
                std::fill(dst, dst + d, 0.0f);
                for (int ti = 0; ti < len; ++ti) {
                    const float *src =
                        src_base +
                        (static_cast<size_t>(bi) * time + ti) * d;
                    for (int j = 0; j < d; ++j)
                        dst[j] += src[j];
                }
                const float inv = 1.0f / len;
                for (int j = 0; j < d; ++j)
                    dst[j] *= inv;
            }
            break;
          }
        }
    }
    return buffer(plan_.ops.back().out);
}

} // namespace sns::plan
