/**
 * @file
 * Post-training quantization over the execution-plan IR
 * (docs/quantization.md).
 *
 * Calibration is observation, not math: a Calibrator is attached to a
 * compiled fp64 plan (CompiledPlan::setCalibrationObserver) while a
 * held-out activation shard runs through it, and records the absolute
 * maximum every Gemm op's input rows reach. quantizePlan() then
 * rewrites the traced plan into mixed precision: each eligible Gemm
 * gains a QuantizedGemm side-table entry with
 *
 *   x_scale     = activation absmax / 63   (u7 range around zp 64)
 *   w_scales[j] = column-j weight absmax / 127  (symmetric s8)
 *
 * The op list itself is untouched — a quantized plan is structurally
 * identical to the canonical plan (P-ORDER still holds) and carries
 * the same model fingerprint. The terminal head Gemm is never
 * quantized (rule P-QUANT-BOUNDARY), so the AggregationHeads inputs
 * and everything after them stay full precision.
 */

#ifndef SNS_PLAN_CALIBRATE_HH
#define SNS_PLAN_CALIBRATE_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "plan/ir.hh"
#include "tensor/autograd.hh"

namespace sns::plan {

/**
 * Absmax observer for Gemm inputs, keyed by op index. Thread-safe:
 * calibration batches may run inside sns::par regions, so observe()
 * takes a lock (calibration is offline — throughput is irrelevant).
 */
class Calibrator
{
  public:
    /** Fold `count` activation values of op `op_index` into the
     * running absolute maximum. */
    void observe(uint32_t op_index, const float *data, size_t count);

    /** True once op `op_index` has been observed at least once. */
    bool has(uint32_t op_index) const;

    /** The recorded absolute maximum (0 when never observed). */
    float absmax(uint32_t op_index) const;

    /** Number of distinct ops observed. */
    size_t observed() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint32_t, float> absmax_;
};

/**
 * Rewrite a traced fp64 plan into mixed precision: every Gemm except
 * the terminal head projection gains per-output-channel int8 scales
 * calibrated from `cal` (which must have observed each of them — run
 * the calibration shard first) and the weight values in `params`
 * (the model's parameters() in canonical flat order, as passed to
 * compilePlan). The returned plan fails verify::checkPlan's P-QUANT
 * pass if and only if the input plan was already malformed.
 */
Plan quantizePlan(const Plan &plan, const Calibrator &cal,
                  const std::vector<tensor::Variable> &params);

} // namespace sns::plan

#endif // SNS_PLAN_CALIBRATE_HH
