/**
 * @file
 * The execution-plan IR for the Circuitformer inference hot path.
 *
 * A Plan is the module walk of Circuitformer::forwardBatch traced once
 * into a flat, topologically ordered op list in SSA form: op i writes
 * exactly one fresh buffer, names its inputs by buffer id, and names
 * its parameters by index into the model's canonical parameters()
 * order. Epilogues (bias add, bias+GELU, bias+ReLU, the attention
 * scale+mask+softmax tail) are explicit slots on the producing op, so
 * the static analyzer (src/verify/plan_check.hh) can prove that fusing
 * them is bitwise-legal — they are per-element / per-row independent —
 * while every true reduction (LayerNorm, softmax, mean-pool, the GEMM
 * p loop) keeps the module walk's exact order.
 *
 * Shapes are symbolic in the batch (B), padded time (T), and B*heads
 * extents and static everywhere else, so one plan covers every batch
 * the runtime admits (B <= config.batch_max, T <= config.max_positions)
 * and the analyzer can size a worst-case arena offline.
 *
 * buildCanonicalPlan() is the single source of truth for the walk: the
 * tracer emits it, and the determinism pass rejects any deserialized
 * plan that differs structurally from it (rule P-ORDER). docs/plan.md
 * documents the IR, the passes, and the .snsp container.
 */

#ifndef SNS_PLAN_IR_HH
#define SNS_PLAN_IR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sns::plan {

/** The op vocabulary of the traced walk (execution semantics are the
 * exact forward loops of tensor/autograd.cc; see docs/plan.md). */
enum class OpKind : uint8_t
{
    TokenEmbed,  ///< token-id embedding lookup -> [B, T, D]
    PosEmbed,    ///< position embedding lookup -> [B, T, D]
    Add,         ///< elementwise residual add
    LayerNorm,   ///< per-row layer normalization (fattr = eps)
    Gemm,        ///< rows(x) * W against a pre-packed weight panel
    SplitHeads,  ///< [B, T, D] -> [B*H, T, D/H] (iattr = heads)
    MergeHeads,  ///< [B*H, T, dh] -> [B, T, dh*H] (iattr = heads)
    BmmTransB,   ///< batched Q * K^T (attention scores)
    Bmm,         ///< batched attn * V
    MeanPool,    ///< masked mean over valid time steps -> [B, D]
};

/** Fused epilogue slot applied to the producing op's output. */
enum class Epilogue : uint8_t
{
    None,
    Bias,      ///< += bias row-broadcast
    BiasGelu,  ///< bias, then tanh-approximation GELU
    BiasRelu,  ///< bias, then ReLU
    /** Attention tail on BmmTransB scores: scale by fattr, overwrite
     * masked key columns with -1e9, then per-row softmax — in that
     * order, exactly like the module walk. */
    ScaleMaskSoftmax,
};

/** What a referenced parameter tensor is used as. */
enum class WeightRole : uint8_t
{
    Matrix,  ///< [rows, cols] GEMM operand, pre-packed at compile time
    Bias,    ///< [rows] epilogue bias vector
    Gamma,   ///< [rows] LayerNorm scale
    Beta,    ///< [rows] LayerNorm shift
    Table,   ///< [rows, cols] embedding table
};

/** One symbolic shape extent. */
enum class DimKind : uint8_t
{
    Static,      ///< fixed extent (value)
    Batch,       ///< the runtime batch size B
    Time,        ///< the padded sequence length T
    BatchHeads,  ///< B * config.heads
};

struct Dim
{
    DimKind kind = DimKind::Static;
    int32_t value = 0;  ///< extent for Static dims; 0 otherwise

    bool operator==(const Dim &) const = default;
};

/** A 1-, 2-, or 3-dimensional symbolic buffer shape. */
struct Shape
{
    uint8_t ndim = 0;
    std::array<Dim, 3> dims{};

    bool operator==(const Shape &) const = default;
};

/** @name Dim/Shape constructors
 * @{
 */
inline Dim staticDim(int32_t value) { return {DimKind::Static, value}; }
inline Dim batchDim() { return {DimKind::Batch, 0}; }
inline Dim timeDim() { return {DimKind::Time, 0}; }
inline Dim batchHeadsDim() { return {DimKind::BatchHeads, 0}; }

Shape makeShape(std::initializer_list<Dim> dims);
/** @} */

/** Reference to one model parameter in parameters() order. */
struct WeightRef
{
    uint32_t param_index = 0;  ///< index into the canonical flat order
    WeightRole role = WeightRole::Matrix;
    int32_t rows = 0;
    int32_t cols = 0;  ///< 0 for 1-D parameters (Bias/Gamma/Beta)

    bool operator==(const WeightRef &) const = default;
};

/** One traced op: kind, fused epilogue, operands, and attributes. */
struct Op
{
    OpKind kind = OpKind::Add;
    Epilogue epilogue = Epilogue::None;
    std::vector<uint32_t> inputs;   ///< buffer ids read
    std::vector<uint32_t> weights;  ///< indices into Plan::weights
    uint32_t out = 0;               ///< buffer id written (SSA: one def)
    float fattr = 0.0f;  ///< scale (ScaleMaskSoftmax) or eps (LayerNorm)
    int32_t iattr = 0;   ///< heads for Split/Merge/attention ops

    bool operator==(const Op &) const = default;
};

/** The architecture a plan was traced from, plus the admission bound
 * batch_max that sizes the worst-case arena. */
struct PlanConfig
{
    int32_t vocab = 0;
    int32_t max_positions = 0;
    int32_t d_model = 0;
    int32_t heads = 0;
    int32_t layers = 0;
    int32_t d_ff = 0;
    int32_t head_hidden = 0;
    int32_t batch_max = 0;

    bool operator==(const PlanConfig &) const = default;
};

/**
 * Per-op int8 quantization record (docs/quantization.md). The op at
 * `op_index` must be a Gemm; at runtime its input rows are quantized
 * to u7 around zero-point 64 with `x_scale`, its weight matrix to
 * per-output-channel symmetric s8 with `w_scales[j]` (one scale per
 * output column), and the int32 accumulator is rescaled back to fp32
 * inside the op's existing Bias/BiasGelu/BiasRelu epilogue. The
 * P-QUANT-* rule family (verify::checkPlan pass 5) proves the scale
 * shapes, epilogue legality, and the fp64 AggregationHeads boundary.
 */
struct QuantizedGemm
{
    uint32_t op_index = 0;        ///< index into Plan::ops
    float x_scale = 0.0f;         ///< activation scale (absmax / 63)
    std::vector<float> w_scales;  ///< per-column scales (absmax / 127)

    bool operator==(const QuantizedGemm &) const = default;
};

/** A complete traced execution plan. */
struct Plan
{
    PlanConfig config;
    /** Circuitformer::parametersFingerprint() of the traced model; a
     * plan only binds to a model with a matching fingerprint
     * (rule P-MODEL). */
    uint64_t fingerprint = 0;
    std::vector<Shape> buffers;     ///< shape per buffer id
    std::vector<WeightRef> weights; ///< parameter reference table
    std::vector<Op> ops;            ///< topological execution order
    /** Int8 side table, ascending by op_index; empty for a pure fp64
     * plan. The ops themselves are untouched by quantization, so a
     * quantized plan still matches the canonical structure (P-ORDER). */
    std::vector<QuantizedGemm> quant;

    bool operator==(const Plan &) const = default;
};

/** Ops in a canonical plan: 4 prologue + 16 per layer + 3 tail. */
inline size_t
canonicalOpCount(const PlanConfig &config)
{
    return 4 + 16 * static_cast<size_t>(config.layers) + 3;
}

/** Parameter tensors the canonical walk references: 4 embeddings/norm,
 * 16 per layer, 4 in the regression head. */
inline size_t
canonicalParamCount(const PlanConfig &config)
{
    return 8 + 16 * static_cast<size_t>(config.layers);
}

/**
 * Trace the canonical Circuitformer module walk for one architecture:
 * token+position embeddings, input LayerNorm, `layers` post-norm
 * encoder layers (QKV projections, scaled masked softmax attention,
 * GELU feed-forward, residuals), masked mean pooling, and the two-layer
 * regression head. This is the single structural source of truth the
 * determinism pass compares deserialized plans against.
 */
Plan buildCanonicalPlan(const PlanConfig &config, uint64_t fingerprint);

/** Concrete extent of one symbolic dim at runtime sizes (batch, time). */
int64_t resolveDim(const Dim &dim, int batch, int time, int heads);

/** Concrete element count of a shape at runtime sizes. */
size_t resolveNumel(const Shape &shape, int batch, int time, int heads);

/** @name Printable enum names (diagnostics and docs)
 * @{
 */
const char *opKindName(OpKind kind);
const char *epilogueName(Epilogue epilogue);
const char *weightRoleName(WeightRole role);
const char *dimKindName(DimKind kind);
std::string toString(const Shape &shape);
/** @} */

} // namespace sns::plan

#endif // SNS_PLAN_IR_HH
