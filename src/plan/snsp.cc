#include "plan/snsp.hh"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sns::plan {

namespace {

using verify::Report;
using verify::atByte;
namespace rules = verify::rules;

/** Element-count sanity cap: a valid plan has a few dozen records per
 * table; anything past this is garbage input, not a big plan. */
constexpr uint32_t kMaxTableEntries = 1u << 20;

void
appendRaw(std::vector<unsigned char> &out, const void *data, size_t bytes)
{
    const size_t at = out.size();
    out.resize(at + bytes);
    std::memcpy(out.data() + at, data, bytes);
}

template <typename T>
void
append(std::vector<unsigned char> &out, T value)
{
    appendRaw(out, &value, sizeof(T));
}

/**
 * Offset-tracked payload reader. `base` is the file offset of payload
 * byte 0, so every diagnostic points at an absolute file position.
 */
struct Cursor
{
    const unsigned char *data;
    size_t size;
    size_t pos = 0;
    size_t base;
    const std::string &where;
    Report &report;
    bool failed = false;

    size_t fileOffset() const { return base + pos; }

    /** Read one fixed-width value; reports P-TRUNCATED and latches
     * `failed` when the payload ends early. */
    template <typename T>
    bool
    read(T &out_value, const char *field)
    {
        if (failed)
            return false;
        if (pos + sizeof(T) > size) {
            report.error(rules::kPlanTruncated,
                         atByte(where, fileOffset(), field),
                         "payload ends early while decoding this field",
                         "re-trace the plan with `sns-cli plan`");
            failed = true;
            return false;
        }
        std::memcpy(&out_value, data + pos, sizeof(T));
        pos += sizeof(T);
        return true;
    }

    /** Read a table length and range-check it. */
    bool
    readCount(uint32_t &out_value, const char *field)
    {
        const size_t at = fileOffset();
        if (!read(out_value, field))
            return false;
        if (out_value > kMaxTableEntries) {
            report.error(rules::kPlanTruncated, atByte(where, at, field),
                         "implausible table length " +
                             std::to_string(out_value),
                         "the payload is not a serialized plan");
            failed = true;
            return false;
        }
        return true;
    }

    /** Read + range-check an enum byte. */
    template <typename E>
    bool
    readEnum(E &out_value, uint8_t limit, const char *field)
    {
        const size_t at = fileOffset();
        uint8_t raw = 0;
        if (!read(raw, field))
            return false;
        if (raw >= limit) {
            report.error(rules::kPlanTruncated, atByte(where, at, field),
                         "invalid enum value " + std::to_string(raw));
            failed = true;
            return false;
        }
        out_value = static_cast<E>(raw);
        return true;
    }
};

} // namespace

uint64_t
fnv1a(const void *data, size_t bytes)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::vector<unsigned char>
serializePlanPayload(const Plan &plan)
{
    std::vector<unsigned char> out;
    append(out, plan.fingerprint);
    const int32_t config[8] = {
        plan.config.vocab,   plan.config.max_positions,
        plan.config.d_model, plan.config.heads,
        plan.config.layers,  plan.config.d_ff,
        plan.config.head_hidden, plan.config.batch_max,
    };
    appendRaw(out, config, sizeof(config));

    append(out, static_cast<uint32_t>(plan.buffers.size()));
    for (const Shape &shape : plan.buffers) {
        append(out, shape.ndim);
        for (uint8_t i = 0; i < shape.ndim; ++i) {
            append(out, static_cast<uint8_t>(shape.dims[i].kind));
            append(out, shape.dims[i].value);
        }
    }

    append(out, static_cast<uint32_t>(plan.weights.size()));
    for (const WeightRef &weight : plan.weights) {
        append(out, weight.param_index);
        append(out, static_cast<uint8_t>(weight.role));
        append(out, weight.rows);
        append(out, weight.cols);
    }

    append(out, static_cast<uint32_t>(plan.ops.size()));
    for (const Op &op : plan.ops) {
        append(out, static_cast<uint8_t>(op.kind));
        append(out, static_cast<uint8_t>(op.epilogue));
        append(out, static_cast<uint8_t>(op.inputs.size()));
        append(out, static_cast<uint8_t>(op.weights.size()));
        for (uint32_t input : op.inputs)
            append(out, input);
        for (uint32_t weight : op.weights)
            append(out, weight);
        append(out, op.out);
        append(out, op.fattr);
        append(out, op.iattr);
    }

    // Version-2 quant side table; nquant = 0 for pure fp64 plans.
    append(out, static_cast<uint32_t>(plan.quant.size()));
    for (const QuantizedGemm &entry : plan.quant) {
        append(out, entry.op_index);
        append(out, entry.x_scale);
        append(out, static_cast<uint32_t>(entry.w_scales.size()));
        for (float scale : entry.w_scales)
            append(out, scale);
    }
    return out;
}

std::vector<unsigned char>
serializePlan(const Plan &plan)
{
    const std::vector<unsigned char> payload = serializePlanPayload(plan);
    std::vector<unsigned char> out;
    out.reserve(kSnspHeaderBytes + payload.size());
    appendRaw(out, kSnspMagic, sizeof(kSnspMagic));
    append(out, kSnspVersion);
    append(out, static_cast<uint64_t>(payload.size()));
    append(out, fnv1a(payload.data(), payload.size()));
    appendRaw(out, payload.data(), payload.size());
    return out;
}

void
writePlanFile(const Plan &plan, const std::string &path)
{
    const std::vector<unsigned char> bytes = serializePlan(plan);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot open plan file for writing: " +
                                 path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        throw std::runtime_error("short write to plan file: " + path);
}

bool
parsePlanPayload(const unsigned char *data, size_t size,
                 uint32_t version, Plan &out, verify::Report &report,
                 const std::string &where)
{
    Cursor cur{data, size, 0, kSnspHeaderBytes, where, report};

    cur.read(out.fingerprint, "model fingerprint");
    int32_t *config[8] = {
        &out.config.vocab,   &out.config.max_positions,
        &out.config.d_model, &out.config.heads,
        &out.config.layers,  &out.config.d_ff,
        &out.config.head_hidden, &out.config.batch_max,
    };
    for (int32_t *field : config)
        cur.read(*field, "plan config");

    uint32_t nbuffers = 0;
    cur.readCount(nbuffers, "buffer table length");
    for (uint32_t i = 0; !cur.failed && i < nbuffers; ++i) {
        Shape shape;
        const size_t at = cur.fileOffset();
        if (!cur.read(shape.ndim, "buffer ndim"))
            break;
        if (shape.ndim < 1 || shape.ndim > 3) {
            report.error(rules::kPlanTruncated,
                         atByte(where, at,
                                "buffer " + std::to_string(i) + " ndim"),
                         "buffer rank " + std::to_string(shape.ndim) +
                             " out of range (1..3)");
            cur.failed = true;
            break;
        }
        for (uint8_t j = 0; j < shape.ndim; ++j) {
            cur.readEnum(shape.dims[j].kind, 4, "buffer dim kind");
            cur.read(shape.dims[j].value, "buffer dim extent");
        }
        out.buffers.push_back(shape);
    }

    uint32_t nweights = 0;
    cur.readCount(nweights, "weight table length");
    for (uint32_t i = 0; !cur.failed && i < nweights; ++i) {
        WeightRef weight;
        cur.read(weight.param_index, "weight param index");
        cur.readEnum(weight.role, 5, "weight role");
        cur.read(weight.rows, "weight rows");
        cur.read(weight.cols, "weight cols");
        out.weights.push_back(weight);
    }

    uint32_t nops = 0;
    cur.readCount(nops, "op table length");
    for (uint32_t i = 0; !cur.failed && i < nops; ++i) {
        Op op;
        const std::string field = "op " + std::to_string(i);
        cur.readEnum(op.kind, 10, "op kind");
        cur.readEnum(op.epilogue, 5, "op epilogue");
        uint8_t n_in = 0;
        uint8_t n_w = 0;
        cur.read(n_in, field.c_str());
        cur.read(n_w, field.c_str());
        op.inputs.resize(n_in);
        for (uint8_t j = 0; j < n_in; ++j)
            cur.read(op.inputs[j], "op input id");
        op.weights.resize(n_w);
        for (uint8_t j = 0; j < n_w; ++j)
            cur.read(op.weights[j], "op weight index");
        cur.read(op.out, "op output id");
        cur.read(op.fattr, "op float attribute");
        cur.read(op.iattr, "op int attribute");
        if (!cur.failed)
            out.ops.push_back(std::move(op));
    }

    // The quant side table exists from container version 2; version-1
    // files end at the op table and parse with an empty side table.
    if (version >= 2) {
        uint32_t nquant = 0;
        cur.readCount(nquant, "quant table length");
        for (uint32_t i = 0; !cur.failed && i < nquant; ++i) {
            QuantizedGemm entry;
            cur.read(entry.op_index, "quant op index");
            cur.read(entry.x_scale, "quant activation scale");
            uint32_t nscales = 0;
            cur.readCount(nscales, "quant scale count");
            entry.w_scales.resize(nscales);
            for (uint32_t j = 0; !cur.failed && j < nscales; ++j)
                cur.read(entry.w_scales[j], "quant weight scale");
            if (!cur.failed)
                out.quant.push_back(std::move(entry));
        }
    }

    if (!cur.failed && cur.pos != size) {
        report.warning(rules::kPlanTruncated,
                       atByte(where, cur.fileOffset(), "payload tail"),
                       std::to_string(size - cur.pos) +
                           " unparsed byte(s) after the op table");
    }
    return !cur.failed;
}

bool
readPlanFile(const std::string &path, Plan &out, verify::Report &report)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error(rules::kPlanOpen, path, "cannot open plan file");
        return false;
    }
    std::vector<unsigned char> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    if (bytes.size() < kSnspHeaderBytes) {
        report.error(rules::kPlanTruncated,
                     atByte(path, bytes.size(), "header"),
                     "file shorter than the 24-byte SNSP header",
                     "re-trace the plan with `sns-cli plan`");
        return false;
    }
    if (std::memcmp(bytes.data(), kSnspMagic, sizeof(kSnspMagic)) != 0) {
        report.error(rules::kPlanMagic, atByte(path, 0, "magic"),
                     "bad container magic (expected \"SNSP\")",
                     "this is not a serialized execution plan");
        return false;
    }
    uint32_t version = 0;
    uint64_t length = 0;
    uint64_t expected_hash = 0;
    std::memcpy(&version, bytes.data() + 4, sizeof(version));
    std::memcpy(&length, bytes.data() + 8, sizeof(length));
    std::memcpy(&expected_hash, bytes.data() + 16, sizeof(expected_hash));
    if (version < kSnspMinVersion || version > kSnspVersion) {
        report.error(rules::kPlanVersion, atByte(path, 4, "version"),
                     "unsupported plan version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kSnspMinVersion) + ".." +
                         std::to_string(kSnspVersion) + ")",
                     "re-trace the plan with this build's `sns-cli plan`");
        return false;
    }
    const size_t available = bytes.size() - kSnspHeaderBytes;
    if (length > available) {
        report.error(rules::kPlanTruncated,
                     atByte(path, 8, "payload length"),
                     "header declares " + std::to_string(length) +
                         " payload bytes but only " +
                         std::to_string(available) + " follow",
                     "the plan write was interrupted; re-trace it");
        return false;
    }
    if (length < available) {
        report.warning(rules::kPlanTruncated,
                       atByte(path, kSnspHeaderBytes + length,
                              "payload tail"),
                       std::to_string(available - length) +
                           " trailing byte(s) after the declared payload");
    }
    const unsigned char *payload = bytes.data() + kSnspHeaderBytes;
    const uint64_t hash = fnv1a(payload, length);
    if (hash != expected_hash) {
        report.error(rules::kPlanHash,
                     atByte(path, 16, "payload hash"),
                     "payload hash mismatch (plan file is corrupt)",
                     "re-trace the plan with `sns-cli plan`");
        return false;
    }
    return parsePlanPayload(payload, length, version, out, report, path);
}

} // namespace sns::plan
