/**
 * @file
 * sns::par — the deterministic parallel runtime.
 *
 * A fixed-size thread pool with *static chunking* and no work
 * stealing: `parallelFor` splits an index range into contiguous
 * chunks whose boundaries depend only on the range, the grain, and the
 * pool width — never on execution timing. Which worker executes which
 * chunk is scheduling noise; the contract is that every chunk writes
 * disjoint state (or reduces through `parallelForChunks`, whose chunk
 * count the caller fixes), so results are bitwise identical at any
 * thread count.
 *
 * Determinism contract:
 *   - chunk boundaries are pure functions of (n, grain, threads);
 *   - a loop body must only write state indexed by its own range
 *     (per-index outputs, per-chunk partials);
 *   - reductions combine per-chunk partials serially, in chunk order,
 *     with a caller-fixed chunk count (`parallelForChunks`);
 *   - stochastic bodies draw from RNG streams pre-split per index or
 *     per chunk (`Rng::fork`, seed-by-index), never from one shared
 *     generator.
 *
 * Nested parallelism is rejected: a `parallelFor` issued from inside a
 * worker runs its body serially inline on the calling worker. This
 * keeps composition safe (a parallel predictor may call a parallel
 * GEMM) without oversubscription or deadlock.
 *
 * Concurrent external submitters are safe: while one thread's region
 * is in flight, a region submitted by another thread runs inline
 * serially on its submitter. Every task still executes, chunk
 * boundaries never move, so results stay bitwise identical — long-
 * lived servers may therefore predict from several threads at once
 * without coordinating around the pool.
 *
 * The process-wide pool width comes from, in priority order:
 * `setThreads()` (e.g. a `--threads=N` CLI flag), the `SNS_THREADS`
 * environment variable, else 1 (serial). A width of 0 requests the
 * hardware concurrency.
 */

#ifndef SNS_PAR_THREAD_POOL_HH
#define SNS_PAR_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sns::par {

/** A fixed-width, statically-chunked, work-stealing-free thread pool. */
class ThreadPool
{
  public:
    /**
     * Spawn a pool of the given width. The calling thread participates
     * in every region, so `threads` counts it: a width of N spawns
     * N - 1 workers, and a width <= 1 spawns none (purely serial).
     * A width of 0 requests std::thread::hardware_concurrency().
     */
    explicit ThreadPool(int threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Pool width (participating caller included). */
    int threads() const { return threads_; }

    /**
     * Execute task(0) .. task(num_tasks - 1), distributed over the
     * workers plus the calling thread; blocks until every task ran.
     * Tasks are claimed in index order from a shared counter (static
     * task list, no stealing). If tasks throw, every task still runs,
     * and the exception of the lowest-index failing task is rethrown.
     * Issued from inside a pool region — or while another thread's
     * region is in flight — runs serially inline on the caller.
     */
    void run(size_t num_tasks, const std::function<void(size_t)> &task);

    /**
     * Chunked parallel loop over [0, n): the range splits into at most
     * threads() contiguous chunks of at least `grain` indices, and
     * body(begin, end) runs once per chunk. The body must only write
     * state indexed by [begin, end).
     */
    void parallelFor(size_t n, size_t grain,
                     const std::function<void(size_t, size_t)> &body);

    /**
     * Fixed-chunk-count parallel loop for deterministic reductions:
     * [0, n) splits into exactly min(num_chunks, n) contiguous chunks
     * regardless of pool width, and body(chunk, begin, end) runs once
     * per chunk. Combine the per-chunk partials serially in chunk
     * order afterwards and the reduction is bitwise identical at any
     * thread count.
     */
    void parallelForChunks(
        size_t n, size_t num_chunks,
        const std::function<void(size_t, size_t, size_t)> &body);

  private:
    void workerLoop();
    void runTasks();
    void runSerial(size_t num_tasks,
                   const std::function<void(size_t)> &task);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    /** Held by the external submitter for the whole region; a busy
     * try_lock sends the second submitter down the inline path. */
    std::mutex region_mutex_;

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    bool stop_ = false;
    uint64_t epoch_ = 0;    ///< bumped once per region
    size_t active_ = 0;     ///< workers still inside the current region

    const std::function<void(size_t)> *task_ = nullptr;
    size_t num_tasks_ = 0;
    std::atomic<size_t> next_task_{0};
    std::vector<std::exception_ptr> errors_;
};

/**
 * The configured process-wide pool width: setThreads() override if
 * set, else SNS_THREADS, else 1. 0 in either source resolves to the
 * hardware concurrency.
 */
int configuredThreads();

/**
 * Override the process-wide pool width (e.g. from --threads=N). Takes
 * effect immediately: if the global pool already exists at a different
 * width it is torn down and respawned. Call from the main thread at
 * configuration points only, never from inside a parallel region.
 */
void setThreads(int threads);

/**
 * The raw setThreads() override: -1 when unset (SNS_THREADS / default
 * applies), else the last value passed to setThreads(). ScopedThreads
 * uses it to restore the exact prior state, including "unset".
 */
int threadOverride();

/**
 * RAII width override: `ScopedThreads guard(n)` behaves like
 * setThreads(n) (n <= 0 is a no-op) and the destructor restores the
 * previous configuration exactly — a prior setThreads() value is
 * re-applied, and an unset override stays unset, so SNS_THREADS takes
 * over again. Use it wherever a call-scoped width is wanted (e.g.
 * PredictOptions::threads) instead of leaking a process-wide
 * setThreads() past the call. Construct and destroy on the main
 * thread, outside parallel regions, like setThreads() itself.
 */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int threads);
    ~ScopedThreads();

    ScopedThreads(const ScopedThreads &) = delete;
    ScopedThreads &operator=(const ScopedThreads &) = delete;

  private:
    int previous_override_ = -1;
    bool active_ = false;
};

/** The lazily-created process-wide pool at the configured width. */
ThreadPool &globalPool();

/** True on a thread currently executing inside a pool region. */
bool inParallelRegion();

/** parallelFor on the global pool. */
void parallelFor(size_t n, const std::function<void(size_t, size_t)> &body,
                 size_t grain = 1);

/** parallelForChunks on the global pool. */
void parallelForChunks(
    size_t n, size_t num_chunks,
    const std::function<void(size_t, size_t, size_t)> &body);

} // namespace sns::par

#endif // SNS_PAR_THREAD_POOL_HH
