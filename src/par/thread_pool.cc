#include "par/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "util/logging.hh"

namespace sns::par {

namespace {

/** Set while the current thread executes inside a pool region. */
thread_local bool t_in_region = false;

int
resolveWidth(int threads)
{
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::max(1, threads);
}

} // namespace

ThreadPool::ThreadPool(int threads) : threads_(resolveWidth(threads))
{
    workers_.reserve(static_cast<size_t>(threads_) - 1);
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::runSerial(size_t num_tasks,
                      const std::function<void(size_t)> &task)
{
    const bool was_in_region = t_in_region;
    t_in_region = true;
    std::exception_ptr first_error;
    for (size_t i = 0; i < num_tasks; ++i) {
        try {
            task(i);
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    t_in_region = was_in_region;
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ThreadPool::runTasks()
{
    t_in_region = true;
    for (;;) {
        const size_t index =
            next_task_.fetch_add(1, std::memory_order_relaxed);
        if (index >= num_tasks_)
            break;
        try {
            (*task_)(index);
        } catch (...) {
            errors_[index] = std::current_exception();
        }
    }
    t_in_region = false;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_epoch = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_)
                return;
            seen_epoch = epoch_;
        }
        runTasks();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0)
                done_cv_.notify_one();
        }
    }
}

void
ThreadPool::run(size_t num_tasks, const std::function<void(size_t)> &task)
{
    if (num_tasks == 0)
        return;

    // Nested region, single task, or serial pool: run inline. Nested
    // parallelism is rejected by design — see the header contract.
    if (t_in_region || workers_.empty() || num_tasks == 1) {
        runSerial(num_tasks, task);
        return;
    }

    // One external region at a time: the pool's region state (task_,
    // active_, errors_) belongs to a single submitter. A second thread
    // submitting while a region is in flight runs its own region
    // inline serially instead of corrupting that state or blocking —
    // results are bitwise identical either way, because every task of
    // the region executes and chunk boundaries were fixed before
    // submission. This is what lets a serving process predict from
    // several threads at once (docs/serving.md).
    std::unique_lock<std::mutex> region(region_mutex_, std::try_to_lock);
    if (!region.owns_lock()) {
        runSerial(num_tasks, task);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        num_tasks_ = num_tasks;
        next_task_.store(0, std::memory_order_relaxed);
        errors_.assign(num_tasks, nullptr);
        active_ = workers_.size();
        ++epoch_;
    }
    work_cv_.notify_all();

    // The caller participates, claiming chunks from the same counter.
    runTasks();

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    task_ = nullptr;

    // Deterministic rethrow: the lowest-index failing task wins,
    // regardless of which worker ran it or when it failed.
    for (auto &error : errors_) {
        if (error)
            std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(size_t n, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    grain = std::max<size_t>(1, grain);
    const size_t max_chunks = (n + grain - 1) / grain;
    const size_t chunks =
        std::min<size_t>(static_cast<size_t>(threads_), max_chunks);
    const size_t chunk_size = (n + chunks - 1) / chunks;
    run(chunks, [&](size_t chunk) {
        const size_t begin = chunk * chunk_size;
        const size_t end = std::min(n, begin + chunk_size);
        if (begin < end)
            body(begin, end);
    });
}

void
ThreadPool::parallelForChunks(
    size_t n, size_t num_chunks,
    const std::function<void(size_t, size_t, size_t)> &body)
{
    if (n == 0)
        return;
    SNS_ASSERT(num_chunks > 0, "parallelForChunks needs chunks > 0");
    // Chunk boundaries are a pure function of (n, num_chunks): the
    // pool width never shifts them, so serial combination of the
    // per-chunk partials is reproducible at any thread count.
    const size_t chunks = std::min(n, num_chunks);
    const size_t chunk_size = (n + chunks - 1) / chunks;
    run(chunks, [&](size_t chunk) {
        const size_t begin = chunk * chunk_size;
        const size_t end = std::min(n, begin + chunk_size);
        if (begin < end)
            body(chunk, begin, end);
    });
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_thread_override = -1; // -1: unset; >= 0: setThreads() value

int
envThreads()
{
    const char *env = std::getenv("SNS_THREADS");
    if (env == nullptr || *env == '\0')
        return 1;
    return resolveWidth(std::atoi(env));
}

} // namespace

int
configuredThreads()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_thread_override >= 0)
        return resolveWidth(g_thread_override);
    return envThreads();
}

namespace {

/** Set the override to a raw value (-1 = unset) and retire a pool of
 * the wrong width. Shared by setThreads() and ScopedThreads. */
void
applyOverride(int override_value)
{
    SNS_ASSERT(!t_in_region,
               "setThreads() inside a parallel region");
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_thread_override = override_value;
    const int width = override_value >= 0 ? resolveWidth(override_value)
                                          : envThreads();
    if (g_pool && g_pool->threads() != width)
        g_pool.reset();
}

} // namespace

void
setThreads(int threads)
{
    applyOverride(std::max(0, threads));
}

int
threadOverride()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    return g_thread_override;
}

ScopedThreads::ScopedThreads(int threads)
{
    if (threads <= 0)
        return;
    previous_override_ = threadOverride();
    active_ = true;
    setThreads(threads);
}

ScopedThreads::~ScopedThreads()
{
    if (active_)
        applyOverride(previous_override_);
}

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool) {
        const int width = g_thread_override >= 0
                              ? resolveWidth(g_thread_override)
                              : envThreads();
        g_pool = std::make_unique<ThreadPool>(width);
    }
    return *g_pool;
}

bool
inParallelRegion()
{
    return t_in_region;
}

void
parallelFor(size_t n, const std::function<void(size_t, size_t)> &body,
            size_t grain)
{
    globalPool().parallelFor(n, grain, body);
}

void
parallelForChunks(size_t n, size_t num_chunks,
                  const std::function<void(size_t, size_t, size_t)> &body)
{
    globalPool().parallelForChunks(n, num_chunks, body);
}

} // namespace sns::par
