/**
 * @file
 * Processor-core design generators: three in-order RISC-style cores of
 * increasing complexity (Sodor-, Rocket-, and Ariane-like), standing in
 * for the paper's Table-3 "Processor Core" row.
 *
 * The datapaths are structurally faithful at the functional-unit level:
 * program-counter arithmetic, register files with mux-tree read ports,
 * full ALUs, branch resolution, bypass networks, multiply/divide units,
 * and (for the Ariane-like core) a scoreboard of tag comparators.
 */

#include "designs/designs.hh"

#include "netlist/circuit_builder.hh"
#include "util/logging.hh"

namespace sns::designs {

using graphir::NodeId;
using graphir::NodeType;
using netlist::CircuitBuilder;

namespace {

/**
 * A register file: `regs` registers of `width` bits plus `read_ports`
 * mux-tree read ports selected by fresh select inputs.
 * @return one read-data vertex per port
 */
std::vector<NodeId>
regFile(CircuitBuilder &cb, int regs, int width, int read_ports)
{
    std::vector<NodeId> storage;
    storage.reserve(regs);
    for (int i = 0; i < regs; ++i)
        storage.push_back(cb.dff(width));

    std::vector<NodeId> ports;
    for (int p = 0; p < read_ports; ++p) {
        const NodeId sel = cb.input(8);
        ports.push_back(cb.muxTree(width, sel, storage));
    }
    // A write port: CAM-style address decode (per-register tag compare)
    // drives every register through a hold-or-load mux.
    const NodeId wdata = cb.input(width);
    const NodeId wsel = cb.input(8);
    for (NodeId reg : storage) {
        const NodeId tag = cb.dff(6); // 6-bit CAM tags
        const NodeId hit = cb.eq(8, wsel, tag);
        const NodeId next = cb.mux(width, hit, wdata, reg);
        cb.connect(next, reg);
    }
    return ports;
}

/** A single-cycle integer ALU; returns the result mux. */
NodeId
alu(CircuitBuilder &cb, int width, NodeId a, NodeId b, NodeId op_sel)
{
    const NodeId sum = cb.add(width, a, b);
    const NodeId diff = cb.add(width, a, cb.bnot(width, b));
    const NodeId land = cb.band(width, a, b);
    const NodeId lor = cb.bor(width, a, b);
    const NodeId lxor = cb.bxor(width, a, b);
    const NodeId shift = cb.shifter(width, a, b);
    const NodeId slt = cb.lgt(width, a, b);
    const NodeId seq = cb.eq(width, a, b);
    return cb.muxTree(width, op_sel,
                      {sum, diff, land, lor, lxor, shift, slt, seq});
}

/** Next-PC logic: sequential PC, branch target, and a redirect mux. */
NodeId
pcLogic(CircuitBuilder &cb, int width, NodeId branch_taken,
        NodeId branch_target)
{
    const NodeId pc = cb.dff(width);
    const NodeId step = cb.input(width); // +4 constant port
    const NodeId seq_pc = cb.add(width, pc, step);
    const NodeId next = cb.mux(width, branch_taken, branch_target, seq_pc);
    cb.connect(next, pc);
    return pc;
}

} // namespace

Graph
buildSodorCore(int xlen)
{
    SNS_ASSERT(xlen == 32 || xlen == 64, "sodor xlen must be 32 or 64");
    CircuitBuilder cb("sodor_x" + std::to_string(xlen));

    // --- Fetch. ---
    const NodeId inst = cb.input(32);
    const NodeId imm = cb.shifter(xlen, inst, inst);

    // --- Decode + register read. ---
    const auto rf = regFile(cb, 16, xlen, 2);
    const NodeId rs1 = rf[0];
    const NodeId rs2 = rf[1];
    const NodeId op_sel = cb.input(8);
    const NodeId use_imm = cb.reduceOr(inst);
    const NodeId operand_b = cb.mux(xlen, use_imm, imm, rs2);

    // --- Execute. ---
    const NodeId result = alu(cb, xlen, rs1, operand_b, op_sel);
    const NodeId taken = cb.eq(xlen, rs1, rs2);
    const NodeId target = cb.add(xlen, imm, imm);
    const NodeId pc = pcLogic(cb, xlen, taken, target);

    // --- Memory + writeback (single combined stage). ---
    const NodeId mem_data = cb.input(xlen);
    const NodeId is_load = cb.reduceAnd(inst);
    const NodeId wb = cb.mux(xlen, is_load, mem_data, result);
    const NodeId wb_reg = cb.reg(wb);
    cb.output(xlen, {wb_reg});
    cb.output(xlen, {pc});
    return cb.build();
}

Graph
buildRocketCore(int xlen, int mul_width)
{
    CircuitBuilder cb("rocket_x" + std::to_string(xlen) + "_m" +
                      std::to_string(mul_width));

    // --- IF: fetch with branch redirect. ---
    const NodeId inst_raw = cb.input(32);
    const NodeId if_id = cb.reg(32, inst_raw);

    // --- ID: decode, register read, immediate generation. ---
    const auto rf = regFile(cb, 32, xlen, 2);
    const NodeId imm = cb.shifter(xlen, if_id, if_id);
    const NodeId op_sel = cb.input(8);
    std::vector<NodeId> id_ex = {cb.reg(xlen, rf[0]), cb.reg(xlen, rf[1]),
                                 cb.reg(xlen, imm), cb.reg(8, op_sel)};

    // --- EX: ALU + bypass + branch + pipelined multiplier/divider. ---
    const NodeId wb_bypass = cb.dff(xlen);
    const NodeId mem_bypass = cb.dff(xlen);
    const NodeId byp_sel = cb.input(4);
    const NodeId op_a =
        cb.muxTree(xlen, byp_sel, {id_ex[0], mem_bypass, wb_bypass});
    const NodeId op_b =
        cb.muxTree(xlen, byp_sel, {id_ex[1], id_ex[2], wb_bypass});
    const NodeId alu_out = alu(cb, xlen, op_a, op_b, id_ex[3]);

    const NodeId mul_lo = cb.mul(mul_width, op_a, op_b);
    const NodeId mul_stage = cb.reg(mul_lo);
    const NodeId div_out = cb.div(mul_width, op_a, op_b);
    const NodeId div_stage = cb.reg(div_out);

    const NodeId taken = cb.lgt(xlen, op_a, op_b);
    const NodeId target = cb.add(xlen, id_ex[2], id_ex[2]);
    pcLogic(cb, xlen, taken, target);

    const NodeId ex_mem = cb.reg(xlen, alu_out);

    // --- MEM: address generation + load alignment. ---
    const NodeId mem_rdata = cb.input(xlen);
    const NodeId aligned = cb.shifter(xlen, mem_rdata, ex_mem);
    const NodeId is_load = cb.reduceOr(if_id);
    const NodeId mem_out = cb.mux(xlen, is_load, aligned, ex_mem);
    cb.connect(mem_out, mem_bypass);
    const NodeId mem_wb = cb.reg(xlen, mem_out);

    // --- WB: select among ALU, MUL, DIV results. ---
    const NodeId wb_sel = cb.input(4);
    const NodeId wb =
        cb.muxTree(xlen, wb_sel, {mem_wb, mul_stage, div_stage});
    cb.connect(wb, wb_bypass);
    cb.output(xlen, {cb.reg(wb)});
    return cb.build();
}

Graph
buildArianeCore(int xlen, int issue_entries)
{
    CircuitBuilder cb("ariane_x" + std::to_string(xlen) + "_sb" +
                      std::to_string(issue_entries));

    // --- Frontend: fetch buffer + branch predictor-ish compare chain. ---
    const NodeId fetch = cb.input(32);
    const NodeId fq0 = cb.reg(32, fetch);
    const NodeId fq1 = cb.reg(32, fq0);
    const NodeId bht_idx = cb.band(10, fq0, fq1);
    const NodeId bht = cb.dff(10); // 1K-entry history index
    const NodeId predict = cb.lgt(10, bht, bht_idx);
    const NodeId upd = cb.add(10, bht, bht_idx);
    cb.connect(cb.mux(10, predict, upd, bht), bht);

    // --- Decode + rename-lite: two read ports, immediate. ---
    const auto rf = regFile(cb, 32, xlen, 2);
    const NodeId imm = cb.shifter(xlen, fq1, fq1);

    // --- Scoreboard: issue_entries entries with tag comparators. ---
    std::vector<NodeId> ready_bits;
    const NodeId issue_tag = cb.input(8);
    for (int e = 0; e < issue_entries; ++e) {
        const NodeId entry_tag = cb.dff(8);
        const NodeId entry_valid = cb.dff(4);
        const NodeId hit = cb.eq(8, entry_tag, issue_tag);
        const NodeId ready = cb.band(4, hit, entry_valid);
        ready_bits.push_back(ready);
        cb.connect(cb.mux(8, hit, issue_tag, entry_tag), entry_tag);
        cb.connect(cb.bnot(4, entry_valid), entry_valid);
    }
    const NodeId can_issue =
        cb.reduceOr(cb.reduceTree(NodeType::Or, 4, ready_bits));

    // --- Issue/execute: ALU + branch unit + mul + CSR. ---
    const NodeId op_sel = cb.input(8);
    const NodeId op_a = cb.mux(xlen, can_issue, rf[0], imm);
    const NodeId op_b = cb.mux(xlen, can_issue, rf[1], imm);
    const NodeId alu_out = alu(cb, xlen, op_a, op_b, op_sel);
    const NodeId mul_out = cb.reg(cb.mul(xlen, op_a, op_b));
    const NodeId csr = cb.dff(xlen);
    cb.connect(cb.add(xlen, csr, op_a), csr);

    const NodeId taken = cb.band(4, predict, can_issue);
    pcLogic(cb, xlen, taken, cb.add(xlen, imm, imm));

    // --- Commit: two-deep reorder buffer slice. ---
    const NodeId rob0 = cb.reg(xlen, alu_out);
    const NodeId rob1 = cb.reg(xlen, mul_out);
    const NodeId commit_sel = cb.input(4);
    const NodeId commit = cb.muxTree(xlen, commit_sel, {rob0, rob1, csr});
    cb.output(xlen, {cb.reg(commit)});
    return cb.build();
}

} // namespace sns::designs
