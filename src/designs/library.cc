/**
 * @file
 * The design registry: assembles the 41-design Hardware Design Dataset
 * (Table 3) from the parametric generators, with variants per base
 * family as in §4.1.
 */

#include "designs/designs.hh"

#include <set>

#include "util/logging.hh"

namespace sns::designs {

namespace {

std::vector<DesignSpec>
makePaperDataset()
{
    std::vector<DesignSpec> specs;
    auto addSpec = [&specs](std::string base, std::string category,
                            std::function<Graph()> build) {
        DesignSpec spec;
        spec.build = std::move(build);
        spec.name = spec.build().name();
        spec.base = std::move(base);
        spec.category = std::move(category);
        specs.push_back(std::move(spec));
    };

    // --- Processor cores (5). ---
    addSpec("sodor", "Processor Core", [] { return buildSodorCore(32); });
    addSpec("rocket", "Processor Core",
            [] { return buildRocketCore(32, 32); });
    addSpec("rocket", "Processor Core",
            [] { return buildRocketCore(64, 64); });
    addSpec("ariane", "Processor Core",
            [] { return buildArianeCore(64, 8); });
    addSpec("ariane", "Processor Core",
            [] { return buildArianeCore(64, 16); });

    // --- Peripheral components (3). ---
    addSpec("gpio", "Peripheral Component", [] { return buildGpio(8); });
    addSpec("gpio", "Peripheral Component", [] { return buildGpio(32); });
    addSpec("icenet", "Peripheral Component",
            [] { return buildIceNic(64, 16); });

    // --- Machine learning accelerators (5). ---
    addSpec("systolic", "Machine Learning Acc.",
            [] { return buildSystolicArray(4, 4, 8); });
    addSpec("systolic", "Machine Learning Acc.",
            [] { return buildSystolicArray(8, 8, 16); });
    addSpec("systolic", "Machine Learning Acc.",
            [] { return buildSystolicArray(16, 16, 16); });
    addSpec("nvdla_conv", "Machine Learning Acc.",
            [] { return buildConvEngine(32, 8, 16); });
    addSpec("nvdla_conv", "Machine Learning Acc.",
            [] { return buildConvEngine(64, 16, 32); });

    // --- Vector arithmetic (4). ---
    addSpec("simd_alu", "Vector Arithmetic",
            [] { return buildSimdAlu(4, 32); });
    addSpec("simd_alu", "Vector Arithmetic",
            [] { return buildSimdAlu(16, 32); });
    addSpec("hwacha", "Vector Arithmetic",
            [] { return buildVectorUnit(4, 64, 8); });
    addSpec("hwacha", "Vector Arithmetic",
            [] { return buildVectorUnit(8, 64, 16); });

    // --- Signal processing (5). ---
    addSpec("fft", "Signal Processing", [] { return buildFft(8, 16); });
    addSpec("fft", "Signal Processing", [] { return buildFft(32, 16); });
    addSpec("fft", "Signal Processing", [] { return buildFft(64, 32); });
    addSpec("conv1d", "Signal Processing",
            [] { return buildConvolution(16, 16); });
    addSpec("conv1d", "Signal Processing",
            [] { return buildConvolution(64, 16); });

    // --- Cryptographic arithmetic (3). ---
    addSpec("aes", "Cryptographic Arithmetic",
            [] { return buildAesRound(16); });
    addSpec("sha3", "Cryptographic Arithmetic",
            [] { return buildSha3(16); });
    addSpec("sha3", "Cryptographic Arithmetic",
            [] { return buildSha3(25); });

    // --- Linear algebra (4). ---
    addSpec("gemm", "Linear Algebra",
            [] { return buildGemm(8, 16, 4); });
    addSpec("gemm", "Linear Algebra",
            [] { return buildGemm(16, 32, 8); });
    addSpec("spmv", "Linear Algebra", [] { return buildSpmv(8, 32); });
    addSpec("spmv", "Linear Algebra", [] { return buildSpmv(16, 32); });

    // --- Sort (4). ---
    addSpec("merge_sort", "Sort",
            [] { return buildMergeSorter(16, 32); });
    addSpec("merge_sort", "Sort",
            [] { return buildMergeSorter(64, 32); });
    addSpec("radix_sort", "Sort",
            [] { return buildRadixSorter(16, 32); });
    addSpec("radix_sort", "Sort",
            [] { return buildRadixSorter(64, 32); });

    // --- Non-linear function approximation (4). ---
    addSpec("lut", "Non-linear Approximation",
            [] { return buildLookupTable(128, 8); });
    addSpec("lut", "Non-linear Approximation",
            [] { return buildLookupTable(1024, 16); });
    addSpec("piecewise", "Non-linear Approximation",
            [] { return buildPiecewise(8, 16); });
    addSpec("piecewise", "Non-linear Approximation",
            [] { return buildPiecewise(32, 16); });

    // --- Other (4). ---
    addSpec("fpu", "Other", [] { return buildFpUnit(24); });
    addSpec("stencil2d", "Other", [] { return buildStencil2d(4, 32); });
    addSpec("stencil2d", "Other", [] { return buildStencil2d(16, 32); });
    addSpec("viterbi", "Other", [] { return buildViterbi(64, 16); });

    return specs;
}

} // namespace

std::vector<DesignSpec>
DesignLibrary::paperDataset()
{
    return makePaperDataset();
}

std::vector<DesignSpec>
DesignLibrary::smokeSet()
{
    const std::vector<std::string> picks = {
        "sodor_x32",       "gpio_p8",        "systolic_4x4_w8",
        "simd_alu_l4_w32", "fft_n8_w16",     "aes_round_p16",
        "gemm_k8_w16_e4",  "merge_sort_n16_w32",
        "lut_e128_w8",     "viterbi_s64_w16",
    };
    std::vector<DesignSpec> subset;
    for (const auto &name : picks)
        subset.push_back(byName(name));
    return subset;
}

std::vector<std::string>
DesignLibrary::baseFamilies()
{
    std::set<std::string> bases;
    for (const auto &spec : makePaperDataset())
        bases.insert(spec.base);
    return {bases.begin(), bases.end()};
}

const DesignSpec &
DesignLibrary::byName(const std::string &name)
{
    static const std::vector<DesignSpec> all = makePaperDataset();
    for (const auto &spec : all) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown design: ", name);
}

} // namespace sns::designs
