/**
 * @file
 * Machine-learning accelerator and vector-unit generators: a
 * Gemmini-like systolic array, an NVDLA-like convolution MAC engine, a
 * SIMD ALU, and a Hwacha-like banked vector unit (Table 3 rows
 * "Machine Learning Acc." and "Vector Arithmetic").
 */

#include "designs/designs.hh"

#include "netlist/circuit_builder.hh"
#include "util/logging.hh"

namespace sns::designs {

using graphir::NodeId;
using graphir::NodeType;
using netlist::CircuitBuilder;

Graph
buildSystolicArray(int rows, int cols, int width)
{
    SNS_ASSERT(rows > 0 && cols > 0, "systolic array needs positive dims");
    CircuitBuilder cb("systolic_" + std::to_string(rows) + "x" +
                      std::to_string(cols) + "_w" + std::to_string(width));
    const int acc_width = 2 * width;

    // Activations stream in from the west, weights are preloaded into
    // per-PE registers, partial sums accumulate in place
    // (output-stationary), and results drain east.
    std::vector<NodeId> west_in;
    for (int r = 0; r < rows; ++r)
        west_in.push_back(cb.input(width));

    std::vector<std::vector<NodeId>> act(rows,
                                         std::vector<NodeId>(cols));
    std::vector<NodeId> drain;
    for (int r = 0; r < rows; ++r) {
        NodeId horizontal = west_in[r];
        for (int c = 0; c < cols; ++c) {
            // Skewing register between PEs.
            const NodeId act_reg = cb.reg(width, horizontal);
            act[r][c] = act_reg;
            const NodeId weight = cb.dff(width);
            const NodeId product = cb.mul(acc_width, act_reg, weight);
            const NodeId acc = cb.dff(acc_width);
            const NodeId sum = cb.add(acc_width, product, acc);
            cb.connect(sum, acc);
            horizontal = act_reg;
            if (c == cols - 1)
                drain.push_back(acc);
        }
    }

    // Drain column: a mux chain selecting which row leaves the array.
    const NodeId drain_sel = cb.input(8);
    const NodeId out = cb.muxTree(acc_width, drain_sel, drain);
    cb.output(acc_width, {cb.reg(out)});
    return cb.build();
}

Graph
buildConvEngine(int macs, int width, int accumulators)
{
    CircuitBuilder cb("nvdla_conv_m" + std::to_string(macs) + "_w" +
                      std::to_string(width) + "_a" +
                      std::to_string(accumulators));
    const int acc_width = 2 * width + 4; // CACC guard bits

    // MAC array: pairs of (feature, weight) inputs into multipliers,
    // reduced through an adder tree (NVDLA's CMAC + CACC structure).
    std::vector<NodeId> products;
    for (int m = 0; m < macs; ++m) {
        const NodeId feature = cb.input(width);
        const NodeId weight = cb.dff(width);
        products.push_back(cb.mul(acc_width, feature, weight));
    }
    const NodeId partial =
        cb.reduceTree(NodeType::Add, acc_width, products);
    const NodeId partial_reg = cb.reg(partial);

    // Accumulator bank with read-modify-write and saturation compare.
    std::vector<NodeId> bank;
    const NodeId bank_sel = cb.input(8);
    for (int a = 0; a < accumulators; ++a) {
        const NodeId acc = cb.dff(acc_width);
        const NodeId sum = cb.add(acc_width, acc, partial_reg);
        const NodeId limit = cb.dff(acc_width);
        const NodeId over = cb.lgt(acc_width, sum, limit);
        const NodeId next = cb.mux(acc_width, over, limit, sum);
        cb.connect(next, acc);
        bank.push_back(acc);
    }
    const NodeId read = cb.muxTree(acc_width, bank_sel, bank);

    // SDP-like post-processing: bias add, ReLU via compare+mux, shift.
    const NodeId bias = cb.dff(acc_width);
    const NodeId biased = cb.add(acc_width, read, bias);
    const NodeId zero = cb.dff(acc_width);
    const NodeId neg = cb.lgt(acc_width, zero, biased);
    const NodeId relu_out = cb.mux(acc_width, neg, zero, biased);
    const NodeId scaled = cb.shifter(acc_width, relu_out, bias);
    cb.output(acc_width, {cb.reg(scaled)});
    return cb.build();
}

Graph
buildSimdAlu(int lanes, int width)
{
    CircuitBuilder cb("simd_alu_l" + std::to_string(lanes) + "_w" +
                      std::to_string(width));
    const NodeId op_sel = cb.input(8);
    std::vector<NodeId> results;
    for (int l = 0; l < lanes; ++l) {
        const NodeId a = cb.input(width);
        const NodeId b = cb.input(width);
        const NodeId sum = cb.add(width, a, b);
        const NodeId diff = cb.add(width, a, cb.bnot(width, b));
        const NodeId prod = cb.mul(width, a, b);
        const NodeId band = cb.band(width, a, b);
        const NodeId bxor = cb.bxor(width, a, b);
        const NodeId shl = cb.shifter(width, a, b);
        const NodeId cmp = cb.lgt(width, a, b);
        const NodeId min = cb.mux(width, cmp, b, a);
        const NodeId lane = cb.muxTree(
            width, op_sel, {sum, diff, prod, band, bxor, shl, min, cmp});
        results.push_back(cb.reg(lane));
    }
    for (NodeId r : results)
        cb.output(width, {r});
    return cb.build();
}

Graph
buildVectorUnit(int lanes, int width, int banks)
{
    CircuitBuilder cb("hwacha_l" + std::to_string(lanes) + "_w" +
                      std::to_string(width) + "_b" + std::to_string(banks));

    // Sequencer: a small counter + op queue registers.
    const NodeId vlen = cb.input(12); // 4K max vector length
    const NodeId counter = cb.dff(12);
    const NodeId step = cb.add(12, counter, vlen);
    const NodeId done = cb.eq(12, step, vlen);
    cb.connect(cb.mux(12, done, vlen, step), counter);

    // Banked vector register file: each bank is a register whose read
    // data feeds every lane through chaining muxes.
    std::vector<NodeId> bank_regs;
    for (int b = 0; b < banks; ++b)
        bank_regs.push_back(cb.dff(width));
    const NodeId bank_sel = cb.input(8);

    std::vector<NodeId> lane_outs;
    for (int l = 0; l < lanes; ++l) {
        const NodeId src1 = cb.muxTree(width, bank_sel, bank_regs);
        const NodeId src2 = cb.input(width);
        const NodeId chained = cb.mux(width, done, src2, src1);
        const NodeId mac = cb.mul(width, chained, src2);
        const NodeId acc = cb.dff(width);
        const NodeId sum = cb.add(width, mac, acc);
        cb.connect(sum, acc);
        lane_outs.push_back(acc);
    }
    const NodeId reduced =
        cb.reduceTree(NodeType::Add, width, lane_outs);
    cb.output(width, {cb.reg(reduced)});
    return cb.build();
}

} // namespace sns::designs
