/**
 * @file
 * Remaining Table-3 generators: peripherals (GPIO, IceNet-like NIC),
 * non-linear function approximation (lookup table, piece-wise linear),
 * and the "Other" row (hardfloat-like FP unit, multi-core stencil-2D
 * accelerator, Viterbi add-compare-select stage).
 */

#include "designs/designs.hh"

#include "netlist/circuit_builder.hh"
#include "util/logging.hh"

namespace sns::designs {

using graphir::NodeId;
using graphir::NodeType;
using netlist::CircuitBuilder;

Graph
buildGpio(int ports)
{
    CircuitBuilder cb("gpio_p" + std::to_string(ports));
    // Per port: direction register, output register, input synchronizer
    // chain, and interrupt edge detector.
    std::vector<NodeId> irqs;
    for (int p = 0; p < ports; ++p) {
        const NodeId pad_in = cb.input(4);
        const NodeId dir = cb.dff(4);
        const NodeId out_reg = cb.dff(4);
        const NodeId sync1 = cb.reg(4, pad_in);
        const NodeId sync2 = cb.reg(4, sync1);
        const NodeId drive = cb.mux(4, dir, out_reg, sync2);
        cb.output(4, {drive});
        const NodeId edge = cb.bxor(4, sync1, sync2);
        const NodeId mask = cb.dff(4);
        irqs.push_back(cb.band(4, edge, mask));
        cb.connect(drive, out_reg);
    }
    const NodeId irq = cb.reduceOr(
        cb.reduceTree(NodeType::Or, 4, irqs));
    cb.output(4, {cb.reg(4, irq)});
    return cb.build();
}

Graph
buildIceNic(int data_width, int fifo_depth)
{
    CircuitBuilder cb("icenet_w" + std::to_string(data_width) + "_f" +
                      std::to_string(fifo_depth));

    // Receive path: data through a FIFO register chain, ones-complement
    // checksum accumulator, CRC-ish xor/shift ladder, length compare.
    const NodeId rx = cb.input(data_width);
    NodeId stage = rx;
    std::vector<NodeId> fifo;
    for (int i = 0; i < fifo_depth; ++i) {
        stage = cb.reg(data_width, stage);
        fifo.push_back(stage);
    }

    const NodeId csum = cb.dff(data_width);
    cb.connect(cb.add(data_width, csum, rx), csum);

    NodeId crc = cb.dff(data_width);
    const NodeId shifted = cb.shifter(data_width, crc, rx);
    const NodeId folded = cb.bxor(data_width, shifted, rx);
    cb.connect(folded, crc);

    const NodeId expect_len = cb.dff(11); // jumbo frames: 2K bytes
    const NodeId seen_len = cb.dff(11);
    const NodeId one = cb.dff(11);
    cb.connect(cb.add(11, seen_len, one), seen_len);
    const NodeId done = cb.eq(11, seen_len, expect_len);

    const NodeId head_sel = cb.input(8);
    const NodeId head = cb.muxTree(data_width, head_sel, fifo);
    const NodeId deliver = cb.mux(data_width, done, head, csum);
    cb.output(data_width, {cb.reg(deliver)});
    return cb.build();
}

Graph
buildLookupTable(int entries, int width)
{
    CircuitBuilder cb("lut_e" + std::to_string(entries) + "_w" +
                      std::to_string(width));
    // Registered table entries read through a mux tree (the paper's
    // smallest design class: a 128-entry 8-bit lookup table).
    std::vector<NodeId> table;
    for (int e = 0; e < entries; ++e)
        table.push_back(cb.dff(width));
    const NodeId index = cb.input(16);
    const NodeId data = cb.muxTree(width, index, table);
    cb.output(width, {cb.reg(data)});
    return cb.build();
}

Graph
buildPiecewise(int segments, int width)
{
    CircuitBuilder cb("piecewise_s" + std::to_string(segments) + "_w" +
                      std::to_string(width));
    const int acc_width = 2 * width;

    // Segment search: parallel breakpoint compares select a (slope,
    // offset) pair; evaluation is a MAC: y = slope * x + offset.
    const NodeId x = cb.input(width);
    std::vector<NodeId> slopes;
    std::vector<NodeId> offsets;
    std::vector<NodeId> hits;
    for (int s = 0; s < segments; ++s) {
        const NodeId breakpoint = cb.dff(width);
        hits.push_back(cb.lgt(width, x, breakpoint));
        slopes.push_back(cb.dff(width));
        offsets.push_back(cb.dff(acc_width + 2)); // offset headroom
    }
    const NodeId which = cb.reduceTree(NodeType::Or, 8, hits);
    const NodeId slope = cb.muxTree(width, which, slopes);
    const NodeId offset = cb.muxTree(acc_width, which, offsets);
    const NodeId prod = cb.mul(acc_width, slope, x);
    const NodeId y = cb.add(acc_width, prod, offset);
    cb.output(acc_width, {cb.reg(y)});
    return cb.build();
}

Graph
buildFpUnit(int mantissa_width)
{
    CircuitBuilder cb("fpu_m" + std::to_string(mantissa_width));
    const int mw = mantissa_width;
    const int ew = 8;

    // FP adder: exponent compare, mantissa align shifter, add/sub,
    // leading-zero-style normalize shifter, exponent adjust.
    const NodeId exp_a = cb.input(ew);
    const NodeId exp_b = cb.input(ew);
    const NodeId man_a = cb.input(mw);
    const NodeId man_b = cb.input(mw);

    const NodeId exp_gt = cb.lgt(ew, exp_a, exp_b);
    const NodeId exp_diff = cb.add(ew, exp_a, cb.bnot(ew, exp_b));
    const NodeId man_small = cb.mux(mw, exp_gt, man_b, man_a);
    const NodeId man_big = cb.mux(mw, exp_gt, man_a, man_b);
    const NodeId aligned = cb.shifter(mw, man_small, exp_diff);
    const NodeId mant_sum = cb.add(mw, man_big, aligned);
    const NodeId lz = cb.reduceOr(mant_sum);
    const NodeId normalized = cb.shifter(mw, mant_sum, exp_diff);
    const NodeId exp_base = cb.mux(ew, exp_gt, exp_a, exp_b);
    const NodeId exp_adj = cb.add(ew, exp_base, cb.mux(ew, lz, exp_diff,
                                                       exp_base));
    const NodeId add_out = cb.reg(mw, normalized);
    cb.output(ew, {cb.reg(ew, exp_adj)});

    // FP multiplier: mantissa multiply, exponent add, round compare.
    const NodeId prod = cb.mul(2 * mw, man_a, man_b);
    const NodeId exp_sum = cb.add(ew, exp_a, exp_b);
    const NodeId guard = cb.reduceOr(prod);
    const NodeId rounded = cb.mux(2 * mw, guard, prod, prod);
    cb.output(2 * mw, {cb.reg(rounded)});
    cb.output(ew, {cb.reg(ew, exp_sum)});
    cb.output(mw, {add_out});
    return cb.build();
}

Graph
buildStencil2d(int cores, int width)
{
    CircuitBuilder cb("stencil2d_c" + std::to_string(cores) + "_w" +
                      std::to_string(width));
    const int acc_width = 2 * width;

    // Each core processes 8 output columns in parallel; every column
    // pipeline has a 3x3 window of line-buffer registers, 9 coefficient
    // MACs reduced by a tree, and a normalization shift. Cores share a
    // broadcast input stream. This is the paper's largest design class
    // (the 16-core single-precision stencil-2D accelerator).
    constexpr int kColumnsPerCore = 8;
    const NodeId stream = cb.input(width);
    std::vector<NodeId> core_outs;
    for (int c = 0; c < cores; ++c) {
        // Line buffers modelled as register delay chains shared by the
        // core's column pipelines.
        NodeId row0 = cb.reg(width, stream);
        NodeId row1 = cb.reg(width, row0);
        NodeId row2 = cb.reg(width, row1);

        std::vector<NodeId> column_results;
        for (int col = 0; col < kColumnsPerCore; ++col) {
            std::vector<NodeId> window;
            for (int dy = 0; dy < 3; ++dy) {
                NodeId tap = dy == 0 ? row0 : (dy == 1 ? row1 : row2);
                for (int dx = 0; dx <= col % 3; ++dx)
                    tap = cb.reg(width, tap);
                for (int dx = 0; dx < 3; ++dx) {
                    tap = cb.reg(width, tap);
                    window.push_back(tap);
                }
            }
            std::vector<NodeId> products;
            for (NodeId w : window) {
                const NodeId coeff = cb.dff(width);
                products.push_back(cb.mul(acc_width, w, coeff));
            }
            const NodeId total =
                cb.reduceTree(NodeType::Add, acc_width, products);
            const NodeId shift_amt = cb.dff(8);
            const NodeId normalized =
                cb.shifter(acc_width, total, shift_amt);
            column_results.push_back(cb.reg(normalized));
        }
        const NodeId drain_sel = cb.input(8);
        core_outs.push_back(
            cb.muxTree(acc_width, drain_sel, column_results));
    }
    for (NodeId out : core_outs)
        cb.output(acc_width, {out});
    return cb.build();
}

Graph
buildViterbi(int states, int width)
{
    CircuitBuilder cb("viterbi_s" + std::to_string(states) + "_w" +
                      std::to_string(width));
    // Path metrics carry 4 renormalization guard bits.
    width += 4;

    // Add-compare-select per state: two branch-metric adders, a
    // comparator, a survivor mux, and the path-metric register.
    std::vector<NodeId> metrics;
    for (int s = 0; s < states; ++s)
        metrics.push_back(cb.dff(width));

    const NodeId branch0 = cb.input(width);
    const NodeId branch1 = cb.input(width);
    std::vector<NodeId> survivors;
    for (int s = 0; s < states; ++s) {
        const NodeId pred0 = metrics[s];
        const NodeId pred1 = metrics[(s + states / 2) % states];
        const NodeId cand0 = cb.add(width, pred0, branch0);
        const NodeId cand1 = cb.add(width, pred1, branch1);
        const NodeId pick = cb.lgt(width, cand0, cand1);
        const NodeId best = cb.mux(width, pick, cand1, cand0);
        cb.connect(best, metrics[s]);
        survivors.push_back(pick);
    }
    const NodeId decision = cb.reduceTree(NodeType::Or, 8, survivors);
    cb.output(8, {cb.reg(8, decision)});
    return cb.build();
}

} // namespace sns::designs
