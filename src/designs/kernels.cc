/**
 * @file
 * Kernel-accelerator generators: signal processing (FFT, convolution),
 * cryptography (AES round, SHA3 slice), linear algebra (GEMM, SPMV),
 * and sorting networks — the MachSuite-flavoured middle of Table 3.
 */

#include "designs/designs.hh"

#include "netlist/circuit_builder.hh"
#include "util/logging.hh"

namespace sns::designs {

using graphir::NodeId;
using graphir::NodeType;
using netlist::CircuitBuilder;

namespace {

/** One radix-2 butterfly: (a + w*b, a - w*b) with a twiddle register. */
std::pair<NodeId, NodeId>
butterfly(CircuitBuilder &cb, int width, NodeId a, NodeId b)
{
    // Twiddle factors carry guard bits beyond the datapath width.
    const NodeId twiddle = cb.dff(width + 2);
    const NodeId wb = cb.mul(width, b, twiddle);
    const NodeId upper = cb.add(width, a, wb);
    const NodeId lower = cb.add(width, a, cb.bnot(width, wb));
    return {upper, lower};
}

/** A compare-and-swap sorting cell. */
std::pair<NodeId, NodeId>
compareSwap(CircuitBuilder &cb, int width, NodeId a, NodeId b)
{
    const NodeId gt = cb.lgt(width, a, b);
    const NodeId lo = cb.mux(width, gt, b, a);
    const NodeId hi = cb.mux(width, gt, a, b);
    return {lo, hi};
}

} // namespace

Graph
buildFft(int points, int width)
{
    SNS_ASSERT(points >= 2 && (points & (points - 1)) == 0,
               "FFT points must be a power of two");
    CircuitBuilder cb("fft_n" + std::to_string(points) + "_w" +
                      std::to_string(width));

    std::vector<NodeId> stage = cb.inputBus(width, points);
    for (int span = points / 2; span >= 1; span /= 2) {
        std::vector<NodeId> next(points);
        for (int block = 0; block < points; block += 2 * span) {
            for (int i = 0; i < span; ++i) {
                const auto [upper, lower] = butterfly(
                    cb, width, stage[block + i], stage[block + span + i]);
                next[block + i] = upper;
                next[block + span + i] = lower;
            }
        }
        // Pipeline register between stages.
        stage = cb.regBank(next);
    }
    for (NodeId out : stage)
        cb.output(width, {out});
    return cb.build();
}

Graph
buildConvolution(int taps, int width)
{
    CircuitBuilder cb("conv1d_t" + std::to_string(taps) + "_w" +
                      std::to_string(width));
    const int acc_width = 2 * width;

    // Transposed-form FIR: sample broadcast to all taps, products flow
    // through an accumulate chain of registers.
    const NodeId sample = cb.input(width);
    NodeId carry = graphir::kInvalidNode;
    for (int t = 0; t < taps; ++t) {
        const NodeId coeff = cb.dff(12); // 12-bit quantized taps
        const NodeId product = cb.mul(acc_width, sample, coeff);
        if (carry == graphir::kInvalidNode) {
            carry = cb.reg(acc_width, product);
        } else {
            carry = cb.reg(acc_width, cb.add(acc_width, product, carry));
        }
    }
    cb.output(acc_width, {carry});
    return cb.build();
}

Graph
buildAesRound(int parallel_bytes)
{
    CircuitBuilder cb("aes_round_p" + std::to_string(parallel_bytes));

    // SubBytes: per byte, an S-box approximated structurally as a
    // 2-level mux network over stored constants, followed by ShiftRows
    // (wiring / shifter), MixColumns (xtime = shift + conditional xor),
    // and AddRoundKey (xor with a key register).
    std::vector<NodeId> mixed;
    for (int b = 0; b < parallel_bytes; ++b) {
        const NodeId in_byte = cb.input(8);
        // S-box lookup: 8 stored rows selected by the input.
        std::vector<NodeId> sbox_rows;
        for (int r = 0; r < 8; ++r)
            sbox_rows.push_back(cb.dff(8));
        const NodeId substituted = cb.muxTree(8, in_byte, sbox_rows);
        const NodeId shifted = cb.shifter(8, substituted, in_byte);
        // xtime: shift left, conditional reduction-xor of the poly.
        const NodeId doubled = cb.shifter(8, shifted, shifted);
        const NodeId msb = cb.reduceOr(shifted);
        const NodeId poly = cb.dff(8);
        const NodeId reduced =
            cb.mux(8, msb, cb.bxor(8, doubled, poly), doubled);
        mixed.push_back(reduced);
    }

    // MixColumns column sums + AddRoundKey.
    const NodeId column = cb.reduceTree(NodeType::Xor, 8, mixed);
    const NodeId round_key = cb.dff(8);
    const NodeId state_out = cb.bxor(8, column, round_key);
    cb.output(8, {cb.reg(state_out)});
    return cb.build();
}

Graph
buildSha3(int lanes)
{
    CircuitBuilder cb("sha3_l" + std::to_string(lanes));

    // Keccak-f slice: lanes of state registers; theta = column parity
    // xor; rho/pi = rotations (shifters); chi = not/and/xor lane mix.
    std::vector<NodeId> state;
    for (int l = 0; l < lanes; ++l)
        state.push_back(cb.dff(64));

    // theta: parity of all lanes xored into each lane.
    const NodeId parity = cb.reduceTree(NodeType::Xor, 64, state);
    std::vector<NodeId> theta;
    for (NodeId lane : state)
        theta.push_back(cb.bxor(64, lane, parity));

    // rho: per-lane rotation by a lane-specific register amount.
    std::vector<NodeId> rho;
    for (NodeId lane : theta) {
        const NodeId amount = cb.dff(8);
        rho.push_back(cb.shifter(64, lane, amount));
    }

    // chi: lane[i] ^= ~lane[i+1] & lane[i+2].
    for (size_t i = 0; i < rho.size(); ++i) {
        const NodeId nxt = rho[(i + 1) % rho.size()];
        const NodeId nxt2 = rho[(i + 2) % rho.size()];
        const NodeId chi =
            cb.bxor(64, rho[i], cb.band(64, cb.bnot(64, nxt), nxt2));
        cb.connect(chi, state[i]);
    }
    cb.output(64, {state[0]});
    return cb.build();
}

Graph
buildGemm(int k, int width, int engines)
{
    CircuitBuilder cb("gemm_k" + std::to_string(k) + "_w" +
                      std::to_string(width) + "_e" +
                      std::to_string(engines));
    // Accumulators grow log2(k) guard bits over the product width.
    int guard = 0;
    while ((1 << guard) < k)
        ++guard;
    const int acc_width = 2 * width + guard;

    std::vector<NodeId> outs;
    for (int e = 0; e < engines; ++e) {
        std::vector<NodeId> products;
        for (int i = 0; i < k; ++i) {
            const NodeId a = cb.input(width);
            const NodeId b = cb.dff(width); // stationary B panel
            products.push_back(cb.mul(acc_width, a, b));
        }
        const NodeId dot = cb.reduceTree(NodeType::Add, acc_width,
                                         products);
        const NodeId acc = cb.dff(acc_width);
        cb.connect(cb.add(acc_width, dot, acc), acc);
        outs.push_back(acc);
    }
    for (NodeId out : outs)
        cb.output(acc_width, {out});
    return cb.build();
}

Graph
buildSpmv(int lanes, int width)
{
    CircuitBuilder cb("spmv_l" + std::to_string(lanes) + "_w" +
                      std::to_string(width));
    const int acc_width = 2 * width;

    // Per lane: column-index match (CAM compare), gated multiply,
    // accumulate. A final tree reduces lane partial sums.
    std::vector<NodeId> partials;
    for (int l = 0; l < lanes; ++l) {
        const NodeId col_idx = cb.input(14); // 16K-column matrices
        const NodeId row_ptr = cb.dff(14);
        const NodeId hit = cb.eq(14, col_idx, row_ptr);
        const NodeId value = cb.input(width);
        const NodeId x = cb.dff(width); // cached vector element
        const NodeId product = cb.mul(acc_width, value, x);
        const NodeId zero = cb.dff(acc_width);
        const NodeId gated = cb.mux(acc_width, hit, product, zero);
        const NodeId acc = cb.dff(acc_width);
        cb.connect(cb.add(acc_width, gated, acc), acc);
        partials.push_back(acc);
    }
    const NodeId row_sum =
        cb.reduceTree(NodeType::Add, acc_width, partials);
    cb.output(acc_width, {cb.reg(row_sum)});
    return cb.build();
}

Graph
buildMergeSorter(int elements, int width)
{
    SNS_ASSERT(elements >= 2 && (elements & (elements - 1)) == 0,
               "sorter size must be a power of two");
    CircuitBuilder cb("merge_sort_n" + std::to_string(elements) + "_w" +
                      std::to_string(width));

    // Bitonic-style network: log2(n) merge phases, each a cascade of
    // compare-swap columns at halving distances, with pipeline
    // registers between columns.
    std::vector<NodeId> wires = cb.inputBus(width, elements);
    for (int phase = 2; phase <= elements; phase <<= 1) {
        for (int dist = phase / 2; dist >= 1; dist >>= 1) {
            std::vector<NodeId> next = wires;
            for (int i = 0; i < elements; ++i) {
                if ((i & dist) == 0 && (i + dist) < elements) {
                    const auto [lo, hi] =
                        compareSwap(cb, width, wires[i], wires[i + dist]);
                    next[i] = lo;
                    next[i + dist] = hi;
                }
            }
            wires = cb.regBank(next);
        }
    }
    for (NodeId w : wires)
        cb.output(width, {w});
    return cb.build();
}

Graph
buildRadixSorter(int buckets, int width)
{
    CircuitBuilder cb("radix_sort_b" + std::to_string(buckets) + "_w" +
                      std::to_string(width));

    // Digit extraction + per-bucket histogram counters + prefix-sum
    // chain (the scatter-address pipeline of a radix sort pass).
    const NodeId key = cb.input(width);
    const NodeId digit = cb.shifter(6, key, key); // radix-64 digit

    std::vector<NodeId> counters;
    for (int b = 0; b < buckets; ++b) {
        const NodeId tag = cb.dff(6);
        const NodeId hit = cb.eq(8, digit, tag);
        const NodeId count = cb.dff(10); // histogram saturates at 1K
        const NodeId one = cb.dff(10);
        const NodeId bumped = cb.add(10, count, one);
        cb.connect(cb.mux(10, hit, bumped, count), count);
        counters.push_back(count);
    }
    // Exclusive prefix sum over bucket counts.
    NodeId running = counters[0];
    std::vector<NodeId> offsets = {running};
    for (size_t b = 1; b < counters.size(); ++b) {
        running = cb.add(16, running, counters[b]);
        offsets.push_back(cb.reg(running));
    }
    const NodeId pick = cb.muxTree(16, digit, offsets);
    cb.output(16, {cb.reg(pick)});
    return cb.build();
}

} // namespace sns::designs
