/**
 * @file
 * The hardware design generator library — our stand-in for the paper's
 * 41 open-source designs (Table 3).
 *
 * Every generator builds a structurally realistic GraphIR circuit from
 * explicit microarchitectural parameters. Families are parameterizable
 * (as in §4.1: "designs with different hardware parameters are
 * generated whenever possible"), and each spec records its base family
 * so dataset splits can keep all variants of one base on the same side
 * (the paper's fairness rule).
 */

#ifndef SNS_DESIGNS_DESIGNS_HH
#define SNS_DESIGNS_DESIGNS_HH

#include <functional>
#include <string>
#include <vector>

#include "graphir/graph.hh"

namespace sns::designs {

using graphir::Graph;

/** One concrete design the dataset can instantiate. */
struct DesignSpec
{
    std::string name;     ///< unique instance name, e.g. "gemm_w32_k8"
    std::string base;     ///< parameterizable base family, e.g. "gemm"
    std::string category; ///< Table-3 category label
    std::function<Graph()> build; ///< constructs the GraphIR circuit
};

/** @name Processor cores
 * @{
 */
/** A Sodor-like 3-stage in-order core datapath. */
Graph buildSodorCore(int xlen);
/** A Rocket-like 5-stage in-order core with bypass network. */
Graph buildRocketCore(int xlen, int mul_width);
/** An Ariane-like 6-stage core with a scoreboard. */
Graph buildArianeCore(int xlen, int issue_entries);
/** @} */

/** @name Peripherals
 * @{
 */
/** A GPIO block with direction/value/interrupt registers. */
Graph buildGpio(int ports);
/** An IceNet-like NIC datapath: checksum, CRC, FIFO. */
Graph buildIceNic(int data_width, int fifo_depth);
/** @} */

/** @name Machine-learning accelerators
 * @{
 */
/** A Gemmini-like output-stationary systolic array. */
Graph buildSystolicArray(int rows, int cols, int width);
/** An NVDLA-like convolution MAC engine with accumulator SRAM regs. */
Graph buildConvEngine(int macs, int width, int accumulators);
/** @} */

/** @name Vector arithmetic
 * @{
 */
/** A SIMD integer ALU with per-lane op select. */
Graph buildSimdAlu(int lanes, int width);
/** A Hwacha-like vector unit: lanes + sequencer + chaining muxes. */
Graph buildVectorUnit(int lanes, int width, int banks);
/** @} */

/** @name Signal processing
 * @{
 */
/** A radix-2 decimation-in-time FFT datapath. */
Graph buildFft(int points, int width);
/** A 1-D FIR convolution pipeline. */
Graph buildConvolution(int taps, int width);
/** @} */

/** @name Cryptography
 * @{
 */
/** An AES-like round function (sbox mux networks + mix columns). */
Graph buildAesRound(int parallel_bytes);
/** A SHA3-like permutation slice (theta/rho/chi XOR networks). */
Graph buildSha3(int lanes);
/** @} */

/** @name Linear algebra
 * @{
 */
/** A GEMM dot-product engine with K-wide MAC trees. */
Graph buildGemm(int k, int width, int engines);
/** A sparse matrix-vector engine (index match + MAC). */
Graph buildSpmv(int lanes, int width);
/** @} */

/** @name Sorting
 * @{
 */
/** A bitonic/odd-even merge sorting network of compare-swap cells. */
Graph buildMergeSorter(int elements, int width);
/** A radix-sort digit-histogram pipeline. */
Graph buildRadixSorter(int buckets, int width);
/** @} */

/** @name Non-linear function approximation
 * @{
 */
/** An N-entry lookup table (registered entries + mux tree). */
Graph buildLookupTable(int entries, int width);
/** A piece-wise linear approximator: segment compare + slope MAC. */
Graph buildPiecewise(int segments, int width);
/** @} */

/** @name Other (Table 3 bottom row)
 * @{
 */
/** A hardfloat-like FP unit decomposed into integer primitives. */
Graph buildFpUnit(int mantissa_width);
/** A multi-core single-precision stencil-2D accelerator. */
Graph buildStencil2d(int cores, int width);
/** An add-compare-select Viterbi decoder stage. */
Graph buildViterbi(int states, int width);
/** @} */

/** The full design library. */
class DesignLibrary
{
  public:
    /**
     * The 41-design Hardware Design Dataset generator set, spanning
     * every Table-3 category with parameter variants per base family.
     */
    static std::vector<DesignSpec> paperDataset();

    /** A small subset (one per category) for fast tests and examples. */
    static std::vector<DesignSpec> smokeSet();

    /** Distinct base-family names in the paper dataset. */
    static std::vector<std::string> baseFamilies();

    /** Look up one spec by name; fatal() if missing. */
    static const DesignSpec &byName(const std::string &name);
};

} // namespace sns::designs

#endif // SNS_DESIGNS_DESIGNS_HH
