/**
 * @file
 * Rank-sharded SNSC checkpoints (docs/distributed.md §Checkpoints).
 *
 * A distributed run commits one SNSC container per rank per
 * checkpointed epoch, named ckpt-EEEEEE-rRRofWW.ckpt (the shared
 * ckpt-EEEEEE prefix keeps nn::listCheckpoints' name ordering == epoch
 * ordering, and groups a set's files for the epoch-aware prune).
 *
 * Every shard carries the same payload prefix — the ShardMeta below,
 * then the RNG streams and loss curve (identical across ranks, cheap)
 * — followed by this rank's ZeRO-owned Adam moments, indexed by
 * global parameter position. Rank 0's shard additionally embeds the
 * full model weights (which all ranks hold identically). Resume reads
 * the whole set, cross-validates it (C-SHARD-SET), and reassembles
 * full optimizer state — so a run may resume at ANY admissible rank
 * count: the new ranks simply keep their own slice of the merged
 * state. world/rank are deliberately outside the config fingerprint
 * (they do not shape the numerics; grad_slices does, and is inside).
 *
 * This file stays below sns::core: the trainer drives the payload
 * layout; dist provides the naming, the meta block, and the set
 * discovery/consistency checks.
 */

#ifndef SNS_DIST_SHARD_HH
#define SNS_DIST_SHARD_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/diagnostics.hh"

namespace sns::nn {
class CheckpointWriter;
class CheckpointReader;
}

namespace sns::dist {

/** Payload producer tag of a shard checkpoint (the plain trainer
 * writes "sns-trainer-v1"; a reader refuses the wrong producer, which
 * is what keeps plain and distributed resume paths apart). */
inline constexpr const char *kShardProducer = "sns-dist-trainer-v1";

/** Version of the shard payload layout after the producer string. */
inline constexpr uint32_t kShardLayoutVersion = 1;

/** Shard checkpoint file name: ckpt-000123-r01of04.ckpt. */
std::string shardFileName(int epoch, int rank, int world);

/** Identity parsed from a shard file name. */
struct ShardName
{
    int epoch = 0;
    int rank = 0;
    int world = 0;
};

/** Parse a checkpoint file name (path or basename); nullopt for plain
 * ckpt-NNNNNN.ckpt files and anything else. */
std::optional<ShardName> parseShardName(const std::string &file);

/** The consistency-checked shard payload prefix. */
struct ShardMeta
{
    uint32_t world = 0;
    uint32_t rank = 0;
    uint32_t grad_slices = 0;
    uint32_t param_count = 0; ///< model parameter tensors
    uint32_t owned_begin = 0; ///< first owned parameter tensor
    uint32_t owned_end = 0;   ///< one past the last owned tensor
    uint64_t config_fp = 0;
    uint64_t split_fp = 0;
    int64_t completed_epoch = 0;
    int64_t total_epochs = 0;
};

/** Write producer + layout version + meta fields. */
void writeShardMeta(nn::CheckpointWriter &writer, const ShardMeta &meta);

/**
 * Read and validate the shard payload prefix written by
 * writeShardMeta(). Throws nn::SerializeError when the producer is not
 * kShardProducer or the layout version is unknown; `where` labels
 * errors.
 */
ShardMeta readShardMeta(nn::CheckpointReader &reader,
                        const std::string &where);

/**
 * C-SHARD-SET: do these metas form one coherent resumable set? Checks
 * every rank 0..world-1 present exactly once, world/fingerprints/
 * epoch/slices/param_count identical, and the owned ranges partition
 * [0, param_count). `where` labels findings (e.g. the directory).
 */
verify::Report validateShardSet(const std::vector<ShardMeta> &metas,
                                const std::string &where);

/**
 * The newest epoch in `dir` with a complete shard set (every rank of
 * the world its file names declare), and that set's files sorted by
 * rank. Returns an empty vector when no complete set exists;
 * incomplete sets (a killed run's partial epoch) are skipped, not
 * errors.
 */
std::vector<std::string> latestCompleteShardSet(const std::string &dir,
                                                int *epoch_out = nullptr);

} // namespace sns::dist

#endif // SNS_DIST_SHARD_HH
