#include "dist/shard.hh"

#include <cstdio>
#include <filesystem>
#include <map>

#include "nn/serialize.hh"

namespace sns::dist {

std::string
shardFileName(int epoch, int rank, int world)
{
    char name[48];
    std::snprintf(name, sizeof(name), "ckpt-%06d-r%02dof%02d.ckpt",
                  epoch, rank, world);
    return name;
}

std::optional<ShardName>
parseShardName(const std::string &file)
{
    const std::string name =
        std::filesystem::path(file).filename().string();
    ShardName parsed;
    char tail = '\0';
    // ckpt-000123-r01of04.ckpt — %c catches trailing garbage.
    if (std::sscanf(name.c_str(), "ckpt-%6d-r%2dof%2d.ckpt%c",
                    &parsed.epoch, &parsed.rank, &parsed.world,
                    &tail) != 3)
        return std::nullopt;
    if (parsed.world <= 0 || parsed.rank < 0 ||
        parsed.rank >= parsed.world)
        return std::nullopt;
    return parsed;
}

void
writeShardMeta(nn::CheckpointWriter &writer, const ShardMeta &meta)
{
    writer.str(kShardProducer);
    writer.u32(kShardLayoutVersion);
    writer.u32(meta.world);
    writer.u32(meta.rank);
    writer.u32(meta.grad_slices);
    writer.u32(meta.param_count);
    writer.u32(meta.owned_begin);
    writer.u32(meta.owned_end);
    writer.u64(meta.config_fp);
    writer.u64(meta.split_fp);
    writer.i64(meta.completed_epoch);
    writer.i64(meta.total_epochs);
}

ShardMeta
readShardMeta(nn::CheckpointReader &reader, const std::string &where)
{
    const std::string producer = reader.str();
    if (producer != kShardProducer) {
        throw nn::SerializeError(
            "checkpoint " + where + " was written by \"" + producer +
            "\", expected \"" + kShardProducer + "\"");
    }
    const uint32_t layout = reader.u32();
    if (layout != kShardLayoutVersion) {
        throw nn::SerializeError(
            "shard checkpoint " + where + " uses layout version " +
            std::to_string(layout) + ", expected " +
            std::to_string(kShardLayoutVersion));
    }
    ShardMeta meta;
    meta.world = reader.u32();
    meta.rank = reader.u32();
    meta.grad_slices = reader.u32();
    meta.param_count = reader.u32();
    meta.owned_begin = reader.u32();
    meta.owned_end = reader.u32();
    meta.config_fp = reader.u64();
    meta.split_fp = reader.u64();
    meta.completed_epoch = reader.i64();
    meta.total_epochs = reader.i64();
    return meta;
}

verify::Report
validateShardSet(const std::vector<ShardMeta> &metas,
                 const std::string &where)
{
    verify::Report report;
    if (metas.empty()) {
        report.error(verify::rules::kShardSet, where,
                     "no shard checkpoints to merge");
        return report;
    }
    const ShardMeta &first = metas.front();
    std::vector<int> seen(first.world, 0);
    std::vector<int> coverage(first.param_count, 0);
    for (const ShardMeta &meta : metas) {
        const std::string shard_where =
            where + " rank " + std::to_string(meta.rank);
        if (meta.world != first.world ||
            meta.grad_slices != first.grad_slices ||
            meta.param_count != first.param_count ||
            meta.config_fp != first.config_fp ||
            meta.split_fp != first.split_fp ||
            meta.completed_epoch != first.completed_epoch) {
            report.error(verify::rules::kShardSet, shard_where,
                         "shard disagrees with rank " +
                             std::to_string(first.rank) +
                             " on world/slices/fingerprints/epoch",
                         "the files mix different runs; resume from an "
                         "older complete set");
            continue;
        }
        if (meta.rank >= meta.world) {
            report.error(verify::rules::kShardMeta, shard_where,
                         "rank " + std::to_string(meta.rank) +
                             " outside world " +
                             std::to_string(meta.world));
            continue;
        }
        if (seen[meta.rank]++ > 0) {
            report.error(verify::rules::kShardSet, shard_where,
                         "rank appears more than once in the set");
            continue;
        }
        if (meta.owned_begin > meta.owned_end ||
            meta.owned_end > meta.param_count) {
            report.error(verify::rules::kShardMeta, shard_where,
                         "owned range [" +
                             std::to_string(meta.owned_begin) + ", " +
                             std::to_string(meta.owned_end) +
                             ") outside the " +
                             std::to_string(meta.param_count) +
                             " parameter tensors");
            continue;
        }
        for (uint32_t i = meta.owned_begin; i < meta.owned_end; ++i)
            ++coverage[i];
    }
    if (report.hasErrors())
        return report;
    for (uint32_t r = 0; r < first.world; ++r) {
        if (!seen[r]) {
            report.error(verify::rules::kShardSet, where,
                         "rank " + std::to_string(r) +
                             " of world " + std::to_string(first.world) +
                             " is missing from the set");
        }
    }
    for (uint32_t i = 0; i < first.param_count; ++i) {
        if (coverage[i] != 1) {
            report.error(
                verify::rules::kShardSet, where,
                "parameter tensor " + std::to_string(i) + " is owned " +
                    std::to_string(coverage[i]) +
                    " times (the shards must partition the optimizer "
                    "state exactly)");
            break;
        }
    }
    return report;
}

std::vector<std::string>
latestCompleteShardSet(const std::string &dir, int *epoch_out)
{
    // epoch -> rank -> file, remembering the declared world.
    struct Epoch
    {
        int world = 0;
        std::map<int, std::string> files;
        bool mixed = false;
    };
    std::map<int, Epoch> epochs;
    for (const std::string &file : nn::listCheckpoints(dir)) {
        const auto parsed = parseShardName(file);
        if (!parsed)
            continue;
        Epoch &epoch = epochs[parsed->epoch];
        if (epoch.world == 0)
            epoch.world = parsed->world;
        else if (epoch.world != parsed->world)
            epoch.mixed = true; // two runs collided; not resumable
        epoch.files[parsed->rank] = file;
    }
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
        const Epoch &epoch = it->second;
        if (epoch.mixed ||
            epoch.files.size() != static_cast<size_t>(epoch.world))
            continue;
        std::vector<std::string> files;
        files.reserve(epoch.files.size());
        for (const auto &entry : epoch.files)
            files.push_back(entry.second);
        if (epoch_out != nullptr)
            *epoch_out = it->first;
        return files;
    }
    return {};
}

} // namespace sns::dist
