#include "dist/exchange.hh"

#include <cstring>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace sns::dist {

namespace {

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Owner chunk c of a flat vector of E elements (N chunks). */
std::pair<size_t, size_t>
chunkRange(size_t elems, int world, int c)
{
    const size_t lo = elems * static_cast<size_t>(c) /
                      static_cast<size_t>(world);
    const size_t hi = elems * static_cast<size_t>(c + 1) /
                      static_cast<size_t>(world);
    return {lo, hi};
}

/** Ring distance from rank q to rank c (hops along the send
 * direction). */
int
ringDistance(int q, int c, int world)
{
    return (c - q + world) % world;
}

void
putU32(std::vector<uint8_t> &buf, uint32_t v)
{
    const size_t at = buf.size();
    buf.resize(at + 4);
    std::memcpy(buf.data() + at, &v, 4);
}

void
putF32(std::vector<uint8_t> &buf, const float *data, size_t count)
{
    const size_t at = buf.size();
    buf.resize(at + count * sizeof(float));
    std::memcpy(buf.data() + at, data, count * sizeof(float));
}

uint32_t
getU32(const std::vector<uint8_t> &buf, size_t &pos)
{
    if (pos + 4 > buf.size())
        throw DistError("ring frame underrun");
    uint32_t v = 0;
    std::memcpy(&v, buf.data() + pos, 4);
    pos += 4;
    return v;
}

void
getF32(const std::vector<uint8_t> &buf, size_t &pos, float *out,
       size_t count)
{
    if (pos + count * sizeof(float) > buf.size())
        throw DistError("ring frame underrun");
    std::memcpy(out, buf.data() + pos, count * sizeof(float));
    pos += count * sizeof(float);
}

} // namespace

verify::Report
validateDistConfig(const DistConfig &config, size_t param_tensors)
{
    verify::Report report;
    const std::string where = "TrainerConfig::dist";
    if (!isPowerOfTwo(config.world_size)) {
        report.error(verify::rules::kDistWorld, where,
                     "world_size " + std::to_string(config.world_size) +
                         " is not a positive power of two",
                     "the slice tree only aligns across power-of-two "
                     "rank counts");
    }
    if (config.rank < 0 || config.rank >= config.world_size) {
        report.error(verify::rules::kDistWorld, where,
                     "rank " + std::to_string(config.rank) +
                         " outside [0, " +
                         std::to_string(config.world_size) + ")");
    }
    if (!isPowerOfTwo(config.grad_slices)) {
        report.error(verify::rules::kDistSlices, where,
                     "grad_slices " +
                         std::to_string(config.grad_slices) +
                         " is not a positive power of two");
    } else if (config.world_size > config.grad_slices) {
        report.error(verify::rules::kDistSlices, where,
                     "world_size " + std::to_string(config.world_size) +
                         " exceeds grad_slices " +
                         std::to_string(config.grad_slices),
                     "each rank needs at least one slice subtree");
    }
    if (config.world_size > 1 && param_tensors > 0 &&
        static_cast<size_t>(config.world_size) > param_tensors) {
        report.error(verify::rules::kDistWorld, where,
                     "world_size " + std::to_string(config.world_size) +
                         " exceeds the " +
                         std::to_string(param_tensors) +
                         " parameter tensors available to shard");
    }
    if (config.world_size > 1 && !config.channel &&
        config.rendezvous.empty()) {
        report.error(verify::rules::kDistEndpoint, where,
                     "world_size > 1 needs a rendezvous endpoint or an "
                     "injected ring channel",
                     "pass unix:<path> or tcp:<host>:<port>");
    }
    if (!config.rendezvous.empty()) {
        try {
            rankEndpoint(config.rendezvous, 0);
        } catch (const DistError &err) {
            report.error(verify::rules::kDistEndpoint, where,
                         err.what());
        }
    }
    return report;
}

std::pair<size_t, size_t>
sliceRange(size_t n, int slices, int s)
{
    const size_t lo = n * static_cast<size_t>(s) /
                      static_cast<size_t>(slices);
    const size_t hi = n * static_cast<size_t>(s + 1) /
                      static_cast<size_t>(slices);
    return {lo, hi};
}

std::vector<size_t>
partitionParams(const std::vector<size_t> &elems, int world)
{
    std::vector<size_t> prefix(elems.size() + 1, 0);
    for (size_t i = 0; i < elems.size(); ++i)
        prefix[i + 1] = prefix[i] + elems[i];
    const size_t total = prefix.back();

    std::vector<size_t> cuts(static_cast<size_t>(world) + 1, 0);
    cuts[world] = elems.size();
    size_t t = 0;
    for (int r = 1; r < world; ++r) {
        const size_t target = total * static_cast<size_t>(r) /
                              static_cast<size_t>(world);
        while (t < elems.size() && prefix[t] < target)
            ++t;
        // prefix[t] is the first boundary at or past the even share;
        // the boundary before it may be closer. Never step back onto
        // the previous cut — that would leave a rank empty.
        if (t > cuts[r - 1] + 1 &&
            target - prefix[t - 1] < prefix[t] - target)
            --t;
        cuts[r] = t;
    }
    return cuts;
}

std::optional<std::vector<float>>
combineTreeGrad(std::vector<std::optional<std::vector<float>>> slots)
{
    SNS_ASSERT(isPowerOfTwo(static_cast<int>(slots.size())),
               "tree combine needs a power-of-two slot count");
    while (slots.size() > 1) {
        std::vector<std::optional<std::vector<float>>> next(
            slots.size() / 2);
        for (size_t i = 0; i < next.size(); ++i) {
            auto &lo = slots[2 * i];
            auto &hi = slots[2 * i + 1];
            if (lo && hi) {
                for (size_t j = 0; j < lo->size(); ++j)
                    (*lo)[j] += (*hi)[j];
                next[i] = std::move(lo);
            } else if (lo) {
                next[i] = std::move(lo);
            } else if (hi) {
                next[i] = std::move(hi);
            }
        }
        slots = std::move(next);
    }
    return std::move(slots[0]);
}

ScalarPartial
combineTreeLoss(std::vector<std::optional<ScalarPartial>> slots)
{
    SNS_ASSERT(isPowerOfTwo(static_cast<int>(slots.size())),
               "tree combine needs a power-of-two slot count");
    while (slots.size() > 1) {
        std::vector<std::optional<ScalarPartial>> next(slots.size() / 2);
        for (size_t i = 0; i < next.size(); ++i) {
            const auto &lo = slots[2 * i];
            const auto &hi = slots[2 * i + 1];
            if (lo && hi)
                next[i] = ScalarPartial{lo->sum + hi->sum,
                                        lo->count + hi->count};
            else if (lo)
                next[i] = lo;
            else if (hi)
                next[i] = hi;
        }
        slots = std::move(next);
    }
    return slots[0] ? *slots[0] : ScalarPartial{};
}

size_t
flatSize(const std::vector<tensor::Variable> &params)
{
    size_t total = 0;
    for (const auto &param : params)
        total += param.value().numel();
    return total;
}

std::vector<float>
flattenGrads(const std::vector<tensor::Variable> &params, float weight)
{
    std::vector<float> flat(flatSize(params), 0.0f);
    size_t at = 0;
    for (const auto &param : params) {
        const size_t n = param.value().numel();
        if (param.hasGrad()) {
            const tensor::Tensor &grad = param.grad();
            for (size_t j = 0; j < n; ++j)
                flat[at + j] = grad[j] * weight;
        }
        at += n;
    }
    return flat;
}

void
scatterGrads(std::vector<tensor::Variable> &params,
             const std::vector<float> &flat)
{
    size_t at = 0;
    for (auto &param : params) {
        tensor::Tensor &grad = param.impl()->ensureGrad();
        const size_t n = grad.numel();
        std::memcpy(grad.data(), flat.data() + at, n * sizeof(float));
        at += n;
    }
    SNS_ASSERT(at == flat.size(), "flat gradient size mismatch");
}

void
GradientExchange::setWeightPartition(std::vector<size_t> elem_cuts)
{
    SNS_ASSERT(elem_cuts.size() ==
                   static_cast<size_t>(world_) + 1,
               "weight partition needs world+1 cuts");
    elem_cuts_ = std::move(elem_cuts);
}

RingExchange::RingExchange(std::shared_ptr<RingChannel> channel,
                           int world, int rank, int grad_slices,
                           obs::Registry *registry)
    : GradientExchange(world, rank, grad_slices),
      channel_(std::move(channel)),
      registry_(registry)
{
    SNS_ASSERT(channel_ != nullptr, "RingExchange needs a channel");
}

void
RingExchange::flushByteCounters()
{
    if (registry_ == nullptr)
        return;
    const uint64_t sent = channel_->bytesSent();
    const uint64_t received = channel_->bytesReceived();
    registry_->counter("dist.bytes_sent").inc(sent - published_sent_);
    registry_->counter("dist.bytes_received")
        .inc(received - published_received_);
    published_sent_ = sent;
    published_received_ = received;
}

void
RingExchange::handshake(uint64_t config_fp, uint64_t split_fp,
                        uint64_t param_elems)
{
    // "SNSD" + version 1, then the ring-consistency fields.
    std::vector<uint8_t> hello;
    hello.reserve(4 + 4 * 4 + 3 * 8);
    hello.push_back('S');
    hello.push_back('N');
    hello.push_back('S');
    hello.push_back('D');
    putU32(hello, 1);
    putU32(hello, static_cast<uint32_t>(world_));
    putU32(hello, static_cast<uint32_t>(rank_));
    putU32(hello, static_cast<uint32_t>(slices_));
    const uint64_t words[3] = {config_fp, split_fp, param_elems};
    const size_t at = hello.size();
    hello.resize(at + sizeof(words));
    std::memcpy(hello.data() + at, words, sizeof(words));

    const std::vector<uint8_t> peer = channel_->exchange(hello);
    if (peer.size() != hello.size() || peer[0] != 'S' ||
        peer[1] != 'N' || peer[2] != 'S' || peer[3] != 'D')
        throw DistError("ring handshake: malformed hello frame");
    size_t pos = 4;
    const uint32_t version = getU32(peer, pos);
    const uint32_t peer_world = getU32(peer, pos);
    const uint32_t peer_rank = getU32(peer, pos);
    const uint32_t peer_slices = getU32(peer, pos);
    uint64_t peer_words[3];
    std::memcpy(peer_words, peer.data() + pos, sizeof(peer_words));

    const uint32_t want_rank =
        static_cast<uint32_t>((rank_ + world_ - 1) % world_);
    if (version != 1)
        throw DistError("ring handshake: protocol version " +
                        std::to_string(version) + ", expected 1");
    if (peer_world != static_cast<uint32_t>(world_) ||
        peer_rank != want_rank)
        throw DistError(
            "ring handshake: predecessor is rank " +
            std::to_string(peer_rank) + "/" +
            std::to_string(peer_world) + ", expected rank " +
            std::to_string(want_rank) + "/" + std::to_string(world_));
    if (peer_slices != static_cast<uint32_t>(slices_))
        throw DistError("ring handshake: grad_slices mismatch (" +
                        std::to_string(peer_slices) + " vs " +
                        std::to_string(slices_) + ")");
    if (peer_words[0] != config_fp)
        throw DistError("ring handshake: config fingerprint mismatch "
                        "(ranks run different training configurations)");
    if (peer_words[1] != split_fp)
        throw DistError("ring handshake: split fingerprint mismatch "
                        "(ranks see different dataset splits)");
    if (peer_words[2] != param_elems)
        throw DistError("ring handshake: parameter count mismatch");
    flushByteCounters();
}

void
RingExchange::allreduceGrad(std::vector<float> &flat, bool present)
{
    const WallTimer timer;
    const size_t elems = flat.size();
    const int n = world_;

    // Owner buffer: rank partials for MY chunk, indexed by source rank.
    const auto [my_lo, my_hi] = chunkRange(elems, n, rank_);
    std::vector<std::optional<std::vector<float>>> owner_slots(n);
    if (present)
        owner_slots[rank_] = std::vector<float>(flat.begin() + my_lo,
                                                flat.begin() + my_hi);

    // Phase R (reduce-scatter by raw relay): at step s, rank r sends
    // the partial of rank q = (r - s) mod n, restricted to the chunks
    // still travelling (distance q->c greater than s). One chunk is
    // delivered per hop, so the frame shrinks each step.
    //
    // Held state between steps: q's partial data for in-flight chunks.
    std::vector<float> held; // chunk data, ascending chunk order
    bool held_present = present;
    for (int s = 0; s < n - 1; ++s) {
        const int q_out = (rank_ - s + n) % n;
        std::vector<uint8_t> frame;
        frame.push_back('R');
        putU32(frame, static_cast<uint32_t>(s));
        putU32(frame, static_cast<uint32_t>(q_out));
        frame.push_back(held_present ? 1 : 0);
        if (held_present) {
            if (s == 0) {
                for (int c = 0; c < n; ++c) {
                    if (ringDistance(q_out, c, n) <= s)
                        continue;
                    const auto [lo, hi] = chunkRange(elems, n, c);
                    putF32(frame, flat.data() + lo, hi - lo);
                }
            } else {
                putF32(frame, held.data(), held.size());
            }
        }

        const std::vector<uint8_t> in = channel_->exchange(frame);
        size_t pos = 0;
        if (in.empty() || in[pos++] != 'R')
            throw DistError("allreduce: bad reduce-scatter frame tag");
        const uint32_t in_step = getU32(in, pos);
        const uint32_t q_in = getU32(in, pos);
        const uint32_t want_q =
            static_cast<uint32_t>((rank_ - s - 1 + n) % n);
        if (in_step != static_cast<uint32_t>(s) || q_in != want_q)
            throw DistError("allreduce: reduce-scatter frame out of "
                            "order (ranks out of sync)");
        if (pos >= in.size())
            throw DistError("ring frame underrun");
        const bool in_present = in[pos++] != 0;

        // Unpack: the delivered chunk (distance s+1 == arrival here)
        // lands in the owner buffer; farther chunks are held for the
        // next hop.
        std::vector<float> next_held;
        for (int c = 0; c < n; ++c) {
            const int d = ringDistance(static_cast<int>(q_in), c, n);
            if (d <= s)
                continue;
            const auto [lo, hi] = chunkRange(elems, n, c);
            if (d == s + 1) {
                // c == rank_: delivery.
                if (in_present) {
                    std::vector<float> data(hi - lo);
                    getF32(in, pos, data.data(), data.size());
                    owner_slots[q_in] = std::move(data);
                }
            } else {
                const size_t at = next_held.size();
                next_held.resize(at + (hi - lo));
                if (in_present)
                    getF32(in, pos, next_held.data() + at, hi - lo);
            }
        }
        held = std::move(next_held);
        held_present = in_present;
    }

    // Owner reduction: canonical rank-order tree — the upper levels of
    // the world-size-1 slice tree.
    auto reduced = combineTreeGrad(std::move(owner_slots));
    std::vector<float> my_chunk =
        reduced ? std::move(*reduced)
                : std::vector<float>(my_hi - my_lo, 0.0f);

    // Phase G (allgather): circulate reduced chunks n-1 steps.
    {
        const auto [lo, hi] = chunkRange(elems, n, rank_);
        std::memcpy(flat.data() + lo, my_chunk.data(),
                    (hi - lo) * sizeof(float));
    }
    std::vector<float> carry = std::move(my_chunk);
    for (int t = 0; t < n - 1; ++t) {
        const int c_out = (rank_ - t + n) % n;
        std::vector<uint8_t> frame;
        frame.push_back('G');
        putU32(frame, static_cast<uint32_t>(t));
        putU32(frame, static_cast<uint32_t>(c_out));
        putF32(frame, carry.data(), carry.size());

        const std::vector<uint8_t> in = channel_->exchange(frame);
        size_t pos = 0;
        if (in.empty() || in[pos++] != 'G')
            throw DistError("allreduce: bad allgather frame tag");
        const uint32_t in_step = getU32(in, pos);
        const uint32_t c_in = getU32(in, pos);
        const uint32_t want_c =
            static_cast<uint32_t>((rank_ - t - 1 + n) % n);
        if (in_step != static_cast<uint32_t>(t) || c_in != want_c)
            throw DistError("allreduce: allgather frame out of order "
                            "(ranks out of sync)");
        const auto [lo, hi] = chunkRange(elems, n, c_in);
        carry.resize(hi - lo);
        getF32(in, pos, carry.data(), carry.size());
        std::memcpy(flat.data() + lo, carry.data(),
                    (hi - lo) * sizeof(float));
    }

    if (registry_ != nullptr) {
        registry_->histogram("dist.allreduce_us")
            .record(static_cast<uint64_t>(timer.seconds() * 1e6));
    }
    flushByteCounters();
}

ScalarPartial
RingExchange::reduceLoss(const ScalarPartial &mine)
{
    // Allgather the n partials, then combine along the rank tree.
    std::vector<std::optional<ScalarPartial>> slots(world_);
    slots[rank_] = mine;

    ScalarPartial carry = mine;
    for (int t = 0; t < world_ - 1; ++t) {
        std::vector<uint8_t> frame(sizeof(double) + sizeof(uint64_t));
        std::memcpy(frame.data(), &carry.sum, sizeof(double));
        std::memcpy(frame.data() + sizeof(double), &carry.count,
                    sizeof(uint64_t));
        const std::vector<uint8_t> in = channel_->exchange(frame);
        if (in.size() != frame.size())
            throw DistError("loss allgather: bad frame size");
        std::memcpy(&carry.sum, in.data(), sizeof(double));
        std::memcpy(&carry.count, in.data() + sizeof(double),
                    sizeof(uint64_t));
        slots[(rank_ - t - 1 + world_) % world_] = carry;
    }
    flushByteCounters();
    // count == 0 partials are identity slots, same as empty slices.
    for (auto &slot : slots) {
        if (slot && slot->count == 0)
            slot.reset();
    }
    return combineTreeLoss(std::move(slots));
}

bool
RingExchange::anyStop(bool mine)
{
    uint8_t carry = mine ? 1 : 0;
    bool any = mine;
    for (int t = 0; t < world_ - 1; ++t) {
        const std::vector<uint8_t> in =
            channel_->exchange(std::vector<uint8_t>{carry});
        if (in.size() != 1)
            throw DistError("stop vote: bad frame size");
        carry = in[0];
        any = any || carry != 0;
    }
    flushByteCounters();
    return any;
}

void
RingExchange::allgatherWeights(std::vector<tensor::Variable> &params)
{
    SNS_ASSERT(elem_cuts_.size() ==
                   static_cast<size_t>(world_) + 1,
               "allgatherWeights needs setWeightPartition first");
    const WallTimer timer;

    // Work in flat element space: copy owned values out, circulate,
    // write received ranges back into the tensors they cover.
    const auto readRange = [&](size_t lo, size_t hi) {
        std::vector<float> out(hi - lo);
        size_t at = 0;
        for (auto &param : params) {
            const size_t n = param.value().numel();
            const size_t t_lo = at;
            const size_t t_hi = at + n;
            at = t_hi;
            if (t_hi <= lo || t_lo >= hi)
                continue;
            const size_t from = std::max(lo, t_lo);
            const size_t to = std::min(hi, t_hi);
            std::memcpy(out.data() + (from - lo),
                        param.value().data() + (from - t_lo),
                        (to - from) * sizeof(float));
        }
        return out;
    };
    const auto writeRange = [&](size_t lo, size_t hi,
                                const std::vector<float> &data) {
        size_t at = 0;
        for (auto &param : params) {
            const size_t n = param.value().numel();
            const size_t t_lo = at;
            const size_t t_hi = at + n;
            at = t_hi;
            if (t_hi <= lo || t_lo >= hi)
                continue;
            const size_t from = std::max(lo, t_lo);
            const size_t to = std::min(hi, t_hi);
            std::memcpy(param.valueMutable().data() + (from - t_lo),
                        data.data() + (from - lo),
                        (to - from) * sizeof(float));
        }
    };

    std::vector<float> carry =
        readRange(elem_cuts_[rank_], elem_cuts_[rank_ + 1]);
    for (int t = 0; t < world_ - 1; ++t) {
        std::vector<uint8_t> frame;
        frame.push_back('W');
        putU32(frame, static_cast<uint32_t>(t));
        putF32(frame, carry.data(), carry.size());
        const std::vector<uint8_t> in = channel_->exchange(frame);
        size_t pos = 0;
        if (in.empty() || in[pos++] != 'W')
            throw DistError("weight allgather: bad frame tag");
        const uint32_t in_step = getU32(in, pos);
        if (in_step != static_cast<uint32_t>(t))
            throw DistError("weight allgather: frame out of order");
        const int src = (rank_ - t - 1 + world_) % world_;
        const size_t lo = elem_cuts_[src];
        const size_t hi = elem_cuts_[src + 1];
        carry.resize(hi - lo);
        getF32(in, pos, carry.data(), carry.size());
        writeRange(lo, hi, carry);
    }

    if (registry_ != nullptr) {
        registry_->histogram("dist.allreduce_us")
            .record(static_cast<uint64_t>(timer.seconds() * 1e6));
    }
    flushByteCounters();
}

} // namespace sns::dist
