#include "dist/ring.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <thread>

namespace sns::dist {

namespace {

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw DistError("fcntl(O_NONBLOCK): " +
                        std::string(std::strerror(errno)));
}

/** Endpoint template split into its transport parts. */
struct Endpoint
{
    bool is_unix = false;
    std::string path; ///< unix socket path
    std::string host; ///< tcp host
    int port = 0;     ///< tcp base port
};

Endpoint
parseEndpoint(const std::string &rendezvous)
{
    Endpoint ep;
    if (rendezvous.rfind("unix:", 0) == 0) {
        ep.is_unix = true;
        ep.path = rendezvous.substr(5);
        if (ep.path.empty())
            throw DistError("empty unix rendezvous path: " + rendezvous);
        return ep;
    }
    if (rendezvous.rfind("tcp:", 0) == 0) {
        const std::string rest = rendezvous.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size()) {
            throw DistError("malformed tcp rendezvous (want "
                            "tcp:<host>:<port>): " + rendezvous);
        }
        ep.host = rest.substr(0, colon);
        try {
            ep.port = std::stoi(rest.substr(colon + 1));
        } catch (const std::exception &) {
            ep.port = -1;
        }
        if (ep.port <= 0 || ep.port > 65535)
            throw DistError("bad tcp rendezvous port: " + rendezvous);
        return ep;
    }
    throw DistError("rendezvous must start with unix: or tcp:, got " +
                    rendezvous);
}

int
listenAt(const Endpoint &ep, int rank)
{
    int fd = -1;
    if (ep.is_unix) {
        const std::string path = ep.path + "." + std::to_string(rank);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw DistError("socket(AF_UNIX): " +
                            std::string(std::strerror(errno)));
        ::unlink(path.c_str()); // stale endpoint from a killed run
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path)) {
            ::close(fd);
            throw DistError("unix rendezvous path too long: " + path);
        }
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(fd);
            throw DistError("bind(" + path + "): " +
                            std::string(std::strerror(errno)));
        }
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throw DistError("socket(AF_INET): " +
                            std::string(std::strerror(errno)));
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(ep.port + rank));
        if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
            ::close(fd);
            throw DistError("bad tcp rendezvous host: " + ep.host);
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            ::close(fd);
            throw DistError("bind(" + ep.host + ":" +
                            std::to_string(ep.port + rank) + "): " +
                            std::string(std::strerror(errno)));
        }
    }
    if (::listen(fd, 4) != 0) {
        ::close(fd);
        throw DistError("listen: " + std::string(std::strerror(errno)));
    }
    return fd;
}

int
connectOnce(const Endpoint &ep, int rank)
{
    int fd = -1;
    if (ep.is_unix) {
        const std::string path = ep.path + "." + std::to_string(rank);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(ep.port + rank));
        if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1 ||
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
    }
    return fd;
}

} // namespace

RingChannel::RingChannel(int prev_fd, int next_fd)
    : prev_fd_(prev_fd), next_fd_(next_fd)
{
    setNonBlocking(prev_fd_);
    setNonBlocking(next_fd_);
}

RingChannel::~RingChannel()
{
    if (prev_fd_ >= 0)
        ::close(prev_fd_);
    if (next_fd_ >= 0)
        ::close(next_fd_);
}

std::vector<uint8_t>
RingChannel::exchange(const std::vector<uint8_t> &out, size_t max_bytes)
{
    // Outgoing frame: uint32 LE length prefix + payload (the serve
    // frame format; serve/protocol.hh).
    std::vector<uint8_t> tx(4 + out.size());
    const uint32_t len = static_cast<uint32_t>(out.size());
    std::memcpy(tx.data(), &len, 4);
    std::memcpy(tx.data() + 4, out.data(), out.size());
    size_t tx_pos = 0;

    std::vector<uint8_t> rx_header(4);
    std::vector<uint8_t> rx;
    size_t rx_pos = 0;     // bytes of the current section received
    bool have_len = false; // header parsed, rx holds the payload

    while (tx_pos < tx.size() || !have_len ||
           rx_pos < rx.size()) {
        pollfd fds[2];
        fds[0] = {prev_fd_, POLLIN, 0};
        fds[1] = {next_fd_, POLLOUT, 0};
        const bool want_write = tx_pos < tx.size();
        if (::poll(fds, want_write ? 2 : 1, 30000) <= 0)
            throw DistError("ring peer timed out or poll failed");

        if (want_write && (fds[1].revents & (POLLOUT | POLLERR))) {
            const ssize_t n = ::send(next_fd_, tx.data() + tx_pos,
                                     tx.size() - tx_pos, MSG_NOSIGNAL);
            if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR)
                throw DistError("ring send failed: " +
                                std::string(std::strerror(errno)));
            if (n > 0) {
                tx_pos += static_cast<size_t>(n);
                sent_ += static_cast<uint64_t>(n);
            }
        }

        if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
            uint8_t *dst = have_len ? rx.data() : rx_header.data();
            const size_t want =
                (have_len ? rx.size() : rx_header.size()) - rx_pos;
            if (want > 0) {
                const ssize_t n =
                    ::recv(prev_fd_, dst + rx_pos, want, 0);
                if (n == 0)
                    throw DistError(
                        "ring predecessor closed the connection");
                if (n < 0 && errno != EAGAIN &&
                    errno != EWOULDBLOCK && errno != EINTR)
                    throw DistError("ring recv failed: " +
                                    std::string(std::strerror(errno)));
                if (n > 0) {
                    rx_pos += static_cast<size_t>(n);
                    received_ += static_cast<uint64_t>(n);
                }
            }
            if (!have_len && rx_pos == rx_header.size()) {
                uint32_t rx_len = 0;
                std::memcpy(&rx_len, rx_header.data(), 4);
                if (rx_len > max_bytes)
                    throw DistError("ring frame of " +
                                    std::to_string(rx_len) +
                                    " bytes exceeds the frame bound");
                rx.resize(rx_len);
                rx_pos = 0;
                have_len = true;
            }
        }
    }
    return rx;
}

std::string
rankEndpoint(const std::string &rendezvous, int rank)
{
    const Endpoint ep = parseEndpoint(rendezvous);
    if (ep.is_unix)
        return "unix:" + ep.path + "." + std::to_string(rank);
    return "tcp:" + ep.host + ":" + std::to_string(ep.port + rank);
}

std::shared_ptr<RingChannel>
connectRing(const std::string &rendezvous, int rank, int world)
{
    const Endpoint ep = parseEndpoint(rendezvous);
    const int listen_fd = listenAt(ep, rank);

    // Connect to the successor with a deterministic bounded backoff
    // (the serve client's retry discipline): 600 attempts x 100 ms.
    const int next = (rank + 1) % world;
    int next_fd = -1;
    for (int attempt = 0; attempt < 600; ++attempt) {
        next_fd = connectOnce(ep, next);
        if (next_fd >= 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (next_fd < 0) {
        ::close(listen_fd);
        throw DistError("rank " + std::to_string(rank) +
                        " cannot reach rank " + std::to_string(next) +
                        " at " + rankEndpoint(rendezvous, next));
    }

    const int prev_fd = ::accept(listen_fd, nullptr, nullptr);
    ::close(listen_fd);
    if (ep.is_unix)
        ::unlink((ep.path + "." + std::to_string(rank)).c_str());
    if (prev_fd < 0) {
        ::close(next_fd);
        throw DistError("rank " + std::to_string(rank) +
                        " accept failed: " +
                        std::string(std::strerror(errno)));
    }
    return std::make_shared<RingChannel>(prev_fd, next_fd);
}

std::vector<std::shared_ptr<RingChannel>>
localRing(int world)
{
    // pair[r] connects rank r (write side) to rank r+1 (read side).
    std::vector<std::array<int, 2>> pairs(world);
    for (int r = 0; r < world; ++r) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
            throw DistError("socketpair: " +
                            std::string(std::strerror(errno)));
        pairs[r] = {sv[0], sv[1]};
    }
    std::vector<std::shared_ptr<RingChannel>> ring(world);
    for (int r = 0; r < world; ++r) {
        const int next_fd = pairs[r][0];
        const int prev_fd = pairs[(r + world - 1) % world][1];
        ring[r] = std::make_shared<RingChannel>(prev_fd, next_fd);
    }
    return ring;
}

} // namespace sns::dist
