/**
 * @file
 * Deterministic data-parallel gradient exchange (docs/distributed.md).
 *
 * The bitwise contract: training at any power-of-two world size N
 * produces the same bits as training at world size 1, on the same
 * split. Float addition is not associative, so this cannot fall out of
 * a vanilla ring allreduce (which sums each chunk in rotated rank
 * order — a different association per chunk per world size). Instead
 * the reduction order is fixed *before* the transport is chosen,
 * extending the sns::par lowest-index discipline:
 *
 *  1. Every batch is cut into `grad_slices` (S, a power of two)
 *     contiguous sample slices whose boundaries depend only on the
 *     batch size and S — never on N. Each slice's gradient is one
 *     backward pass, scaled by its sample share.
 *  2. Slice gradients combine along a fixed balanced binary tree over
 *     slice positions (lower-index operand always on the left; empty
 *     slices are skipped identically at every world size).
 *  3. Rank r owns the aligned subtree of slices
 *     [r*S/N, (r+1)*S/N) and computes its partial locally; the
 *     cross-rank reduction applies exactly the remaining upper levels
 *     of the same tree, in rank order.
 *
 * Because N divides S and both are powers of two, every rank partial
 * is an aligned internal node of the world-size-1 tree, and the
 * combined gradient is bit-identical for every admissible N. The ring
 * transport (RingExchange) keeps the promise by relaying *raw* rank
 * partials — each chunk's owner receives all N partials and reduces
 * them locally in canonical tree order, instead of summing in ring
 * arrival order. Loss scalars reduce along the same tree in double
 * precision.
 */

#ifndef SNS_DIST_EXCHANGE_HH
#define SNS_DIST_EXCHANGE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/ring.hh"
#include "tensor/autograd.hh"
#include "verify/diagnostics.hh"

namespace sns::obs {
class Registry;
}

namespace sns::dist {

/**
 * Data-parallel training configuration (TrainerConfig::dist).
 * grad_slices == 0 selects the classic single-process training path;
 * any positive value activates sliced training, for which
 * validateDistConfig() enforces the V-DIST-* rules.
 */
struct DistConfig
{
    /** Number of cooperating ranks (power of two, <= grad_slices). */
    int world_size = 1;

    /** This process's rank in [0, world_size). */
    int rank = 0;

    /**
     * Gradient slices per batch (S above): 0 = plain training, else a
     * power of two divisible by world_size. The value is part of the
     * checkpoint config fingerprint (it shapes the numerics);
     * world_size and rank are deliberately NOT — that is what makes
     * resuming at a different rank count legal.
     */
    int grad_slices = 0;

    /** Ring rendezvous template ("unix:<path>" or "tcp:<host>:<port>")
     * for world_size > 1; ignored when a channel is injected. */
    std::string rendezvous;

    /** In-process ring injection (tests/bench); bypasses rendezvous. */
    std::shared_ptr<RingChannel> channel;

    /** True when sliced (distributed-capable) training is selected. */
    bool active() const { return grad_slices > 0; }
};

/** V-DIST-* checks: world size/rank/slice-count admissibility and the
 * endpoint requirement. `param_tensors` is the model's parameter
 * count (each rank must be able to own a shard). */
verify::Report validateDistConfig(const DistConfig &config,
                                  size_t param_tensors);

/** Contiguous sample range of slice s (boundaries depend only on
 * (n, slices) — world-size independent). */
std::pair<size_t, size_t> sliceRange(size_t n, int slices, int s);

/**
 * ZeRO partition of the parameter list: contiguous runs of whole
 * tensors, balanced by element count. Returns world+1 cut indices
 * (rank r owns tensors [cut[r], cut[r+1])).
 */
std::vector<size_t> partitionParams(const std::vector<size_t> &elems,
                                    int world);

/** A partial loss sum: count == 0 means "no samples" (identity). */
struct ScalarPartial
{
    double sum = 0.0;
    uint64_t count = 0;
};

/** @name Canonical balanced-tree combination
 * `slots` must have power-of-two size; position i is slice/rank i's
 * partial (nullopt = absent). Pairs (2i, 2i+1) combine level by level,
 * lower index on the left; combining with an absent operand is the
 * identity. Gradients add elementwise in float (the same operation at
 * every tree level, which is what makes rank partials composable);
 * losses add in double.
 * @{
 */
std::optional<std::vector<float>>
combineTreeGrad(std::vector<std::optional<std::vector<float>>> slots);
ScalarPartial
combineTreeLoss(std::vector<std::optional<ScalarPartial>> slots);
/** @} */

/** @name Flat parameter views
 * The flat space concatenates tensors in parameters() order.
 * @{
 */
/** Total elements of the parameter list. */
size_t flatSize(const std::vector<tensor::Variable> &params);
/** Gradients scaled by `weight` into one flat vector (params without
 * an accumulated gradient contribute zeros). */
std::vector<float> flattenGrads(const std::vector<tensor::Variable> &params,
                                float weight);
/** Overwrite every parameter's gradient from the flat vector. */
void scatterGrads(std::vector<tensor::Variable> &params,
                  const std::vector<float> &flat);
/** @} */

/**
 * The collective operations sliced training needs, world-size
 * agnostic. trainEpochSliced() drives this interface; LocalExchange
 * (world 1) and RingExchange (world N over a RingChannel) implement
 * it. Every operation is a synchronization point: all ranks must call
 * the same sequence with consistent arguments.
 */
class GradientExchange
{
  public:
    GradientExchange(int world, int rank, int grad_slices)
        : world_(world), rank_(rank), slices_(grad_slices)
    {
    }
    virtual ~GradientExchange() = default;

    int worldSize() const { return world_; }
    int rank() const { return rank_; }
    int gradSlices() const { return slices_; }

    /**
     * Replace this rank's subtree partial (absent when the rank had no
     * samples this batch) with the full canonical tree reduction over
     * all rank partials. Every rank observes identical bits.
     */
    virtual void allreduceGrad(std::vector<float> &flat,
                               bool present) = 0;

    /** Combine per-rank loss partials along the rank tree. */
    virtual ScalarPartial reduceLoss(const ScalarPartial &mine) = 0;

    /** True on every rank iff any rank votes true (stop coherence). */
    virtual bool anyStop(bool mine) = 0;

    /** Element-space ownership cuts (world+1 entries) used by
     * allgatherWeights; derived from partitionParams. */
    void setWeightPartition(std::vector<size_t> elem_cuts);

    /** After a sharded optimizer step: broadcast each rank's owned
     * parameter range so all ranks hold the full updated weights. */
    virtual void
    allgatherWeights(std::vector<tensor::Variable> &params) = 0;

  protected:
    int world_;
    int rank_;
    int slices_;
    std::vector<size_t> elem_cuts_;
};

/** World size 1: this rank's subtree is the whole tree, so every
 * operation is the identity. */
class LocalExchange : public GradientExchange
{
  public:
    explicit LocalExchange(int grad_slices)
        : GradientExchange(1, 0, grad_slices)
    {
    }

    void allreduceGrad(std::vector<float> &, bool) override {}
    ScalarPartial reduceLoss(const ScalarPartial &mine) override
    {
        return mine;
    }
    bool anyStop(bool mine) override { return mine; }
    void allgatherWeights(std::vector<tensor::Variable> &) override {}
};

/**
 * The ring implementation (docs/distributed.md §Allreduce):
 *
 *  - allreduceGrad: the flat vector splits into N owner chunks. A
 *    reduce-scatter phase relays *raw* rank partials around the ring
 *    (step s carries the partials still in flight, shrinking by one
 *    chunk per hop); chunk c's owner buffers all N partials and
 *    reduces them in canonical rank-tree order. A ring allgather then
 *    circulates the reduced chunks. Raw relay costs ~N/2x the optimal
 *    ring bandwidth — the deliberate price of a world-size-invariant
 *    reduction order (the determinism argument in the docs).
 *  - reduceLoss/anyStop: allgather N scalars, combine locally.
 *
 * Records dist.allreduce_us and dist.bytes_sent/received on the
 * registry passed at construction.
 */
class RingExchange : public GradientExchange
{
  public:
    RingExchange(std::shared_ptr<RingChannel> channel, int world,
                 int rank, int grad_slices, obs::Registry *registry);

    /**
     * Ring-wide hello: every rank sends (magic, version, world, rank,
     * config_fp, split_fp, grad_slices, param_elems) to its successor
     * and validates its predecessor's frame — one pass proves the ring
     * is consistent end to end. Throws DistError on any mismatch.
     */
    void handshake(uint64_t config_fp, uint64_t split_fp,
                   uint64_t param_elems);

    void allreduceGrad(std::vector<float> &flat, bool present) override;
    ScalarPartial reduceLoss(const ScalarPartial &mine) override;
    bool anyStop(bool mine) override;
    void allgatherWeights(std::vector<tensor::Variable> &params) override;

  private:
    /** Publish channel byte counters to the obs counters. */
    void flushByteCounters();

    std::shared_ptr<RingChannel> channel_;
    obs::Registry *registry_;
    uint64_t published_sent_ = 0;
    uint64_t published_received_ = 0;
};

} // namespace sns::dist

#endif // SNS_DIST_EXCHANGE_HH
