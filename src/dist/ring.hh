/**
 * @file
 * The training ring: rank-to-rank byte transport for sns::dist
 * (docs/distributed.md §Wire protocol).
 *
 * Topology is a unidirectional ring — rank r writes to rank
 * (r+1) mod N and reads from rank (r-1+N) mod N. Every message is one
 * serve-protocol frame (a little-endian uint32 payload length followed
 * by that many bytes; see serve/protocol.hh), so the training plane
 * speaks the same framing as the serving plane.
 *
 * Every collective step in the allreduce is "send one frame to the
 * successor while receiving one frame from the predecessor", so the
 * channel exposes exactly that duplex primitive: exchange(). It is
 * implemented with non-blocking sockets and poll(2), which makes the
 * ring deadlock-free for any frame size — a blocking write around the
 * whole ring could otherwise wedge with every rank stuck in send()
 * once frames outgrow the kernel socket buffers.
 *
 * Rendezvous endpoints ("unix:<path>" or "tcp:<host>:<port>") are
 * per-world templates: rank r listens at <path>.<r> (or port+r) and
 * connects to rank r+1's endpoint with deterministic bounded backoff.
 * localRing() builds the same ring over socketpairs inside one process
 * for tests, benches, and the TSan leg.
 */

#ifndef SNS_DIST_RING_HH
#define SNS_DIST_RING_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace sns::dist {

/** Transport or protocol failure on the training ring (peer gone,
 * malformed frame, handshake mismatch). */
class DistError : public std::runtime_error
{
  public:
    explicit DistError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/**
 * One rank's pair of ring sockets. Owns both file descriptors;
 * move-only. Byte counters feed the dist.bytes_* obs counters.
 */
class RingChannel
{
  public:
    /** Adopt connected descriptors (prev = read side, next = write
     * side). Both are switched to non-blocking mode. */
    RingChannel(int prev_fd, int next_fd);
    ~RingChannel();

    RingChannel(const RingChannel &) = delete;
    RingChannel &operator=(const RingChannel &) = delete;

    /**
     * One ring step: send `out` as a frame to the successor while
     * receiving one frame from the predecessor; returns the received
     * payload. Throws DistError on peer failure or a frame longer
     * than max_bytes.
     */
    std::vector<uint8_t> exchange(const std::vector<uint8_t> &out,
                                  size_t max_bytes = kMaxFrameBytes);

    uint64_t bytesSent() const { return sent_; }
    uint64_t bytesReceived() const { return received_; }

    /** Sanity bound on a single frame (a corrupt length prefix must
     * not become an allocation). */
    static constexpr size_t kMaxFrameBytes = size_t(1) << 30;

  private:
    int prev_fd_;
    int next_fd_;
    uint64_t sent_ = 0;
    uint64_t received_ = 0;
};

/**
 * Expand a rendezvous template for one rank: "unix:<path>" becomes
 * "<path>.<rank>", "tcp:<host>:<port>" becomes port + rank. Throws
 * DistError on a malformed template.
 */
std::string rankEndpoint(const std::string &rendezvous, int rank);

/**
 * Join the ring as `rank` of `world`: listen at this rank's endpoint,
 * connect to the successor's endpoint (deterministic bounded backoff,
 * ~60 s budget — dataset construction happens before the ring forms,
 * so peers may arrive seconds apart), then accept the predecessor.
 * Throws DistError if the ring cannot form.
 */
std::shared_ptr<RingChannel> connectRing(const std::string &rendezvous,
                                         int rank, int world);

/**
 * An in-process ring of `world` channels over socketpairs (element r
 * is rank r's channel). Used by tests, bench/dist_training, and the
 * TSan leg; identical wire behavior to the socket ring.
 */
std::vector<std::shared_ptr<RingChannel>> localRing(int world);

} // namespace sns::dist

#endif // SNS_DIST_RING_HH
