/**
 * @file
 * The DianNao case study (§5.7, Fig. 9): a parametric generator for the
 * classic CNN-inference accelerator over the Table-13 design space
 * (576 configurations), a cycle-level performance model that produces
 * register activity coefficients for power gating (§3.4.4), and the
 * 65nm -> 15nm technology scaling used by Table 12.
 *
 * The pipeline follows the original three-stage organization:
 *   NFU-1: Tn x Tn multipliers,
 *   NFU-2: Tn adder trees of Tn inputs each (built at the configured
 *          reduction width),
 *   NFU-3: Tn activation units with table-stored piece-wise segments,
 * plus NBin/NBout/SB buffer register banks.
 */

#ifndef SNS_DIANNAO_DIANNAO_HH
#define SNS_DIANNAO_DIANNAO_HH

#include <string>
#include <vector>

#include "diannao/dtype.hh"
#include "graphir/graph.hh"
#include "synth/synthesizer.hh"

namespace sns::diannao {

/** One point of the Table-13 design space. */
struct DianNaoParams
{
    int tn = 16;                       ///< 4, 8, 16, 32
    DataType dtype = DataType::Int16;  ///< Table-13 datatypes
    int pipeline_stages = 3;           ///< 3 or 8 (Table 13)
    int reduction_width = 4;           ///< 4, 8, 16 (NFU-2 tree arity)
    int activation_entries = 8;        ///< 2, 4, 8, 16 segments

    /** Unique configuration name. */
    std::string name() const;

    /** The original paper's configuration (Tn = 16, int16). */
    static DianNaoParams original();
};

/** Built accelerator plus register groups for activity annotation. */
struct DianNaoDesign
{
    graphir::Graph graph;
    DianNaoParams params;
    /** @name Register groups (graph vertex ids)
     * @{
     */
    std::vector<graphir::NodeId> input_regs;   ///< NBin / multiplier in
    std::vector<graphir::NodeId> weight_regs;  ///< SB weight registers
    std::vector<graphir::NodeId> accum_regs;   ///< NFU-2 partial sums
    std::vector<graphir::NodeId> output_regs;  ///< NBout / NFU-3 out
    /** @} */
};

/** Build one configuration. */
DianNaoDesign buildDianNao(const DianNaoParams &params);

/** Enumerate the full 576-point Table-13 design space. */
std::vector<DianNaoParams> dianNaoDesignSpace();

/** Shape of one CNN layer for the performance model. */
struct LayerShape
{
    int in_channels = 0;
    int out_channels = 0;
    int out_x = 0;
    int out_y = 0;
    int kernel_x = 1;
    int kernel_y = 1;
};

/** The AlexNet-on-CIFAR-10-like layer stack the paper evaluates. */
std::vector<LayerShape> alexNetLikeLayers();

/** Cycle-level performance model (the paper's §5.7 in-house model). */
class DianNaoPerfModel
{
  public:
    /** Aggregate execution statistics for a layer stack. */
    struct Result
    {
        double total_cycles = 0.0;
        double mac_utilization = 0.0;   ///< fraction of PEs doing work
        double input_activity = 0.0;    ///< NBin register toggle rate
        double weight_activity = 0.0;   ///< SB register toggle rate
        double accum_activity = 0.0;    ///< NFU-2 register toggle rate
        double output_activity = 0.0;   ///< NBout register toggle rate
    };

    /** Run the layer stack on a configuration. */
    static Result run(const DianNaoParams &params,
                      const std::vector<LayerShape> &layers);

    /**
     * Write the result's activity coefficients onto the design's
     * register groups (enables §3.4.4 power gating in SNS and in the
     * reference synthesizer).
     */
    static void applyActivities(DianNaoDesign &design,
                                const Result &result);
};

/**
 * Scale a 65nm synthesis result to 15nm using Stillmaker & Baas-style
 * factors (the transformation behind row 2 of Table 12).
 */
synth::SynthesisResult scale65To15(const synth::SynthesisResult &result);

/** The original paper's published 65nm DianNao synthesis results. */
synth::SynthesisResult publishedDianNao65nm();

} // namespace sns::diannao

#endif // SNS_DIANNAO_DIANNAO_HH
