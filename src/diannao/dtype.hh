/**
 * @file
 * Bit-accurate software emulation of the DianNao DSE datatypes
 * (Table 13): int8, int16, fp16, bf16, tf32, fp32.
 *
 * Floating-point formats are emulated by rounding an IEEE-754 float32
 * to the target's mantissa width (round-to-nearest-even) and clamping
 * to the target's exponent range; integer formats use symmetric
 * fixed-point quantization with a per-tensor scale. This drives the
 * Fig.-11 accuracy-vs-datatype study.
 */

#ifndef SNS_DIANNAO_DTYPE_HH
#define SNS_DIANNAO_DTYPE_HH

#include <string>
#include <vector>

namespace sns::diannao {

/** The datatypes of the Table-13 design space. */
enum class DataType
{
    Int8,
    Int16,
    Fp16,
    Bf16,
    Tf32,
    Fp32,
};

/** All datatypes in Table-13 order. */
const std::vector<DataType> &allDataTypes();

/** Printable name ("int8", "bf16", ...). */
const char *dataTypeName(DataType dtype);

/** True for the floating-point formats. */
bool isFloating(DataType dtype);

/** Stored mantissa bits (excluding the hidden bit); 0 for integers. */
int mantissaBits(DataType dtype);

/** Exponent field width; 0 for integers. */
int exponentBits(DataType dtype);

/** Total storage bits of one operand. */
int storageBits(DataType dtype);

/**
 * Datapath width the hardware generator uses for this type's
 * multipliers (mantissa datapath for floats, full width for ints).
 */
int datapathWidth(DataType dtype);

/**
 * Round a float32 value to the target floating format
 * (round-to-nearest-even on the mantissa, exponent clamped with
 * overflow to infinity and underflow to zero). Identity for Fp32;
 * must not be called for integer types.
 */
float quantizeFloat(float value, DataType dtype);

/**
 * Symmetric fixed-point quantization: clamp(round(value / scale)) *
 * scale with the signed range of `bits` bits.
 */
float quantizeFixed(float value, int bits, float scale);

/**
 * Quantize a whole tensor's worth of values for the given datatype.
 * Integer types derive a per-call symmetric scale from the max
 * absolute value.
 */
void quantizeBuffer(std::vector<float> &values, DataType dtype);

} // namespace sns::diannao

#endif // SNS_DIANNAO_DTYPE_HH
