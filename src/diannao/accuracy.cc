#include "diannao/accuracy.hh"

#include <algorithm>
#include <cmath>

#include "nn/layers.hh"
#include "nn/optim.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace sns::diannao {

using namespace sns::tensor;

namespace {

/**
 * Synthetic 10-class image dataset (8x8, one channel): each class is a
 * smooth random template (spatially correlated, so convolution is the
 * right inductive bias) plus per-sample noise.
 */
struct Dataset
{
    std::vector<std::vector<float>> inputs;
    std::vector<int> labels;
};

std::vector<std::vector<float>>
makeTemplates(const AccuracyStudyConfig &config, Rng &rng)
{
    const int side = 8;
    SNS_ASSERT(config.input_dim == side * side,
               "accuracy study expects 8x8 inputs");
    std::vector<std::vector<float>> templates;
    for (int c = 0; c < config.classes; ++c) {
        // Smooth field: random low-frequency cosine mixture.
        const double fx = 0.5 + rng.uniform() * 1.5;
        const double fy = 0.5 + rng.uniform() * 1.5;
        const double px = rng.uniform() * 6.28;
        const double py = rng.uniform() * 6.28;
        const double amp = 1.5 + rng.uniform();
        std::vector<float> t(config.input_dim);
        for (int y = 0; y < side; ++y) {
            for (int x = 0; x < side; ++x) {
                t[y * side + x] = static_cast<float>(
                    amp * (std::cos(fx * x + px) +
                           std::sin(fy * y + py)));
            }
        }
        templates.push_back(std::move(t));
    }
    return templates;
}

Dataset
makeDataset(const AccuracyStudyConfig &config, int samples, Rng &rng,
            const std::vector<std::vector<float>> &templates)
{
    Dataset data;
    for (int i = 0; i < samples; ++i) {
        const int label = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(config.classes)));
        std::vector<float> x(config.input_dim);
        for (int j = 0; j < config.input_dim; ++j) {
            x[j] = templates[label][j] +
                   static_cast<float>(rng.normal(0.0, config.noise));
        }
        data.inputs.push_back(std::move(x));
        data.labels.push_back(label);
    }
    return data;
}

/** Quantized (or fp32) matrix-vector product with requantization. */
std::vector<float>
quantizedLinear(const std::vector<float> &x, const std::vector<float> &w,
                const std::vector<float> &b, int in_dim, int out_dim,
                DataType dtype)
{
    std::vector<float> qx = x;
    quantizeBuffer(qx, dtype);
    std::vector<float> out(out_dim, 0.0f);
    for (int o = 0; o < out_dim; ++o) {
        float acc = b[o];
        for (int i = 0; i < in_dim; ++i)
            acc += qx[i] * w[static_cast<size_t>(i) * out_dim + o];
        out[o] = acc;
    }
    // The accumulator leaves NFU-2 and is requantized into NBout.
    quantizeBuffer(out, dtype);
    return out;
}

/**
 * Quantized 3x3 stride-1 pad-1 convolution on an HWC image, mirroring
 * nn::Conv2d's arithmetic with the datatype's rounding at the
 * input/output boundaries (NBin / NBout semantics).
 */
std::vector<float>
quantizedConv3x3(const std::vector<float> &image, int height, int width,
                 int in_channels, const std::vector<float> &w,
                 const std::vector<float> &b, int out_channels,
                 DataType dtype)
{
    std::vector<float> qx = image;
    quantizeBuffer(qx, dtype);
    std::vector<float> out(
        static_cast<size_t>(height) * width * out_channels, 0.0f);
    for (int oy = 0; oy < height; ++oy) {
        for (int ox = 0; ox < width; ++ox) {
            for (int f = 0; f < out_channels; ++f) {
                float acc = b[f];
                int tap = 0;
                for (int ky = 0; ky < 3; ++ky) {
                    for (int kx = 0; kx < 3; ++kx) {
                        for (int c = 0; c < in_channels; ++c, ++tap) {
                            const int iy = oy + ky - 1;
                            const int ix = ox + kx - 1;
                            if (iy < 0 || iy >= height || ix < 0 ||
                                ix >= width) {
                                continue;
                            }
                            acc += qx[(iy * width + ix) * in_channels +
                                      c] *
                                   w[static_cast<size_t>(tap) *
                                         out_channels +
                                     f];
                        }
                    }
                }
                out[(oy * width + ox) * out_channels + f] = acc;
            }
        }
    }
    quantizeBuffer(out, dtype);
    return out;
}

/** 2x2 average pooling on an HWC buffer. */
std::vector<float>
pool2x2(const std::vector<float> &x, int height, int width, int channels)
{
    std::vector<float> out(
        static_cast<size_t>(height / 2) * (width / 2) * channels);
    for (int oy = 0; oy < height / 2; ++oy) {
        for (int ox = 0; ox < width / 2; ++ox) {
            for (int c = 0; c < channels; ++c) {
                const int base =
                    ((2 * oy) * width + 2 * ox) * channels + c;
                out[(oy * (width / 2) + ox) * channels + c] =
                    0.25f * (x[base] + x[base + channels] +
                             x[base + width * channels] +
                             x[base + width * channels + channels]);
            }
        }
    }
    return out;
}

} // namespace

std::vector<AccuracyResult>
runAccuracyStudy(const AccuracyStudyConfig &config)
{
    Rng rng(config.seed);
    const int side = 8;
    const int conv_channels = config.conv_channels;

    const auto templates = makeTemplates(config, rng);
    const Dataset train =
        makeDataset(config, config.train_samples, rng, templates);
    const Dataset test =
        makeDataset(config, config.test_samples, rng, templates);

    // --- Train the fp32 reference CNN: conv3x3 -> relu -> pool ->
    //     fully connected softmax (an AlexNet-in-miniature). ----------
    Rng init_rng = rng.fork();
    nn::Conv2d conv(1, conv_channels, 3, side, side, 1, init_rng);
    const int fc_in = (side / 2) * (side / 2) * conv_channels;
    nn::Linear head(fc_in, config.classes, init_rng);
    std::vector<Variable> params = conv.parameters();
    for (const auto &p : head.parameters())
        params.push_back(p);
    nn::Adam opt(params, 3e-3);

    const int batch = 64;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        for (size_t start = 0; start < train.inputs.size();
             start += batch) {
            const size_t end =
                std::min(train.inputs.size(), start + batch);
            Tensor x({static_cast<int>(end - start), config.input_dim});
            std::vector<int> labels;
            for (size_t i = start; i < end; ++i) {
                for (int j = 0; j < config.input_dim; ++j)
                    x.at2(static_cast<int>(i - start), j) =
                        train.inputs[i][j];
                labels.push_back(train.labels[i]);
            }
            opt.zeroGrad();
            const Variable features = avgPool2x2(
                relu(conv.forward(Variable(x))), conv_channels, side,
                side);
            Variable loss =
                crossEntropyLoss(head.forward(features), labels);
            loss.backward();
            opt.step();
        }
    }

    // Extract trained weights into flat buffers.
    auto flatten = [](const Tensor &t) {
        return std::vector<float>(t.data(), t.data() + t.numel());
    };
    const auto conv_params = conv.parameters();
    const auto head_params = head.parameters();
    const std::vector<float> wc = flatten(conv_params[0].value());
    const std::vector<float> bc = flatten(conv_params[1].value());
    const std::vector<float> wf = flatten(head_params[0].value());
    const std::vector<float> bf = flatten(head_params[1].value());

    // --- Evaluate quantized inference per datatype. --------------------
    std::vector<AccuracyResult> results;
    for (DataType dtype : allDataTypes()) {
        std::vector<float> qwc = wc;
        std::vector<float> qbc = bc;
        std::vector<float> qwf = wf;
        std::vector<float> qbf = bf;
        quantizeBuffer(qwc, dtype);
        quantizeBuffer(qbc, dtype);
        quantizeBuffer(qwf, dtype);
        quantizeBuffer(qbf, dtype);

        int correct = 0;
        for (size_t i = 0; i < test.inputs.size(); ++i) {
            auto fmap = quantizedConv3x3(test.inputs[i], side, side, 1,
                                         qwc, qbc, conv_channels, dtype);
            for (auto &v : fmap)
                v = std::max(v, 0.0f);
            const auto pooled =
                pool2x2(fmap, side, side, conv_channels);
            const auto logits = quantizedLinear(
                pooled, qwf, qbf, fc_in, config.classes, dtype);
            const int argmax = static_cast<int>(
                std::max_element(logits.begin(), logits.end()) -
                logits.begin());
            correct += argmax == test.labels[i];
        }
        AccuracyResult result;
        result.dtype = dtype;
        result.accuracy =
            static_cast<double>(correct) / test.inputs.size();
        results.push_back(result);
    }
    return results;
}

} // namespace sns::diannao
