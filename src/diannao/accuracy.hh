/**
 * @file
 * The datatype-vs-model-accuracy study behind Fig. 11.
 *
 * Substitution note (see DESIGN.md): the paper trains AlexNet on
 * CIFAR-10; we train a small convolutional network (conv3x3 -> relu ->
 * avgpool -> fully connected) with our own nn stack on a synthetic
 * 10-class 8x8-image dataset of smooth class templates, then evaluate
 * inference accuracy under each DianNao datatype using the
 * bit-accurate emulation in dtype.hh (weights and activations
 * quantized at every NBin/NBout boundary, exactly as the accelerator
 * would). The relevant behaviour — classification accuracy saturating
 * beyond int16 while int8 loses accuracy — is produced by genuinely
 * quantized inference of a genuinely trained network.
 */

#ifndef SNS_DIANNAO_ACCURACY_HH
#define SNS_DIANNAO_ACCURACY_HH

#include <vector>

#include "diannao/dtype.hh"

namespace sns::diannao {

/** Accuracy-study configuration. */
struct AccuracyStudyConfig
{
    int classes = 10;
    int input_dim = 64;     ///< 8x8 synthetic "images"
    int conv_channels = 6; ///< feature maps in the conv layer
    int train_samples = 1500;
    int test_samples = 400;
    int epochs = 40;
    double noise = 3.2;     ///< intra-class noise level (hard task)
    uint64_t seed = 0xacc;
};

/** Accuracy of one datatype. */
struct AccuracyResult
{
    DataType dtype;
    double accuracy = 0.0;  ///< top-1 classification accuracy
};

/**
 * Train the reference network in fp32, then evaluate quantized
 * inference for every Table-13 datatype.
 */
std::vector<AccuracyResult> runAccuracyStudy(
    const AccuracyStudyConfig &config = AccuracyStudyConfig());

} // namespace sns::diannao

#endif // SNS_DIANNAO_ACCURACY_HH
