#include "diannao/dtype.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "util/logging.hh"

namespace sns::diannao {

const std::vector<DataType> &
allDataTypes()
{
    static const std::vector<DataType> types = {
        DataType::Int8, DataType::Int16, DataType::Fp16,
        DataType::Bf16, DataType::Tf32,  DataType::Fp32,
    };
    return types;
}

const char *
dataTypeName(DataType dtype)
{
    switch (dtype) {
      case DataType::Int8:
        return "int8";
      case DataType::Int16:
        return "int16";
      case DataType::Fp16:
        return "fp16";
      case DataType::Bf16:
        return "bf16";
      case DataType::Tf32:
        return "tf32";
      case DataType::Fp32:
        return "fp32";
    }
    panic("unhandled DataType");
}

bool
isFloating(DataType dtype)
{
    return dtype != DataType::Int8 && dtype != DataType::Int16;
}

int
mantissaBits(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp16:
        return 10;
      case DataType::Bf16:
        return 7;
      case DataType::Tf32:
        return 10;
      case DataType::Fp32:
        return 23;
      default:
        return 0;
    }
}

int
exponentBits(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp16:
        return 5;
      case DataType::Bf16:
      case DataType::Tf32:
      case DataType::Fp32:
        return 8;
      default:
        return 0;
    }
}

int
storageBits(DataType dtype)
{
    switch (dtype) {
      case DataType::Int8:
        return 8;
      case DataType::Int16:
        return 16;
      case DataType::Fp16:
      case DataType::Bf16:
        return 16;
      case DataType::Tf32:
        return 19;
      case DataType::Fp32:
        return 32;
    }
    panic("unhandled DataType");
}

int
datapathWidth(DataType dtype)
{
    switch (dtype) {
      case DataType::Int8:
        return 8;
      case DataType::Int16:
        return 16;
      case DataType::Bf16:
        return 8;  // 7+1 mantissa bits
      case DataType::Fp16:
      case DataType::Tf32:
        return 11; // 10+1 mantissa bits
      case DataType::Fp32:
        return 24; // 23+1 mantissa bits
    }
    panic("unhandled DataType");
}

float
quantizeFloat(float value, DataType dtype)
{
    SNS_ASSERT(isFloating(dtype), "quantizeFloat on integer type");
    if (dtype == DataType::Fp32 || !std::isfinite(value))
        return value;

    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));

    // Round-to-nearest-even truncation of the mantissa.
    const int drop = 23 - mantissaBits(dtype);
    const uint32_t half = 1u << (drop - 1);
    const uint32_t mask = (1u << drop) - 1;
    const uint32_t tail = bits & mask;
    bits &= ~mask;
    if (tail > half || (tail == half && (bits & (1u << drop))))
        bits += 1u << drop;

    float rounded;
    std::memcpy(&rounded, &bits, sizeof(rounded));

    // Exponent clamping for narrow-exponent formats (fp16).
    if (exponentBits(dtype) < 8) {
        const int ebits = exponentBits(dtype);
        const float max_mag =
            std::ldexp(2.0f - std::ldexp(1.0f, -mantissaBits(dtype)),
                       (1 << (ebits - 1)) - 1);
        const float min_normal =
            std::ldexp(1.0f, 2 - (1 << (ebits - 1)));
        if (std::fabs(rounded) > max_mag) {
            rounded = std::copysign(
                std::numeric_limits<float>::infinity(), rounded);
        } else if (rounded != 0.0f &&
                   std::fabs(rounded) < min_normal) {
            // Flush denormals to zero (DianNao-style simple hardware).
            rounded = std::copysign(0.0f, rounded);
        }
    }
    return rounded;
}

float
quantizeFixed(float value, int bits, float scale)
{
    SNS_ASSERT(bits >= 2 && bits <= 32, "bad fixed-point width");
    SNS_ASSERT(scale > 0.0f, "fixed-point scale must be positive");
    const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    float q = std::nearbyint(value / scale);
    q = std::clamp(q, -qmax - 1.0f, qmax);
    return q * scale;
}

void
quantizeBuffer(std::vector<float> &values, DataType dtype)
{
    if (dtype == DataType::Fp32)
        return;
    if (isFloating(dtype)) {
        for (float &v : values)
            v = quantizeFloat(v, dtype);
        return;
    }
    // Fixed-point hardware semantics (as in the original DianNao): one
    // global format with a fixed decimal position shared by weights
    // and activations — here Qm.n covering [-32, 32). int16 leaves 11
    // fractional bits (plenty); int8 leaves only 2, which is where its
    // accuracy loss comes from.
    const int bits = storageBits(dtype);
    const float scale = 32.0f / static_cast<float>(1 << (bits - 1));
    for (float &v : values)
        v = quantizeFixed(v, bits, scale);
}

} // namespace sns::diannao
