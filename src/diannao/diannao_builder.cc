/**
 * @file
 * GraphIR construction for the parametric DianNao accelerator.
 */

#include "diannao/diannao.hh"

#include "netlist/circuit_builder.hh"
#include "util/logging.hh"

namespace sns::diannao {

using graphir::NodeId;
using graphir::NodeType;
using netlist::CircuitBuilder;

std::string
DianNaoParams::name() const
{
    return std::string("diannao_t") + std::to_string(tn) + "_" +
           dataTypeName(dtype) + "_s" + std::to_string(pipeline_stages) +
           "_r" + std::to_string(reduction_width) + "_a" +
           std::to_string(activation_entries);
}

DianNaoParams
DianNaoParams::original()
{
    DianNaoParams params;
    params.tn = 16;
    params.dtype = DataType::Int16;
    params.pipeline_stages = 3;
    params.reduction_width = 4;
    params.activation_entries = 8;
    return params;
}

namespace {

/**
 * One multiplier PE. Integer types are a single multiplier; floating
 * types decompose into mantissa multiply + exponent add + normalize
 * shift, which is how the datatype reshapes the hardware.
 */
NodeId
buildMultiplier(CircuitBuilder &cb, DataType dtype, NodeId a, NodeId b)
{
    const int mant = datapathWidth(dtype);
    if (!isFloating(dtype))
        return cb.mul(2 * mant, a, b);

    const int exp = exponentBits(dtype);
    const NodeId mant_prod = cb.mul(2 * mant, a, b);
    const NodeId exp_sum = cb.add(exp, a, b);
    const NodeId norm = cb.shifter(2 * mant, mant_prod, exp_sum);
    return norm;
}

/**
 * One two-input adder of the configured datatype. Integer addition is
 * a single adder; floating-point addition needs the full align/add/
 * normalize datapath (exponent compare, mantissa align shifter, adder,
 * renormalize shifter) — which is why floating NFU-2 trees dominate
 * the accelerator's area at equal storage width.
 */
NodeId
buildAdder(CircuitBuilder &cb, DataType dtype, int acc_width, NodeId a,
           NodeId b)
{
    if (!isFloating(dtype))
        return cb.add(acc_width, a, b);
    const int exp = exponentBits(dtype);
    const NodeId exp_cmp = cb.lgt(exp, a, b);
    const NodeId aligned = cb.shifter(acc_width, b, exp_cmp);
    const NodeId sum = cb.add(acc_width, a, aligned);
    return cb.shifter(acc_width, sum, exp_cmp); // renormalize
}

/**
 * An NFU-2 adder tree over `inputs` at the configured reduction width:
 * inputs are grouped `reduction_width` at a time, each group reduced by
 * a binary tree of datatype-appropriate adders and registered before
 * the next level (wider reduction means fewer pipeline cut points and
 * longer combinational runs).
 */
NodeId
buildReductionTree(CircuitBuilder &cb, DataType dtype, int acc_width,
                   int reduction_width, std::vector<NodeId> inputs,
                   std::vector<NodeId> &accum_regs)
{
    while (inputs.size() > 1) {
        std::vector<NodeId> next;
        for (size_t base = 0; base < inputs.size();
             base += reduction_width) {
            const size_t end = std::min(
                inputs.size(), base + static_cast<size_t>(reduction_width));
            std::vector<NodeId> group(inputs.begin() + base,
                                      inputs.begin() + end);
            while (group.size() > 1) {
                std::vector<NodeId> level;
                for (size_t i = 0; i + 1 < group.size(); i += 2) {
                    level.push_back(buildAdder(cb, dtype, acc_width,
                                               group[i], group[i + 1]));
                }
                if (group.size() % 2 == 1)
                    level.push_back(group.back());
                group = std::move(level);
            }
            const NodeId staged = cb.reg(acc_width, group.front());
            accum_regs.push_back(staged);
            next.push_back(staged);
        }
        inputs = std::move(next);
    }
    return inputs.front();
}

} // namespace

DianNaoDesign
buildDianNao(const DianNaoParams &params)
{
    SNS_ASSERT(params.tn >= 2, "Tn must be at least 2");
    CircuitBuilder cb(params.name());
    DianNaoDesign design;
    design.params = params;

    const int width = datapathWidth(params.dtype);
    const int acc_width = 2 * width;
    const bool deep = params.pipeline_stages >= 8;

    // --- NBin: Tn input-neuron registers fed from the input port. ----
    const NodeId stream = cb.input(width);
    std::vector<NodeId> neurons;
    for (int i = 0; i < params.tn; ++i) {
        const NodeId reg = cb.reg(width, stream);
        design.input_regs.push_back(reg);
        neurons.push_back(reg);
    }

    // --- NFU-1: Tn x Tn multipliers with SB weight registers. --------
    // Weights stream from the SB port into the per-PE weight registers.
    const NodeId sb_stream = cb.input(width);
    std::vector<std::vector<NodeId>> products(params.tn);
    for (int out = 0; out < params.tn; ++out) {
        for (int in = 0; in < params.tn; ++in) {
            const NodeId weight = cb.reg(width, sb_stream);
            design.weight_regs.push_back(weight);
            NodeId product =
                buildMultiplier(cb, params.dtype, neurons[in], weight);
            if (deep) {
                // 8-stage pipeline: register the raw products too.
                product = cb.reg(acc_width, product);
                design.accum_regs.push_back(product);
            }
            products[out].push_back(product);
        }
    }

    // --- NFU-2: Tn adder trees. ---------------------------------------
    std::vector<NodeId> sums;
    for (int out = 0; out < params.tn; ++out) {
        const NodeId sum = buildReductionTree(
            cb, params.dtype, acc_width, params.reduction_width,
            std::move(products[out]), design.accum_regs);
        // Partial-sum accumulator (output-stationary over input tiles).
        const NodeId acc = cb.dff(acc_width);
        cb.connect(buildAdder(cb, params.dtype, acc_width, sum, acc),
                   acc);
        design.accum_regs.push_back(acc);
        sums.push_back(acc);
    }

    // --- NFU-3: Tn activation units (piece-wise approximation). -------
    std::vector<NodeId> outputs;
    for (int out = 0; out < params.tn; ++out) {
        std::vector<NodeId> breakpoints;
        std::vector<NodeId> slopes;
        std::vector<NodeId> offsets;
        std::vector<NodeId> hits;
        for (int seg = 0; seg < params.activation_entries; ++seg) {
            const NodeId breakpoint = cb.dff(acc_width);
            hits.push_back(cb.lgt(acc_width, sums[out], breakpoint));
            slopes.push_back(cb.dff(width));
            offsets.push_back(cb.dff(acc_width));
        }
        const NodeId which = cb.reduceTree(NodeType::Or, 8, hits);
        const NodeId slope = cb.muxTree(width, which, slopes);
        const NodeId offset = cb.muxTree(acc_width, which, offsets);
        NodeId scaled = cb.mul(acc_width, slope, sums[out]);
        if (deep)
            scaled = cb.reg(acc_width, scaled);
        const NodeId activated = cb.add(acc_width, scaled, offset);

        // NBout register.
        const NodeId out_reg = cb.reg(acc_width, activated);
        design.output_regs.push_back(out_reg);
        outputs.push_back(out_reg);
    }

    // Output drain mux.
    const NodeId drain_sel = cb.input(8);
    const NodeId drained = cb.muxTree(acc_width, drain_sel, outputs);
    cb.output(acc_width, {drained});

    design.graph = cb.build();
    return design;
}

std::vector<DianNaoParams>
dianNaoDesignSpace()
{
    std::vector<DianNaoParams> space;
    for (int tn : {4, 8, 16, 32}) {
        for (DataType dtype : allDataTypes()) {
            for (int stages : {3, 8}) {
                for (int reduction : {4, 8, 16}) {
                    for (int entries : {2, 4, 8, 16}) {
                        DianNaoParams params;
                        params.tn = tn;
                        params.dtype = dtype;
                        params.pipeline_stages = stages;
                        params.reduction_width = reduction;
                        params.activation_entries = entries;
                        space.push_back(params);
                    }
                }
            }
        }
    }
    SNS_ASSERT(space.size() == 576, "Table 13 expects 576 points");
    return space;
}

} // namespace sns::diannao
