/**
 * @file
 * Cycle-level DianNao performance model and the Table-12 technology
 * scaling helpers.
 */

#include "diannao/diannao.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sns::diannao {

std::vector<LayerShape>
alexNetLikeLayers()
{
    // A CIFAR-10-scaled AlexNet-style stack: five conv layers and two
    // fully-connected layers (FC layers have out_x = out_y = 1 and a
    // 1x1 kernel over "in_channels" inputs). Channel counts follow the
    // AlexNet habit of multiples of 48/112/176 — they tile exactly at
    // Tn <= 16 but leave PEs idle at Tn = 32, which is the utilization
    // cliff behind the paper's Fig.-10 optimum.
    return {
        {3, 48, 32, 32, 3, 3},    // conv1
        {48, 112, 16, 16, 3, 3},  // conv2
        {112, 176, 8, 8, 3, 3},   // conv3
        {176, 112, 8, 8, 3, 3},   // conv4
        {112, 112, 4, 4, 3, 3},   // conv5
        {1792, 432, 1, 1, 1, 1},  // fc6
        {432, 10, 1, 1, 1, 1},    // fc7
    };
}

DianNaoPerfModel::Result
DianNaoPerfModel::run(const DianNaoParams &params,
                      const std::vector<LayerShape> &layers)
{
    SNS_ASSERT(!layers.empty(), "perf model needs at least one layer");
    const double tn = params.tn;

    double total_cycles = 0.0;
    double busy_weighted_util = 0.0;
    double weight_reload_cycles = 0.0;
    double output_write_cycles = 0.0;

    for (const auto &layer : layers) {
        const double positions =
            static_cast<double>(layer.out_x) * layer.out_y;
        const double in_taps = static_cast<double>(layer.in_channels) *
                               layer.kernel_x * layer.kernel_y;
        // Tiling: ceil over both neuron dimensions; the ragged last
        // tiles leave PEs idle, which is what drives utilization (and
        // therefore clock-gating activity) below 1.0.
        const double in_tiles = std::ceil(in_taps / tn);
        const double out_tiles =
            std::ceil(static_cast<double>(layer.out_channels) / tn);
        const double cycles = positions * in_tiles * out_tiles;

        const double useful_macs =
            positions * in_taps * layer.out_channels;
        const double offered_macs = cycles * tn * tn;
        busy_weighted_util += useful_macs;
        total_cycles += cycles;
        (void)offered_macs;

        // SB traffic: one weight tile reload per (in_tile, out_tile).
        weight_reload_cycles += in_tiles * out_tiles;
        // NBout writes once per output tile per position.
        output_write_cycles += positions * out_tiles;
    }

    Result result;
    result.total_cycles = total_cycles;
    result.mac_utilization = std::min(
        1.0, busy_weighted_util / (total_cycles * tn * tn));

    // Register activity coefficients in [0, 1]:
    //  - input (NBin) registers shift a new neuron nearly every cycle,
    //  - synapse registers stream a fresh SB word every busy cycle
    //    (DianNao is NOT weight-stationary: SB supplies Tn x Tn
    //    synapses per cycle, which is why its power grows so quickly
    //    with Tn),
    //  - accumulator registers toggle when their PE column is busy,
    //  - output registers toggle once per produced output.
    result.input_activity = std::min(1.0, 0.9 * result.mac_utilization +
                                              0.1);
    result.weight_activity =
        std::min(1.0, 0.9 * result.mac_utilization + 0.05);
    (void)weight_reload_cycles;
    result.accum_activity = result.mac_utilization;
    result.output_activity =
        std::min(1.0, output_write_cycles / total_cycles + 0.05);
    return result;
}

void
DianNaoPerfModel::applyActivities(DianNaoDesign &design,
                                  const Result &result)
{
    // Clock gating is imperfect in real silicon: the clock tree, the
    // gating cells themselves, and enable fan-in keep toggling even
    // when a register bank is idle. Model that as a residual activity
    // floor — without it, scaling Tn up looks free because idle PEs
    // would cost nothing.
    constexpr double kGatingResidual = 0.30;
    auto apply = [&design](const std::vector<graphir::NodeId> &group,
                           double activity) {
        const double effective =
            kGatingResidual + (1.0 - kGatingResidual) * activity;
        for (graphir::NodeId id : group)
            design.graph.setActivity(id, std::clamp(effective, 0.0, 1.0));
    };
    apply(design.input_regs, result.input_activity);
    apply(design.weight_regs, result.weight_activity);
    apply(design.accum_regs, result.accum_activity);
    apply(design.output_regs, result.output_activity);
}

synth::SynthesisResult
scale65To15(const synth::SynthesisResult &result)
{
    // Stillmaker & Baas (2017)-style scaling factors from 65nm to
    // 15nm, matching the transformation between rows 1 and 2 of the
    // paper's Table 12 (area x0.115, delay x0.324, power x0.499).
    synth::SynthesisResult scaled = result;
    scaled.area_um2 = result.area_um2 * 0.115;
    scaled.timing_ps = result.timing_ps * 0.324;
    scaled.power_mw = result.power_mw * 0.499;
    return scaled;
}

synth::SynthesisResult
publishedDianNao65nm()
{
    // Row 1 of Table 12: the DianNao paper's published 65nm synthesis.
    synth::SynthesisResult result;
    result.power_mw = 132.0;
    result.area_um2 = 0.846563e6; // 0.846563 mm^2
    result.timing_ps = 1020.0;    // 1.02 ns
    return result;
}

} // namespace sns::diannao
