#include "nn/layers.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::nn {

using namespace sns::tensor;

size_t
Module::parameterCount() const
{
    size_t total = 0;
    for (const auto &param : parameters())
        total += param.value().numel();
    return total;
}

Linear::Linear(int in_features, int out_features, Rng &rng)
    : in_(in_features), out_(out_features)
{
    SNS_ASSERT(in_features > 0 && out_features > 0,
               "Linear dimensions must be positive");
    const float bound =
        std::sqrt(6.0f / static_cast<float>(in_features + out_features));
    weight_ = Variable(
        Tensor::uniform({in_features, out_features}, rng, -bound, bound),
        /*requires_grad=*/true);
    bias_ = Variable(Tensor::zeros({out_features}), /*requires_grad=*/true);
}

Variable
Linear::forward(const Variable &x) const
{
    const auto &shape = x.value().shape();
    SNS_ASSERT(!shape.empty() && shape.back() == in_,
               "Linear input width mismatch: got ",
               x.value().shapeString(), ", expected last dim ", in_);
    if (x.value().ndim() == 2)
        return addBias(matmul(x, weight_), bias_);

    // Fold leading dims into rows, multiply, restore the shape.
    SNS_ASSERT(x.value().ndim() == 3, "Linear supports 2-D or 3-D input");
    const int b = shape[0];
    const int t = shape[1];
    // Reshape is free (value copy shares nothing but is just a tensor
    // copy); route through a tape-aware reshape by using matmul on a
    // reshaped view of the same Variable is not possible directly, so
    // we implement 3-D as per-batch bmm against a broadcast weight.
    // Cheaper and simpler: treat [B,T,in] as [(B*T), in] — the tape op
    // below handles it.
    return reshape(addBias(matmul(reshape(x, {b * t, in_}), weight_),
                           bias_),
                   {b, t, out_});
}

std::vector<Variable>
Linear::parameters() const
{
    return {weight_, bias_};
}

Embedding::Embedding(int vocab_size, int dim, Rng &rng) : dim_(dim)
{
    SNS_ASSERT(vocab_size > 0 && dim > 0,
               "Embedding dimensions must be positive");
    weight_ = Variable(Tensor::randn({vocab_size, dim}, rng, 0.02f),
                       /*requires_grad=*/true);
}

Variable
Embedding::forward(const std::vector<int> &ids,
                   std::vector<int> out_shape) const
{
    return embedding(weight_, ids, std::move(out_shape));
}

std::vector<Variable>
Embedding::parameters() const
{
    return {weight_};
}

LayerNorm::LayerNorm(int dim)
{
    SNS_ASSERT(dim > 0, "LayerNorm dim must be positive");
    gamma_ = Variable(Tensor::full({dim}, 1.0f), /*requires_grad=*/true);
    beta_ = Variable(Tensor::zeros({dim}), /*requires_grad=*/true);
}

Variable
LayerNorm::forward(const Variable &x) const
{
    return layerNorm(x, gamma_, beta_);
}

std::vector<Variable>
LayerNorm::parameters() const
{
    return {gamma_, beta_};
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int height,
               int width, int pad, Rng &rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      height_(height),
      width_(width),
      pad_(pad),
      out_h_(height + 2 * pad - kernel + 1),
      out_w_(width + 2 * pad - kernel + 1)
{
    SNS_ASSERT(out_h_ > 0 && out_w_ > 0,
               "Conv2d kernel larger than padded input");
    const int fan_in = kernel * kernel * in_channels;
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + out_channels));
    weight_ = Variable(
        Tensor::uniform({fan_in, out_channels}, rng, -bound, bound),
        /*requires_grad=*/true);
    bias_ = Variable(Tensor::zeros({out_channels}),
                     /*requires_grad=*/true);
}

Variable
Conv2d::forward(const Variable &x) const
{
    const int batch = x.value().dim(0);
    const Variable cols = im2col(x, in_channels_, height_, width_,
                                 kernel_, kernel_, pad_);
    const Variable y = addBias(matmul(cols, weight_), bias_);
    return reshape(y, {batch, out_h_ * out_w_ * out_channels_});
}

std::vector<Variable>
Conv2d::parameters() const
{
    return {weight_, bias_};
}

Mlp::Mlp(std::vector<int> dims, Rng &rng, Activation activation)
    : activation_(activation)
{
    SNS_ASSERT(dims.size() >= 2, "Mlp needs at least input and output dims");
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Variable
Mlp::forward(const Variable &x) const
{
    Variable h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i].forward(h);
        if (i + 1 < layers_.size()) {
            switch (activation_) {
              case Activation::Relu:
                h = relu(h);
                break;
              case Activation::Gelu:
                h = gelu(h);
                break;
              case Activation::Tanh:
                h = tanhOp(h);
                break;
            }
        }
    }
    return h;
}

std::vector<int>
Mlp::layerDims() const
{
    std::vector<int> dims;
    dims.reserve(layers_.size() + 1);
    dims.push_back(layers_.front().inFeatures());
    for (const auto &layer : layers_)
        dims.push_back(layer.outFeatures());
    return dims;
}

std::vector<Variable>
Mlp::parameters() const
{
    std::vector<Variable> params;
    for (const auto &layer : layers_) {
        for (const auto &param : layer.parameters())
            params.push_back(param);
    }
    return params;
}

} // namespace sns::nn
