#include "nn/optim.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::nn {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params))
{
    for (const auto &param : params_) {
        SNS_ASSERT(param.requiresGrad(),
                   "optimizer parameter does not require grad");
    }
}

void
Optimizer::zeroGrad()
{
    for (auto &param : params_)
        param.zeroGrad();
}

void
Optimizer::setStateScalars(const std::vector<int64_t> &scalars)
{
    SNS_ASSERT(scalars.empty(),
               "optimizer has no scalar state to restore");
}

Sgd::Sgd(std::vector<Variable> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    velocity_.reserve(params_.size());
    for (const auto &param : params_)
        velocity_.emplace_back(param.value().shape());
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        auto &param = params_[i];
        if (!param.hasGrad())
            continue;
        Tensor &vel = velocity_[i];
        vel.scaleInPlace(static_cast<float>(momentum_));
        vel.addScaled(param.grad(), 1.0f);
        param.valueMutable().addScaled(vel, static_cast<float>(-lr_));
    }
}

std::vector<const Tensor *>
Sgd::stateTensors() const
{
    std::vector<const Tensor *> state;
    state.reserve(velocity_.size());
    for (const auto &vel : velocity_)
        state.push_back(&vel);
    return state;
}

std::vector<Tensor *>
Sgd::stateTensorsMutable()
{
    std::vector<Tensor *> state;
    state.reserve(velocity_.size());
    for (auto &vel : velocity_)
        state.push_back(&vel);
    return state;
}

Adam::Adam(std::vector<Variable> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      owned_end_(params_.size())
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto &param : params_) {
        m_.emplace_back(param.value().shape());
        v_.emplace_back(param.value().shape());
    }
}

void
Adam::shardMoments(size_t begin, size_t end)
{
    SNS_ASSERT(begin <= end && end <= params_.size(),
               "Adam shard range outside the parameter list");
    owned_begin_ = begin;
    owned_end_ = end;
    for (size_t i = 0; i < params_.size(); ++i) {
        if (i >= begin && i < end)
            continue;
        m_[i] = Tensor();
        v_[i] = Tensor();
    }
}

const Tensor &
Adam::firstMoment(size_t i) const
{
    SNS_ASSERT(i >= owned_begin_ && i < owned_end_,
               "first moment of a parameter this shard does not own");
    return m_[i];
}

const Tensor &
Adam::secondMoment(size_t i) const
{
    SNS_ASSERT(i >= owned_begin_ && i < owned_end_,
               "second moment of a parameter this shard does not own");
    return v_[i];
}

void
Adam::setMoments(size_t i, const Tensor &m, const Tensor &v)
{
    SNS_ASSERT(i >= owned_begin_ && i < owned_end_,
               "moments of a parameter this shard does not own");
    SNS_ASSERT(m.numel() == params_[i].value().numel() &&
                   v.numel() == params_[i].value().numel(),
               "restored Adam moments do not match the parameter shape");
    m_[i] = m;
    v_[i] = v;
}

void
Adam::step()
{
    ++step_count_;
    const double bias1 = 1.0 - std::pow(beta1_, step_count_);
    const double bias2 = 1.0 - std::pow(beta2_, step_count_);
    const float alpha =
        static_cast<float>(lr_ * std::sqrt(bias2) / bias1);

    for (size_t i = owned_begin_; i < owned_end_; ++i) {
        auto &param = params_[i];
        if (!param.hasGrad())
            continue;
        const Tensor &grad = param.grad();
        Tensor &m = m_[i];
        Tensor &v = v_[i];
        Tensor &value = param.valueMutable();
        const float b1 = static_cast<float>(beta1_);
        const float b2 = static_cast<float>(beta2_);
        for (size_t j = 0; j < value.numel(); ++j) {
            const float g = grad[j];
            m[j] = b1 * m[j] + (1.0f - b1) * g;
            v[j] = b2 * v[j] + (1.0f - b2) * g * g;
            value[j] -= alpha * m[j] /
                        (std::sqrt(v[j]) + static_cast<float>(eps_));
        }
    }
}

std::vector<const Tensor *>
Adam::stateTensors() const
{
    std::vector<const Tensor *> state;
    state.reserve(2 * (owned_end_ - owned_begin_));
    for (size_t i = owned_begin_; i < owned_end_; ++i)
        state.push_back(&m_[i]);
    for (size_t i = owned_begin_; i < owned_end_; ++i)
        state.push_back(&v_[i]);
    return state;
}

std::vector<Tensor *>
Adam::stateTensorsMutable()
{
    std::vector<Tensor *> state;
    state.reserve(2 * (owned_end_ - owned_begin_));
    for (size_t i = owned_begin_; i < owned_end_; ++i)
        state.push_back(&m_[i]);
    for (size_t i = owned_begin_; i < owned_end_; ++i)
        state.push_back(&v_[i]);
    return state;
}

std::vector<int64_t>
Adam::stateScalars() const
{
    return {static_cast<int64_t>(step_count_)};
}

void
Adam::setStateScalars(const std::vector<int64_t> &scalars)
{
    SNS_ASSERT(scalars.size() == 1,
               "Adam state has exactly one scalar (the step counter)");
    step_count_ = static_cast<long>(scalars[0]);
}

double
clipGradNorm(const std::vector<Variable> &params, double max_norm)
{
    double sq = 0.0;
    for (const auto &param : params) {
        if (!param.hasGrad())
            continue;
        const Tensor &grad = param.grad();
        for (size_t i = 0; i < grad.numel(); ++i)
            sq += static_cast<double>(grad[i]) * grad[i];
    }
    const double norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0.0) {
        const double factor = max_norm / norm;
        for (auto param : params)
            param.scaleGrad(factor);
    }
    return norm;
}

} // namespace sns::nn
