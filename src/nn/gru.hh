/**
 * @file
 * A gated recurrent unit cell (Cho et al. 2014), used by the SeqGAN
 * generator and discriminator (§4.2.2 of the paper).
 */

#ifndef SNS_NN_GRU_HH
#define SNS_NN_GRU_HH

#include "nn/layers.hh"

namespace sns::nn {

/**
 * One GRU step:
 *
 *   z = sigmoid(x Wz + h Uz + bz)
 *   r = sigmoid(x Wr + h Ur + br)
 *   n = tanh(x Wn + (r * h) Un + bn)
 *   h' = (1 - z) * n + z * h
 */
class GruCell : public Module
{
  public:
    GruCell(int input_size, int hidden_size, Rng &rng);

    /**
     * Advance the recurrence by one step.
     * @param x input [B, input_size]
     * @param h previous hidden state [B, hidden_size]
     * @return next hidden state [B, hidden_size]
     */
    Variable step(const Variable &x, const Variable &h) const;

    /** A zero initial hidden state for the given batch size. */
    Variable initialState(int batch) const;

    int hiddenSize() const { return hidden_; }

    std::vector<Variable> parameters() const override;

  private:
    int hidden_;
    Linear xz_;
    Linear hz_;
    Linear xr_;
    Linear hr_;
    Linear xn_;
    Linear hn_;
};

} // namespace sns::nn

#endif // SNS_NN_GRU_HH
