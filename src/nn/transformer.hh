/**
 * @file
 * Transformer encoder building blocks (Vaswani et al. 2017) in the
 * light-weight configuration the Circuitformer uses (Table 2 of the
 * paper: 2 hidden layers, 2 attention heads, 128-wide embeddings).
 *
 * Layers are post-norm (residual then LayerNorm), matching the
 * HuggingFace/BERT encoder the paper augments. Padding is handled with
 * per-sequence valid lengths: attention masks padded keys and pooling
 * averages only valid positions.
 */

#ifndef SNS_NN_TRANSFORMER_HH
#define SNS_NN_TRANSFORMER_HH

#include <memory>
#include <vector>

#include "nn/layers.hh"

namespace sns::nn {

/** Multi-head self-attention with key-padding masking. */
class MultiHeadAttention : public Module
{
  public:
    MultiHeadAttention(int d_model, int heads, Rng &rng);

    /**
     * Self-attention over x [B, T, D].
     * @param lengths valid prefix length per batch element
     */
    Variable forward(const Variable &x,
                     const std::vector<int> &lengths) const;

    std::vector<Variable> parameters() const override;

  private:
    int d_model_;
    int heads_;
    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;
};

/** Position-wise feed-forward block (two linears with GELU). */
class FeedForward : public Module
{
  public:
    FeedForward(int d_model, int d_ff, Rng &rng);

    Variable forward(const Variable &x) const;

    std::vector<Variable> parameters() const override;

  private:
    Linear up_;
    Linear down_;
};

/** One post-norm encoder layer: MHA + FFN with residuals. */
class TransformerEncoderLayer : public Module
{
  public:
    TransformerEncoderLayer(int d_model, int heads, int d_ff, Rng &rng);

    Variable forward(const Variable &x,
                     const std::vector<int> &lengths) const;

    std::vector<Variable> parameters() const override;

  private:
    MultiHeadAttention attention_;
    FeedForward feed_forward_;
    LayerNorm norm1_;
    LayerNorm norm2_;
};

/** Encoder configuration. */
struct TransformerConfig
{
    int vocab_size = 82;   ///< token embedding table size
    int max_positions = 512;
    int d_model = 128;
    int heads = 2;
    int layers = 2;
    int d_ff = 512;
};

/**
 * A token-sequence encoder: token embedding + learned positional
 * embedding + N encoder layers + masked mean pooling into one vector
 * per sequence.
 */
class TransformerEncoder : public Module
{
  public:
    TransformerEncoder(const TransformerConfig &config, Rng &rng);

    /**
     * Encode a padded batch.
     * @param ids flattened [B * T] token ids (pad ids beyond lengths)
     * @param batch number of sequences B
     * @param time padded length T
     * @param lengths valid length per sequence
     * @return pooled sequence embeddings [B, d_model]
     */
    Variable encode(const std::vector<int> &ids, int batch, int time,
                    const std::vector<int> &lengths) const;

    std::vector<Variable> parameters() const override;

    const TransformerConfig &config() const { return config_; }

  private:
    TransformerConfig config_;
    Embedding token_embedding_;
    Embedding position_embedding_;
    LayerNorm input_norm_;
    std::vector<TransformerEncoderLayer> layers_;
};

} // namespace sns::nn

#endif // SNS_NN_TRANSFORMER_HH
