#include "nn/serialize.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace sns::nn {

using tensor::Tensor;
using tensor::Variable;

namespace {

constexpr char kMagic[4] = {'S', 'N', 'S', 'W'};

/** FNV-1a over a byte range (the checkpoint payload hash). */
uint64_t
fnv1a(const void *data, size_t size)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
writeTensorRaw(std::ostream &out, const Tensor &value)
{
    const uint32_t ndim = static_cast<uint32_t>(value.ndim());
    out.write(reinterpret_cast<const char *>(&ndim), sizeof(ndim));
    for (int d : value.shape()) {
        const int32_t dim = d;
        out.write(reinterpret_cast<const char *>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char *>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
}

void
readTensorRaw(std::istream &in, Tensor &value, const std::string &where)
{
    uint32_t ndim = 0;
    in.read(reinterpret_cast<char *>(&ndim), sizeof(ndim));
    if (!in || ndim != static_cast<uint32_t>(value.ndim()))
        throw SerializeError("tensor rank mismatch in " + where);
    for (int d : value.shape()) {
        int32_t dim = 0;
        in.read(reinterpret_cast<char *>(&dim), sizeof(dim));
        if (!in || dim != d)
            throw SerializeError("tensor shape mismatch in " + where);
    }
    in.read(reinterpret_cast<char *>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    if (!in)
        throw SerializeError("truncated tensor data in " + where);
}

} // namespace

void
saveParameters(std::ostream &out, const std::vector<Variable> &params,
               const std::string &where)
{
    out.write(kMagic, 4);
    const uint32_t count = static_cast<uint32_t>(params.size());
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &param : params)
        writeTensorRaw(out, param.value());
    if (!out)
        throw SerializeError("short write to weight stream: " + where);
}

void
loadParameters(std::istream &in, std::vector<Variable> &params,
               const std::string &where)
{
    char magic[4];
    in.read(magic, 4);
    if (!in || std::string(magic, 4) != std::string(kMagic, 4))
        throw SerializeError("bad magic in weight stream: " + where);

    uint32_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || count != params.size()) {
        throw SerializeError(
            "weight stream has " + std::to_string(count) +
            " tensors, model expects " + std::to_string(params.size()) +
            " (" + where + ")");
    }

    for (auto &param : params)
        readTensorRaw(in, param.valueMutable(), where);
}

void
saveParameters(const std::string &path, const std::vector<Variable> &params)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw SerializeError("cannot open weight file for writing: " + path);
    saveParameters(out, params, path);
    if (!out)
        throw SerializeError("short write to weight file: " + path);
}

void
loadParameters(const std::string &path, std::vector<Variable> &params)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open weight file: " + path);
    loadParameters(in, params, path);
}

// --- Training checkpoints (SNSC). ----------------------------------

std::string
checkpointFileName(int epoch)
{
    char name[32];
    std::snprintf(name, sizeof(name), "ckpt-%06d.ckpt", epoch);
    return name;
}

void
CheckpointWriter::bytes(const void *data, size_t size)
{
    out_.write(static_cast<const char *>(data),
               static_cast<std::streamsize>(size));
}

void
CheckpointWriter::u32(uint32_t value)
{
    bytes(&value, sizeof(value));
}

void
CheckpointWriter::u64(uint64_t value)
{
    bytes(&value, sizeof(value));
}

void
CheckpointWriter::i64(int64_t value)
{
    bytes(&value, sizeof(value));
}

void
CheckpointWriter::f64(double value)
{
    bytes(&value, sizeof(value));
}

void
CheckpointWriter::str(const std::string &value)
{
    u64(value.size());
    bytes(value.data(), value.size());
}

void
CheckpointWriter::tensor(const Tensor &value)
{
    writeTensorRaw(out_, value);
}

void
CheckpointWriter::variables(const std::vector<Variable> &params)
{
    saveParameters(out_, params, "checkpoint payload");
}

void
CheckpointReader::raw(void *data, size_t size)
{
    in_.read(static_cast<char *>(data),
             static_cast<std::streamsize>(size));
    if (!in_)
        throw SerializeError("truncated checkpoint payload: " + where_);
}

uint32_t
CheckpointReader::u32()
{
    uint32_t value = 0;
    raw(&value, sizeof(value));
    return value;
}

uint64_t
CheckpointReader::u64()
{
    uint64_t value = 0;
    raw(&value, sizeof(value));
    return value;
}

int64_t
CheckpointReader::i64()
{
    int64_t value = 0;
    raw(&value, sizeof(value));
    return value;
}

double
CheckpointReader::f64()
{
    double value = 0.0;
    raw(&value, sizeof(value));
    return value;
}

std::string
CheckpointReader::str()
{
    const uint64_t size = u64();
    // A string longer than the remaining payload would already have
    // failed the header length check; still bound the allocation.
    if (size > (1ull << 32))
        throw SerializeError("implausible string length in " + where_);
    std::string value(size, '\0');
    if (size > 0)
        raw(value.data(), size);
    return value;
}

void
CheckpointReader::tensor(Tensor &value)
{
    readTensorRaw(in_, value, where_);
}

void
CheckpointReader::variables(std::vector<Variable> &params)
{
    loadParameters(in_, params, where_);
}

void
writeOptimizerState(CheckpointWriter &writer, const Optimizer &optimizer)
{
    const auto scalars = optimizer.stateScalars();
    writer.u32(static_cast<uint32_t>(scalars.size()));
    for (int64_t scalar : scalars)
        writer.i64(scalar);
    const auto tensors = optimizer.stateTensors();
    writer.u32(static_cast<uint32_t>(tensors.size()));
    for (const Tensor *state : tensors)
        writer.tensor(*state);
}

void
readOptimizerState(CheckpointReader &reader, Optimizer &optimizer)
{
    const uint32_t scalar_count = reader.u32();
    std::vector<int64_t> scalars(scalar_count);
    for (auto &scalar : scalars)
        scalar = reader.i64();
    optimizer.setStateScalars(scalars);

    const auto tensors = optimizer.stateTensorsMutable();
    const uint32_t tensor_count = reader.u32();
    if (tensor_count != tensors.size()) {
        throw SerializeError(
            "optimizer state has " + std::to_string(tensor_count) +
            " tensors, optimizer expects " +
            std::to_string(tensors.size()) + " (" + reader.where() + ")");
    }
    for (Tensor *state : tensors)
        reader.tensor(*state);
}

void
commitCheckpoint(const std::string &path, const std::string &payload)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw SerializeError(
                "cannot open checkpoint for writing: " + tmp);
        }
        out.write(kCheckpointMagic, 4);
        const uint32_t version = kCheckpointVersion;
        out.write(reinterpret_cast<const char *>(&version),
                  sizeof(version));
        const uint64_t length = payload.size();
        out.write(reinterpret_cast<const char *>(&length), sizeof(length));
        const uint64_t hash = fnv1a(payload.data(), payload.size());
        out.write(reinterpret_cast<const char *>(&hash), sizeof(hash));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        out.flush();
        if (!out)
            throw SerializeError("short write to checkpoint: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw SerializeError("cannot rename " + tmp + " onto " + path +
                             ": " + ec.message());
    }
}

std::string
readCheckpointPayload(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open checkpoint: " + path);

    char magic[4];
    in.read(magic, 4);
    if (!in ||
        std::string(magic, 4) != std::string(kCheckpointMagic, 4))
        throw SerializeError("bad checkpoint magic in " + path);

    uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!in || version != kCheckpointVersion) {
        throw SerializeError(
            "unsupported checkpoint version " + std::to_string(version) +
            " in " + path + " (expected " +
            std::to_string(kCheckpointVersion) + ")");
    }

    uint64_t length = 0;
    uint64_t expected_hash = 0;
    in.read(reinterpret_cast<char *>(&length), sizeof(length));
    in.read(reinterpret_cast<char *>(&expected_hash),
            sizeof(expected_hash));
    if (!in)
        throw SerializeError("truncated checkpoint header in " + path);

    std::string payload(length, '\0');
    if (length > 0) {
        in.read(payload.data(), static_cast<std::streamsize>(length));
        if (!in || static_cast<uint64_t>(in.gcount()) != length) {
            throw SerializeError(
                "checkpoint truncated: " + path + " declares " +
                std::to_string(length) + " payload bytes");
        }
    }
    const uint64_t actual_hash = fnv1a(payload.data(), payload.size());
    if (actual_hash != expected_hash) {
        throw SerializeError("checkpoint payload hash mismatch in " +
                             path + " (file is corrupt)");
    }
    return payload;
}

std::vector<std::string>
listCheckpoints(const std::string &dir)
{
    std::vector<std::string> found;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("ckpt-", 0) == 0 &&
            name.size() > 10 &&
            name.compare(name.size() - 5, 5, ".ckpt") == 0)
            found.push_back(entry.path().string());
    }
    // Zero-padded epoch numbers make lexicographic == numeric order.
    std::sort(found.begin(), found.end());
    return found;
}

std::string
latestCheckpoint(const std::string &dir)
{
    const auto found = listCheckpoints(dir);
    return found.empty() ? std::string() : found.back();
}

void
pruneCheckpoints(const std::string &dir, size_t keep)
{
    if (keep == 0)
        return;
    const auto found = listCheckpoints(dir);
    // Retention counts EPOCHS, not files: a distributed run commits one
    // shard per rank per epoch (ckpt-000123-r01of04.ckpt), and deleting
    // part of a shard set would leave an unresumable remainder. Group
    // by the shared ckpt-NNNNNN prefix and drop whole groups.
    std::vector<std::string> groups; // ascending, like `found`
    const auto groupOf = [](const std::string &file) {
        return std::filesystem::path(file)
            .filename()
            .string()
            .substr(0, 11); // "ckpt-NNNNNN"
    };
    for (const auto &file : found) {
        if (groups.empty() || groups.back() != groupOf(file))
            groups.push_back(groupOf(file));
    }
    if (groups.size() <= keep)
        return;
    const std::string &oldest_kept = groups[groups.size() - keep];
    for (const auto &file : found) {
        if (groupOf(file) >= oldest_kept)
            break; // sorted: everything from here on survives
        std::error_code ec;
        std::filesystem::remove(file, ec); // best-effort cleanup
    }
}

} // namespace sns::nn
