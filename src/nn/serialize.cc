#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>

#include <string>

namespace sns::nn {

using tensor::Variable;

namespace {

constexpr char kMagic[4] = {'S', 'N', 'S', 'W'};

} // namespace

void
saveParameters(const std::string &path, const std::vector<Variable> &params)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw SerializeError("cannot open weight file for writing: " + path);

    out.write(kMagic, 4);
    const uint32_t count = static_cast<uint32_t>(params.size());
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &param : params) {
        const auto &value = param.value();
        const uint32_t ndim = static_cast<uint32_t>(value.ndim());
        out.write(reinterpret_cast<const char *>(&ndim), sizeof(ndim));
        for (int d : value.shape()) {
            const int32_t dim = d;
            out.write(reinterpret_cast<const char *>(&dim), sizeof(dim));
        }
        out.write(reinterpret_cast<const char *>(value.data()),
                  static_cast<std::streamsize>(value.numel() *
                                               sizeof(float)));
    }
    if (!out)
        throw SerializeError("short write to weight file: " + path);
}

void
loadParameters(const std::string &path, std::vector<Variable> &params)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open weight file: " + path);

    char magic[4];
    in.read(magic, 4);
    if (!in || std::string(magic, 4) != std::string(kMagic, 4))
        throw SerializeError("bad magic in weight file: " + path);

    uint32_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || count != params.size()) {
        throw SerializeError(
            "weight file has " + std::to_string(count) +
            " tensors, model expects " + std::to_string(params.size()));
    }

    for (auto &param : params) {
        auto &value = param.valueMutable();
        uint32_t ndim = 0;
        in.read(reinterpret_cast<char *>(&ndim), sizeof(ndim));
        if (!in || ndim != static_cast<uint32_t>(value.ndim()))
            throw SerializeError("tensor rank mismatch in " + path);
        for (int d : value.shape()) {
            int32_t dim = 0;
            in.read(reinterpret_cast<char *>(&dim), sizeof(dim));
            if (!in || dim != d)
                throw SerializeError("tensor shape mismatch in " + path);
        }
        in.read(reinterpret_cast<char *>(value.data()),
                static_cast<std::streamsize>(value.numel() * sizeof(float)));
        if (!in)
            throw SerializeError("truncated weight file: " + path);
    }
}

} // namespace sns::nn
