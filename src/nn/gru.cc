#include "nn/gru.hh"

namespace sns::nn {

using namespace sns::tensor;

GruCell::GruCell(int input_size, int hidden_size, Rng &rng)
    : hidden_(hidden_size),
      xz_(input_size, hidden_size, rng),
      hz_(hidden_size, hidden_size, rng),
      xr_(input_size, hidden_size, rng),
      hr_(hidden_size, hidden_size, rng),
      xn_(input_size, hidden_size, rng),
      hn_(hidden_size, hidden_size, rng)
{
}

Variable
GruCell::step(const Variable &x, const Variable &h) const
{
    const Variable z = sigmoidOp(add(xz_.forward(x), hz_.forward(h)));
    const Variable r = sigmoidOp(add(xr_.forward(x), hr_.forward(h)));
    const Variable n = tanhOp(add(xn_.forward(x), hn_.forward(mul(r, h))));
    // h' = (1 - z) * n + z * h = n - z*n + z*h.
    return add(sub(n, mul(z, n)), mul(z, h));
}

Variable
GruCell::initialState(int batch) const
{
    return constant(Tensor::zeros({batch, hidden_}));
}

std::vector<Variable>
GruCell::parameters() const
{
    std::vector<Variable> params;
    for (const auto *layer : {&xz_, &hz_, &xr_, &hr_, &xn_, &hn_}) {
        for (const auto &param : layer->parameters())
            params.push_back(param);
    }
    return params;
}

} // namespace sns::nn
