/**
 * @file
 * Basic trainable layers: Linear, Embedding, LayerNorm, and MLP stacks.
 *
 * Layers own their parameter Variables; parameters() exposes them to
 * optimizers and the serializer. All initialization is explicit-seeded
 * for reproducibility.
 */

#ifndef SNS_NN_LAYERS_HH
#define SNS_NN_LAYERS_HH

#include <vector>

#include "tensor/autograd.hh"

namespace sns::nn {

using tensor::Tensor;
using tensor::Variable;

/** Anything owning trainable parameters. */
class Module
{
  public:
    virtual ~Module() = default;

    /** All trainable parameters, in a stable order. */
    virtual std::vector<Variable> parameters() const = 0;

    /** Total scalar parameter count. */
    size_t parameterCount() const;
};

/** Fully-connected layer: y = x W + b, with x [..., in]. */
class Linear : public Module
{
  public:
    /** Xavier-uniform initialized weights. */
    Linear(int in_features, int out_features, Rng &rng);

    /** Apply to a 2-D [N, in] or 3-D [B, T, in] input. */
    Variable forward(const Variable &x) const;

    std::vector<Variable> parameters() const override;

    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }

  private:
    int in_;
    int out_;
    Variable weight_; ///< [in, out]
    Variable bias_;   ///< [out]
};

/** Token-id to vector lookup table. */
class Embedding : public Module
{
  public:
    Embedding(int vocab_size, int dim, Rng &rng);

    /** Look up ids, producing out_shape + [dim]. */
    Variable forward(const std::vector<int> &ids,
                     std::vector<int> out_shape) const;

    std::vector<Variable> parameters() const override;

    int dim() const { return dim_; }

  private:
    int dim_;
    Variable weight_; ///< [V, dim]
};

/** Learnable layer normalization over the last dimension. */
class LayerNorm : public Module
{
  public:
    explicit LayerNorm(int dim);

    Variable forward(const Variable &x) const;

    std::vector<Variable> parameters() const override;

  private:
    Variable gamma_;
    Variable beta_;
};

/**
 * 2-D convolution over HWC images (stride 1), implemented as
 * im2col + matmul. Input is [B, H*W*C_in]; output is
 * [B, OH*OW*C_out] where OH = H + 2*pad - K + 1 (and likewise OW), so
 * conv / pool layers chain without layout shuffles.
 */
class Conv2d : public Module
{
  public:
    Conv2d(int in_channels, int out_channels, int kernel, int height,
           int width, int pad, Rng &rng);

    Variable forward(const Variable &x) const;

    int outHeight() const { return out_h_; }
    int outWidth() const { return out_w_; }
    int outChannels() const { return out_channels_; }

    std::vector<Variable> parameters() const override;

  private:
    int in_channels_;
    int out_channels_;
    int kernel_;
    int height_;
    int width_;
    int pad_;
    int out_h_;
    int out_w_;
    Variable weight_; ///< [K*K*C_in, C_out]
    Variable bias_;   ///< [C_out]
};

/** Activation choices for Mlp hidden layers. */
enum class Activation
{
    Relu,
    Gelu,
    Tanh,
};

/**
 * A plain multi-layer perceptron. dims = {in, h1, ..., out}; the
 * activation is applied after every layer except the last.
 */
class Mlp : public Module
{
  public:
    Mlp(std::vector<int> dims, Rng &rng,
        Activation activation = Activation::Relu);

    Variable forward(const Variable &x) const;

    std::vector<Variable> parameters() const override;

    /** The construction dims ({in, h1, ..., out}), reconstructed from
     * the layer stack — plan tracing asserts the architecture. */
    std::vector<int> layerDims() const;

    /** Hidden-layer activation. */
    Activation activation() const { return activation_; }

  private:
    std::vector<Linear> layers_;
    Activation activation_;
};

} // namespace sns::nn

#endif // SNS_NN_LAYERS_HH
