/**
 * @file
 * Optimizers: SGD with momentum and Adam (Kingma & Ba 2014) — the two
 * the paper trains with (Table 6).
 */

#ifndef SNS_NN_OPTIM_HH
#define SNS_NN_OPTIM_HH

#include <vector>

#include "tensor/autograd.hh"

namespace sns::nn {

using tensor::Tensor;
using tensor::Variable;

/** Base optimizer over a fixed parameter list. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Variable> params);
    virtual ~Optimizer() = default;

    /** Apply one update using the accumulated gradients. */
    virtual void step() = 0;

    /** Clear all parameter gradients. */
    void zeroGrad();

    /** Number of parameters managed. */
    size_t size() const { return params_.size(); }

    /** @name Checkpoint introspection
     * The optimizer's internal state as a flat list of tensors (the
     * per-parameter moments, in a fixed documented order) plus integer
     * scalars (e.g. Adam's step counter). nn::serialize persists these
     * in training checkpoints; restoring them makes a resumed run
     * continue bitwise-identically to an uninterrupted one
     * (docs/training.md).
     * @{
     */
    virtual std::vector<const Tensor *> stateTensors() const { return {}; }
    virtual std::vector<Tensor *> stateTensorsMutable() { return {}; }
    virtual std::vector<int64_t> stateScalars() const { return {}; }
    virtual void setStateScalars(const std::vector<int64_t> &scalars);
    /** @} */

  protected:
    std::vector<Variable> params_;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Variable> params, double lr, double momentum = 0.9);

    void step() override;

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

    /** State order: one velocity tensor per parameter. */
    std::vector<const Tensor *> stateTensors() const override;
    std::vector<Tensor *> stateTensorsMutable() override;

  private:
    double lr_;
    double momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Variable> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void step() override;

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

    /** State order: all first moments (m), then all second moments
     * (v); scalars: the bias-correction step counter. When sharded,
     * only the owned range is reported (in the same m-then-v order). */
    std::vector<const Tensor *> stateTensors() const override;
    std::vector<Tensor *> stateTensorsMutable() override;
    std::vector<int64_t> stateScalars() const override;
    void setStateScalars(const std::vector<int64_t> &scalars) override;

    /** @name ZeRO moment sharding (docs/distributed.md)
     * Restrict the Adam moments — and step()'s update — to the
     * parameter tensors [begin, end). Moments outside the owned range
     * are released (that is the memory saving: each rank holds 1/N of
     * the optimizer state). The caller is responsible for applying the
     * other ranks' updates, e.g. by allgathering weights afterwards.
     * @{
     */
    void shardMoments(size_t begin, size_t end);
    bool sharded() const { return owned_end_ != params_.size() ||
                                  owned_begin_ != 0; }
    size_t ownedBegin() const { return owned_begin_; }
    size_t ownedEnd() const { return owned_end_; }
    /** Moments of one owned parameter, by GLOBAL parameter index. */
    const Tensor &firstMoment(size_t i) const;
    const Tensor &secondMoment(size_t i) const;
    /** Restore the moments of one owned parameter (checkpoint merge;
     * shapes must match the parameter). */
    void setMoments(size_t i, const Tensor &m, const Tensor &v);
    long stepCount() const { return step_count_; }
    void setStepCount(long count) { step_count_ = count; }
    /** @} */

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    long step_count_ = 0;
    size_t owned_begin_ = 0;
    size_t owned_end_ = 0; ///< set to params_.size() by the ctor
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

/**
 * Scale all gradients so their global L2 norm is at most max_norm.
 * @return the pre-clip norm
 */
double clipGradNorm(const std::vector<Variable> &params, double max_norm);

} // namespace sns::nn

#endif // SNS_NN_OPTIM_HH
