/**
 * @file
 * Optimizers: SGD with momentum and Adam (Kingma & Ba 2014) — the two
 * the paper trains with (Table 6).
 */

#ifndef SNS_NN_OPTIM_HH
#define SNS_NN_OPTIM_HH

#include <vector>

#include "tensor/autograd.hh"

namespace sns::nn {

using tensor::Tensor;
using tensor::Variable;

/** Base optimizer over a fixed parameter list. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Variable> params);
    virtual ~Optimizer() = default;

    /** Apply one update using the accumulated gradients. */
    virtual void step() = 0;

    /** Clear all parameter gradients. */
    void zeroGrad();

    /** Number of parameters managed. */
    size_t size() const { return params_.size(); }

    /** @name Checkpoint introspection
     * The optimizer's internal state as a flat list of tensors (the
     * per-parameter moments, in a fixed documented order) plus integer
     * scalars (e.g. Adam's step counter). nn::serialize persists these
     * in training checkpoints; restoring them makes a resumed run
     * continue bitwise-identically to an uninterrupted one
     * (docs/training.md).
     * @{
     */
    virtual std::vector<const Tensor *> stateTensors() const { return {}; }
    virtual std::vector<Tensor *> stateTensorsMutable() { return {}; }
    virtual std::vector<int64_t> stateScalars() const { return {}; }
    virtual void setStateScalars(const std::vector<int64_t> &scalars);
    /** @} */

  protected:
    std::vector<Variable> params_;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Variable> params, double lr, double momentum = 0.9);

    void step() override;

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

    /** State order: one velocity tensor per parameter. */
    std::vector<const Tensor *> stateTensors() const override;
    std::vector<Tensor *> stateTensorsMutable() override;

  private:
    double lr_;
    double momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Variable> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void step() override;

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

    /** State order: all first moments (m), then all second moments
     * (v); scalars: the bias-correction step counter. */
    std::vector<const Tensor *> stateTensors() const override;
    std::vector<Tensor *> stateTensorsMutable() override;
    std::vector<int64_t> stateScalars() const override;
    void setStateScalars(const std::vector<int64_t> &scalars) override;

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    long step_count_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

/**
 * Scale all gradients so their global L2 norm is at most max_norm.
 * @return the pre-clip norm
 */
double clipGradNorm(const std::vector<Variable> &params, double max_norm);

} // namespace sns::nn

#endif // SNS_NN_OPTIM_HH
