#include "nn/transformer.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::nn {

using namespace sns::tensor;

MultiHeadAttention::MultiHeadAttention(int d_model, int heads, Rng &rng)
    : d_model_(d_model),
      heads_(heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng)
{
    SNS_ASSERT(d_model % heads == 0, "d_model must divide into heads");
}

Variable
MultiHeadAttention::forward(const Variable &x,
                            const std::vector<int> &lengths) const
{
    const int dh = d_model_ / heads_;
    const Variable q = splitHeads(wq_.forward(x), heads_); // [B*H, T, dh]
    const Variable k = splitHeads(wk_.forward(x), heads_);
    const Variable v = splitHeads(wv_.forward(x), heads_);

    Variable scores = bmmTransB(q, k); // [B*H, T, T]
    scores = scale(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
    scores = addKeyPaddingMask(scores, lengths, heads_);
    const Variable attn = softmaxLastDim(scores);
    const Variable ctx = bmm(attn, v);             // [B*H, T, dh]
    return wo_.forward(mergeHeads(ctx, heads_));   // [B, T, D]
}

std::vector<Variable>
MultiHeadAttention::parameters() const
{
    std::vector<Variable> params;
    for (const auto &layer : {&wq_, &wk_, &wv_, &wo_}) {
        for (const auto &param : layer->parameters())
            params.push_back(param);
    }
    return params;
}

FeedForward::FeedForward(int d_model, int d_ff, Rng &rng)
    : up_(d_model, d_ff, rng), down_(d_ff, d_model, rng)
{
}

Variable
FeedForward::forward(const Variable &x) const
{
    return down_.forward(gelu(up_.forward(x)));
}

std::vector<Variable>
FeedForward::parameters() const
{
    std::vector<Variable> params = up_.parameters();
    for (const auto &param : down_.parameters())
        params.push_back(param);
    return params;
}

TransformerEncoderLayer::TransformerEncoderLayer(int d_model, int heads,
                                                 int d_ff, Rng &rng)
    : attention_(d_model, heads, rng),
      feed_forward_(d_model, d_ff, rng),
      norm1_(d_model),
      norm2_(d_model)
{
}

Variable
TransformerEncoderLayer::forward(const Variable &x,
                                 const std::vector<int> &lengths) const
{
    const Variable attended =
        norm1_.forward(add(x, attention_.forward(x, lengths)));
    return norm2_.forward(add(attended, feed_forward_.forward(attended)));
}

std::vector<Variable>
TransformerEncoderLayer::parameters() const
{
    std::vector<Variable> params = attention_.parameters();
    for (const auto &param : feed_forward_.parameters())
        params.push_back(param);
    for (const auto &param : norm1_.parameters())
        params.push_back(param);
    for (const auto &param : norm2_.parameters())
        params.push_back(param);
    return params;
}

TransformerEncoder::TransformerEncoder(const TransformerConfig &config,
                                       Rng &rng)
    : config_(config),
      token_embedding_(config.vocab_size, config.d_model, rng),
      position_embedding_(config.max_positions, config.d_model, rng),
      input_norm_(config.d_model)
{
    for (int i = 0; i < config.layers; ++i) {
        layers_.emplace_back(config.d_model, config.heads, config.d_ff,
                             rng);
    }
}

Variable
TransformerEncoder::encode(const std::vector<int> &ids, int batch,
                           int time, const std::vector<int> &lengths) const
{
    SNS_ASSERT(ids.size() == static_cast<size_t>(batch) * time,
               "ids size must be batch * time");
    SNS_ASSERT(time <= config_.max_positions,
               "sequence longer than max_positions: ", time);

    std::vector<int> positions(ids.size());
    for (int b = 0; b < batch; ++b) {
        for (int t = 0; t < time; ++t)
            positions[static_cast<size_t>(b) * time + t] = t;
    }

    Variable h = add(token_embedding_.forward(ids, {batch, time}),
                     position_embedding_.forward(positions, {batch, time}));
    h = input_norm_.forward(h);
    for (const auto &layer : layers_)
        h = layer.forward(h, lengths);
    return meanPoolMasked(h, lengths); // [B, d_model]
}

std::vector<Variable>
TransformerEncoder::parameters() const
{
    std::vector<Variable> params = token_embedding_.parameters();
    for (const auto &param : position_embedding_.parameters())
        params.push_back(param);
    for (const auto &param : input_norm_.parameters())
        params.push_back(param);
    for (const auto &layer : layers_) {
        for (const auto &param : layer.parameters())
            params.push_back(param);
    }
    return params;
}

} // namespace sns::nn
