/**
 * @file
 * Binary weight (de)serialization so trained models (Circuitformer,
 * Aggregation MLPs, SeqGAN) can be checkpointed and reloaded.
 *
 * Format: "SNSW" magic, uint32 tensor count, then per tensor a uint32
 * ndim, int32 dims, and float32 data — all little-endian host order.
 */

#ifndef SNS_NN_SERIALIZE_HH
#define SNS_NN_SERIALIZE_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/autograd.hh"

namespace sns::nn {

/**
 * Unreadable, corrupt, or shape-mismatched checkpoint. An exception —
 * not fatal() — so long-lived processes survive a bad checkpoint: the
 * serve daemon must answer a RELOAD of a broken directory with an
 * ERROR reply, not exit. One-shot tools let it propagate to main and
 * exit 1 as before.
 */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** Write the parameter tensors to a file; SerializeError on I/O
 * failure. */
void saveParameters(const std::string &path,
                    const std::vector<tensor::Variable> &params);

/**
 * Load parameters saved by saveParameters() into the given variables.
 * Count and shapes must match exactly; throws SerializeError on
 * mismatch or I/O error.
 */
void loadParameters(const std::string &path,
                    std::vector<tensor::Variable> &params);

} // namespace sns::nn

#endif // SNS_NN_SERIALIZE_HH
