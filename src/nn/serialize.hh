/**
 * @file
 * Binary (de)serialization for model weights and training state.
 *
 * Two layers:
 *
 *  1. Weight files ("SNSW"): the flat parameter-tensor format trained
 *     models (Circuitformer, Aggregation MLPs, SeqGAN) persist and
 *     reload — "SNSW" magic, uint32 tensor count, then per tensor a
 *     uint32 ndim, int32 dims, and float32 data, all little-endian
 *     host order. Stream overloads let the same format embed inside a
 *     larger container.
 *
 *  2. Training checkpoints ("SNSC"): a self-validating container for
 *     full crash-safe training state — model weights, optimizer
 *     moments, RNG streams, epoch counters, loss history, dataset
 *     fingerprints (docs/training.md documents the exact layout).
 *     The 24-byte header is magic "SNSC", uint32 version, uint64
 *     payload length, uint64 FNV-1a of the payload; readers verify
 *     length and hash before parsing, so truncation and bit rot are
 *     detected up front with a structured error instead of a
 *     mysterious shape mismatch mid-parse. Files are committed with
 *     write-to-temp + atomic rename, so a crash mid-write never
 *     corrupts the previous checkpoint, and a rolling keep-last-N
 *     policy bounds disk use.
 */

#ifndef SNS_NN_SERIALIZE_HH
#define SNS_NN_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/optim.hh"
#include "tensor/autograd.hh"

namespace sns::nn {

/**
 * Unreadable, corrupt, or shape-mismatched checkpoint. An exception —
 * not fatal() — so long-lived processes survive a bad checkpoint: the
 * serve daemon must answer a RELOAD of a broken directory with an
 * ERROR reply, not exit. One-shot tools let it propagate to main and
 * exit 1 as before.
 */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** @name Weight files (SNSW)
 * @{
 */

/** Write the parameter tensors to a file; SerializeError on I/O
 * failure. */
void saveParameters(const std::string &path,
                    const std::vector<tensor::Variable> &params);

/**
 * Load parameters saved by saveParameters() into the given variables.
 * Count and shapes must match exactly; throws SerializeError on
 * mismatch or I/O error.
 */
void loadParameters(const std::string &path,
                    std::vector<tensor::Variable> &params);

/** Stream forms of the SNSW format, for embedding weight blocks in a
 * training checkpoint; `where` labels errors. */
void saveParameters(std::ostream &out,
                    const std::vector<tensor::Variable> &params,
                    const std::string &where);
void loadParameters(std::istream &in,
                    std::vector<tensor::Variable> &params,
                    const std::string &where);
/** @} */

/** @name Training checkpoints (SNSC)
 * @{
 */

/** Container magic/version (the verify checkpoint checker and
 * docs/training.md mirror these values). */
inline constexpr char kCheckpointMagic[4] = {'S', 'N', 'S', 'C'};
inline constexpr uint32_t kCheckpointVersion = 1;

/** Canonical checkpoint file name for an epoch: ckpt-000123.ckpt. */
std::string checkpointFileName(int epoch);

/**
 * Typed little-endian payload writer. The layout is positional: the
 * reader must issue the same sequence of typed reads the writer issued
 * (both sides live in core/trainer.cc for the training checkpoint).
 */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::ostream &out) : out_(out) {}

    void u32(uint32_t value);
    void u64(uint64_t value);
    void i64(int64_t value);
    void f64(double value);
    void str(const std::string &value);
    void bytes(const void *data, size_t size);

    /** One raw tensor: uint32 ndim, int32 dims, float32 data. */
    void tensor(const tensor::Tensor &value);

    /** An SNSW-framed block of parameter tensors. */
    void variables(const std::vector<tensor::Variable> &params);

  private:
    std::ostream &out_;
};

/** Typed payload reader; every read throws SerializeError on EOF or
 * (for tensor reads) shape mismatch. */
class CheckpointReader
{
  public:
    CheckpointReader(std::istream &in, std::string where)
        : in_(in), where_(std::move(where))
    {
    }

    uint32_t u32();
    uint64_t u64();
    int64_t i64();
    double f64();
    std::string str();

    /** Read a tensor written by CheckpointWriter::tensor into `value`;
     * the shape must match exactly. */
    void tensor(tensor::Tensor &value);

    /** Read an SNSW block into the given variables (exact count and
     * shapes, as loadParameters). */
    void variables(std::vector<tensor::Variable> &params);

    const std::string &where() const { return where_; }

  private:
    void raw(void *data, size_t size);

    std::istream &in_;
    std::string where_;
};

/** Optimizer state block: scalar list + moment tensors
 * (Optimizer::stateTensors order). readOptimizerState restores into an
 * optimizer of identical construction; count/shape mismatches throw. */
void writeOptimizerState(CheckpointWriter &writer,
                         const Optimizer &optimizer);
void readOptimizerState(CheckpointReader &reader, Optimizer &optimizer);

/**
 * Atomically commit a checkpoint payload to `path`: header (magic,
 * version, length, FNV-1a) + payload are written to `path + ".tmp"`
 * and renamed onto `path`, so readers only ever observe complete
 * files. Throws SerializeError on I/O failure.
 */
void commitCheckpoint(const std::string &path, const std::string &payload);

/**
 * Read and validate a checkpoint committed by commitCheckpoint():
 * checks magic, version, declared payload length against the file, and
 * the payload hash. Returns the payload bytes; throws SerializeError
 * (with the failing aspect named) on any mismatch.
 */
std::string readCheckpointPayload(const std::string &path);

/** All ckpt-*.ckpt files in `dir`, sorted ascending by epoch (i.e. by
 * name); empty if the directory is missing. */
std::vector<std::string> listCheckpoints(const std::string &dir);

/** Absolute path of the newest checkpoint in `dir`, or "" if none. */
std::string latestCheckpoint(const std::string &dir);

/** Delete all but the newest `keep` checkpoint EPOCHS in `dir` (the
 * rolling retention policy; keep == 0 keeps everything). Files sharing
 * one ckpt-NNNNNN prefix — a distributed run's per-rank shard set —
 * count as a single unit and are kept or dropped together. */
void pruneCheckpoints(const std::string &dir, size_t keep);
/** @} */

} // namespace sns::nn

#endif // SNS_NN_SERIALIZE_HH
