/**
 * @file
 * Binary weight (de)serialization so trained models (Circuitformer,
 * Aggregation MLPs, SeqGAN) can be checkpointed and reloaded.
 *
 * Format: "SNSW" magic, uint32 tensor count, then per tensor a uint32
 * ndim, int32 dims, and float32 data — all little-endian host order.
 */

#ifndef SNS_NN_SERIALIZE_HH
#define SNS_NN_SERIALIZE_HH

#include <string>
#include <vector>

#include "tensor/autograd.hh"

namespace sns::nn {

/** Write the parameter tensors to a file. */
void saveParameters(const std::string &path,
                    const std::vector<tensor::Variable> &params);

/**
 * Load parameters saved by saveParameters() into the given variables.
 * Count and shapes must match exactly; fatal() on mismatch or I/O error.
 */
void loadParameters(const std::string &path,
                    std::vector<tensor::Variable> &params);

} // namespace sns::nn

#endif // SNS_NN_SERIALIZE_HH
