/**
 * @file
 * Structural diffing of GraphIR circuits for the edit-loop workload
 * (docs/editloop.md).
 *
 * A designer iterating on one RTL module re-predicts a design that is
 * 95% unchanged. This header provides the two primitives the
 * incremental session API (core::SnsDesignSession) builds on:
 *
 *   - structuralFingerprint(): a content hash over exactly the facts a
 *     prediction depends on — node types, vocabulary tokens, activity
 *     coefficients, and the adjacency lists in stored order (edge
 *     order matters: the path sampler's DFS follows it). Design names
 *     and module labels are excluded, so renaming either is provably a
 *     prediction no-op.
 *
 *   - diffGraphs(): a module-granular delta between two revisions of a
 *     design. Each module's content hash covers its member vertices
 *     (by within-module ordinal, so re-numbering across modules does
 *     not alias into a change) and every edge touching the module
 *     (cross-module wires are part of both endpoints' signatures).
 *     Changed/added modules mark their member vertices as *affected*;
 *     fanin/fanout reachability over the combinational subgraph then
 *     identifies the endpoints that can launch or capture an affected
 *     complete circuit path.
 *
 * A sampled path is stale iff it traverses an affected vertex — a
 * path's prediction is a pure function of its own token sequence, so
 * paths entirely outside the affected cone replay from a content-
 * addressed cache bit for bit (docs/perf.md).
 */

#ifndef SNS_GRAPHIR_DIFF_HH
#define SNS_GRAPHIR_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graphir/graph.hh"

namespace sns::graphir {

/**
 * Content hash of everything a prediction depends on: per-node (type,
 * token, activity bits) and the out-adjacency in stored order. Equal
 * fingerprints imply bitwise-identical predictions under a fixed model
 * and sampler configuration; the design name and module labels do not
 * participate.
 */
uint64_t structuralFingerprint(const Graph &graph);

/** One module's content signature (see moduleSignatures). */
struct ModuleSignature
{
    std::string name;
    uint64_t hash = 0;
    size_t nodes = 0;
};

/**
 * Per-module content hashes, sorted by module name. A module's hash
 * covers its member vertices in id order (type, token, activity,
 * within-module ordinal) and every edge incident to the module, with
 * cross-module endpoints identified by (module name, ordinal) — so a
 * change anywhere a wire crosses into a module changes that module's
 * signature too, never silently.
 */
std::vector<ModuleSignature> moduleSignatures(const Graph &graph);

/** The module-granular delta between two revisions of one design. */
struct GraphDiff
{
    /** Structural fingerprints are equal: the edit cannot change any
     * prediction (rename-only edits land here). When set, every other
     * field reports zero change. */
    bool identical = false;

    std::vector<std::string> modules_changed; ///< same name, new content
    std::vector<std::string> modules_added;
    std::vector<std::string> modules_removed;
    size_t modules_total = 0; ///< distinct modules in `after`

    /** Per-node mask over `after`: 1 iff the node belongs to a changed
     * or added module. A sampled path is stale iff it contains an
     * affected node. */
    std::vector<char> node_affected;
    size_t nodes_affected = 0;

    /** Endpoints (io/dff) of `after` that can launch or capture a path
     * through an affected node (forward+backward combinational
     * reachability). */
    size_t endpoints_affected = 0;

    bool
    touchesAnything() const
    {
        return !identical && nodes_affected > 0;
    }
};

/**
 * Diff two revisions of a design. `before` supplies the baseline
 * module signatures; masks and counts are computed on `after` (the
 * revision that will be re-predicted).
 */
GraphDiff diffGraphs(const Graph &before, const Graph &after);

/** Diff against a pre-computed baseline (what a session snapshots —
 * it does not keep the previous Graph alive). */
GraphDiff diffAgainst(const std::vector<ModuleSignature> &before_sigs,
                      uint64_t before_fingerprint, const Graph &after);

} // namespace sns::graphir

#endif // SNS_GRAPHIR_DIFF_HH
