/**
 * @file
 * The GraphIR circuit graph (§3.1).
 *
 * Vertices are typed, width-annotated functional units; directed edges
 * are wiring connections. Registers (dff) and ports (io) are the
 * sequential boundary: every combinational cycle must be broken by one,
 * and complete circuit paths (§3.2) start and end on them.
 */

#ifndef SNS_GRAPHIR_GRAPH_HH
#define SNS_GRAPHIR_GRAPH_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "graphir/node_type.hh"
#include "graphir/vocabulary.hh"
#include "util/logging.hh"
#include "verify/diagnostics.hh"

namespace sns::graphir {

/** Index of a vertex within a Graph. */
using NodeId = uint32_t;

/** Invalid / "no node" sentinel. */
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/**
 * A directed circuit graph in the Table-1 vocabulary.
 *
 * The graph stores both raw wire widths (as produced by the front-end)
 * and rounded token widths (§3.1 rounding rule); predictors consume the
 * rounded view while ablation studies can re-encode from the raw view.
 */
class Graph
{
  public:
    /** Construct an empty graph with a human-readable design name. */
    explicit Graph(std::string name = "design");

    /**
     * Add a vertex.
     *
     * @param type functional-unit category
     * @param raw_width maximal wire width of the unit before rounding
     * @return the new vertex id
     */
    NodeId addNode(NodeType type, int raw_width);

    /** Add a directed wiring edge from one vertex to another. */
    void addEdge(NodeId from, NodeId to);

    /** Number of vertices. */
    size_t numNodes() const { return nodes_.size(); }

    /** Number of edges. */
    size_t numEdges() const { return edge_count_; }

    /** Design name. */
    const std::string &name() const { return name_; }

    /** Rename the design. */
    void setName(std::string name) { name_ = std::move(name); }

    /** Vertex type. */
    NodeType type(NodeId id) const { return nodes_[check(id)].type; }

    /** Rounded (vocabulary) width. */
    int width(NodeId id) const { return nodes_[check(id)].width; }

    /** Raw pre-rounding width. */
    int rawWidth(NodeId id) const { return nodes_[check(id)].raw_width; }

    /** Vocabulary token of the vertex. */
    TokenId token(NodeId id) const { return nodes_[check(id)].token; }

    /** Outgoing neighbors. */
    const std::vector<NodeId> &
    successors(NodeId id) const
    {
        return out_[check(id)];
    }

    /** Incoming neighbors. */
    const std::vector<NodeId> &
    predecessors(NodeId id) const
    {
        return in_[check(id)];
    }

    /** True if the vertex can begin/end a complete circuit path. */
    bool
    isEndpoint(NodeId id) const
    {
        return isPathEndpoint(type(id));
    }

    /** All endpoint (io/dff) vertices, in id order. */
    std::vector<NodeId> endpoints() const;

    /**
     * Switching-activity coefficient of a register (§3.4.4); 1.0 unless
     * a performance model provided clock-gating information.
     */
    double activity(NodeId id) const { return nodes_[check(id)].activity; }

    /** Set the activity coefficient of a vertex. */
    void setActivity(NodeId id, double activity);

    /**
     * Assign a vertex to a named RTL module. Module labels are an
     * annotation for the edit-loop diff (docs/editloop.md): they group
     * vertices into the regions a designer edits together, and
     * graphir::diffGraphs reports change at module granularity. They
     * never influence a prediction — sampling, tokens, and aggregation
     * are label-blind, which is why renaming a module is a structural
     * no-op. Every vertex starts in the unnamed default module "".
     */
    void setModule(NodeId id, const std::string &module);

    /** The module label of a vertex ("" = default module). */
    const std::string &
    module(NodeId id) const
    {
        return module_names_[nodes_[check(id)].module];
    }

    /** Distinct module labels in first-assignment order (the default
     * module "" is index 0 and always present). */
    const std::vector<std::string> &moduleNames() const
    {
        return module_names_;
    }

    /**
     * Graph statistics (Fig. 2c): per-token vertex counts over the
     * circuit vocabulary. Length is Vocabulary::circuitSize().
     */
    std::vector<double> tokenCounts() const;

    /**
     * Verify structural invariants — edge targets in range, stored
     * width/token agreeing with the §3.1 rounding rule, activity
     * coefficients in range, port/register boundary breaking every
     * combinational cycle — and return one diagnostic per violation
     * (which invariant, which node). Never throws: pipeline boundaries
     * pass the report to verify::enforce(), which applies the
     * process-wide policy (fatal in tests, log-and-count in release);
     * sns_lint prints it. The deeper whole-graph rules (dangling and
     * multi-driven nets, dead logic, register sanity) live in
     * verify::GraphAnalyzer.
     */
    verify::Report validate() const;

    /** True if the combinational subgraph is acyclic. */
    bool combinationallyAcyclic() const;

    /**
     * The vertices of one combinational cycle (in edge order, first
     * vertex not repeated), or an empty vector if the combinational
     * subgraph is acyclic.
     */
    std::vector<NodeId> findCombinationalCycle() const;

    /**
     * Vertices in a topological order of the combinational subgraph
     * (edges leaving sequential vertices are treated as cut). Sequential
     * vertices appear before any combinational vertex that depends on
     * them.
     */
    std::vector<NodeId> combinationalTopoOrder() const;

    /** Emit Graphviz DOT for debugging / documentation. */
    void writeDot(std::ostream &os) const;

  private:
    struct Node
    {
        NodeType type;
        int raw_width;
        int width;
        TokenId token;
        double activity;
        uint32_t module = 0; ///< index into module_names_
    };

    NodeId
    check(NodeId id) const
    {
        SNS_ASSERT(id < nodes_.size(), "node id out of range: ", id);
        return id;
    }

    std::string name_;
    /** Interned module labels; index 0 is the default module "". */
    std::vector<std::string> module_names_{""};
    std::vector<Node> nodes_;
    std::vector<std::vector<NodeId>> out_;
    std::vector<std::vector<NodeId>> in_;
    size_t edge_count_ = 0;
};

} // namespace sns::graphir

#endif // SNS_GRAPHIR_GRAPH_HH
