/**
 * @file
 * The GraphIR token vocabulary (§3.1).
 *
 * Each legal (type, width) pair is one token; with Table 1's width sets
 * this yields exactly 79 circuit tokens (11 types x 5 widths + 6
 * arithmetic types x 4 widths). Three extra control tokens (PAD, BOS,
 * EOS) are appended for the sequence models; the paper counts only the
 * 79 circuit tokens in its "Vocabulary Set Size".
 */

#ifndef SNS_GRAPHIR_VOCABULARY_HH
#define SNS_GRAPHIR_VOCABULARY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graphir/node_type.hh"

namespace sns::graphir {

/** Integer id of a vocabulary token. */
using TokenId = int32_t;

/**
 * Bijection between (type, width) pairs and dense token ids.
 *
 * Token ids [0, circuitSize()) are circuit tokens; padId(), bosId() and
 * eosId() follow. The layout is deterministic: tokens are ordered by
 * type then by increasing width.
 */
class Vocabulary
{
  public:
    /** The process-wide vocabulary instance. */
    static const Vocabulary &instance();

    /** Number of circuit tokens (79 with the Table-1 width sets). */
    int circuitSize() const { return static_cast<int>(tokens_.size()); }

    /** Total token count including PAD/BOS/EOS. */
    int totalSize() const { return circuitSize() + 3; }

    /** Padding token id. */
    TokenId padId() const { return circuitSize(); }

    /** Begin-of-sequence token id. */
    TokenId bosId() const { return circuitSize() + 1; }

    /** End-of-sequence token id. */
    TokenId eosId() const { return circuitSize() + 2; }

    /** Token id for a type and already-rounded width. */
    TokenId tokenId(NodeType type, int width) const;

    /** Token id for a type and raw width (applies the rounding rule). */
    TokenId tokenIdRounded(NodeType type, int raw_width) const;

    /** Type of a circuit token. */
    NodeType tokenType(TokenId id) const;

    /** Width of a circuit token. */
    int tokenWidth(TokenId id) const;

    /** Printable name ("mul16", "<pad>", ...). */
    std::string tokenString(TokenId id) const;

    /** Parse a token name like "mul16"; nullopt if not a circuit token. */
    std::optional<TokenId> parse(const std::string &name) const;

    /** True if the token is a circuit token whose type is a path endpoint. */
    bool isEndpointToken(TokenId id) const;

  private:
    Vocabulary();

    struct TokenInfo
    {
        NodeType type;
        int width;
    };

    std::vector<TokenInfo> tokens_;
    // lookup_[typeIndex][log2(width)] -> id
    std::vector<std::vector<TokenId>> lookup_;
};

} // namespace sns::graphir

#endif // SNS_GRAPHIR_VOCABULARY_HH
