#include "graphir/graph.hh"

#include <algorithm>

namespace sns::graphir {

Graph::Graph(std::string name) : name_(std::move(name))
{
}

NodeId
Graph::addNode(NodeType type, int raw_width)
{
    const int rounded = roundWidth(type, raw_width);
    Node node;
    node.type = type;
    node.raw_width = raw_width;
    node.width = rounded;
    node.token = Vocabulary::instance().tokenId(type, rounded);
    node.activity = 1.0;
    nodes_.push_back(node);
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<NodeId>(nodes_.size() - 1);
}

void
Graph::addEdge(NodeId from, NodeId to)
{
    check(from);
    check(to);
    out_[from].push_back(to);
    in_[to].push_back(from);
    ++edge_count_;
}

std::vector<NodeId>
Graph::endpoints() const
{
    std::vector<NodeId> result;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (isPathEndpoint(nodes_[id].type))
            result.push_back(id);
    }
    return result;
}

void
Graph::setActivity(NodeId id, double activity)
{
    SNS_ASSERT(activity >= 0.0 && activity <= 1.0,
               "activity coefficient out of [0, 1]: ", activity);
    nodes_[check(id)].activity = activity;
}

void
Graph::setModule(NodeId id, const std::string &module)
{
    check(id);
    for (uint32_t m = 0; m < module_names_.size(); ++m) {
        if (module_names_[m] == module) {
            nodes_[id].module = m;
            return;
        }
    }
    nodes_[id].module = static_cast<uint32_t>(module_names_.size());
    module_names_.push_back(module);
}

std::vector<double>
Graph::tokenCounts() const
{
    std::vector<double> counts(Vocabulary::instance().circuitSize(), 0.0);
    for (const auto &node : nodes_)
        counts[node.token] += 1.0;
    return counts;
}

bool
Graph::combinationallyAcyclic() const
{
    return findCombinationalCycle().empty();
}

std::vector<NodeId>
Graph::findCombinationalCycle() const
{
    // Iterative DFS over the combinational subgraph: edges leaving a
    // sequential vertex are cut, so a cycle through a register is fine.
    enum class Mark : uint8_t { White, Grey, Black };
    std::vector<Mark> mark(nodes_.size(), Mark::White);

    for (NodeId root = 0; root < nodes_.size(); ++root) {
        if (mark[root] != Mark::White)
            continue;
        // (node, next successor index) stack
        std::vector<std::pair<NodeId, size_t>> stack;
        stack.emplace_back(root, 0);
        mark[root] = Mark::Grey;
        while (!stack.empty()) {
            auto &[node, idx] = stack.back();
            const bool cut = isSequential(nodes_[node].type);
            if (cut || idx >= out_[node].size()) {
                mark[node] = Mark::Black;
                stack.pop_back();
                continue;
            }
            const NodeId next = out_[node][idx++];
            if (mark[next] == Mark::Grey) {
                // The stack suffix from `next` onwards is the cycle.
                std::vector<NodeId> cycle;
                bool in_cycle = false;
                for (const auto &[n, i] : stack) {
                    if (n == next)
                        in_cycle = true;
                    if (in_cycle)
                        cycle.push_back(n);
                }
                return cycle;
            }
            if (mark[next] == Mark::White) {
                mark[next] = Mark::Grey;
                stack.emplace_back(next, 0);
            }
        }
    }
    return {};
}

std::vector<NodeId>
Graph::combinationalTopoOrder() const
{
    // Kahn's algorithm on the combinational view: edges out of
    // sequential vertices still order their combinational consumers, but
    // edges *into* sequential vertices do not constrain the register
    // (registers only launch, they never wait combinationally).
    std::vector<int> indegree(nodes_.size(), 0);
    for (NodeId from = 0; from < nodes_.size(); ++from) {
        for (NodeId to : out_[from]) {
            if (!isSequential(nodes_[to].type))
                ++indegree[to];
        }
    }

    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (isSequential(nodes_[id].type) || indegree[id] == 0)
            ready.push_back(id);
    }
    size_t cursor = 0;
    std::vector<bool> emitted(nodes_.size(), false);
    while (cursor < ready.size()) {
        const NodeId node = ready[cursor++];
        if (emitted[node])
            continue;
        emitted[node] = true;
        order.push_back(node);
        for (NodeId next : out_[node]) {
            if (isSequential(nodes_[next].type))
                continue;
            if (--indegree[next] == 0)
                ready.push_back(next);
        }
    }
    SNS_ASSERT(order.size() == nodes_.size(),
               "combinational cycle detected in design '", name_, "'");
    return order;
}

verify::Report
Graph::validate() const
{
    verify::Report report;
    const auto &vocab = Vocabulary::instance();
    const auto loc = [this, &vocab](NodeId id) {
        return name_ + ": node " + std::to_string(id) + " (" +
               vocab.tokenString(nodes_[id].token) + ")";
    };

    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node &node = nodes_[id];
        for (NodeId next : out_[id]) {
            if (next >= nodes_.size()) {
                report.error(verify::rules::kGraphEdge,
                             name_ + ": node " + std::to_string(id),
                             "edge target " + std::to_string(next) +
                                 " out of range [0, " +
                                 std::to_string(nodes_.size()) + ")");
            }
        }
        const int rounded = roundWidth(node.type, node.raw_width);
        if (node.width != rounded) {
            report.error(verify::rules::kGraphWidth, loc(id),
                         "stored width " + std::to_string(node.width) +
                             " differs from rounded raw width " +
                             std::to_string(rounded) + " (§3.1)",
                         "re-add the vertex through Graph::addNode");
        } else if (node.token != vocab.tokenId(node.type, node.width)) {
            report.error(verify::rules::kVocabNode, loc(id),
                         "token id " + std::to_string(node.token) +
                             " does not encode (type, width)");
        }
        if (!(node.activity >= 0.0 && node.activity <= 1.0)) {
            report.error(verify::rules::kGraphActivity, loc(id),
                         "activity coefficient out of [0, 1]");
        }
    }

    const auto cycle = findCombinationalCycle();
    if (!cycle.empty()) {
        std::string path;
        for (NodeId id : cycle)
            path += loc(id) + " -> ";
        path += loc(cycle.front());
        report.error(verify::rules::kGraphCycle, name_,
                     "combinational cycle: " + path,
                     "break the loop with a register (dff)");
    }
    return report;
}

void
Graph::writeDot(std::ostream &os) const
{
    os << "digraph \"" << name_ << "\" {\n";
    const auto &vocab = Vocabulary::instance();
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        os << "  n" << id << " [label=\""
           << vocab.tokenString(nodes_[id].token) << "\"";
        if (isPathEndpoint(nodes_[id].type))
            os << ", shape=box, style=filled, fillcolor=lightgrey";
        os << "];\n";
    }
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        for (NodeId next : out_[id])
            os << "  n" << id << " -> n" << next << ";\n";
    }
    os << "}\n";
}

} // namespace sns::graphir
