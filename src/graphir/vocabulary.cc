#include "graphir/vocabulary.hh"

#include <cctype>

#include "util/logging.hh"

namespace sns::graphir {

namespace {

int
log2Exact(int value)
{
    int log = 0;
    while ((1 << log) < value)
        ++log;
    SNS_ASSERT((1 << log) == value, "width must be a power of two");
    return log;
}

} // namespace

const Vocabulary &
Vocabulary::instance()
{
    static const Vocabulary vocab;
    return vocab;
}

Vocabulary::Vocabulary()
{
    lookup_.assign(kNumNodeTypes, std::vector<TokenId>(7, -1));
    for (int t = 0; t < kNumNodeTypes; ++t) {
        const auto type = static_cast<NodeType>(t);
        for (int w = minWidth(type); w <= kMaxWidth; w *= 2) {
            const TokenId id = static_cast<TokenId>(tokens_.size());
            tokens_.push_back({type, w});
            lookup_[t][log2Exact(w)] = id;
        }
    }
}

TokenId
Vocabulary::tokenId(NodeType type, int width) const
{
    const int t = static_cast<int>(type);
    const int log = log2Exact(width);
    SNS_ASSERT(log < static_cast<int>(lookup_[t].size()),
               "width out of range: ", width);
    const TokenId id = lookup_[t][log];
    SNS_ASSERT(id >= 0, "illegal (type, width) pair: ",
               tokenName(type, width));
    return id;
}

TokenId
Vocabulary::tokenIdRounded(NodeType type, int raw_width) const
{
    return tokenId(type, roundWidth(type, raw_width));
}

NodeType
Vocabulary::tokenType(TokenId id) const
{
    SNS_ASSERT(id >= 0 && id < circuitSize(), "not a circuit token: ", id);
    return tokens_[id].type;
}

int
Vocabulary::tokenWidth(TokenId id) const
{
    SNS_ASSERT(id >= 0 && id < circuitSize(), "not a circuit token: ", id);
    return tokens_[id].width;
}

std::string
Vocabulary::tokenString(TokenId id) const
{
    if (id == padId())
        return "<pad>";
    if (id == bosId())
        return "<bos>";
    if (id == eosId())
        return "<eos>";
    return tokenName(tokenType(id), tokenWidth(id));
}

std::optional<TokenId>
Vocabulary::parse(const std::string &name) const
{
    // Split trailing digits from the mnemonic.
    size_t pos = name.size();
    while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1])))
        --pos;
    if (pos == 0 || pos == name.size())
        return std::nullopt;
    const auto type = nodeTypeFromName(name.substr(0, pos));
    if (!type)
        return std::nullopt;
    const int width = std::stoi(name.substr(pos));
    const int t = static_cast<int>(*type);
    int log = 0;
    while ((1 << log) < width)
        ++log;
    if ((1 << log) != width || log >= static_cast<int>(lookup_[t].size()))
        return std::nullopt;
    const TokenId id = lookup_[t][log];
    if (id < 0)
        return std::nullopt;
    return id;
}

bool
Vocabulary::isEndpointToken(TokenId id) const
{
    return id >= 0 && id < circuitSize() && isPathEndpoint(tokens_[id].type);
}

} // namespace sns::graphir
