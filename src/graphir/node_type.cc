#include "graphir/node_type.hh"

#include <array>

#include "util/logging.hh"

namespace sns::graphir {

namespace {

constexpr std::array<const char *, kNumNodeTypes> kTypeNames = {
    "io", "dff", "mux", "not", "and", "or", "xor", "sh",
    "reduce_and", "reduce_or", "reduce_xor",
    "add", "mul", "eq", "lgt", "div", "mod",
};

} // namespace

const char *
nodeTypeName(NodeType type)
{
    const auto idx = static_cast<size_t>(type);
    SNS_ASSERT(idx < kTypeNames.size(), "invalid NodeType");
    return kTypeNames[idx];
}

std::optional<NodeType>
nodeTypeFromName(const std::string &name)
{
    for (size_t i = 0; i < kTypeNames.size(); ++i) {
        if (name == kTypeNames[i])
            return static_cast<NodeType>(i);
    }
    return std::nullopt;
}

int
minWidth(NodeType type)
{
    switch (type) {
      case NodeType::Add:
      case NodeType::Mul:
      case NodeType::Eq:
      case NodeType::Lgt:
      case NodeType::Div:
      case NodeType::Mod:
        return 8;
      default:
        return 4;
    }
}

int
numWidths(NodeType type)
{
    // Widths double from minWidth(type) up to 64.
    int count = 0;
    for (int w = minWidth(type); w <= kMaxWidth; w *= 2)
        ++count;
    return count;
}

int
roundWidth(NodeType type, int raw_width)
{
    SNS_ASSERT(raw_width > 0, "width must be positive, got ", raw_width);
    const int lo = minWidth(type);
    if (raw_width <= lo)
        return lo;
    if (raw_width >= kMaxWidth)
        return kMaxWidth;

    // Find the bracketing powers of two and pick the linearly-closest
    // one, rounding up on ties (12 -> 16, per the paper's div example).
    int below = lo;
    while (below * 2 <= raw_width)
        below *= 2;
    const int above = below * 2;
    if (raw_width == below)
        return below;
    const int dist_below = raw_width - below;
    const int dist_above = above - raw_width;
    return dist_below < dist_above ? below : above;
}

bool
isPathEndpoint(NodeType type)
{
    return type == NodeType::Io || type == NodeType::Dff;
}

std::string
tokenName(NodeType type, int width)
{
    return std::string(nodeTypeName(type)) + std::to_string(width);
}

} // namespace sns::graphir
