/**
 * @file
 * GraphIR vertex types and the width-rounding rule from Table 1 / §3.1
 * of the SNS paper.
 *
 * Each GraphIR vertex is a (type, width) pair, e.g. a 16-bit multiplier
 * is "mul16". Widths are rounded to the nearest power of two in the
 * per-type legal set (ties round up, matching the paper's example of a
 * 12-bit divider becoming div16) and clamped to [minWidth(type), 64].
 */

#ifndef SNS_GRAPHIR_NODE_TYPE_HH
#define SNS_GRAPHIR_NODE_TYPE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace sns::graphir {

/** The 17 functional-unit categories of Table 1. */
enum class NodeType : uint8_t
{
    Io,         ///< input/output port
    Dff,        ///< D flip-flop (register)
    Mux,        ///< multiplexer
    Not,        ///< bitwise NOT
    And,        ///< bitwise AND
    Or,         ///< bitwise OR
    Xor,        ///< bitwise XOR
    Sh,         ///< parametrizable shifter
    ReduceAnd,  ///< reduction AND
    ReduceOr,   ///< reduction OR
    ReduceXor,  ///< reduction XOR
    Add,        ///< adder/subtractor
    Mul,        ///< multiplier
    Eq,         ///< equality comparator
    Lgt,        ///< less-than / greater-than comparator
    Div,        ///< divider
    Mod,        ///< modulus
};

/** Number of distinct node types. */
inline constexpr int kNumNodeTypes = 17;

/** Short mnemonic ("mul", "dff", ...) used in token names. */
const char *nodeTypeName(NodeType type);

/** Parse a mnemonic back to a NodeType; nullopt if unknown. */
std::optional<NodeType> nodeTypeFromName(const std::string &name);

/**
 * Smallest legal width for a type: 4 for bit-level units, 8 for the
 * arithmetic units in the lower block of Table 1.
 */
int minWidth(NodeType type);

/** Largest legal width for any type (Table 1 caps widths at 64). */
inline constexpr int kMaxWidth = 64;

/** Number of legal widths for a type (5 or 4). */
int numWidths(NodeType type);

/**
 * Round an arbitrary positive wire width to the legal set for a type:
 * nearest power of two (ties up), clamped to [minWidth(type), 64].
 */
int roundWidth(NodeType type, int raw_width);

/**
 * True for types that can begin or end a complete circuit path (§3.2):
 * registers and I/O ports.
 */
bool isPathEndpoint(NodeType type);

/** True for the stateful/port types that break combinational cycles. */
inline bool
isSequential(NodeType type)
{
    return isPathEndpoint(type);
}

/** Token name for a (type, rounded width) pair, e.g. "mul16". */
std::string tokenName(NodeType type, int width);

} // namespace sns::graphir

#endif // SNS_GRAPHIR_NODE_TYPE_HH
