#include "graphir/diff.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace sns::graphir {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** Streaming FNV-1a accumulator. */
struct Fnv
{
    uint64_t state = kFnvOffset;

    void
    bytes(const void *data, size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < size; ++i) {
            state ^= p[i];
            state *= kFnvPrime;
        }
    }

    void u64(uint64_t v) { bytes(&v, sizeof(v)); }
    void u32(uint32_t v) { bytes(&v, sizeof(v)); }

    void
    f64bits(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

uint64_t
fnvOfString(const std::string &s)
{
    Fnv h;
    h.str(s);
    return h.state;
}

/** One hashed contribution to a module's multiset signature. */
template <typename Fill>
uint64_t
item(Fill &&fill)
{
    Fnv h;
    fill(h);
    return h.state;
}

} // namespace

uint64_t
structuralFingerprint(const Graph &graph)
{
    // Order-sensitive by construction: the sampler's DFS follows the
    // stored successor order, so reordering edges is a real change
    // even when the edge *set* is identical.
    Fnv h;
    h.u64(graph.numNodes());
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        h.u32(static_cast<uint32_t>(graph.type(id)));
        h.u32(static_cast<uint32_t>(graph.token(id)));
        h.f64bits(graph.activity(id));
    }
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        const auto &succs = graph.successors(id);
        h.u64(succs.size());
        for (NodeId next : succs)
            h.u32(next);
    }
    return h.state;
}

std::vector<ModuleSignature>
moduleSignatures(const Graph &graph)
{
    // Within-module ordinals: stable under re-numbering elsewhere in
    // the design, so an untouched module keeps its signature even when
    // an edit inserts or deletes vertices in a sibling.
    std::vector<uint32_t> ordinal(graph.numNodes(), 0);
    std::unordered_map<std::string, ModuleSignature> sigs;
    std::unordered_map<std::string, uint64_t> name_fnv;
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        const std::string &mod = graph.module(id);
        auto &sig = sigs[mod];
        if (sig.nodes == 0 && sig.hash == 0) {
            sig.name = mod;
            name_fnv.emplace(mod, fnvOfString(mod));
        }
        ordinal[id] = static_cast<uint32_t>(sig.nodes++);
        // Multiset-combine (sum mod 2^64): a module's hash must not
        // depend on how its members interleave with other modules in
        // the global id order.
        sig.hash += item([&](Fnv &h) {
            h.u32(0xA0); // node tag
            h.u32(ordinal[id]);
            h.u32(static_cast<uint32_t>(graph.type(id)));
            h.u32(static_cast<uint32_t>(graph.token(id)));
            h.f64bits(graph.activity(id));
        });
    }
    for (NodeId from = 0; from < graph.numNodes(); ++from) {
        const std::string &from_mod = graph.module(from);
        const auto &succs = graph.successors(from);
        for (uint32_t slot = 0; slot < succs.size(); ++slot) {
            const NodeId to = succs[slot];
            const std::string &to_mod = graph.module(to);
            sigs[from_mod].hash += item([&](Fnv &h) {
                h.u32(0xB0); // outgoing-edge tag
                h.u32(ordinal[from]);
                h.u32(slot);
                h.u64(name_fnv.at(to_mod));
                h.u32(ordinal[to]);
            });
            if (to_mod != from_mod) {
                // A cross-module wire is part of both signatures: the
                // consumer's inputs changing shape is a change *to the
                // consumer* as far as its paths are concerned.
                sigs[to_mod].hash += item([&](Fnv &h) {
                    h.u32(0xC0); // incoming-edge tag
                    h.u64(name_fnv.at(from_mod));
                    h.u32(ordinal[from]);
                    h.u32(ordinal[to]);
                });
            }
        }
    }
    std::vector<ModuleSignature> out;
    out.reserve(sigs.size());
    for (auto &[name, sig] : sigs)
        out.push_back(std::move(sig));
    std::sort(out.begin(), out.end(),
              [](const ModuleSignature &a, const ModuleSignature &b) {
                  return a.name < b.name;
              });
    return out;
}

namespace {

/**
 * Count endpoints that can launch or capture a path through an
 * affected vertex: closure over the combinational subgraph in one
 * direction, stopping at endpoints (a complete circuit path never
 * crosses one — endpoints terminate paths, §3.2).
 */
size_t
affectedEndpoints(const Graph &graph, const std::vector<char> &affected)
{
    std::vector<char> counted(graph.numNodes(), 0);
    std::vector<char> visited(graph.numNodes(), 0);
    std::vector<NodeId> frontier;

    const auto sweep = [&](bool forward) {
        std::fill(visited.begin(), visited.end(), 0);
        frontier.clear();
        for (NodeId id = 0; id < graph.numNodes(); ++id) {
            if (affected[id]) {
                visited[id] = 1;
                if (graph.isEndpoint(id))
                    counted[id] = 1;
                else
                    frontier.push_back(id);
            }
        }
        while (!frontier.empty()) {
            const NodeId node = frontier.back();
            frontier.pop_back();
            const auto &next_ids = forward ? graph.successors(node)
                                           : graph.predecessors(node);
            for (NodeId next : next_ids) {
                if (visited[next])
                    continue;
                visited[next] = 1;
                if (graph.isEndpoint(next))
                    counted[next] = 1; // boundary: count, don't cross
                else
                    frontier.push_back(next);
            }
        }
    };
    sweep(/*forward=*/true);
    sweep(/*forward=*/false);

    size_t n = 0;
    for (const char c : counted)
        n += c != 0;
    return n;
}

} // namespace

GraphDiff
diffAgainst(const std::vector<ModuleSignature> &before_sigs,
            uint64_t before_fingerprint, const Graph &after)
{
    GraphDiff diff;
    const auto after_sigs = moduleSignatures(after);
    diff.modules_total = after_sigs.size();
    diff.node_affected.assign(after.numNodes(), 0);

    if (structuralFingerprint(after) == before_fingerprint) {
        // Rename-only edits (design or module labels) land here: the
        // prediction-relevant structure is bit-identical, so the whole
        // delta is a no-op regardless of how labels moved.
        diff.identical = true;
        return diff;
    }

    // Merge the two name-sorted signature lists.
    size_t b = 0;
    for (const auto &sig : after_sigs) {
        while (b < before_sigs.size() && before_sigs[b].name < sig.name) {
            diff.modules_removed.push_back(before_sigs[b].name);
            ++b;
        }
        if (b < before_sigs.size() && before_sigs[b].name == sig.name) {
            if (before_sigs[b].hash != sig.hash)
                diff.modules_changed.push_back(sig.name);
            ++b;
        } else {
            diff.modules_added.push_back(sig.name);
        }
    }
    for (; b < before_sigs.size(); ++b)
        diff.modules_removed.push_back(before_sigs[b].name);

    std::unordered_map<std::string, char> dirty;
    for (const auto &name : diff.modules_changed)
        dirty[name] = 1;
    for (const auto &name : diff.modules_added)
        dirty[name] = 1;
    for (NodeId id = 0; id < after.numNodes(); ++id) {
        if (dirty.count(after.module(id))) {
            diff.node_affected[id] = 1;
            ++diff.nodes_affected;
        }
    }
    diff.endpoints_affected = affectedEndpoints(after, diff.node_affected);
    return diff;
}

GraphDiff
diffGraphs(const Graph &before, const Graph &after)
{
    return diffAgainst(moduleSignatures(before),
                       structuralFingerprint(before), after);
}

} // namespace sns::graphir
