/**
 * @file
 * The reference synthesizer — the ground-truth oracle standing in for
 * Synopsys Design Compiler.
 *
 * The flow mirrors a real synthesis tool at the granularity SNS cares
 * about:
 *
 *   1. technology mapping of every GraphIR vertex onto the TechLibrary,
 *   2. datapath fusion (a multiplier feeding a sole-consumer adder is
 *      merged into a MAC, absorbing most of the adder's delay — this is
 *      exactly the ordering effect §3.3 of the paper motivates),
 *   3. iterative timing-driven gate sizing: full static timing analysis
 *      per iteration, upsizing cells on the critical path,
 *   4. roll-up of area (cells + fanout buffers), timing (worst
 *      register-to-register arrival + setup + clock uncertainty), and
 *      power (activity-weighted dynamic + leakage at the achieved
 *      frequency).
 *
 * The iterative loop makes synthesis cost super-linear in design size,
 * so the SNS-vs-synthesis runtime comparison (Fig. 7) measures a real
 * asymmetry rather than a scripted constant. A small deterministic
 * per-design heuristic jitter models the unpredictable heuristics of a
 * production tool and gives the learning problem an irreducible error
 * floor.
 */

#ifndef SNS_SYNTH_SYNTHESIZER_HH
#define SNS_SYNTH_SYNTHESIZER_HH

#include <string>
#include <vector>

#include "graphir/graph.hh"
#include "synth/tech_library.hh"

namespace sns::synth {

/** Tunable behaviour of the reference synthesizer. */
struct SynthesisOptions
{
    /** Enable mul->add MAC fusion (the §3.3 ordering effect). */
    bool enable_fusion = true;

    /** Enable timing-driven iterative gate sizing. */
    bool enable_sizing = true;

    /**
     * Fractional deterministic jitter applied to the final results,
     * seeded from the design's structure. Set to 0 for exact
     * analytical results in unit tests.
     */
    double heuristic_noise = 0.04;

    /** Baseline toggle rate assumed for activity propagation. */
    double default_activity = 0.2;

    /** Clock uncertainty added to the reported cycle time. */
    double clock_uncertainty_ps = 20.0;

    /** Multiplier on the sizing-iteration count (synthesis "effort"). */
    double effort = 1.0;

    /**
     * Model the per-invocation setup cost of a production tool:
     * loading and characterizing the library (an NLDM-style
     * cell x drive x load x slew sweep solved to a fixed point) before
     * any optimization happens. A real synthesis run pays minutes of
     * such setup regardless of design size — it is why tiny designs
     * still take a long time under DC, and half of the Fig.-7 story.
     * Like modeled_candidates_per_gate, this scales runtime only,
     * never results. Off by default; the runtime-comparison harnesses
     * switch it on.
     */
    bool model_setup_cost = false;

    /**
     * Candidate library cells evaluated per gate per optimization pass.
     * A production tool tries dozens of drive strengths / alternative
     * mappings for every gate it touches; this models that per-gate
     * effort so wall-clock comparisons against SNS (Fig. 7) reflect a
     * realistic cost-per-gate. The evaluation is result-neutral: the
     * chosen drive is the same regardless of this setting — it scales
     * runtime, not quality of results. Set to 0 to disable.
     */
    int modeled_candidates_per_gate = 16;
};

/** Post-synthesis physical characteristics of a design. */
struct SynthesisResult
{
    double timing_ps = 0.0;   ///< minimum cycle time
    double area_um2 = 0.0;    ///< total cell + buffer area
    double power_mw = 0.0;    ///< dynamic + leakage power at f = 1/timing
    double gate_count = 0.0;  ///< total gate equivalents
    /** Vertices of the critical path, launch to capture. */
    std::vector<graphir::NodeId> critical_path;
};

/** The reference synthesis engine. */
class Synthesizer
{
  public:
    /** Construct with the default FreePDK15-flavoured technology. */
    explicit Synthesizer(SynthesisOptions options = SynthesisOptions());

    /** Synthesize a full design. */
    SynthesisResult run(const graphir::Graph &graph) const;

    /**
     * Characterize a single complete circuit path by synthesizing it as
     * a standalone chain (this is how the Circuit Path Dataset's labels
     * are produced, §4.2).
     */
    SynthesisResult runPath(const std::vector<graphir::TokenId> &path) const;

    /**
     * Characterize a batch of complete circuit paths, distributed over
     * the sns::par runtime. Each path's label is a pure function of its
     * tokens (the heuristic jitter is seeded from the path itself), so
     * results are index-aligned with the input and bitwise identical
     * to calling runPath() serially, at any thread count.
     */
    std::vector<SynthesisResult> runPaths(
        const std::vector<std::vector<graphir::TokenId>> &paths) const;

    /**
     * Synthesize a batch of designs, distributed over the sns::par
     * runtime. Results are index-aligned with the input and identical
     * to serial run() calls at any thread count.
     */
    std::vector<SynthesisResult> runBatch(
        const std::vector<const graphir::Graph *> &graphs) const;

    /** Build the standalone chain circuit for a token sequence. */
    static graphir::Graph pathToChain(
        const std::vector<graphir::TokenId> &path,
        const std::string &name = "path");

    /** The options in effect. */
    const SynthesisOptions &options() const { return options_; }

  private:
    SynthesisOptions options_;
    const TechLibrary &lib_;
};

} // namespace sns::synth

#endif // SNS_SYNTH_SYNTHESIZER_HH
