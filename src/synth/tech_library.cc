#include "synth/tech_library.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::synth {

using graphir::NodeType;

namespace {

double
log2d(double x)
{
    return std::log2(x);
}

/** Gate-equivalent count for a (type, width) unit. */
double
gateCount(NodeType type, double w)
{
    switch (type) {
      case NodeType::Io:
        return 0.5 * w;                     // pad/buffer cells
      case NodeType::Dff:
        return 4.0 * w;                     // ~4 GE per flop bit
      case NodeType::Mux:
        return 1.2 * w;
      case NodeType::Not:
        return 0.5 * w;
      case NodeType::And:
      case NodeType::Or:
        return 1.0 * w;
      case NodeType::Xor:
        return 1.5 * w;
      case NodeType::Sh:
        return 1.6 * w * log2d(w);          // barrel shifter
      case NodeType::ReduceAnd:
      case NodeType::ReduceOr:
        return 1.0 * w;
      case NodeType::ReduceXor:
        return 1.5 * w;
      case NodeType::Add:
        return 4.5 * w + 1.5 * w * log2d(w) / 4.0;   // CLA overhead
      case NodeType::Eq:
        return 2.0 * w;
      case NodeType::Lgt:
        return 3.0 * w;
      case NodeType::Mul:
        return 1.1 * std::pow(w, 1.9);      // partial-product array + tree
      case NodeType::Div:
      case NodeType::Mod:
        return 1.4 * std::pow(w, 1.8);      // restoring array divider
    }
    panic("unhandled NodeType in gateCount");
}

/** Logic depth (in FO4-ish levels) for a (type, width) unit. */
double
logicLevels(NodeType type, double w)
{
    switch (type) {
      case NodeType::Io:
        return 1.0;
      case NodeType::Dff:
        return 0.0;                          // handled via clk-to-q/setup
      case NodeType::Mux:
        return 1.5;
      case NodeType::Not:
        return 0.6;
      case NodeType::And:
      case NodeType::Or:
        return 1.0;
      case NodeType::Xor:
        return 1.4;
      case NodeType::Sh:
        return 1.2 * log2d(w);
      case NodeType::ReduceAnd:
      case NodeType::ReduceOr:
        return 1.0 * log2d(w);
      case NodeType::ReduceXor:
        return 1.4 * log2d(w);
      case NodeType::Add:
        return 2.0 + 1.8 * log2d(w);         // carry-lookahead depth
      case NodeType::Eq:
        return 1.0 + 1.0 * log2d(w);
      case NodeType::Lgt:
        return 1.5 + 1.4 * log2d(w);
      case NodeType::Mul:
        return 3.0 + 3.6 * log2d(w);         // booth + wallace + final add
      case NodeType::Div:
      case NodeType::Mod:
        return 2.0 + 1.1 * w;                // carry ripples across rows
    }
    panic("unhandled NodeType in logicLevels");
}

} // namespace

const TechLibrary &
TechLibrary::freePdk15()
{
    static const TechLibrary lib;
    return lib;
}

TechLibrary::TechLibrary()
{
    // FreePDK15-flavoured constants: a NAND2-equivalent occupies about
    // 0.2 um^2, one loaded logic level costs ~14 ps, switching one GE
    // costs ~0.10 fJ and leaks ~2 nW.
    area_per_ge_um2_ = 0.20;
    delay_per_level_ps_ = 14.0;
    energy_per_ge_fj_ = 0.10;
    leakage_per_ge_uw_ = 0.002;
    setup_ps_ = 18.0;
    clk_to_q_ps_ = 22.0;
    wire_delay_base_ps_ = 3.0;
    buffer_area_um2_ = 0.35;
}

CellParams
TechLibrary::cell(NodeType type, int width) const
{
    SNS_ASSERT(width > 0, "cell width must be positive");
    const double w = width;
    const double gates = gateCount(type, w);
    CellParams params;
    params.gates = gates;
    params.area_um2 = gates * area_per_ge_um2_;
    params.delay_ps = logicLevels(type, w) * delay_per_level_ps_;
    params.energy_fj = gates * energy_per_ge_fj_;
    params.leakage_uw = gates * leakage_per_ge_uw_;
    return params;
}

double
TechLibrary::wireDelayPs(int fanout) const
{
    if (fanout <= 1)
        return wire_delay_base_ps_;
    // Buffered fanout trees grow logarithmically in delay.
    return wire_delay_base_ps_ * (1.0 + std::log2(static_cast<double>(fanout)));
}

double
TechLibrary::bufferAreaUm2(int fanout) const
{
    if (fanout <= 2)
        return 0.0;
    return buffer_area_um2_ * (fanout - 2);
}

} // namespace sns::synth
