#include "synth/synthesizer.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "par/thread_pool.hh"
#include "util/logging.hh"
#include "verify/analyzer.hh"

namespace sns::synth {

using graphir::Graph;
using graphir::NodeId;
using graphir::NodeType;
using graphir::TokenId;
using graphir::Vocabulary;

namespace {

/** Per-node state produced by mapping and refined by sizing. */
struct MappedNode
{
    CellParams cell;
    bool fused = false;      // an Add absorbed into a MAC
    double size = 1.0;       // mean drive strength over the cell's gates
    size_t gate_begin = 0;   // slice of the global gate-sizing array
    size_t gate_count = 0;
};

constexpr double kMaxSize = 4.0;
constexpr double kSizeStep = 0.5;
// Fraction of an adder's delay/area/energy that survives MAC fusion.
constexpr double kFusedDelayFraction = 0.30;
constexpr double kFusedAreaFraction = 0.75;
constexpr double kFusedEnergyFraction = 0.80;

double
delayOf(const MappedNode &node)
{
    const double base =
        node.fused ? node.cell.delay_ps * kFusedDelayFraction
                   : node.cell.delay_ps;
    return base / (1.0 + 0.12 * (node.size - 1.0));
}

double
areaOf(const MappedNode &node)
{
    const double base =
        node.fused ? node.cell.area_um2 * kFusedAreaFraction
                   : node.cell.area_um2;
    return base * (1.0 + 0.35 * (node.size - 1.0));
}

double
energyOf(const MappedNode &node)
{
    const double base =
        node.fused ? node.cell.energy_fj * kFusedEnergyFraction
                   : node.cell.energy_fj;
    return base * (1.0 + 0.35 * (node.size - 1.0));
}

double
leakageOf(const MappedNode &node)
{
    return node.cell.leakage_uw * (1.0 + 0.35 * (node.size - 1.0));
}

/** SplitMix64 hash step for the deterministic heuristic jitter. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Jitter factor in [1 - amount, 1 + amount], deterministic in seed. */
double
jitter(uint64_t &seed, double amount)
{
    seed = mix(seed);
    const double unit = (seed >> 11) * 0x1.0p-53; // [0, 1)
    return 1.0 + amount * (2.0 * unit - 1.0);
}

} // namespace

Synthesizer::Synthesizer(SynthesisOptions options)
    : options_(options), lib_(TechLibrary::freePdk15())
{
}

namespace {

/**
 * Library characterization sweep: for every vocabulary cell, drive
 * strength, output load, and input slew, solve the RC delay model to a
 * fixed point — the work a tool performs while building its timing
 * tables at startup. Deterministic, result-neutral (the analytic
 * TechLibrary remains the source of truth); the volatile sink keeps
 * the computation alive.
 */
void
modelLibrarySetup(const TechLibrary &lib, double effort)
{
    const auto &vocab = graphir::Vocabulary::instance();
    const int drives = 8;
    const int loads = 5;
    const int slews = static_cast<int>(std::max(1.0, 24.0 * effort));
    volatile float sink = 0.0f;
    for (graphir::TokenId token = 0; token < vocab.circuitSize();
         ++token) {
        const auto cell =
            lib.cell(vocab.tokenType(token), vocab.tokenWidth(token));
        for (int d = 1; d <= drives; ++d) {
            for (int l = 1; l <= loads; ++l) {
                for (int s = 1; s <= slews; ++s) {
                    // Fixed-point RC solve: t = t0 + RC/(1 + t/tau).
                    float t = static_cast<float>(cell.delay_ps);
                    const float rc =
                        0.5f * static_cast<float>(l) / d;
                    const float tau = 10.0f + s;
                    for (int it = 0; it < 100; ++it)
                        t = static_cast<float>(cell.delay_ps) +
                            rc * t / (1.0f + t / tau);
                    sink = t;
                }
            }
        }
    }
    (void)sink;
}

} // namespace

SynthesisResult
Synthesizer::run(const Graph &graph) const
{
    const size_t n = graph.numNodes();
    SynthesisResult result;
    if (n == 0)
        return result;

    if (options_.model_setup_cost)
        modelLibrarySetup(lib_, options_.effort);

    // --- 1. Technology mapping. ---------------------------------------
    // Ground truth is computed from the *raw* wire widths: only SNS's
    // tokenized view rounds widths to the vocabulary (§3.1) — that
    // rounding is an information loss the predictor has to live with,
    // not something the reference tool should share.
    std::vector<MappedNode> mapped(n);
    for (NodeId id = 0; id < n; ++id)
        mapped[id].cell = lib_.cell(graph.type(id), graph.rawWidth(id));

    // --- 2. Datapath fusion. -------------------------------------------
    // An Add whose inputs include a Mul that drives nothing else gets
    // absorbed into the multiplier's compression tree (MAC inference).
    if (options_.enable_fusion) {
        for (NodeId id = 0; id < n; ++id) {
            if (graph.type(id) != NodeType::Add)
                continue;
            for (NodeId pred : graph.predecessors(id)) {
                if (graph.type(pred) == NodeType::Mul &&
                    graph.successors(pred).size() == 1) {
                    mapped[id].fused = true;
                    break;
                }
            }
        }
    }

    const auto topo = graph.combinationalTopoOrder();
    std::vector<double> wire_delay(n);
    for (NodeId id = 0; id < n; ++id) {
        wire_delay[id] =
            lib_.wireDelayPs(static_cast<int>(graph.successors(id).size()));
    }

    // One full static timing analysis pass in two phases: propagate
    // arrivals through the combinational fan-in cones first, then
    // evaluate every capture point. (Capture checks cannot run while
    // visiting a register inside the topological sweep: registers sort
    // before their combinational fan-in, whose arrivals would still be
    // stale.) Returns the worst endpoint arrival and fills the argmax
    // predecessors used for critical-path backtracking.
    std::vector<double> arrival(n);
    std::vector<NodeId> argmax_pred(n);
    NodeId critical_sink = graphir::kInvalidNode;

    auto sta = [&]() -> double {
        // Phase 1: arrival propagation.
        for (NodeId id : topo) {
            if (graphir::isSequential(graph.type(id))) {
                // Launch point: data leaves at clk-to-q.
                arrival[id] = lib_.clockToQPs();
                argmax_pred[id] = graphir::kInvalidNode;
                continue;
            }
            double best = 0.0;
            NodeId best_pred = graphir::kInvalidNode;
            for (NodeId pred : graph.predecessors(id)) {
                const double t = arrival[pred] + wire_delay[pred];
                if (t > best) {
                    best = t;
                    best_pred = pred;
                }
            }
            argmax_pred[id] = best_pred;
            arrival[id] = best + delayOf(mapped[id]);
        }

        // Phase 2: capture checks at sequential sinks plus dangling
        // combinational outputs.
        double worst = 0.0;
        critical_sink = graphir::kInvalidNode;
        for (NodeId id = 0; id < n; ++id) {
            if (graphir::isSequential(graph.type(id))) {
                double data = 0.0;
                NodeId data_pred = graphir::kInvalidNode;
                for (NodeId pred : graph.predecessors(id)) {
                    const double t = arrival[pred] + wire_delay[pred];
                    if (t > data) {
                        data = t;
                        data_pred = pred;
                    }
                }
                if (data_pred != graphir::kInvalidNode) {
                    const double path = data + lib_.setupPs();
                    if (path > worst) {
                        worst = path;
                        critical_sink = id;
                        argmax_pred[id] = data_pred;
                    }
                }
            } else if (graph.successors(id).empty() &&
                       arrival[id] > worst) {
                worst = arrival[id];
                critical_sink = id;
            }
        }
        return worst;
    };

    // --- 3. Timing-driven gate-level sizing. ----------------------------
    // A real synthesis tool optimizes at gate granularity: every pass
    // re-times the design and refines the drive strength of the
    // individual gates inside each mapped cell. The pass count grows
    // with design size (global optimization is super-linear), and each
    // pass touches every gate — this is where synthesis spends its
    // time, and why the SNS-vs-synthesis runtime gap of Fig. 7 widens
    // with design size.
    double worst = 0.0;
    if (!options_.enable_sizing) {
        worst = sta();
    } else {
        double total_gates = 0.0;
        for (NodeId id = 0; id < n; ++id)
            total_gates += mapped[id].cell.gates;

        // Per-cell gate-sizing slices over one flat array.
        std::vector<float> gate_scale;
        gate_scale.reserve(static_cast<size_t>(total_gates) + n);
        for (NodeId id = 0; id < n; ++id) {
            mapped[id].gate_begin = gate_scale.size();
            mapped[id].gate_count = static_cast<size_t>(
                std::max(1.0, std::round(mapped[id].cell.gates)));
            gate_scale.insert(gate_scale.end(), mapped[id].gate_count,
                              1.0f);
        }

        const size_t passes = static_cast<size_t>(std::max(
            1.0, options_.effort *
                     (16.0 + std::cbrt(static_cast<double>(
                                 gate_scale.size())))));

        for (size_t pass = 0; pass < passes; ++pass) {
            worst = sta();
            if (critical_sink == graphir::kInvalidNode)
                break;

            // Upsize the gates of every combinational cell on the
            // critical path. The walk stops at the first sequential
            // vertex: a register can be both capture and launch of the
            // same single-cycle feedback path, and following
            // argmax_pred past it would cycle forever.
            for (NodeId id = argmax_pred[critical_sink];
                 id != graphir::kInvalidNode; id = argmax_pred[id]) {
                if (graphir::isSequential(graph.type(id)))
                    break;
                auto &node = mapped[id];
                for (size_t g = node.gate_begin;
                     g < node.gate_begin + node.gate_count; ++g) {
                    gate_scale[g] = std::min(
                        static_cast<float>(kMaxSize),
                        gate_scale[g] + static_cast<float>(kSizeStep));
                }
            }

            // Incremental re-characterization: fold every gate's drive
            // strength and load back into its cell's effective sizing
            // factor. This per-gate sweep is the dominant cost of a
            // pass, exactly as load/slew updates are in a real tool.
            // For each gate, a configurable number of candidate library
            // cells is evaluated (delay under load for each candidate),
            // modelling a production tool's per-gate remapping effort;
            // the survivor is always the same drive formula, so the
            // knob scales runtime, never results.
            const int candidates = options_.modeled_candidates_per_gate;
            volatile float tool_work_sink = 0.0f;
            for (NodeId id = 0; id < n; ++id) {
                auto &node = mapped[id];
                float drive = 0.0f;
                for (size_t g = node.gate_begin;
                     g < node.gate_begin + node.gate_count; ++g) {
                    const float scale_g = gate_scale[g];
                    float cand_acc = 0.0f;
                    for (int c = 0; c < candidates; ++c) {
                        // Candidate delay model: drive c+1 under the
                        // gate's load, RC-style diminishing returns.
                        const float cand = static_cast<float>(c + 1);
                        cand_acc += scale_g /
                                    (cand + 0.05f * scale_g * cand);
                    }
                    tool_work_sink = cand_acc;
                    // Effective drive of one gate under its local load:
                    // stronger gates see diminishing returns.
                    drive += scale_g / (1.0f + 0.05f * (scale_g - 1.0f));
                }
                node.size = static_cast<double>(drive) /
                            static_cast<double>(node.gate_count);
            }
            (void)tool_work_sink;
        }
        worst = sta();
    }

    // --- 4. Roll-up. -----------------------------------------------------
    const double timing_ps = std::max(
        worst + options_.clock_uncertainty_ps,
        lib_.clockToQPs() + lib_.setupPs() + options_.clock_uncertainty_ps);

    double area = 0.0;
    double gates = 0.0;
    double switch_energy_fj = 0.0;
    double leakage_uw = 0.0;

    // Activity propagation in topological order: sequential elements use
    // their (possibly clock-gated) activity coefficient scaled by the
    // baseline toggle rate; combinational activity is the mean of the
    // drivers' (§3.4.4).
    std::vector<double> toggle(n, options_.default_activity);
    for (NodeId id : topo) {
        if (graphir::isSequential(graph.type(id))) {
            toggle[id] = options_.default_activity * graph.activity(id);
        } else if (!graph.predecessors(id).empty()) {
            double sum = 0.0;
            for (NodeId pred : graph.predecessors(id))
                sum += toggle[pred];
            toggle[id] =
                sum / static_cast<double>(graph.predecessors(id).size());
        }
    }

    for (NodeId id = 0; id < n; ++id) {
        const auto &node = mapped[id];
        area += areaOf(node);
        area += lib_.bufferAreaUm2(
            static_cast<int>(graph.successors(id).size()));
        gates += node.cell.gates;
        switch_energy_fj += energyOf(node) * toggle[id];
        leakage_uw += leakageOf(node);
    }

    const double freq_ghz = 1000.0 / timing_ps;
    // fJ * GHz = uW.
    const double dynamic_uw = switch_energy_fj * freq_ghz;
    double power_mw = (dynamic_uw + leakage_uw) / 1000.0;

    result.timing_ps = timing_ps;
    result.area_um2 = area;
    result.power_mw = power_mw;
    result.gate_count = gates;

    // Critical path backtrack (launch -> capture order). Stop at the
    // first sequential vertex beyond the sink — the launch register of
    // a feedback path can be the sink itself, and walking past it would
    // revisit the sink's own fan-in cone forever.
    if (critical_sink != graphir::kInvalidNode) {
        std::vector<NodeId> path;
        path.push_back(critical_sink);
        for (NodeId id = argmax_pred[critical_sink];
             id != graphir::kInvalidNode; id = argmax_pred[id]) {
            path.push_back(id);
            if (graphir::isSequential(graph.type(id)))
                break;
        }
        std::reverse(path.begin(), path.end());
        result.critical_path = std::move(path);
    }

    // --- 5. Deterministic heuristic jitter. -----------------------------
    if (options_.heuristic_noise > 0.0) {
        uint64_t seed = std::hash<std::string>{}(graph.name());
        seed ^= mix(n * 0x9e3779b9ULL + graph.numEdges());
        result.timing_ps *= jitter(seed, options_.heuristic_noise);
        result.area_um2 *= jitter(seed, options_.heuristic_noise);
        result.power_mw *= jitter(seed, options_.heuristic_noise);
    }

    // Ground-truth boundary: a non-finite or negative PPA figure here
    // would silently poison every dataset built on top of this run.
    if (verify::enabled()) {
        verify::enforce(
            verify::checkSynthesisResult(result.timing_ps, result.area_um2,
                                         result.power_mw,
                                         result.gate_count, graph.name()),
            "Synthesizer::run");
    }
    return result;
}

Graph
Synthesizer::pathToChain(const std::vector<TokenId> &path,
                         const std::string &name)
{
    const auto &vocab = Vocabulary::instance();
    Graph chain(name);
    NodeId prev = graphir::kInvalidNode;
    for (TokenId token : path) {
        SNS_ASSERT(token >= 0 && token < vocab.circuitSize(),
                   "path contains a non-circuit token: ", token);
        const NodeId id =
            chain.addNode(vocab.tokenType(token), vocab.tokenWidth(token));
        if (prev != graphir::kInvalidNode)
            chain.addEdge(prev, id);
        prev = id;
    }
    return chain;
}

std::vector<SynthesisResult>
Synthesizer::runPaths(
    const std::vector<std::vector<TokenId>> &paths) const
{
    std::vector<SynthesisResult> results(paths.size());
    par::parallelFor(paths.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            results[i] = runPath(paths[i]);
    });
    return results;
}

std::vector<SynthesisResult>
Synthesizer::runBatch(const std::vector<const graphir::Graph *> &graphs) const
{
    std::vector<SynthesisResult> results(graphs.size());
    par::parallelFor(graphs.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            results[i] = run(*graphs[i]);
    });
    return results;
}

SynthesisResult
Synthesizer::runPath(const std::vector<TokenId> &path) const
{
    SNS_ASSERT(!path.empty(), "cannot synthesize an empty path");
    // Name the chain by its token content so the heuristic jitter is a
    // function of the path itself (same path => same label).
    std::string name = "path";
    for (TokenId token : path)
        name += "_" + std::to_string(token);
    // Paths are characterized in one tool session: never charge the
    // per-invocation setup model to individual chains.
    if (options_.model_setup_cost) {
        SynthesisOptions opts = options_;
        opts.model_setup_cost = false;
        return Synthesizer(opts).run(pathToChain(path, name));
    }
    return run(pathToChain(path, name));
}

} // namespace sns::synth
