/**
 * @file
 * Technology library for the reference synthesizer.
 *
 * Substitutes the FreePDK 15nm cell library used by the paper. Each
 * (type, width) functional unit maps to a gate-equivalent (GE) count,
 * a logic depth, and per-GE electrical constants. The scaling laws are
 * the standard ones for synthesized datapath blocks:
 *
 *   - ripple-free adders/comparators: depth ~ log2(w), area ~ w
 *   - array/tree multipliers: depth ~ 2*log2(w), area ~ w^1.9
 *   - iterative dividers/modulus: depth ~ w, area ~ w^1.8
 *   - barrel shifters: depth ~ log2(w), area ~ w*log2(w)
 *   - bitwise logic and muxes: depth O(1), area ~ w
 *   - reductions: depth ~ log2(w), area ~ w
 *
 * The absolute constants are calibrated so small designs land in the
 * same decade as the paper's FreePDK15 numbers (e.g. the DianNao-class
 * accelerator synthesizing to ~0.1 mm^2 and sub-nanosecond cycle time).
 */

#ifndef SNS_SYNTH_TECH_LIBRARY_HH
#define SNS_SYNTH_TECH_LIBRARY_HH

#include "graphir/node_type.hh"

namespace sns::synth {

/** Electrical and physical characteristics of one mapped cell. */
struct CellParams
{
    double area_um2;    ///< silicon area
    double delay_ps;    ///< input-to-output propagation delay
    double energy_fj;   ///< switching energy per activation
    double leakage_uw;  ///< static leakage power
    double gates;       ///< gate-equivalent count
};

/** A process technology: per-unit cost model plus wire/buffer model. */
class TechLibrary
{
  public:
    /** The FreePDK15-inspired default technology. */
    static const TechLibrary &freePdk15();

    /** Characteristics of a (type, width) functional unit. */
    CellParams cell(graphir::NodeType type, int width) const;

    /** Extra wire delay charged to a net with the given fanout. */
    double wireDelayPs(int fanout) const;

    /** Buffer area inserted on a net with the given fanout. */
    double bufferAreaUm2(int fanout) const;

    /** Flip-flop setup time. */
    double setupPs() const { return setup_ps_; }

    /** Flip-flop clock-to-q delay. */
    double clockToQPs() const { return clk_to_q_ps_; }

    /** Area of one gate equivalent. */
    double areaPerGate() const { return area_per_ge_um2_; }

  private:
    TechLibrary();

    double area_per_ge_um2_;   ///< um^2 per gate equivalent
    double delay_per_level_ps_; ///< one logic level's delay
    double energy_per_ge_fj_;  ///< switching energy per GE
    double leakage_per_ge_uw_; ///< leakage per GE
    double setup_ps_;
    double clk_to_q_ps_;
    double wire_delay_base_ps_;
    double buffer_area_um2_;
};

} // namespace sns::synth

#endif // SNS_SYNTH_TECH_LIBRARY_HH
