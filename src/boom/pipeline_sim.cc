#include "boom/pipeline_sim.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"
#include "util/rng.hh"

namespace sns::boom {

std::vector<TraceInstr>
SyntheticTrace::coreMark(size_t length, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceInstr> trace;
    trace.reserve(length);
    for (size_t i = 0; i < length; ++i) {
        TraceInstr instr;
        const double roll = rng.uniform();
        if (roll < 0.20) {
            instr.kind = TraceInstr::Kind::Branch;
        } else if (roll < 0.40) {
            instr.kind = TraceInstr::Kind::Load;
        } else if (roll < 0.45) {
            instr.kind = TraceInstr::Kind::Store;
        } else if (roll < 0.49) {
            instr.kind = TraceInstr::Kind::Mul;
        } else if (roll < 0.50) {
            instr.kind = TraceInstr::Kind::Div;
        } else {
            instr.kind = TraceInstr::Kind::Alu;
        }
        // CoreMark is dependency-dense: linked-list walks and CRC
        // folding produce short producer-consumer distances.
        auto draw_dist = [&rng, i]() -> int {
            if (rng.bernoulli(0.35))
                return 0; // immediate / no register source
            const int dist =
                1 + static_cast<int>(rng.uniformInt(uint64_t{7}));
            return static_cast<int>(std::min<size_t>(dist, i));
        };
        instr.src1_dist = draw_dist();
        instr.src2_dist = draw_dist();
        trace.push_back(instr);
    }
    return trace;
}

namespace {

int
latencyOf(TraceInstr::Kind kind)
{
    switch (kind) {
      case TraceInstr::Kind::Alu:
      case TraceInstr::Kind::Store:
      case TraceInstr::Kind::Branch:
        return 1;
      case TraceInstr::Kind::Load:
        return 2;
      case TraceInstr::Kind::Mul:
        return 3;
      case TraceInstr::Kind::Div:
        return 12;
    }
    return 1;
}

constexpr int kMispredictPenalty = 10;
constexpr int kMissPenalty = 18;

double
l1HitRate(int ways)
{
    return ways >= 8 ? 0.995 : 0.988;
}

/** An instruction in flight. */
struct RobEntry
{
    size_t trace_index = 0;
    bool issued = false;
    bool completed = false;
    uint64_t complete_cycle = 0;
};

} // namespace

PipelineSimulator::PipelineSimulator(const BoomParams &params,
                                     uint64_t seed)
    : params_(params), seed_(seed)
{
}

SimResult
PipelineSimulator::run(const std::vector<TraceInstr> &trace)
{
    SNS_ASSERT(!trace.empty(), "empty trace");
    Rng rng(seed_);
    SimResult result;

    // Completion cycle per trace index (for dependency wakeup).
    std::vector<uint64_t> completion(trace.size(), 0);
    std::vector<bool> done(trace.size(), false);

    std::deque<RobEntry> rob;
    const double accuracy =
        CoreMarkModel::predictorAccuracy(params_.bpred);
    const double hit_rate = l1HitRate(params_.l1d_ways);
    // In-flight destination registers are bounded by the physical
    // registers beyond the 32 architectural ones.
    const size_t max_inflight = std::min<size_t>(
        params_.rob_size,
        static_cast<size_t>(std::max(1, params_.int_regs - 32)));

    size_t next_fetch = 0;        // next trace index to fetch
    uint64_t fetch_stall_until = 0; // frontend redirect penalty
    size_t fetched_not_dispatched = 0; // fetch-buffer occupancy
    size_t waiting_in_iq = 0;     // dispatched but not yet issued
    size_t retired = 0;
    uint64_t cycle = 0;

    const size_t fetch_buffer_capacity = params_.fetch_width;

    while (retired < trace.size()) {
        ++cycle;
        SNS_ASSERT(cycle < 200ull * trace.size() + 100000ull,
                   "pipeline simulator livelock");

        // --- Commit: oldest completed instructions, in order. --------
        int commits = 0;
        while (!rob.empty() && commits < params_.core_width) {
            RobEntry &head = rob.front();
            if (!head.completed || head.complete_cycle > cycle)
                break;
            done[head.trace_index] = true;
            rob.pop_front();
            ++retired;
            ++commits;
        }

        // --- Issue/execute: wake up ready instructions. --------------
        int issued_this_cycle = 0;
        int mem_issued = 0;
        for (auto &entry : rob) {
            if (issued_this_cycle >= params_.core_width)
                break;
            if (entry.issued)
                continue;
            const TraceInstr &instr = trace[entry.trace_index];
            const bool is_mem = instr.kind == TraceInstr::Kind::Load ||
                                instr.kind == TraceInstr::Kind::Store;
            if (is_mem && mem_issued >= params_.mem_ports)
                continue;

            // Operand readiness: producers completed by this cycle.
            auto ready = [&](int dist) {
                if (dist == 0)
                    return true;
                const size_t producer = entry.trace_index - dist;
                return done[producer] ||
                       (completion[producer] != 0 &&
                        completion[producer] <= cycle);
            };
            if (static_cast<int>(entry.trace_index) - instr.src1_dist <
                    0 ||
                !ready(instr.src1_dist) || !ready(instr.src2_dist)) {
                continue;
            }

            int latency = latencyOf(instr.kind);
            if (instr.kind == TraceInstr::Kind::Load &&
                !rng.bernoulli(hit_rate)) {
                latency += kMissPenalty;
                ++result.l1_misses;
            }
            entry.issued = true;
            entry.completed = true;
            entry.complete_cycle = cycle + latency;
            completion[entry.trace_index] = cycle + latency;
            ++issued_this_cycle;
            --waiting_in_iq;
            mem_issued += is_mem;

            if (instr.kind == TraceInstr::Kind::Branch &&
                !rng.bernoulli(accuracy)) {
                // Mispredict: flush the frontend; fetch resumes after
                // resolution plus the refill penalty.
                ++result.branch_mispredicts;
                fetch_stall_until = std::max(
                    fetch_stall_until,
                    entry.complete_cycle + kMispredictPenalty);
                // Squash the (wrong-path) fetch buffer; those trace
                // slots must be re-fetched after the redirect.
                next_fetch -= fetched_not_dispatched;
                fetched_not_dispatched = 0;
            }
        }

        // --- Dispatch: fetch buffer -> ROB. ----------------------------
        int dispatched = 0;
        while (dispatched < params_.core_width &&
               fetched_not_dispatched > 0 &&
               rob.size() < static_cast<size_t>(params_.rob_size) &&
               rob.size() < max_inflight &&
               waiting_in_iq <
                   static_cast<size_t>(params_.issue_slots)) {
            RobEntry entry;
            entry.trace_index = next_fetch - fetched_not_dispatched;
            rob.push_back(entry);
            --fetched_not_dispatched;
            ++waiting_in_iq;
            ++dispatched;
        }

        // --- Fetch: refill the buffer unless redirecting. --------------
        if (cycle >= fetch_stall_until) {
            size_t supplied = 0;
            while (supplied < static_cast<size_t>(params_.fetch_width) /
                                  2 &&
                   fetched_not_dispatched < fetch_buffer_capacity &&
                   next_fetch < trace.size()) {
                ++next_fetch;
                ++fetched_not_dispatched;
                ++supplied;
                // A taken branch ends the fetch group.
                if (trace[next_fetch - 1].kind ==
                        TraceInstr::Kind::Branch &&
                    rng.bernoulli(0.5)) {
                    break;
                }
            }
        }
    }

    result.cycles = cycle;
    result.instructions = trace.size();
    return result;
}

} // namespace sns::boom
