/**
 * @file
 * The BOOM case study (§5.6): a parametric out-of-order RISC-V-style
 * core generator over the Table-10 design space (2592 configurations)
 * plus an analytic CoreMark performance model standing in for the
 * Chipyard cycle-accurate simulation.
 *
 * The generator scales real microarchitectural structures with the
 * parameters — fetch buffer, branch predictor tables, rename map and
 * free list, ROB entries, issue-queue wakeup CAMs, physical register
 * file with per-lane read ports, ALUs/MUL/DIV, load-store unit ports,
 * and L1-D tag ways — so the predicted area/power/timing respond to
 * the parameters the way the paper's DSE expects.
 */

#ifndef SNS_BOOM_BOOM_HH
#define SNS_BOOM_BOOM_HH

#include <string>
#include <vector>

#include "graphir/graph.hh"

namespace sns::boom {

/** Branch predictor organizations of Table 10. */
enum class BranchPredictor
{
    TageL,
    Boom2,
    Alpha21264,
};

/** Printable predictor name. */
const char *branchPredictorName(BranchPredictor bpred);

/** One point of the Table-10 design space. */
struct BoomParams
{
    BranchPredictor bpred = BranchPredictor::TageL;
    int core_width = 2;   ///< 1, 2, 3, 4
    int mem_ports = 1;    ///< 1, 2
    int fetch_width = 4;  ///< 4, 8
    int rob_size = 64;    ///< 32, 64, 96
    int int_regs = 80;    ///< 52, 80, 100
    int issue_slots = 16; ///< 8, 16, 32
    int l1d_ways = 4;     ///< 4, 8

    /** Unique configuration name, e.g. "boom_tage_w4_m1_f8_r64_...". */
    std::string name() const;
};

/** Build the GraphIR circuit for one configuration. */
graphir::Graph buildBoomCore(const BoomParams &params);

/** Enumerate the full 2592-point Table-10 design space. */
std::vector<BoomParams> boomDesignSpace();

/**
 * Analytic CoreMark performance model (the paper's Chipyard+CoreMark
 * substitute).
 *
 * Encodes the first-order out-of-order effects the paper's DSE
 * discussion relies on: IPC saturates at the decode width, window ILP
 * follows a square-root law in min(ROB, registers, issue capacity),
 * extra issue slots beyond what the width can drain are wasted, branch
 * mispredictions charge a pipeline refill, and CoreMark is compute
 * bound so a second memory port buys nothing.
 */
class CoreMarkModel
{
  public:
    /** Sustained instructions per cycle for a configuration. */
    static double ipc(const BoomParams &params);

    /** Branch predictor accuracy on CoreMark's branch mix. */
    static double predictorAccuracy(BranchPredictor bpred);

    /**
     * CoreMark-like score: IPC x frequency, in arbitrary units
     * proportional to iterations/second.
     * @param freq_ghz clock from synthesis (or SNS prediction)
     */
    static double score(const BoomParams &params, double freq_ghz);
};

} // namespace sns::boom

#endif // SNS_BOOM_BOOM_HH
