/**
 * @file
 * GraphIR construction for the parametric BOOM-like core.
 */

#include "boom/boom.hh"

#include "netlist/circuit_builder.hh"
#include "util/logging.hh"

namespace sns::boom {

using graphir::NodeId;
using graphir::NodeType;
using netlist::CircuitBuilder;

const char *
branchPredictorName(BranchPredictor bpred)
{
    switch (bpred) {
      case BranchPredictor::TageL:
        return "tage";
      case BranchPredictor::Boom2:
        return "boom2";
      case BranchPredictor::Alpha21264:
        return "alpha";
    }
    panic("unhandled BranchPredictor");
}

std::string
BoomParams::name() const
{
    return std::string("boom_") + branchPredictorName(bpred) + "_w" +
           std::to_string(core_width) + "_m" + std::to_string(mem_ports) +
           "_f" + std::to_string(fetch_width) + "_r" +
           std::to_string(rob_size) + "_p" + std::to_string(int_regs) +
           "_i" + std::to_string(issue_slots) + "_c" +
           std::to_string(l1d_ways);
}

namespace {

/** A register bank read through a mux tree by `ports` select inputs. */
std::vector<NodeId>
bankedStorage(CircuitBuilder &cb, int entries, int width, int ports)
{
    std::vector<NodeId> storage;
    storage.reserve(entries);
    for (int i = 0; i < entries; ++i)
        storage.push_back(cb.dff(width));
    std::vector<NodeId> reads;
    for (int p = 0; p < ports; ++p) {
        const NodeId sel = cb.input(8);
        reads.push_back(cb.muxTree(width, sel, storage));
    }
    return reads;
}

/** Branch predictor structures; returns the taken/not-taken signal. */
NodeId
buildPredictor(CircuitBuilder &cb, BranchPredictor bpred, NodeId pc)
{
    switch (bpred) {
      case BranchPredictor::TageL: {
        // Four tagged geometric-history tables, each with a banked
        // counter store, tag compare, and a priority mux chain picking
        // the longest-history hit. TAGE is the largest of the three
        // organizations, as in real frontends.
        NodeId provider = cb.dff(4);
        for (int table = 0; table < 4; ++table) {
            const NodeId history = cb.dff(16);
            const NodeId index = cb.bxor(16, pc, history);
            const NodeId tag = cb.dff(16);
            const NodeId hit = cb.eq(16, index, tag);
            auto counters = bankedStorage(cb, 8, 4, 1);
            const NodeId useful = cb.dff(4);
            const NodeId entry = cb.band(4, counters[0], useful);
            provider = cb.mux(4, hit, entry, provider);
        }
        return cb.reduceOr(provider);
      }
      case BranchPredictor::Boom2: {
        // gshare: global history xor pc indexes a counter bank.
        const NodeId history = cb.dff(16);
        const NodeId index = cb.bxor(16, pc, history);
        auto counters = bankedStorage(cb, 16, 4, 1);
        const NodeId chosen = cb.mux(4, cb.reduceOr(index),
                                     counters[0], counters[0]);
        return cb.reduceOr(chosen);
      }
      case BranchPredictor::Alpha21264: {
        // Tournament: local history table, global counters, chooser.
        auto local = bankedStorage(cb, 8, 16, 1);
        const NodeId local_counter = cb.dff(4);
        const NodeId local_pred = cb.lgt(16, local[0], local[0]);
        const NodeId global_counter = cb.dff(4);
        const NodeId global_pred = cb.reduceOr(global_counter);
        const NodeId choice = cb.dff(4);
        const NodeId pick =
            cb.mux(4, choice, global_pred, local_pred);
        return cb.reduceOr(cb.band(4, pick, local_counter));
      }
    }
    panic("unhandled BranchPredictor");
}

/** One single-cycle ALU lane. */
NodeId
buildAlu(CircuitBuilder &cb, int width, NodeId a, NodeId b, NodeId op)
{
    const NodeId sum = cb.add(width, a, b);
    const NodeId diff = cb.add(width, a, cb.bnot(width, b));
    const NodeId logic_and = cb.band(width, a, b);
    const NodeId logic_xor = cb.bxor(width, a, b);
    const NodeId shift = cb.shifter(width, a, b);
    const NodeId cmp = cb.lgt(width, a, b);
    return cb.muxTree(width, op,
                      {sum, diff, logic_and, logic_xor, shift, cmp});
}

} // namespace

graphir::Graph
buildBoomCore(const BoomParams &params)
{
    constexpr int kXlen = 64;
    CircuitBuilder cb(params.name());

    // --- Frontend: fetch buffer + next-PC + branch predictor. --------
    const NodeId pc = cb.dff(kXlen);
    const NodeId fetch_in = cb.input(32);
    std::vector<NodeId> fetch_buffer;
    NodeId stage = fetch_in;
    for (int i = 0; i < params.fetch_width; ++i) {
        stage = cb.reg(32, stage);
        fetch_buffer.push_back(stage);
    }
    // The prediction is registered before steering the PC — real
    // frontends pipeline the predictor, so its table depth must not
    // stretch the next-PC critical path.
    const NodeId taken =
        cb.reg(4, buildPredictor(cb, params.bpred, pc));
    const NodeId step = cb.dff(kXlen);
    const NodeId target = cb.add(kXlen, pc, step);
    const NodeId redirect = cb.add(kXlen, pc, pc);
    cb.connect(cb.mux(kXlen, taken, redirect, target), pc);

    // --- Decode + rename: per-lane decoders, map table, free list. ---
    const NodeId fetch_pick = cb.input(8);
    std::vector<NodeId> decoded;
    for (int lane = 0; lane < params.core_width; ++lane) {
        const NodeId slot = cb.muxTree(32, fetch_pick, fetch_buffer);
        const NodeId opcode = cb.band(32, slot, slot);
        decoded.push_back(cb.shifter(32, opcode, slot));
    }
    // Rename map table: 32 architectural tags.
    auto map_reads = bankedStorage(cb, 32, 8, 2 * params.core_width);
    // Free list sized with the physical register count.
    std::vector<NodeId> free_bits;
    for (int i = 0; i < params.int_regs / 4; ++i)
        free_bits.push_back(cb.dff(4));
    const NodeId free_any = cb.reduceOr(
        cb.reduceTree(NodeType::Or, 4, free_bits));

    // --- ROB: entries with completion compare + head/tail control. ---
    const NodeId complete_tag = cb.input(8);
    std::vector<NodeId> rob_done;
    for (int entry = 0; entry < params.rob_size; ++entry) {
        const NodeId tag = cb.dff(8);
        const NodeId done = cb.dff(4);
        const NodeId hit = cb.eq(8, tag, complete_tag);
        cb.connect(cb.mux(4, hit, done, done), done);
        if (entry % 8 == 0)
            rob_done.push_back(cb.band(4, hit, done));
    }
    const NodeId can_commit = cb.reduceOr(
        cb.reduceTree(NodeType::Or, 4, rob_done));

    // --- Issue queue: wakeup CAM per slot per lane. -------------------
    std::vector<NodeId> grants;
    for (int slot = 0; slot < params.issue_slots; ++slot) {
        const NodeId src1 = cb.dff(8);
        const NodeId src2 = cb.dff(8);
        const NodeId ready1 = cb.eq(8, src1, complete_tag);
        const NodeId ready2 = cb.eq(8, src2, complete_tag);
        grants.push_back(cb.band(8, ready1, ready2));
    }
    const NodeId grant_any =
        cb.reduceOr(cb.reduceTree(NodeType::Or, 8, grants));

    // --- Physical register file: 2 read ports per lane. ---------------
    auto rf_reads = bankedStorage(cb, params.int_regs, kXlen,
                                  2 * params.core_width);

    // --- Execute: one ALU per lane + shared MUL/DIV. -------------------
    const NodeId op_sel = cb.input(8);
    std::vector<NodeId> results;
    for (int lane = 0; lane < params.core_width; ++lane) {
        const NodeId a = rf_reads[2 * lane];
        const NodeId b = rf_reads[2 * lane + 1];
        const NodeId gated =
            cb.mux(kXlen, grant_any, b, decoded[lane % decoded.size()]);
        results.push_back(cb.reg(buildAlu(cb, kXlen, a, gated, op_sel)));
    }
    const NodeId mul = cb.reg(cb.mul(kXlen, rf_reads[0], rf_reads[1]));
    const NodeId div = cb.reg(cb.div(kXlen, rf_reads[0], rf_reads[1]));

    // --- LSU: per-port AGU + store-queue CAM. --------------------------
    std::vector<NodeId> mem_results;
    for (int port = 0; port < params.mem_ports; ++port) {
        const NodeId base = rf_reads[port % rf_reads.size()];
        const NodeId addr = cb.add(kXlen, base, step);
        std::vector<NodeId> stq_hits;
        for (int entry = 0; entry < 8; ++entry) {
            const NodeId stq_addr = cb.dff(kXlen);
            stq_hits.push_back(cb.eq(kXlen, addr, stq_addr));
        }
        const NodeId fwd =
            cb.reduceTree(NodeType::Or, kXlen, stq_hits);
        const NodeId mem_data = cb.input(kXlen);
        mem_results.push_back(
            cb.reg(cb.mux(kXlen, cb.reduceOr(fwd), mem_data, addr)));
    }

    // --- L1-D tags: one tag compare per way + way select. --------------
    std::vector<NodeId> way_hits;
    const NodeId line_addr = cb.band(kXlen, mem_results[0],
                                     mem_results[0]);
    for (int way = 0; way < params.l1d_ways; ++way) {
        const NodeId tag = cb.dff(32);
        way_hits.push_back(cb.eq(32, tag, line_addr));
    }
    const NodeId way_sel =
        cb.reduceTree(NodeType::Or, 32, way_hits);
    const NodeId hit = cb.reduceOr(way_sel);

    // --- Writeback / commit. -------------------------------------------
    const NodeId wb_sel = cb.input(8);
    std::vector<NodeId> wb_candidates = results;
    wb_candidates.push_back(mul);
    wb_candidates.push_back(div);
    for (NodeId m : mem_results)
        wb_candidates.push_back(m);
    const NodeId wb = cb.muxTree(kXlen, wb_sel, wb_candidates);
    const NodeId committed =
        cb.mux(kXlen, cb.band(4, can_commit, cb.band(4, free_any, hit)),
               wb, map_reads[0]);
    cb.output(kXlen, {cb.reg(committed)});
    return cb.build();
}

std::vector<BoomParams>
boomDesignSpace()
{
    std::vector<BoomParams> space;
    for (BranchPredictor bpred :
         {BranchPredictor::TageL, BranchPredictor::Boom2,
          BranchPredictor::Alpha21264}) {
        for (int width : {1, 2, 3, 4}) {
            for (int ports : {1, 2}) {
                for (int fetch : {4, 8}) {
                    for (int rob : {32, 64, 96}) {
                        for (int regs : {52, 80, 100}) {
                            for (int issue : {8, 16, 32}) {
                                for (int ways : {4, 8}) {
                                    BoomParams params;
                                    params.bpred = bpred;
                                    params.core_width = width;
                                    params.mem_ports = ports;
                                    params.fetch_width = fetch;
                                    params.rob_size = rob;
                                    params.int_regs = regs;
                                    params.issue_slots = issue;
                                    params.l1d_ways = ways;
                                    space.push_back(params);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    SNS_ASSERT(space.size() == 2592, "Table 10 expects 2592 points");
    return space;
}

} // namespace sns::boom
