/**
 * @file
 * Analytic CoreMark performance model for the BOOM design space.
 *
 * CoreMark characteristics used (from its published instruction mix):
 * roughly 20% branches, 25% memory operations, and little memory-level
 * pressure (the working set fits in L1), which is why the paper's DSE
 * finds single-memory-port designs on the whole Pareto frontier.
 */

#include "boom/boom.hh"

#include <algorithm>
#include <cmath>

namespace sns::boom {

namespace {

// CoreMark instruction mix and machine constants.
constexpr double kBranchFraction = 0.20;
constexpr double kMemFraction = 0.25;
constexpr double kMispredictPenalty = 10.0; // pipeline refill cycles
constexpr double kMissPenalty = 18.0;       // L1 miss, L2 hit
constexpr double kWindowIlpFactor = 0.68;   // sqrt-window ILP law

double
l1HitRate(int ways)
{
    // CoreMark's small working set: conflict misses only.
    return ways >= 8 ? 0.995 : 0.988;
}

} // namespace

double
CoreMarkModel::predictorAccuracy(BranchPredictor bpred)
{
    switch (bpred) {
      case BranchPredictor::TageL:
        return 0.985;
      case BranchPredictor::Alpha21264:
        return 0.975;
      case BranchPredictor::Boom2:
        return 0.960;
    }
    return 0.9;
}

double
CoreMarkModel::ipc(const BoomParams &params)
{
    // Front-end supply: the fetch buffer must cover the decode width;
    // a 4-wide fetch struggles to keep a 4-wide core fed across taken
    // branches.
    const double fetch_supply =
        std::min<double>(params.core_width,
                         0.55 * static_cast<double>(params.fetch_width));

    // Out-of-order window: bounded by ROB entries, free physical
    // registers beyond the architectural 32, and the scheduling
    // capacity of the issue queue. ILP extracted from a window of size
    // W follows the classic sqrt law.
    const double window = std::min(
        {static_cast<double>(params.rob_size),
         2.2 * static_cast<double>(params.int_regs - 32),
         5.0 * static_cast<double>(params.issue_slots)});
    const double window_ilp = kWindowIlpFactor * std::sqrt(window);

    // Memory throughput: CoreMark is compute bound and its L1-resident
    // accesses pipeline through a single port, so one port sustains
    // more loads/stores per cycle than a 4-wide core can ever issue.
    const double mem_limit = 4.5 * static_cast<double>(params.mem_ports);

    const double base_ipc = std::min(
        {static_cast<double>(params.core_width), fetch_supply,
         window_ilp, mem_limit});

    // Stall components charged per instruction.
    const double accuracy = predictorAccuracy(params.bpred);
    const double branch_cpi =
        kBranchFraction * (1.0 - accuracy) * kMispredictPenalty;
    const double mem_cpi = kMemFraction *
                           (1.0 - l1HitRate(params.l1d_ways)) *
                           kMissPenalty;

    const double cpi = 1.0 / base_ipc + branch_cpi + mem_cpi;
    return 1.0 / cpi;
}

double
CoreMarkModel::score(const BoomParams &params, double freq_ghz)
{
    return ipc(params) * std::max(freq_ghz, 0.0);
}

} // namespace sns::boom
