/**
 * @file
 * A trace-driven out-of-order pipeline simulator — the closer stand-in
 * for the paper's "cycle accurate simulator provided by Chipyard"
 * (§5.6). The analytic CoreMarkModel remains as a fast cross-check;
 * the simulator actually retires a synthetic CoreMark-like instruction
 * trace through fetch, dispatch, issue, execute, and commit stages
 * bounded by the Table-10 resources.
 *
 * Modelled effects:
 *   - fetch bandwidth and taken-branch redirect bubbles,
 *   - dispatch bounded by core width, ROB entries, issue-queue slots,
 *     and free physical registers,
 *   - wakeup/select: an instruction issues once its producers have
 *     completed and a function unit is free (per-cycle issue bounded by
 *     core width, memory ops by the number of ports),
 *   - operation latencies (ALU 1, MUL 3, DIV 12, loads 2 + miss
 *     penalty),
 *   - branch mispredictions (per-predictor accuracy) flushing the
 *     frontend and charging a refill penalty,
 *   - L1 misses at a rate set by the cache ways.
 */

#ifndef SNS_BOOM_PIPELINE_SIM_HH
#define SNS_BOOM_PIPELINE_SIM_HH

#include <cstdint>
#include <vector>

#include "boom/boom.hh"

namespace sns::boom {

/** One instruction of a synthetic trace. */
struct TraceInstr
{
    enum class Kind : uint8_t
    {
        Alu,
        Mul,
        Div,
        Load,
        Store,
        Branch,
    };

    Kind kind = Kind::Alu;
    /**
     * Dependency distances: this instruction reads the results of the
     * instructions `src1_dist` and `src2_dist` positions earlier in
     * the trace (0 = no dependency).
     */
    int src1_dist = 0;
    int src2_dist = 0;
};

/** Deterministic synthetic instruction traces. */
class SyntheticTrace
{
  public:
    /**
     * A CoreMark-like mix: ~20% branches, ~20% loads, ~5% stores, a
     * few percent multiplies, mostly short dependency distances (list
     * walks, CRC chains).
     */
    static std::vector<TraceInstr> coreMark(size_t length,
                                            uint64_t seed = 0xc0de);
};

/** Execution statistics of one simulation. */
struct SimResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t branch_mispredicts = 0;
    uint64_t l1_misses = 0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

/** The trace-driven out-of-order core model. */
class PipelineSimulator
{
  public:
    explicit PipelineSimulator(const BoomParams &params,
                               uint64_t seed = 0x51b);

    /** Run a trace to completion. */
    SimResult run(const std::vector<TraceInstr> &trace);

    const BoomParams &params() const { return params_; }

  private:
    BoomParams params_;
    uint64_t seed_;
};

} // namespace sns::boom

#endif // SNS_BOOM_PIPELINE_SIM_HH
