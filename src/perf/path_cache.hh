/**
 * @file
 * sns::perf — the inference fast path (docs/perf.md).
 *
 * PathPredictionCache is a thread-safe, content-addressed memo of
 * Circuitformer path predictions: key = the complete token sequence of
 * a sampled circuit path (addressed by its FNV-1a hash, verified by
 * full token comparison, so hash collisions can never alias), value =
 * the de-normalized PathPrediction triple. DSE sweeps hammer the
 * predictor with hundreds of design variants that share most of their
 * sampled paths; with a cache held across predictBatch() calls each
 * unique path pays the Transformer exactly once.
 *
 * Why memoization is sound: a path's prediction depends only on its
 * token sequence — Circuitformer batches are padded and key-masked, so
 * a path's row is bitwise independent of which batch it rides in
 * (asserted end-to-end by PredictBatchTest.CacheOnOffBitwiseIdentical).
 * Cached replay therefore returns the exact bits the model would
 * recompute.
 *
 * Concurrency and determinism: the map is sharded by key hash, one
 * mutex per shard. Eviction is per shard, FIFO in insertion order, and
 * capacity is enforced deterministically (a single-threaded fill
 * always evicts the same keys in the same order). Under concurrent
 * mixed workloads the hit/miss *split* may vary run to run — the
 * *predictions* never do, because every value is a pure function of
 * its key.
 *
 * Sharing contract: one cache may be shared across threads, across
 * predictBatch calls, and across *predictor instances* — provided
 * every writer runs the same Circuitformer weights, because a cached
 * value is only key-determined under a fixed model. That precondition
 * is enforced, not just documented: the first predictor to use the
 * cache binds it to its weight fingerprint (`bindModel`), any later
 * user with different weights is rejected, and `clear()` unbinds so a
 * hot-reloaded server re-binds its fresh model (docs/serving.md).
 */

#ifndef SNS_PERF_PATH_CACHE_HH
#define SNS_PERF_PATH_CACHE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/circuitformer.hh"
#include "graphir/vocabulary.hh"

namespace sns::perf {

/** FNV-1a (64-bit) over the raw bytes of a token sequence. */
uint64_t hashTokens(std::span<const graphir::TokenId> tokens);

/** Monotonic + instantaneous counters of one cache (a snapshot). */
struct CacheStats
{
    uint64_t hits = 0;       ///< lookups that returned a value
    uint64_t misses = 0;     ///< lookups that found nothing
    uint64_t inserts = 0;    ///< entries added (re-inserts excluded)
    uint64_t evictions = 0;  ///< entries displaced at capacity
    size_t entries = 0;      ///< resident entries right now
    size_t bytes = 0;        ///< approximate resident footprint

    /** hits / (hits + misses), 0 when never probed. */
    double hitRate() const
    {
        const uint64_t probes = hits + misses;
        return probes == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(probes);
    }
};

/** Construction knobs. */
struct PathCacheOptions
{
    /** Maximum resident entries, enforced per shard (each shard holds
     * capacity / shards, so the bound is exact when keys spread and
     * conservative otherwise). 0 means unbounded. */
    size_t capacity = 1u << 20;

    /** Mutex shards; rounded up to 1. More shards = less contention
     * under concurrent predictBatch designs. */
    size_t shards = 16;
};

/** Sharded, bounded, content-addressed path-prediction memo. */
class PathPredictionCache
{
  public:
    explicit PathPredictionCache(PathCacheOptions options = {});

    PathPredictionCache(const PathPredictionCache &) = delete;
    PathPredictionCache &operator=(const PathPredictionCache &) = delete;

    /**
     * Probe for a path. On hit copies the cached triple into `out` and
     * returns true; counts one hit or one miss either way.
     */
    bool lookup(std::span<const graphir::TokenId> tokens,
                core::PathPrediction &out) const;

    /**
     * Memoize a path's prediction. Re-inserting a resident key is a
     * no-op (values are pure functions of the key, so the resident
     * value is already correct — this is what makes concurrent
     * duplicate computes benign). At capacity the shard evicts its
     * oldest-inserted entries first (FIFO).
     */
    void insert(std::span<const graphir::TokenId> tokens,
                const core::PathPrediction &value);

    /**
     * Bind the cache to a model's weight fingerprint (nonzero; see
     * core::Circuitformer::parametersFingerprint). Returns true if the
     * cache was unbound (it binds now) or already bound to the same
     * fingerprint; false on a conflicting bind — the caller must treat
     * that as a fatal sharing bug, since mixing models in one cache
     * would serve one model's predictions for another's paths.
     */
    bool bindModel(uint64_t fingerprint);

    /** The bound fingerprint, 0 while unbound. */
    uint64_t boundModel() const;

    /** Consistent per-shard snapshot, aggregated over shards. */
    CacheStats stats() const;

    /** Drop every entry, zero all counters, and unbind the model
     * fingerprint (the next bindModel() starts fresh). */
    void clear();

    size_t capacity() const { return capacity_; }
    size_t shardCount() const { return shards_.size(); }

  private:
    struct Entry
    {
        std::vector<graphir::TokenId> tokens;
        core::PathPrediction value;
    };

    /** One lock's worth of the map. Hash buckets hold every entry
     * whose full hash collides; the FIFO queue records insertion
     * order for eviction. */
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<uint64_t, std::vector<Entry>> buckets;
        std::deque<uint64_t> fifo; ///< hashes in insertion order
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t inserts = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
        size_t bytes = 0;
    };

    Shard &shardFor(uint64_t hash) const
    {
        return shards_[hash % shards_.size()];
    }

    size_t capacity_ = 0;
    size_t shard_capacity_ = 0; ///< 0 = unbounded
    /** Weight fingerprint of the model whose predictions live here;
     * 0 = unbound. CAS-bound on first use, reset by clear(). */
    std::atomic<uint64_t> bound_model_{0};
    mutable std::vector<Shard> shards_;
};

} // namespace sns::perf

#endif // SNS_PERF_PATH_CACHE_HH
