/**
 * @file
 * Grow-only float arena backing planned execution (docs/plan.md).
 *
 * The static layout pass (verify::computePlanLayout) proves a fixed
 * worst-case float budget for a whole planned batch; the executor asks
 * this arena for that budget once per call and slices buffers out of
 * it at the precomputed offsets. ensure() only ever allocates when the
 * requested capacity grows — steady-state planned batches therefore
 * perform zero heap allocations, which is exactly the property the
 * analyzer's P-ALLOC note states.
 *
 * Memory is intentionally *uninitialized* on growth: every plan op
 * either zero-fills its concrete output region first (gemm/bmm
 * accumulators) or assigns every element it claims to produce, and
 * the bitwise tests against the module walk would catch any op that
 * read a float it never wrote.
 */

#ifndef SNS_PERF_ARENA_HH
#define SNS_PERF_ARENA_HH

#include <cstddef>
#include <memory>

namespace sns::perf {

/** Reusable, grow-only scratch buffer of floats. */
class FloatArena
{
  public:
    /**
     * Return a buffer of at least `floats` floats, reallocating only
     * when the request exceeds the current capacity. Contents are
     * unspecified; callers must write before reading.
     */
    float *
    ensure(size_t floats)
    {
        if (floats > capacity_) {
            // NOLINTNEXTLINE(cppcoreguidelines-owning-memory)
            data_.reset(new float[floats]); // uninitialized on purpose
            capacity_ = floats;
        }
        return data_.get();
    }

    /** Current capacity in floats. */
    size_t capacity() const { return capacity_; }

  private:
    std::unique_ptr<float[]> data_;
    size_t capacity_ = 0;
};

} // namespace sns::perf

#endif // SNS_PERF_ARENA_HH
