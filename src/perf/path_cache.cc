#include "perf/path_cache.hh"

#include <algorithm>

namespace sns::perf {

namespace {

/** Approximate resident footprint of one entry. */
size_t
entryBytes(const std::vector<graphir::TokenId> &tokens)
{
    return tokens.size() * sizeof(graphir::TokenId) +
           sizeof(std::vector<graphir::TokenId>) +
           sizeof(core::PathPrediction);
}

} // namespace

uint64_t
hashTokens(std::span<const graphir::TokenId> tokens)
{
    // FNV-1a, 64-bit, over the raw token bytes. Content addressing:
    // the same sequence hashes the same in any process, which is what
    // lets one cache be shared across predictor instances (the serve
    // daemon shares it across workers and hot-reloads; see the header
    // sharing contract and bindModel()).
    uint64_t hash = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    for (const graphir::TokenId token : tokens) {
        uint32_t word = static_cast<uint32_t>(token);
        for (int byte = 0; byte < 4; ++byte) {
            hash ^= word & 0xffu;
            hash *= kPrime;
            word >>= 8;
        }
    }
    return hash;
}

PathPredictionCache::PathPredictionCache(PathCacheOptions options)
    : capacity_(options.capacity),
      shards_(std::max<size_t>(1, options.shards))
{
    if (capacity_ > 0) {
        shard_capacity_ =
            (capacity_ + shards_.size() - 1) / shards_.size();
        shard_capacity_ = std::max<size_t>(1, shard_capacity_);
    }
}

bool
PathPredictionCache::lookup(std::span<const graphir::TokenId> tokens,
                            core::PathPrediction &out) const
{
    const uint64_t hash = hashTokens(tokens);
    Shard &shard = shardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.buckets.find(hash);
    if (it != shard.buckets.end()) {
        for (const Entry &entry : it->second) {
            if (entry.tokens.size() == tokens.size() &&
                std::equal(tokens.begin(), tokens.end(),
                           entry.tokens.begin())) {
                out = entry.value;
                ++shard.hits;
                return true;
            }
        }
    }
    ++shard.misses;
    return false;
}

void
PathPredictionCache::insert(std::span<const graphir::TokenId> tokens,
                            const core::PathPrediction &value)
{
    const uint64_t hash = hashTokens(tokens);
    Shard &shard = shardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mutex);

    auto &bucket = shard.buckets[hash];
    for (const Entry &entry : bucket) {
        if (entry.tokens.size() == tokens.size() &&
            std::equal(tokens.begin(), tokens.end(),
                       entry.tokens.begin())) {
            return; // resident: values are key-determined, keep it
        }
    }

    Entry entry;
    entry.tokens.assign(tokens.begin(), tokens.end());
    entry.value = value;
    shard.bytes += entryBytes(entry.tokens);
    bucket.push_back(std::move(entry));
    shard.fifo.push_back(hash);
    ++shard.entries;
    ++shard.inserts;

    // FIFO eviction: the oldest-inserted entry of this shard goes
    // first. Within one hash bucket entries are appended in insertion
    // order, so popping the bucket front matches the FIFO queue.
    while (shard_capacity_ > 0 && shard.entries > shard_capacity_) {
        const uint64_t victim_hash = shard.fifo.front();
        shard.fifo.pop_front();
        const auto victim_it = shard.buckets.find(victim_hash);
        if (victim_it == shard.buckets.end() ||
            victim_it->second.empty())
            continue; // stale queue entry (should not happen)
        auto &victim_bucket = victim_it->second;
        shard.bytes -= entryBytes(victim_bucket.front().tokens);
        victim_bucket.erase(victim_bucket.begin());
        if (victim_bucket.empty())
            shard.buckets.erase(victim_it);
        --shard.entries;
        ++shard.evictions;
    }
}

bool
PathPredictionCache::bindModel(uint64_t fingerprint)
{
    uint64_t expected = 0;
    if (bound_model_.compare_exchange_strong(expected, fingerprint))
        return true; // was unbound — bound now
    return expected == fingerprint;
}

uint64_t
PathPredictionCache::boundModel() const
{
    return bound_model_.load();
}

CacheStats
PathPredictionCache::stats() const
{
    CacheStats total;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total.hits += shard.hits;
        total.misses += shard.misses;
        total.inserts += shard.inserts;
        total.evictions += shard.evictions;
        total.entries += shard.entries;
        total.bytes += shard.bytes;
    }
    return total;
}

void
PathPredictionCache::clear()
{
    bound_model_.store(0);
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.buckets.clear();
        shard.fifo.clear();
        shard.hits = 0;
        shard.misses = 0;
        shard.inserts = 0;
        shard.evictions = 0;
        shard.entries = 0;
        shard.bytes = 0;
    }
}

} // namespace sns::perf
