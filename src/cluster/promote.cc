#include "cluster/promote.hh"

#include <cstring>

#include "netlist/snl_parser.hh"
#include "netlist/verilog_parser.hh"

namespace sns::cluster {

namespace {

bool
sameBits(double a, double b)
{
    uint64_t ab;
    uint64_t bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

} // namespace

bool
samePredictionBits(const core::SnsPrediction &a,
                   const core::SnsPrediction &b)
{
    return sameBits(a.timing_ps, b.timing_ps) &&
           sameBits(a.area_um2, b.area_um2) &&
           sameBits(a.power_mw, b.power_mw) &&
           a.paths_sampled == b.paths_sampled &&
           a.critical_path == b.critical_path;
}

PromoteReport
rollingPromote(const PromoteOptions &options)
{
    PromoteReport report;

    // Step 1: the pre-promote reference. Loading the candidate runs
    // the full checkpoint + plan verification, so a corrupt candidate
    // dies here with zero workers touched.
    core::SnsPrediction reference;
    try {
        const core::SnsPredictor candidate =
            core::SnsPredictor::load(options.checkpoint_dir);
        const graphir::Graph canary =
            options.canary_format == serve::DesignFormat::Verilog
                ? netlist::parseVerilog(options.canary_source)
                : netlist::parseSnl(options.canary_source);
        const graphir::Graph *graphs[] = {&canary};
        reference = candidate.predictBatch(graphs).at(0);
    } catch (const std::exception &e) {
        report.error = std::string("candidate rejected before "
                                   "rollout: ") +
                       e.what();
        report.log.push_back(report.error);
        return report;
    }
    report.log.push_back("candidate verified locally; reference "
                         "canary prediction computed");

    // Step 2/3: walk the workers. Sequential — at most one worker is
    // ever staged-but-unverified.
    for (const WorkerAddress &address : options.workers) {
        const std::string name = address.display();
        try {
            serve::Client client =
                !address.unix_path.empty()
                    ? serve::Client::connectUnix(address.unix_path,
                                                 options.connect_retry)
                    : serve::Client::connectTcp(address.tcp_host,
                                                address.tcp_port,
                                                options.connect_retry);
            client.hello();
            const std::string reload_error =
                client.reload(options.checkpoint_dir);
            if (!reload_error.empty()) {
                report.error = name + ": RELOAD failed (" +
                               reload_error +
                               "); rollout aborted, worker keeps "
                               "serving the old model";
                report.log.push_back(report.error);
                return report;
            }
            // The first post-RELOAD batch is the atomic cutover, so
            // this canary is the first answer off the new model.
            const serve::PredictReply canary = client.predict(
                options.canary_source, options.canary_format);
            if (canary.status != serve::Status::Ok) {
                report.error = name + ": canary request failed (" +
                               canary.message + "); rollout aborted";
                report.log.push_back(report.error);
                return report;
            }
            if (!samePredictionBits(canary.prediction, reference)) {
                report.error =
                    name + ": canary reply differs bitwise from the "
                           "verified candidate; rollout aborted — "
                           "remaining workers stay on the old model";
                report.log.push_back(report.error);
                return report;
            }
        } catch (const serve::ProtocolError &e) {
            report.error = name + ": " + e.what() +
                           "; rollout aborted";
            report.log.push_back(report.error);
            return report;
        }
        ++report.workers_promoted;
        report.log.push_back(name + ": promoted (canary bitwise-ok, " +
                             std::to_string(report.workers_promoted) +
                             "/" +
                             std::to_string(options.workers.size()) +
                             ")");
    }
    report.ok = true;
    return report;
}

} // namespace sns::cluster
