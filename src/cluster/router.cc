#include "cluster/router.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace sns::cluster {

using serve::Status;
using serve::Verb;
using serve::WireReader;
using serve::WireWriter;

namespace {

std::vector<uint8_t>
statusReply(Status status, const std::string &message)
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(status));
    writer.str(message);
    return writer.bytes();
}

/** Re-encode a prediction block bit-exactly (f64 round-trips through
 * the client decode unchanged — this is what keeps cluster replies
 * byte-identical to a single worker's). */
void
writePrediction(WireWriter &writer,
                const core::SnsPrediction &prediction)
{
    writer.f64(prediction.timing_ps);
    writer.f64(prediction.area_um2);
    writer.f64(prediction.power_mw);
    writer.u64(prediction.paths_sampled);
    writer.u32(static_cast<uint32_t>(prediction.critical_path.size()));
    for (const graphir::NodeId node : prediction.critical_path)
        writer.u32(node);
}

std::vector<uint8_t>
encodePredictReply(const serve::PredictReply &reply)
{
    if (reply.status != Status::Ok)
        return statusReply(reply.status, reply.message);
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Status::Ok));
    writePrediction(writer, reply.prediction);
    return writer.bytes();
}

std::vector<uint8_t>
encodeSessionReply(const serve::SessionReply &reply,
                   bool include_session_id, uint64_t session_id)
{
    if (reply.status != Status::Ok)
        return statusReply(reply.status, reply.message);
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Status::Ok));
    if (include_session_id)
        writer.u64(session_id);
    writePrediction(writer, reply.prediction);
    writer.u8(reply.diff.noop ? 1 : 0);
    writer.u64(reply.diff.modules_changed);
    writer.u64(reply.diff.modules_added);
    writer.u64(reply.diff.modules_removed);
    writer.u64(reply.diff.modules_total);
    writer.u64(reply.diff.nodes_affected);
    writer.u64(reply.diff.endpoints_affected);
    writer.u64(reply.diff.paths_total);
    writer.u64(reply.diff.paths_reused);
    writer.u64(reply.diff.paths_recomputed);
    return writer.bytes();
}

bool
validPrecisionByte(uint8_t byte)
{
    return byte == static_cast<uint8_t>(core::Precision::Fp64) ||
           byte == static_cast<uint8_t>(core::Precision::Int8);
}

} // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      membership_(options_.workers, options_.vnodes,
                  options_.fail_threshold),
      connections_total_(
          options_.registry->counter("router.connections_total")),
      requests_total_(
          options_.registry->counter("router.requests_total")),
      retries_total_(
          options_.registry->counter("router.retries_total")),
      transport_errors_(
          options_.registry->counter("router.worker_transport_errors")),
      protocol_errors_(
          options_.registry->counter("router.protocol_errors"))
{
    SNS_ASSERT(!options_.workers.empty(),
               "Router needs at least one worker");
    health_conns_.resize(options_.workers.size());
}

Router::~Router() { stop(); }

void
Router::start()
{
    SNS_ASSERT(!running_.load(), "Router::start() called twice");

    if (!options_.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.unix_path.size() >= sizeof(addr.sun_path))
            throw std::runtime_error("unix socket path too long: " +
                                     options_.unix_path);
        std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw std::runtime_error(std::string("socket: ") +
                                     std::strerror(errno));
        ::unlink(options_.unix_path.c_str());
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const std::string err = std::strerror(errno);
            closeListener();
            throw std::runtime_error("bind(" + options_.unix_path +
                                     "): " + err);
        }
    } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
        if (::inet_pton(AF_INET, options_.tcp_host.c_str(),
                        &addr.sin_addr) != 1)
            throw std::runtime_error("bad listen address: " +
                                     options_.tcp_host);
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw std::runtime_error(std::string("socket: ") +
                                     std::strerror(errno));
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const std::string err = std::strerror(errno);
            closeListener();
            throw std::runtime_error(
                "bind(" + options_.tcp_host + ":" +
                std::to_string(options_.tcp_port) + "): " + err);
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listen_fd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            port_ = ntohs(bound.sin_port);
    }

    if (::listen(listen_fd_, 128) != 0) {
        const std::string err = std::strerror(errno);
        closeListener();
        throw std::runtime_error("listen: " + err);
    }

    options_.registry->setGauge("router.sessions_open", [this] {
        return static_cast<double>(sessionsOpen());
    });
    options_.registry->setGauge("router.workers_up", [this] {
        return static_cast<double>(
            membership_.countInState(WorkerState::Up));
    });

    stopping_.store(false);
    running_.store(true);
    listener_ = std::thread([this] { listenLoop(); });
    if (options_.health_period_ms > 0)
        health_ = std::thread([this] { healthLoop(); });
}

void
Router::closeListener()
{
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (!options_.unix_path.empty())
        ::unlink(options_.unix_path.c_str());
}

void
Router::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);

    if (listener_.joinable())
        listener_.join();
    closeListener();

    // Unblock handlers parked in recvFrame; same discipline as
    // serve::Server::stop().
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (const int fd : open_fds_)
            ::shutdown(fd, SHUT_RD);
    }
    for (auto &handler : handlers_) {
        if (handler.joinable())
            handler.join();
    }
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        handlers_.clear();
        open_fds_.clear();
    }

    health_cv_.notify_all();
    if (health_.joinable())
        health_.join();
    health_conns_.clear();

    options_.registry->removeGauge("router.sessions_open");
    options_.registry->removeGauge("router.workers_up");
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        sessions_.clear();
    }
}

void
Router::listenLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_total_.inc();
        std::lock_guard<std::mutex> lock(conn_mutex_);
        open_fds_.insert(fd);
        handlers_.emplace_back([this, fd] { handleConnection(fd); });
    }
}

void
Router::healthLoop()
{
    std::unique_lock<std::mutex> lock(health_mutex_);
    while (!stopping_.load()) {
        for (size_t i = 0; i < health_conns_.size(); ++i) {
            if (stopping_.load())
                return;
            try {
                if (!health_conns_[i]) {
                    const WorkerAddress address =
                        membership_.address(i);
                    // Single try here: the probe loop itself is the
                    // retry schedule, and a blocking backoff would
                    // stall the other workers' probes.
                    auto client = std::make_unique<serve::Client>(
                        !address.unix_path.empty()
                            ? serve::Client::connectUnix(
                                  address.unix_path)
                            : serve::Client::connectTcp(
                                  address.tcp_host,
                                  address.tcp_port));
                    client->hello();
                    health_conns_[i] = std::move(client);
                }
                const bool draining = health_conns_[i]->health();
                membership_.markReachable(i, draining);
            } catch (const serve::ProtocolError &) {
                health_conns_[i].reset();
                membership_.markFailure(i);
            }
        }
        health_cv_.wait_for(
            lock,
            std::chrono::milliseconds(options_.health_period_ms),
            [this] { return stopping_.load(); });
    }
}

void
Router::handleConnection(int fd)
{
    HandlerState state;
    state.workers.resize(options_.workers.size());
    try {
        for (;;) {
            auto request =
                serve::recvFrame(fd, options_.max_frame_bytes);
            if (!request)
                break; // clean EOF
            serve::sendFrame(fd, handleRequest(*request, state));
        }
    } catch (const serve::ProtocolError &) {
        protocol_errors_.inc();
    }
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        open_fds_.erase(fd);
    }
    ::close(fd);
}

const HashRing &
Router::ringFor(HandlerState &state)
{
    const uint64_t epoch = membership_.epoch();
    if (state.ring_epoch != epoch) {
        state.ring = membership_.ring();
        state.ring_epoch = epoch;
    }
    return state.ring;
}

serve::Client *
Router::workerConn(HandlerState &state, size_t index)
{
    if (state.workers[index])
        return state.workers[index].get();
    const WorkerAddress address = membership_.address(index);
    try {
        auto client = std::make_unique<serve::Client>(
            !address.unix_path.empty()
                ? serve::Client::connectUnix(address.unix_path,
                                             options_.connect_retry)
                : serve::Client::connectTcp(address.tcp_host,
                                            address.tcp_port,
                                            options_.connect_retry));
        client->hello();
        state.workers[index] = std::move(client);
        return state.workers[index].get();
    } catch (const serve::ProtocolError &) {
        transport_errors_.inc();
        membership_.markFailure(index);
        return nullptr;
    }
}

void
Router::resetConn(HandlerState &state, size_t index)
{
    state.workers[index].reset();
}

std::vector<uint8_t>
Router::handleRequest(const std::vector<uint8_t> &request,
                      HandlerState &state)
{
    requests_total_.inc();
    WireReader reader(request);
    try {
        const auto verb = static_cast<Verb>(reader.u8());
        switch (verb) {
        case Verb::Predict:
            return handlePredict(reader, state);
        case Verb::Stats:
            reader.expectEnd();
            return handleStats(state);
        case Verb::Reload:
            return handleReload(reader, state);
        case Verb::Ping: {
            reader.expectEnd();
            WireWriter writer;
            writer.u8(static_cast<uint8_t>(Status::Ok));
            writer.str("");
            if (state.version >= 4)
                writer.u8(0); // the router itself never drains
            return writer.bytes();
        }
        case Verb::Hello: {
            const uint32_t client_version = reader.u32();
            reader.expectEnd();
            state.version =
                std::min(client_version, serve::kProtocolVersion);
            WireWriter writer;
            writer.u8(static_cast<uint8_t>(Status::Ok));
            writer.u32(serve::kProtocolVersion);
            return writer.bytes();
        }
        case Verb::Open:
        case Verb::Update:
        case Verb::Close: {
            if (state.version < 2) {
                return statusReply(
                    Status::Unsupported,
                    "session verbs need protocol version >= 2 "
                    "(negotiate with HELLO first)");
            }
            if (verb == Verb::Open)
                return handleOpen(reader, state);
            if (verb == Verb::Update)
                return handleUpdate(reader, state);
            return handleClose(reader, state);
        }
        case Verb::Drain:
        case Verb::Resume:
            reader.expectEnd();
            return statusReply(
                Status::Unsupported,
                "the router does not drain; DRAIN/RESUME individual "
                "workers (their addresses are in WORKERS)");
        case Verb::Workers:
            reader.expectEnd();
            if (state.version < 4) {
                return statusReply(
                    Status::Unsupported,
                    "WORKERS needs protocol version >= 4 "
                    "(negotiate with HELLO first)");
            }
            return handleWorkers();
        }
        return statusReply(Status::Error, "unknown verb");
    } catch (const serve::ProtocolError &e) {
        protocol_errors_.inc();
        return statusReply(Status::Error,
                           std::string("bad request: ") + e.what());
    }
}

std::vector<uint8_t>
Router::handlePredict(WireReader &reader, HandlerState &state)
{
    const uint32_t deadline_ms = reader.u32();
    uint8_t precision_byte =
        static_cast<uint8_t>(core::Precision::Fp64);
    if (state.version >= 3)
        precision_byte = reader.u8();
    const auto format =
        static_cast<serve::DesignFormat>(reader.u8());
    const std::string text = reader.str();
    reader.expectEnd();
    if (!validPrecisionByte(precision_byte)) {
        return statusReply(Status::Error,
                           "unknown precision byte " +
                               std::to_string(precision_byte) +
                               " (0 fp64, 1 int8)");
    }
    const auto precision =
        static_cast<core::Precision>(precision_byte);
    const uint64_t key = hashKey(text);

    // One attempt per worker plus one: a DRAINING reply or transport
    // failure marks the member and the next pick runs on the
    // refreshed ring, so an operator DRAIN mid-traffic re-homes the
    // request instead of surfacing the refusal to the client.
    const size_t attempts = options_.workers.size() + 1;
    serve::PredictReply last;
    last.status = Status::Draining;
    last.message = "no routable workers (all draining or down)";
    for (size_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            retries_total_.inc();
        const size_t index = ringFor(state).pick(key);
        if (index == HashRing::npos)
            break;
        serve::Client *client = workerConn(state, index);
        if (!client) {
            last.status = Status::Error;
            last.message = "worker " +
                           membership_.address(index).display() +
                           " unreachable";
            continue;
        }
        serve::PredictReply reply;
        try {
            reply = client->predict(text, format, deadline_ms,
                                    precision);
        } catch (const serve::ProtocolError &e) {
            transport_errors_.inc();
            membership_.markFailure(index);
            resetConn(state, index);
            last.status = Status::Error;
            last.message = std::string("worker request failed: ") +
                           e.what();
            continue;
        }
        if (reply.status == Status::Draining) {
            membership_.markDraining(index);
            last = reply;
            continue;
        }
        return encodePredictReply(reply);
    }
    return statusReply(last.status, last.message);
}

std::vector<uint8_t>
Router::handleOpen(WireReader &reader, HandlerState &state)
{
    uint8_t precision_byte =
        static_cast<uint8_t>(core::Precision::Fp64);
    if (state.version >= 3)
        precision_byte = reader.u8();
    const auto format =
        static_cast<serve::DesignFormat>(reader.u8());
    const std::string text = reader.str();
    reader.expectEnd();
    if (!validPrecisionByte(precision_byte)) {
        return statusReply(Status::Error,
                           "unknown precision byte " +
                               std::to_string(precision_byte) +
                               " (0 fp64, 1 int8)");
    }
    const auto precision =
        static_cast<core::Precision>(precision_byte);
    const uint64_t key = hashKey(text);

    const size_t attempts = options_.workers.size() + 1;
    serve::SessionReply last;
    last.status = Status::Draining;
    last.message = "no routable workers (all draining or down)";
    for (size_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            retries_total_.inc();
        const size_t index = ringFor(state).pick(key);
        if (index == HashRing::npos)
            break;
        serve::Client *client = workerConn(state, index);
        if (!client) {
            last.status = Status::Error;
            last.message = "worker " +
                           membership_.address(index).display() +
                           " unreachable";
            continue;
        }
        serve::SessionReply reply;
        try {
            reply = client->openSession(text, format, precision);
        } catch (const serve::ProtocolError &e) {
            transport_errors_.inc();
            membership_.markFailure(index);
            resetConn(state, index);
            last.status = Status::Error;
            last.message = std::string("worker request failed: ") +
                           e.what();
            continue;
        }
        if (reply.status == Status::Draining) {
            membership_.markDraining(index);
            last = reply;
            continue;
        }
        if (reply.status != Status::Ok)
            return encodeSessionReply(reply, false, 0);
        // Virtualize the id: workers number their own session tables,
        // so two workers' ids collide — clients see a cluster-wide id
        // and UPDATE/CLOSE translate back to (worker, worker id).
        const uint64_t cluster_id = next_session_id_.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(session_mutex_);
            sessions_[cluster_id] = {index, reply.session_id};
        }
        return encodeSessionReply(reply, /*include_session_id=*/true,
                                  cluster_id);
    }
    return statusReply(last.status, last.message);
}

std::vector<uint8_t>
Router::handleUpdate(WireReader &reader, HandlerState &state)
{
    const uint64_t cluster_id = reader.u64();
    uint8_t precision_byte =
        static_cast<uint8_t>(core::Precision::Fp64);
    if (state.version >= 3)
        precision_byte = reader.u8();
    const auto format =
        static_cast<serve::DesignFormat>(reader.u8());
    const std::string text = reader.str();
    reader.expectEnd();
    if (!validPrecisionByte(precision_byte)) {
        return statusReply(Status::Error,
                           "unknown precision byte " +
                               std::to_string(precision_byte) +
                               " (0 fp64, 1 int8)");
    }

    SessionRoute route;
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        const auto it = sessions_.find(cluster_id);
        if (it == sessions_.end()) {
            return statusReply(Status::Error,
                               "unknown session " +
                                   std::to_string(cluster_id) +
                                   " (never opened, closed, or "
                                   "worker-evicted)");
        }
        route = it->second;
    }

    // Pinned: the session's state lives on its worker — UPDATE flows
    // there even while the worker drains (admitted edit loops finish
    // where they started); there is no alternative placement.
    serve::Client *client = workerConn(state, route.worker);
    if (!client) {
        return statusReply(Status::Error,
                           "session worker " +
                               membership_.address(route.worker)
                                   .display() +
                               " unreachable");
    }
    try {
        const serve::SessionReply reply = client->updateSession(
            route.worker_session_id, text, format,
            static_cast<core::Precision>(precision_byte));
        return encodeSessionReply(reply, false, 0);
    } catch (const serve::ProtocolError &e) {
        transport_errors_.inc();
        membership_.markFailure(route.worker);
        resetConn(state, route.worker);
        return statusReply(Status::Error,
                           std::string("worker request failed: ") +
                               e.what());
    }
}

std::vector<uint8_t>
Router::handleClose(WireReader &reader, HandlerState &state)
{
    const uint64_t cluster_id = reader.u64();
    reader.expectEnd();
    SessionRoute route;
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        const auto it = sessions_.find(cluster_id);
        if (it == sessions_.end()) {
            return statusReply(Status::Error,
                               "unknown session " +
                                   std::to_string(cluster_id));
        }
        route = it->second;
        sessions_.erase(it);
    }
    serve::Client *client = workerConn(state, route.worker);
    if (!client) {
        return statusReply(Status::Error,
                           "session worker " +
                               membership_.address(route.worker)
                                   .display() +
                               " unreachable (mapping dropped)");
    }
    try {
        const std::string error =
            client->closeSession(route.worker_session_id);
        if (!error.empty())
            return statusReply(Status::Error, error);
        return statusReply(Status::Ok, "");
    } catch (const serve::ProtocolError &e) {
        transport_errors_.inc();
        membership_.markFailure(route.worker);
        resetConn(state, route.worker);
        return statusReply(Status::Error,
                           std::string("worker request failed: ") +
                               e.what());
    }
}

std::vector<uint8_t>
Router::handleStats(HandlerState &state)
{
    // Fan out to every configured worker (any state — a draining
    // worker's counters still matter), merge the summable samples
    // into the cluster-wide view, and keep each worker's full
    // snapshot under a `worker<i>.` prefix. Quantiles and rates are
    // only meaningful per worker, so they live solely in the
    // breakdown (obs::mergeStats drops them from the merge).
    std::vector<std::vector<obs::StatsSample>> snapshots;
    std::string breakdown;
    size_t unreachable = 0;
    for (size_t i = 0; i < options_.workers.size(); ++i) {
        const std::string prefix =
            "worker" + std::to_string(i) + ".";
        serve::Client *client = workerConn(state, i);
        std::string text;
        if (client) {
            try {
                text = client->stats();
            } catch (const serve::ProtocolError &) {
                transport_errors_.inc();
                membership_.markFailure(i);
                resetConn(state, i);
                client = nullptr;
            }
        }
        if (!client) {
            ++unreachable;
            breakdown += prefix + "unreachable 1\n";
            continue;
        }
        snapshots.push_back(obs::parseStats(text));
        size_t start = 0;
        while (start < text.size()) {
            size_t end = text.find('\n', start);
            if (end == std::string::npos)
                end = text.size();
            if (end > start)
                breakdown +=
                    prefix + text.substr(start, end - start) + "\n";
            start = end + 1;
        }
    }

    const std::vector<WorkerInfo> members = membership_.snapshot();
    std::string text;
    const auto line = [&text](const std::string &name, double value) {
        text += name;
        text += ' ';
        text += obs::formatValue(value);
        text += '\n';
    };
    line("cluster.workers", static_cast<double>(members.size()));
    line("cluster.workers_up",
         static_cast<double>(
             membership_.countInState(WorkerState::Up)));
    line("cluster.workers_draining",
         static_cast<double>(
             membership_.countInState(WorkerState::Draining)));
    line("cluster.workers_down",
         static_cast<double>(
             membership_.countInState(WorkerState::Down)));
    line("cluster.stats_unreachable",
         static_cast<double>(unreachable));
    for (const auto &sample : obs::mergeStats(snapshots))
        line(sample.name, sample.value);
    text += options_.registry->render();
    text += breakdown;

    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Status::Ok));
    writer.str(text);
    return writer.bytes();
}

std::vector<uint8_t>
Router::handleReload(WireReader &reader, HandlerState &state)
{
    const std::string directory = reader.str();
    reader.expectEnd();
    // Broadcast: every worker stages the checkpoint. This is the
    // blunt instrument — the canary-verified one-at-a-time rollout
    // lives in promote.hh / `sns-cli promote`.
    std::string errors;
    for (size_t i = 0; i < options_.workers.size(); ++i) {
        serve::Client *client = workerConn(state, i);
        std::string error;
        if (!client) {
            error = "unreachable";
        } else {
            try {
                error = client->reload(directory);
            } catch (const serve::ProtocolError &e) {
                transport_errors_.inc();
                membership_.markFailure(i);
                resetConn(state, i);
                error = e.what();
            }
        }
        if (!error.empty()) {
            if (!errors.empty())
                errors += "; ";
            errors += membership_.address(i).display() + ": " + error;
        }
    }
    if (!errors.empty())
        return statusReply(Status::Error, errors);
    return statusReply(Status::Ok, "");
}

std::vector<uint8_t>
Router::handleWorkers()
{
    const std::vector<WorkerInfo> members = membership_.snapshot();
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Status::Ok));
    writer.u32(static_cast<uint32_t>(members.size()));
    for (const auto &member : members) {
        writer.str(member.address.display());
        writer.u8(static_cast<uint8_t>(member.state));
    }
    return writer.bytes();
}

size_t
Router::sessionsOpen() const
{
    std::lock_guard<std::mutex> lock(session_mutex_);
    return sessions_.size();
}

} // namespace sns::cluster
