#include "cluster/ring.hh"

#include <algorithm>

namespace sns::cluster {

uint64_t
fnv1a64(const void *data, size_t size)
{
    constexpr uint64_t kOffset = 1469598103934665603ull;
    constexpr uint64_t kPrime = 1099511628211ull;
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = kOffset;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kPrime;
    }
    return hash;
}

uint64_t
hashKey(const std::string &key)
{
    return fnv1a64(key.data(), key.size());
}

HashRing::HashRing(const std::vector<Member> &members, int vnodes)
{
    points_.reserve(members.size() * static_cast<size_t>(vnodes));
    for (const Member &member : members) {
        for (int replica = 0; replica < vnodes; ++replica) {
            const std::string point_key =
                member.id + "#" + std::to_string(replica);
            points_.push_back(
                {hashKey(point_key), member.index});
        }
    }
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) {
                  // Tie-break on index so the ring is deterministic
                  // even under (astronomically unlikely) hash ties.
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.index < b.index;
              });
}

size_t
HashRing::pick(uint64_t key) const
{
    if (points_.empty())
        return npos;
    // First point clockwise of the key; wrap to the start past the
    // highest point.
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), key,
        [](const Point &p, uint64_t k) { return p.hash < k; });
    return it == points_.end() ? points_.front().index : it->index;
}

} // namespace sns::cluster
