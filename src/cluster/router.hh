/**
 * @file
 * sns-router — the cluster front end (docs/cluster.md).
 *
 * One Router process speaks the full serve protocol to clients and
 * fans the traffic out over N sns-serve workers, each with its own
 * resident predictor and cache shard. Placement is a consistent-hash
 * ring (ring.hh) keyed so that cache locality and session affinity
 * fall out of the hash:
 *
 *   - PREDICT routes by the design source's fingerprint — repeat
 *     predictions of the same design land on the same worker and hit
 *     its warm cache shard.
 *   - OPEN routes by design fingerprint too; the session then *pins*
 *     to that worker. The router virtualizes session ids (workers
 *     number their own tables independently), handing clients a
 *     cluster-wide id and translating UPDATE/CLOSE to the owning
 *     worker's id. A pinned session keeps flowing to its worker even
 *     once that worker is draining — admitted edit loops finish where
 *     they started.
 *
 * Requests are *parsed at the client's negotiated version and
 * re-issued at the worker's* (each worker connection negotiates its
 * own HELLO), so a downlevel worker behind an uplevel client — or
 * vice versa — degrades exactly like a direct connection would:
 * fp64 re-encodes without the precision byte, int8 against a pre-v3
 * worker answers UNSUPPORTED, session verbs against a v1 worker
 * answer UNSUPPORTED. The reply blocks are version-invariant and
 * round-trip bit-exactly, so cluster replies are byte-identical to a
 * single sns-serve process.
 *
 * Liveness: a health loop PINGs every worker each period; the v4
 * reply carries the worker's drain bit. A draining or dead worker
 * leaves the ring — only its slice re-hashes — and the router also
 * reacts in-band: a DRAINING reply to proxied work marks the worker
 * immediately and the request retries on the refreshed ring, so an
 * operator DRAIN mid-traffic loses zero admitted requests.
 *
 * STATS fans out and merges (obs::mergeStats): one cluster-wide
 * report of the summable counters plus every worker's full snapshot
 * prefixed `worker<i>.`. RELOAD broadcasts to all workers; the
 * rolling, canary-verified alternative lives in promote.hh.
 */

#ifndef SNS_CLUSTER_ROUTER_HH
#define SNS_CLUSTER_ROUTER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/membership.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"

namespace sns::cluster {

/** Router configuration. */
struct RouterOptions
{
    /** Non-empty: listen on this Unix-domain socket path. Empty:
     * listen on TCP (port 0 = ephemeral; Router::port()). */
    std::string unix_path;
    std::string tcp_host = "127.0.0.1";
    int tcp_port = 0;

    /** The worker set, fixed at start. */
    std::vector<WorkerAddress> workers;

    /** Largest accepted request frame. */
    size_t max_frame_bytes = 16u << 20;

    /** Virtual points per worker on the hash ring. */
    int vnodes = 64;

    /** Health-probe cadence; 0 disables the loop (tests that drive
     * state in-band). */
    int health_period_ms = 1000;

    /** Consecutive probe failures before a worker is Down. */
    int fail_threshold = 3;

    /** Worker (re)connect policy — workers may still be binding
     * their sockets when the router starts. */
    serve::ConnectRetryOptions connect_retry{
        /*max_attempts=*/10, /*initial_backoff_us=*/10'000,
        /*multiplier=*/2, /*max_backoff_us=*/500'000};

    /** Where instruments live; tests may pass a private registry. */
    obs::Registry *registry = &obs::Registry::global();
};

/** The router daemon. start() to serve, stop() to halt. */
class Router
{
  public:
    explicit Router(RouterOptions options);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    void start();

    /** Stop accepting, unblock and join every handler, stop the
     * health loop. Idempotent. Workers are not touched — they drain
     * on their own lifecycle. */
    void stop();

    bool running() const { return running_.load(); }

    /** Resolved TCP port (after start(); 0 for Unix sockets). */
    int port() const { return port_; }

    const RouterOptions &options() const { return options_; }

    /** The worker table (tests, WORKERS verb). */
    Membership &membership() { return membership_; }

    /** Live virtualized sessions. */
    size_t sessionsOpen() const;

  private:
    /** Where a virtualized session lives. */
    struct SessionRoute
    {
        size_t worker = 0;
        uint64_t worker_session_id = 0;
    };

    /** Per-connection state: the client's negotiated version plus
     * this handler's private worker connections (the Client is
     * synchronous; one per handler avoids cross-request locking) and
     * its cached ring. */
    struct HandlerState
    {
        uint32_t version = 1;
        std::vector<std::unique_ptr<serve::Client>> workers;
        HashRing ring;
        uint64_t ring_epoch = 0;
    };

    void listenLoop();
    void healthLoop();
    void handleConnection(int fd);
    std::vector<uint8_t> handleRequest(const std::vector<uint8_t> &req,
                                       HandlerState &state);
    std::vector<uint8_t> handlePredict(serve::WireReader &reader,
                                       HandlerState &state);
    std::vector<uint8_t> handleOpen(serve::WireReader &reader,
                                    HandlerState &state);
    std::vector<uint8_t> handleUpdate(serve::WireReader &reader,
                                      HandlerState &state);
    std::vector<uint8_t> handleClose(serve::WireReader &reader,
                                     HandlerState &state);
    std::vector<uint8_t> handleStats(HandlerState &state);
    std::vector<uint8_t> handleReload(serve::WireReader &reader,
                                      HandlerState &state);
    std::vector<uint8_t> handleWorkers();

    /** The ring refreshed against the current membership epoch. */
    const HashRing &ringFor(HandlerState &state);

    /** This handler's connection to worker `index`, connecting (and
     * negotiating HELLO) on first use. Returns nullptr — after
     * markFailure — when the worker is unreachable. */
    serve::Client *workerConn(HandlerState &state, size_t index);

    /** Drop a handler's cached connection after a transport error. */
    void resetConn(HandlerState &state, size_t index);

    void closeListener();

    RouterOptions options_;
    Membership membership_;

    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread listener_;
    std::thread health_;
    std::mutex health_mutex_;
    std::condition_variable health_cv_;
    /** The health loop's own worker connections. */
    std::vector<std::unique_ptr<serve::Client>> health_conns_;

    std::mutex conn_mutex_;
    std::unordered_set<int> open_fds_;
    std::vector<std::thread> handlers_;

    mutable std::mutex session_mutex_;
    std::unordered_map<uint64_t, SessionRoute> sessions_;
    std::atomic<uint64_t> next_session_id_{1};

    obs::Counter &connections_total_;
    obs::Counter &requests_total_;
    obs::Counter &retries_total_;
    obs::Counter &transport_errors_;
    obs::Counter &protocol_errors_;
};

} // namespace sns::cluster

#endif // SNS_CLUSTER_ROUTER_HH
