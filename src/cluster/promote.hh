/**
 * @file
 * Rolling, canary-verified model promotion (docs/cluster.md).
 *
 * `sns-cli promote` walks the cluster's workers one at a time:
 *
 *   1. The candidate checkpoint is loaded *locally* first and a
 *      canary design is predicted through it — that local prediction
 *      is the pre-promote reference. A candidate that fails to load
 *      (corrupt container, failed plan verification) aborts here,
 *      before any worker is touched.
 *   2. Per worker: RELOAD stages the candidate (a failure aborts the
 *      rollout; the worker keeps serving its old model because the
 *      stage never went live), then the canary PREDICT is replayed —
 *      by design the first post-RELOAD batch is the atomic cutover,
 *      so the canary reply *is* the first answer off the new model.
 *   3. The canary reply is compared bitwise against the reference
 *      (the serving contract: server replies are bit-for-bit what a
 *      local predictBatch returns). Any byte of difference means the
 *      worker is not serving the candidate we verified — a corrupt
 *      copy, a wrong directory, lost determinism — and the rollout
 *      aborts: remaining workers never see a RELOAD and stay on the
 *      old model.
 *
 * The walk is sequential on purpose: at most one worker is ever in
 * the stage-but-unverified window, so an abort bounds the blast
 * radius to that worker.
 */

#ifndef SNS_CLUSTER_PROMOTE_HH
#define SNS_CLUSTER_PROMOTE_HH

#include <string>
#include <vector>

#include "cluster/membership.hh"
#include "core/predictor.hh"
#include "serve/client.hh"

namespace sns::cluster {

/** One rollout's configuration. */
struct PromoteOptions
{
    /** Candidate checkpoint directory — readable by this process
     * (for the reference pass) *and* by every worker (RELOAD passes
     * the path through). */
    std::string checkpoint_dir;

    /** Workers to walk, in order. */
    std::vector<WorkerAddress> workers;

    /** Canary design source and format. */
    std::string canary_source;
    serve::DesignFormat canary_format = serve::DesignFormat::Snl;

    /** Worker connect policy. */
    serve::ConnectRetryOptions connect_retry{
        /*max_attempts=*/5, /*initial_backoff_us=*/10'000,
        /*multiplier=*/2, /*max_backoff_us=*/500'000};
};

/** What happened, for operators and tests. */
struct PromoteReport
{
    bool ok = false;
    /** Workers verified on the candidate when the rollout ended. On
     * abort, every worker beyond this count still serves the old
     * model (the failing worker never had its stage verified). */
    size_t workers_promoted = 0;
    /** Empty on success. */
    std::string error;
    /** One line per step, for the CLI. */
    std::vector<std::string> log;
};

/** Bitwise prediction equality (every f64 compared by bits). */
bool samePredictionBits(const core::SnsPrediction &a,
                        const core::SnsPrediction &b);

/** Run the rollout described above. Never throws; failures land in
 * the report. */
PromoteReport rollingPromote(const PromoteOptions &options);

} // namespace sns::cluster

#endif // SNS_CLUSTER_PROMOTE_HH
