/**
 * @file
 * Consistent-hash ring for the serve cluster (docs/cluster.md).
 *
 * Each worker contributes `vnodes` virtual points to a 64-bit ring
 * (FNV-1a of "<worker-id>#<replica>"); a request key is hashed onto
 * the ring and owned by the first point clockwise. The properties the
 * router leans on:
 *
 *   - Stability: adding or removing one worker re-homes only the key
 *     ranges adjacent to its points (~1/N of the keyspace), so a
 *     drain re-hashes the drained worker's slice and nothing else —
 *     every other worker keeps its warm cache shard. This is the same
 *     ring discipline as the chunked ring-allreduce the membership
 *     protocol is modeled on.
 *   - Determinism: the ring is a pure function of the member set and
 *     vnode count. Two routers configured identically route
 *     identically, and tests can predict placements.
 *
 * The ring itself is immutable; the router rebuilds it (cheap —
 * N·vnodes sorted points) whenever membership changes.
 */

#ifndef SNS_CLUSTER_RING_HH
#define SNS_CLUSTER_RING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sns::cluster {

/** FNV-1a over a byte range — the ring's point and key hash. */
uint64_t fnv1a64(const void *data, size_t size);

/** FNV-1a of a string key (design source, session key, ...). */
uint64_t hashKey(const std::string &key);

/** An immutable consistent-hash ring over worker indices. */
class HashRing
{
  public:
    /**
     * Build a ring from worker ids (stable across rebuilds — use the
     * worker's address string, not its current vector position) and
     * the member→index mapping the router resolves picks through.
     * `members` pairs each id with the caller's worker index; an
     * empty member set yields an empty ring (pick() returns npos).
     */
    struct Member
    {
        std::string id;
        size_t index = 0;
    };

    static constexpr size_t npos = static_cast<size_t>(-1);

    HashRing() = default;
    HashRing(const std::vector<Member> &members, int vnodes);

    /** The worker index owning `key`, or npos on an empty ring. */
    size_t pick(uint64_t key) const;

    size_t pointCount() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

  private:
    struct Point
    {
        uint64_t hash;
        size_t index;
    };

    std::vector<Point> points_; ///< sorted by hash
};

} // namespace sns::cluster

#endif // SNS_CLUSTER_RING_HH
