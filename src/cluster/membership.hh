/**
 * @file
 * Worker membership for the serve cluster (docs/cluster.md).
 *
 * The router holds one Membership table: every configured worker with
 * its address and a liveness state driven by the health loop's PING
 * cadence and by in-band evidence from proxied traffic:
 *
 *   Up       — routable; in the ring.
 *   Draining — answering admitted/session traffic but refusing new
 *              PREDICT/OPEN (the worker acknowledged DRAIN, or its
 *              v4 PING reply carries the drain bit). Out of the ring
 *              for new work; pinned sessions keep flowing to it.
 *   Down     — `fail_threshold` consecutive transport failures. Out
 *              of the ring; a later successful PING restores Up.
 *
 * State changes bump an epoch counter; handlers rebuild their cached
 * ring only when the epoch moved, so the hot path is one relaxed load
 * per request. The table is process-wide and mutex-guarded — it
 * changes at health-probe cadence, not per request.
 */

#ifndef SNS_CLUSTER_MEMBERSHIP_HH
#define SNS_CLUSTER_MEMBERSHIP_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/ring.hh"

namespace sns::cluster {

/** Where one worker listens. Exactly one transport is set. */
struct WorkerAddress
{
    std::string unix_path;          ///< non-empty: unix transport
    std::string tcp_host = "127.0.0.1";
    int tcp_port = 0;

    /**
     * Parse "unix:<path>", "tcp:<host>:<port>", or a bare path
     * (treated as unix — matches sns-serve --socket). Throws
     * std::invalid_argument on a malformed spec.
     */
    static WorkerAddress parse(const std::string &spec);

    /** Canonical display form, "unix:<path>" / "tcp:<host>:<port>" —
     * also the worker's stable ring id. */
    std::string display() const;
};

/** Liveness state (the WORKERS verb's wire encoding). */
enum class WorkerState : uint8_t { Up = 0, Draining = 1, Down = 2 };

const char *workerStateName(WorkerState state);

/** One worker's row in the table. */
struct WorkerInfo
{
    WorkerAddress address;
    WorkerState state = WorkerState::Up;
    int consecutive_failures = 0;
};

/** The router's worker table. Thread-safe. */
class Membership
{
  public:
    Membership(std::vector<WorkerAddress> addresses, int vnodes,
               int fail_threshold);

    size_t size() const { return worker_count_; }

    /** Monotonic; bumped on every state change. */
    uint64_t epoch() const { return epoch_.load(); }

    /** The current ring over Up workers (rebuilt on state change;
     * cheap to copy — handlers cache it keyed on epoch()). */
    HashRing ring() const;

    /** Snapshot of every row, in configuration order. */
    std::vector<WorkerInfo> snapshot() const;

    WorkerAddress address(size_t index) const;

    /** Health-probe verdicts. markReachable resets the failure count
     * and applies the PING-reported drain state; markFailure counts
     * toward Down at fail_threshold. */
    void markReachable(size_t index, bool draining);
    void markFailure(size_t index);

    /** In-band evidence from proxied traffic: a DRAINING reply takes
     * the worker out of the ring immediately, ahead of the next
     * health probe. */
    void markDraining(size_t index);

    size_t countInState(WorkerState state) const;

  private:
    void setStateLocked(size_t index, WorkerState state);

    mutable std::mutex mutex_;
    std::vector<WorkerInfo> workers_;
    const size_t worker_count_;
    const int vnodes_;
    const int fail_threshold_;
    std::atomic<uint64_t> epoch_{1};
};

} // namespace sns::cluster

#endif // SNS_CLUSTER_MEMBERSHIP_HH
