#include "cluster/membership.hh"

#include <stdexcept>

namespace sns::cluster {

WorkerAddress
WorkerAddress::parse(const std::string &spec)
{
    WorkerAddress address;
    if (spec.rfind("unix:", 0) == 0) {
        address.unix_path = spec.substr(5);
        if (address.unix_path.empty())
            throw std::invalid_argument("empty unix path in worker spec: " +
                                        spec);
        return address;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size())
            throw std::invalid_argument(
                "worker spec needs tcp:<host>:<port>: " + spec);
        address.tcp_host = rest.substr(0, colon);
        try {
            address.tcp_port = std::stoi(rest.substr(colon + 1));
        } catch (const std::exception &) {
            address.tcp_port = 0;
        }
        if (address.tcp_port <= 0 || address.tcp_port > 65535)
            throw std::invalid_argument("bad port in worker spec: " +
                                        spec);
        return address;
    }
    if (spec.empty())
        throw std::invalid_argument("empty worker spec");
    // Bare paths mirror sns-serve --socket.
    address.unix_path = spec;
    return address;
}

std::string
WorkerAddress::display() const
{
    if (!unix_path.empty())
        return "unix:" + unix_path;
    return "tcp:" + tcp_host + ":" + std::to_string(tcp_port);
}

const char *
workerStateName(WorkerState state)
{
    switch (state) {
    case WorkerState::Up:
        return "up";
    case WorkerState::Draining:
        return "draining";
    case WorkerState::Down:
        return "down";
    }
    return "unknown";
}

Membership::Membership(std::vector<WorkerAddress> addresses, int vnodes,
                       int fail_threshold)
    : worker_count_(addresses.size()), vnodes_(vnodes),
      fail_threshold_(fail_threshold)
{
    workers_.reserve(addresses.size());
    for (auto &address : addresses)
        workers_.push_back({std::move(address), WorkerState::Up, 0});
}

HashRing
Membership::ring() const
{
    std::vector<HashRing::Member> members;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i].state == WorkerState::Up)
                members.push_back({workers_[i].address.display(), i});
        }
    }
    return HashRing(members, vnodes_);
}

std::vector<WorkerInfo>
Membership::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_;
}

WorkerAddress
Membership::address(size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_.at(index).address;
}

void
Membership::setStateLocked(size_t index, WorkerState state)
{
    if (workers_[index].state == state)
        return;
    workers_[index].state = state;
    epoch_.fetch_add(1);
}

void
Membership::markReachable(size_t index, bool draining)
{
    std::lock_guard<std::mutex> lock(mutex_);
    workers_[index].consecutive_failures = 0;
    setStateLocked(index,
                   draining ? WorkerState::Draining : WorkerState::Up);
}

void
Membership::markFailure(size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (++workers_[index].consecutive_failures >= fail_threshold_)
        setStateLocked(index, WorkerState::Down);
}

void
Membership::markDraining(size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    setStateLocked(index, WorkerState::Draining);
}

size_t
Membership::countInState(WorkerState state) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &worker : workers_)
        count += worker.state == state ? 1 : 0;
    return count;
}

} // namespace sns::cluster
