#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sns::serve {

std::vector<int>
backoffScheduleUs(const ConnectRetryOptions &options)
{
    std::vector<int> sleeps;
    long delay = std::max(options.initial_backoff_us, 0);
    for (int i = 1; i < options.max_attempts; ++i) {
        sleeps.push_back(static_cast<int>(
            std::min<long>(delay, options.max_backoff_us)));
        delay *= std::max(options.multiplier, 1);
    }
    return sleeps;
}

namespace {

/** Transient connect failure worth retrying? ECONNREFUSED: the peer
 * is (re)starting and has not listened yet; ENOENT: its unix socket
 * is not bound yet; EINTR: a signal cut the connect short. */
bool
transientConnectErrno(int err)
{
    return err == ECONNREFUSED || err == ENOENT || err == EINTR;
}

/** Run one-shot `attempt` under the retry schedule. */
template <typename Attempt>
auto
withConnectRetry(const ConnectRetryOptions &retry, Attempt attempt)
    -> decltype(attempt())
{
    const std::vector<int> sleeps = backoffScheduleUs(retry);
    for (size_t i = 0;; ++i) {
        errno = 0;
        try {
            return attempt();
        } catch (const ProtocolError &) {
            if (i >= sleeps.size() || !transientConnectErrno(errno))
                throw;
        }
        ::usleep(static_cast<useconds_t>(sleeps[i]));
    }
}

} // namespace

Client
Client::connectUnix(const std::string &path,
                    const ConnectRetryOptions &retry)
{
    return withConnectRetry(retry,
                            [&path] { return connectUnix(path); });
}

Client
Client::connectTcp(const std::string &host, int port,
                   const ConnectRetryOptions &retry)
{
    return withConnectRetry(
        retry, [&host, port] { return connectTcp(host, port); });
}

Client
Client::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw ProtocolError("unix socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ProtocolError(std::string("socket: ") +
                            std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        // Preserve the connect errno across cleanup so the retry
        // wrapper can classify the failure as transient.
        const int saved = errno;
        const std::string message =
            "connect(" + path + "): " + std::strerror(saved);
        ::close(fd);
        errno = saved;
        throw ProtocolError(message);
    }
    return Client(fd);
}

Client
Client::connectTcp(const std::string &host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw ProtocolError("bad address: " + host);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ProtocolError(std::string("socket: ") +
                            std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        const std::string message = "connect(" + host + ":" +
                                    std::to_string(port) +
                                    "): " + std::strerror(saved);
        ::close(fd);
        errno = saved;
        throw ProtocolError(message);
    }
    return Client(fd);
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_), version_(other.version_)
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        max_frame_bytes_ = other.max_frame_bytes_;
        version_ = other.version_;
    }
    return *this;
}

std::vector<uint8_t>
Client::roundTrip(const std::vector<uint8_t> &payload)
{
    sendFrame(fd_, payload);
    auto reply = recvFrame(fd_, max_frame_bytes_);
    if (!reply)
        throw ProtocolError("server closed the connection");
    return std::move(*reply);
}

PredictReply
Client::predict(const std::string &design_source, DesignFormat format,
                uint32_t deadline_ms, core::Precision precision)
{
    // Never degrade a quantized request silently: a peer that cannot
    // speak the precision byte (protocol < 3) would run fp64 and
    // return numbers the caller did not ask for.
    if (precision != core::Precision::Fp64 && version_ < 3) {
        PredictReply reply;
        reply.status = Status::Unsupported;
        reply.message =
            "peer speaks protocol version " + std::to_string(version_) +
            " (no precision byte); call hello() against a v3 server "
            "or request fp64";
        return reply;
    }
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Predict));
    writer.u32(deadline_ms);
    if (version_ >= 3)
        writer.u8(static_cast<uint8_t>(precision));
    writer.u8(static_cast<uint8_t>(format));
    writer.str(design_source);

    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    PredictReply reply;
    reply.status = static_cast<Status>(reader.u8());
    if (reply.status != Status::Ok) {
        reply.message = reader.str();
        reader.expectEnd();
        return reply;
    }
    reply.prediction.timing_ps = reader.f64();
    reply.prediction.area_um2 = reader.f64();
    reply.prediction.power_mw = reader.f64();
    reply.prediction.paths_sampled = reader.u64();
    const uint32_t nodes = reader.u32();
    reply.prediction.critical_path.reserve(nodes);
    for (uint32_t i = 0; i < nodes; ++i)
        reply.prediction.critical_path.push_back(reader.u32());
    reader.expectEnd();
    return reply;
}

std::string
Client::stats()
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Stats));
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    const auto status = static_cast<Status>(reader.u8());
    if (status != Status::Ok)
        throw ProtocolError("STATS failed: " + reader.str());
    std::string text = reader.str();
    reader.expectEnd();
    return text;
}

std::string
Client::reload(const std::string &directory)
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Reload));
    writer.str(directory);
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    const auto status = static_cast<Status>(reader.u8());
    const std::string message = reader.str();
    reader.expectEnd();
    return status == Status::Ok ? "" : message;
}

void
Client::ping()
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Ping));
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    if (static_cast<Status>(reader.u8()) != Status::Ok)
        throw ProtocolError("PING failed");
}

uint32_t
Client::hello()
{
    return hello(kProtocolVersion);
}

uint32_t
Client::hello(uint32_t max_version)
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Hello));
    writer.u32(max_version);
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    const auto status = static_cast<Status>(reader.u8());
    if (status != Status::Ok) {
        // A version-1 server does not know HELLO and answers ERROR
        // "unknown verb" — that *is* the negotiation result: the peer
        // speaks version 1 and this connection degrades to the
        // stateless verbs.
        version_ = 1;
        return version_;
    }
    const uint32_t server_version = reader.u32();
    reader.expectEnd();
    version_ = std::min(max_version, server_version);
    return version_;
}

namespace {

std::string
clusterVerbUnsupportedLocally(uint32_t version)
{
    return "peer speaks protocol version " + std::to_string(version) +
           " (no cluster verbs); negotiate version >= 4 with hello()";
}

} // namespace

std::string
Client::drain()
{
    if (version_ < 4)
        return clusterVerbUnsupportedLocally(version_);
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Drain));
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    const auto status = static_cast<Status>(reader.u8());
    const std::string message = reader.str();
    reader.expectEnd();
    return status == Status::Ok ? "" : message;
}

std::string
Client::resume()
{
    if (version_ < 4)
        return clusterVerbUnsupportedLocally(version_);
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Resume));
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    const auto status = static_cast<Status>(reader.u8());
    const std::string message = reader.str();
    reader.expectEnd();
    return status == Status::Ok ? "" : message;
}

bool
Client::health()
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Ping));
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    if (static_cast<Status>(reader.u8()) != Status::Ok)
        throw ProtocolError("PING failed");
    reader.str(); // (empty) message
    if (version_ >= 4 && reader.remaining() > 0)
        return reader.u8() != 0;
    return false;
}

WorkersReply
Client::workers()
{
    WorkersReply reply;
    if (version_ < 4) {
        reply.status = Status::Unsupported;
        reply.message = clusterVerbUnsupportedLocally(version_);
        return reply;
    }
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Workers));
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    reply.status = static_cast<Status>(reader.u8());
    if (reply.status != Status::Ok) {
        reply.message = reader.str();
        reader.expectEnd();
        return reply;
    }
    const uint32_t count = reader.u32();
    reply.workers.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        WorkerEndpoint endpoint;
        endpoint.address = reader.str();
        endpoint.state = reader.u8();
        reply.workers.push_back(std::move(endpoint));
    }
    reader.expectEnd();
    return reply;
}

SessionReply
Client::readSessionReply(const std::vector<uint8_t> &payload,
                         bool expect_session_id)
{
    WireReader reader(payload);
    SessionReply reply;
    reply.status = static_cast<Status>(reader.u8());
    if (reply.status != Status::Ok) {
        reply.message = reader.str();
        reader.expectEnd();
        return reply;
    }
    if (expect_session_id)
        reply.session_id = reader.u64();
    reply.prediction.timing_ps = reader.f64();
    reply.prediction.area_um2 = reader.f64();
    reply.prediction.power_mw = reader.f64();
    reply.prediction.paths_sampled = reader.u64();
    const uint32_t nodes = reader.u32();
    reply.prediction.critical_path.reserve(nodes);
    for (uint32_t i = 0; i < nodes; ++i)
        reply.prediction.critical_path.push_back(reader.u32());
    reply.diff.noop = reader.u8() != 0;
    reply.diff.modules_changed = reader.u64();
    reply.diff.modules_added = reader.u64();
    reply.diff.modules_removed = reader.u64();
    reply.diff.modules_total = reader.u64();
    reply.diff.nodes_affected = reader.u64();
    reply.diff.endpoints_affected = reader.u64();
    reply.diff.paths_total = reader.u64();
    reply.diff.paths_reused = reader.u64();
    reply.diff.paths_recomputed = reader.u64();
    reader.expectEnd();
    return reply;
}

namespace {

SessionReply
unsupportedLocally()
{
    SessionReply reply;
    reply.status = Status::Unsupported;
    reply.message = "peer speaks protocol version 1 (no sessions); "
                    "call hello() first or use predict()";
    return reply;
}

} // namespace

namespace {

SessionReply
precisionUnsupportedLocally(uint32_t version)
{
    SessionReply reply;
    reply.status = Status::Unsupported;
    reply.message =
        "peer speaks protocol version " + std::to_string(version) +
        " (no precision byte); call hello() against a v3 server or "
        "request fp64";
    return reply;
}

} // namespace

SessionReply
Client::openSession(const std::string &design_source,
                    DesignFormat format, core::Precision precision)
{
    if (version_ < 2)
        return unsupportedLocally();
    if (precision != core::Precision::Fp64 && version_ < 3)
        return precisionUnsupportedLocally(version_);
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Open));
    if (version_ >= 3)
        writer.u8(static_cast<uint8_t>(precision));
    writer.u8(static_cast<uint8_t>(format));
    writer.str(design_source);
    return readSessionReply(roundTrip(writer.bytes()),
                            /*expect_session_id=*/true);
}

SessionReply
Client::updateSession(uint64_t session_id,
                      const std::string &design_source,
                      DesignFormat format, core::Precision precision)
{
    if (version_ < 2)
        return unsupportedLocally();
    if (precision != core::Precision::Fp64 && version_ < 3)
        return precisionUnsupportedLocally(version_);
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Update));
    writer.u64(session_id);
    if (version_ >= 3)
        writer.u8(static_cast<uint8_t>(precision));
    writer.u8(static_cast<uint8_t>(format));
    writer.str(design_source);
    SessionReply reply = readSessionReply(roundTrip(writer.bytes()),
                                          /*expect_session_id=*/false);
    reply.session_id = session_id;
    return reply;
}

std::string
Client::closeSession(uint64_t session_id)
{
    if (version_ < 2)
        return unsupportedLocally().message;
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Verb::Close));
    writer.u64(session_id);
    const auto payload = roundTrip(writer.bytes());
    WireReader reader(payload);
    const auto status = static_cast<Status>(reader.u8());
    const std::string message = reader.str();
    reader.expectEnd();
    return status == Status::Ok ? "" : message;
}

} // namespace sns::serve
