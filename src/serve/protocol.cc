#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace sns::serve {

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "OK";
    case Status::Overloaded:
        return "OVERLOADED";
    case Status::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case Status::Error:
        return "ERROR";
    case Status::Draining:
        return "DRAINING";
    case Status::Unsupported:
        return "UNSUPPORTED";
    }
    return "UNKNOWN";
}

void
WireWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
WireReader::need(size_t bytes) const
{
    if (size_ - pos_ < bytes)
        throw ProtocolError("truncated payload");
}

uint8_t
WireReader::u8()
{
    need(1);
    return data_[pos_++];
}

uint32_t
WireReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

uint64_t
WireReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

double
WireReader::f64()
{
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

void
WireReader::expectEnd() const
{
    if (pos_ != size_)
        throw ProtocolError("trailing bytes in payload");
}

namespace {

void
writeAll(int fd, const uint8_t *data, size_t size)
{
    size_t done = 0;
    while (done < size) {
        // MSG_NOSIGNAL: a peer that vanished mid-frame must surface
        // as EPIPE -> ProtocolError, not SIGPIPE — the router's
        // health loop and in-process embedders (tests) have no
        // signal handler to hide behind.
        const ssize_t n = ::send(fd, data + done, size - done,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("write failed: ") +
                                std::strerror(errno));
        }
        done += static_cast<size_t>(n);
    }
}

/** Full read; returns false on EOF before the first byte. */
bool
readAll(int fd, uint8_t *data, size_t size)
{
    size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("read failed: ") +
                                std::strerror(errno));
        }
        if (n == 0) {
            if (done == 0)
                return false;
            throw ProtocolError("truncated frame (EOF mid-frame)");
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

void
sendFrame(int fd, const std::vector<uint8_t> &payload)
{
    uint8_t header[4];
    const auto len = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<uint8_t>(len >> (8 * i));
    writeAll(fd, header, sizeof(header));
    if (!payload.empty())
        writeAll(fd, payload.data(), payload.size());
}

std::optional<std::vector<uint8_t>>
recvFrame(int fd, size_t max_bytes)
{
    uint8_t header[4];
    if (!readAll(fd, header, sizeof(header)))
        return std::nullopt;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(header[i]) << (8 * i);
    if (len > max_bytes)
        throw ProtocolError("frame length " + std::to_string(len) +
                            " exceeds limit " +
                            std::to_string(max_bytes));
    std::vector<uint8_t> payload(len);
    if (len > 0 && !readAll(fd, payload.data(), len))
        throw ProtocolError("truncated frame (EOF mid-frame)");
    return payload;
}

} // namespace sns::serve
