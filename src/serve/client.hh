/**
 * @file
 * Client side of the sns-serve protocol (docs/serving.md).
 *
 * A Client owns one connection and runs one request/response exchange
 * at a time (`sns-cli remote-predict`, bench/serve_throughput). It is
 * deliberately synchronous: closed-loop callers measure true latency,
 * and concurrency comes from opening more clients — exactly how the
 * throughput bench drives the server.
 *
 * Transport failures (server gone, truncated frame) throw
 * ProtocolError; application-level failures (OVERLOADED, a parse
 * error, DRAINING) come back as a PredictReply status, because
 * admission-control rejections are expected traffic, not exceptions.
 */

#ifndef SNS_SERVE_CLIENT_HH
#define SNS_SERVE_CLIENT_HH

#include <string>

#include "core/predictor.hh"
#include "serve/protocol.hh"

namespace sns::serve {

/** One PREDICT exchange's result. */
struct PredictReply
{
    Status status = Status::Error;
    /** Valid only when status == Ok; bit-for-bit what a local
     * predictBatch would return for the same design. */
    core::SnsPrediction prediction;
    /** Non-Ok explanation. */
    std::string message;
};

/** A synchronous connection to an sns-serve daemon. */
class Client
{
  public:
    /** Connect to a Unix-domain socket; throws ProtocolError. */
    static Client connectUnix(const std::string &path);

    /** Connect over TCP; throws ProtocolError. */
    static Client connectTcp(const std::string &host, int port);

    ~Client();

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Predict one design from source text. deadline_ms > 0 asks the
     * server to expire the request if no batch picks it up in time.
     */
    PredictReply predict(const std::string &design_source,
                         DesignFormat format,
                         uint32_t deadline_ms = 0);

    /** The server's metrics rendering (`name value` lines). */
    std::string stats();

    /** Hot-swap the server's model to a checkpoint directory readable
     * *by the server*. Returns "" on success, else the error. */
    std::string reload(const std::string &directory);

    /** Liveness round trip; throws ProtocolError when the server is
     * unreachable mid-connection. */
    void ping();

  private:
    explicit Client(int fd) : fd_(fd) {}

    std::vector<uint8_t> roundTrip(const std::vector<uint8_t> &payload);

    int fd_ = -1;
    /** Replies larger than this are treated as corrupt. */
    size_t max_frame_bytes_ = 64u << 20;
};

} // namespace sns::serve

#endif // SNS_SERVE_CLIENT_HH
