/**
 * @file
 * Client side of the sns-serve protocol (docs/serving.md).
 *
 * A Client owns one connection and runs one request/response exchange
 * at a time (`sns-cli remote-predict`, bench/serve_throughput). It is
 * deliberately synchronous: closed-loop callers measure true latency,
 * and concurrency comes from opening more clients — exactly how the
 * throughput bench drives the server.
 *
 * Transport failures (server gone, truncated frame) throw
 * ProtocolError; application-level failures (OVERLOADED, a parse
 * error, DRAINING) come back as a PredictReply status, because
 * admission-control rejections are expected traffic, not exceptions.
 */

#ifndef SNS_SERVE_CLIENT_HH
#define SNS_SERVE_CLIENT_HH

#include <string>

#include "core/design_session.hh"
#include "core/predictor.hh"
#include "serve/protocol.hh"

namespace sns::serve {

/** One PREDICT exchange's result. */
struct PredictReply
{
    Status status = Status::Error;
    /** Valid only when status == Ok; bit-for-bit what a local
     * predictBatch would return for the same design. */
    core::SnsPrediction prediction;
    /** Non-Ok explanation. */
    std::string message;
};

/** One OPEN/UPDATE exchange's result. */
struct SessionReply
{
    Status status = Status::Error;
    /** Server-side session handle (OPEN fills it; UPDATE echoes the
     * one the caller passed). */
    uint64_t session_id = 0;
    /** Valid only when status == Ok; bit-for-bit what a cold local
     * predictBatch would return for the same revision. */
    core::SnsPrediction prediction;
    /** Reuse accounting of this exchange (how much of the work the
     * server answered from the session's pinned cache). */
    core::DiffStats diff;
    /** Non-Ok explanation. */
    std::string message;
};

/**
 * Bounded connect retry with a deterministic (jitterless) exponential
 * backoff. Transient connect failures — ECONNREFUSED (peer restarting),
 * ENOENT (unix socket not bound yet), EINTR — are retried up to
 * max_attempts with backoffScheduleUs() sleeps between attempts; every
 * other errno, and exhaustion, throws ProtocolError as before. The
 * schedule carries no jitter on purpose: reconnect timing stays
 * reproducible, matching the repo-wide determinism discipline.
 */
struct ConnectRetryOptions
{
    int max_attempts = 1; ///< 1 = single try, no retry
    int initial_backoff_us = 10'000;
    int multiplier = 2;
    int max_backoff_us = 1'000'000; ///< per-sleep cap
};

/**
 * The sleeps (µs) between connect attempts: max_attempts - 1 entries,
 * entry i = min(initial_backoff_us · multiplier^i, max_backoff_us).
 */
std::vector<int> backoffScheduleUs(const ConnectRetryOptions &options);

/** One v4 WORKERS table row (docs/cluster.md). */
struct WorkerEndpoint
{
    /** "unix:<path>" or "tcp:<host>:<port>". */
    std::string address;
    /** 0 up, 1 draining, 2 down. */
    uint8_t state = 0;
};

/** A WORKERS exchange's result. */
struct WorkersReply
{
    Status status = Status::Error;
    std::vector<WorkerEndpoint> workers;
    std::string message;
};

/** A synchronous connection to an sns-serve daemon. */
class Client
{
  public:
    /** Connect to a Unix-domain socket; throws ProtocolError. */
    static Client connectUnix(const std::string &path);

    /** Connect over TCP; throws ProtocolError. */
    static Client connectTcp(const std::string &host, int port);

    /** Connect with bounded retry on transient failures. */
    static Client connectUnix(const std::string &path,
                              const ConnectRetryOptions &retry);
    static Client connectTcp(const std::string &host, int port,
                             const ConnectRetryOptions &retry);

    ~Client();

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Predict one design from source text. deadline_ms > 0 asks the
     * server to expire the request if no batch picks it up in time.
     * A non-fp64 precision needs a hello() that negotiated version
     * >= 3; against an older peer the call returns Unsupported
     * locally — it never silently degrades int8 to fp64 numbers.
     */
    PredictReply
    predict(const std::string &design_source, DesignFormat format,
            uint32_t deadline_ms = 0,
            core::Precision precision = core::Precision::Fp64);

    /** The server's metrics rendering (`name value` lines). */
    std::string stats();

    /** Hot-swap the server's model to a checkpoint directory readable
     * *by the server*. Returns "" on success, else the error. */
    std::string reload(const std::string &directory);

    /** Liveness round trip; throws ProtocolError when the server is
     * unreachable mid-connection. */
    void ping();

    /**
     * Negotiate the protocol version for this connection and return
     * it. A version-1 server answers HELLO with ERROR, which degrades
     * the connection to version 1 cleanly — the session methods below
     * then return UNSUPPORTED without touching the wire. Call once
     * after connecting; the session verbs require it.
     */
    uint32_t hello();

    /**
     * Negotiate with a version ceiling: the connection speaks
     * min(max_version, server version). The router proxies client
     * traffic at the *client's* negotiated version, so its worker
     * connections must be able to mirror a downlevel client exactly.
     */
    uint32_t hello(uint32_t max_version);

    /** Negotiated protocol version (1 until hello() succeeds). */
    uint32_t negotiatedVersion() const { return version_; }

    /**
     * Soft-drain the peer (v4): it answers admitted work but refuses
     * new PREDICT/OPEN with DRAINING until resume(). Returns "" on
     * success, else the error; needs a hello() that negotiated
     * version >= 4 (refused locally otherwise).
     */
    std::string drain();

    /** Clear a previous drain(). Same contract as drain(). */
    std::string resume();

    /** v4 liveness probe: PING plus the reply's drain-state byte.
     * Returns true when the peer is draining; throws ProtocolError
     * when it is unreachable. On connections below version 4 this is
     * a plain ping and returns false. */
    bool health();

    /** The peer's membership table (v4 WORKERS; routers only — a
     * worker answers Unsupported). */
    WorkersReply workers();

    /**
     * Open an edit-loop session on the server (docs/editloop.md):
     * full prediction now, incremental updates afterwards. Requires a
     * hello() that negotiated version >= 2.
     */
    SessionReply
    openSession(const std::string &design_source, DesignFormat format,
                core::Precision precision = core::Precision::Fp64);

    /** Predict an edited revision through an open session. The
     * precision must match the one the session opened at (the server
     * rejects a switch; CLOSE and re-OPEN instead). */
    SessionReply
    updateSession(uint64_t session_id,
                  const std::string &design_source, DesignFormat format,
                  core::Precision precision = core::Precision::Fp64);

    /** Close a session and free its server-side pinned cache. Returns
     * "" on success, else the error message. */
    std::string closeSession(uint64_t session_id);

  private:
    explicit Client(int fd) : fd_(fd) {}

    std::vector<uint8_t> roundTrip(const std::vector<uint8_t> &payload);

    /** Decode the shared OK tail of OPEN/UPDATE replies. */
    SessionReply readSessionReply(const std::vector<uint8_t> &payload,
                                  bool expect_session_id);

    int fd_ = -1;
    /** Replies larger than this are treated as corrupt. */
    size_t max_frame_bytes_ = 64u << 20;
    uint32_t version_ = 1;
};

} // namespace sns::serve

#endif // SNS_SERVE_CLIENT_HH
