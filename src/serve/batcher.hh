/**
 * @file
 * The dynamic micro-batching queue at the heart of sns-serve
 * (docs/serving.md §Batching).
 *
 * Concurrent clients each submit one design; a single executor thread
 * coalesces whatever is queued into one `predictBatch` call, which
 * then fans the designs out across the sns::par pool. Two knobs shape
 * a batch: `max_batch` caps how many designs ride together, and
 * `max_linger_us` caps how long the executor waits for company once
 * work is pending — an idle server dispatches a lone request after at
 * most the linger, a busy one fills batches without waiting at all.
 *
 * Admission control is explicit and fail-fast: a bounded queue
 * (`max_queue`) turns overload into an immediate OVERLOADED outcome
 * instead of unbounded memory growth and collapse; per-request
 * deadlines expire queued work at dispatch time (DEADLINE_EXCEEDED)
 * so a stale request never wastes model time; and drain() stops
 * admission (DRAINING) while every already-admitted request still
 * gets a real answer — the graceful-SIGTERM half of the server.
 *
 * The single-executor design is also what keeps serving deterministic:
 * batches never run concurrently, so a shared path cache sees one
 * writer and predictions stay bitwise reproducible (the batch *split*
 * varies with traffic; the per-design bits never do, per the PR 2/3
 * padding and cache contracts).
 */

#ifndef SNS_SERVE_BATCHER_HH
#define SNS_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/predictor.hh"
#include "obs/metrics.hh"
#include "serve/protocol.hh"

namespace sns::serve {

/** Batching and admission knobs. */
struct BatchOptions
{
    /** Most designs coalesced into one predictBatch call. */
    size_t max_batch = 16;

    /** Longest the executor lingers for more work once a request is
     * pending, measured from the oldest pending request's arrival. */
    int max_linger_us = 1000;

    /** Queued-request bound; submits beyond it are OVERLOADED. */
    size_t max_queue = 256;
};

/** What a request resolved to. */
struct Outcome
{
    Status status = Status::Error;
    core::SnsPrediction prediction;
    std::string message;
};

/** One admitted design waiting for (or riding in) a batch. */
struct Ticket
{
    graphir::Graph graph;
    /** Numeric tier this request runs at (protocol v3). The executor
     * groups same-tier tickets into one predictBatch call — a batch
     * never mixes precisions, mirroring how it never mixes models. */
    core::Precision precision = core::Precision::Fp64;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    std::promise<Outcome> promise;
};

/** The bounded queue + single executor thread. */
class MicroBatcher
{
  public:
    /** Runs one coalesced batch at one numeric tier; result i belongs
     * to input graph i. Exceptions become an Error outcome for the
     * whole batch. */
    using BatchFn = std::function<std::vector<core::SnsPrediction>(
        const std::vector<const graphir::Graph *> &, core::Precision)>;

    /** Instruments are created in `registry` (global by default;
     * tests pass their own for exact counts). */
    MicroBatcher(BatchOptions options, BatchFn fn,
                 obs::Registry *registry = &obs::Registry::global());

    /** Drains (every admitted request is answered) and joins. */
    ~MicroBatcher();

    MicroBatcher(const MicroBatcher &) = delete;
    MicroBatcher &operator=(const MicroBatcher &) = delete;

    enum class Admit {
        Ok,         ///< queued; the ticket's promise will be fulfilled
        Overloaded, ///< queue at max_queue — ticket returned unfilled
        Draining,   ///< drain() started — ticket returned unfilled
    };

    /**
     * Admit one request. On Ok the batcher takes the ticket and
     * guarantees its promise resolves (prediction, deadline expiry,
     * or error — even through drain()). On rejection the ticket is
     * handed back so the caller can reply without touching the
     * promise machinery.
     */
    Admit submit(std::unique_ptr<Ticket> &ticket);

    /**
     * Stop admitting, answer everything already queued, and join the
     * executor. Idempotent; called by the destructor.
     */
    void drain();

    /** Requests currently queued (a gauge, racy by nature). */
    size_t queueDepth() const;

    const BatchOptions &options() const { return options_; }

  private:
    void executorLoop();
    void finish(std::unique_ptr<Ticket> ticket, Outcome outcome);

    BatchOptions options_;
    BatchFn fn_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::deque<std::unique_ptr<Ticket>> queue_;
    bool draining_ = false;
    std::mutex join_mutex_; ///< serializes drain()'s join

    obs::Counter &requests_total_;
    obs::Counter &requests_ok_;
    obs::Counter &rejected_overloaded_;
    obs::Counter &rejected_deadline_;
    obs::Counter &rejected_draining_;
    obs::Counter &request_errors_;
    obs::Counter &batches_total_;
    obs::Counter &batched_designs_total_;
    obs::Histogram &request_latency_us_;

    std::thread executor_; ///< last member: starts after the counters
};

} // namespace sns::serve

#endif // SNS_SERVE_BATCHER_HH
