#include "serve/batcher.hh"

#include <algorithm>

namespace sns::serve {

using Clock = std::chrono::steady_clock;

MicroBatcher::MicroBatcher(BatchOptions options, BatchFn fn,
                           obs::Registry *registry)
    : options_(options), fn_(std::move(fn)),
      requests_total_(registry->counter("serve.requests_total")),
      requests_ok_(registry->counter("serve.requests_ok")),
      rejected_overloaded_(
          registry->counter("serve.rejected_overloaded")),
      rejected_deadline_(registry->counter("serve.rejected_deadline")),
      rejected_draining_(registry->counter("serve.rejected_draining")),
      request_errors_(registry->counter("serve.request_errors")),
      batches_total_(registry->counter("serve.batches_total")),
      batched_designs_total_(
          registry->counter("serve.batched_designs_total")),
      request_latency_us_(
          registry->histogram("serve.request_latency_us"))
{
    options_.max_batch = std::max<size_t>(1, options_.max_batch);
    options_.max_queue = std::max<size_t>(1, options_.max_queue);
    options_.max_linger_us = std::max(0, options_.max_linger_us);
    executor_ = std::thread([this] { executorLoop(); });
}

MicroBatcher::~MicroBatcher() { drain(); }

MicroBatcher::Admit
MicroBatcher::submit(std::unique_ptr<Ticket> &ticket)
{
    requests_total_.inc();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
            rejected_draining_.inc();
            return Admit::Draining;
        }
        if (queue_.size() >= options_.max_queue) {
            rejected_overloaded_.inc();
            return Admit::Overloaded;
        }
        ticket->enqueued = Clock::now();
        queue_.push_back(std::move(ticket));
    }
    work_cv_.notify_one();
    return Admit::Ok;
}

void
MicroBatcher::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
    }
    work_cv_.notify_all();
    // Serialize the join so concurrent drain() calls (server stop +
    // destructor) are both safe; the loser sees a joined thread.
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (executor_.joinable())
        executor_.join();
}

size_t
MicroBatcher::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
MicroBatcher::finish(std::unique_ptr<Ticket> ticket, Outcome outcome)
{
    const auto waited = std::chrono::duration_cast<
        std::chrono::microseconds>(Clock::now() - ticket->enqueued);
    request_latency_us_.record(
        static_cast<uint64_t>(std::max<int64_t>(0, waited.count())));
    switch (outcome.status) {
    case Status::Ok:
        requests_ok_.inc();
        break;
    case Status::DeadlineExceeded:
        rejected_deadline_.inc();
        break;
    default:
        request_errors_.inc();
        break;
    }
    ticket->promise.set_value(std::move(outcome));
}

void
MicroBatcher::executorLoop()
{
    const auto linger = std::chrono::microseconds(options_.max_linger_us);
    for (;;) {
        std::vector<std::unique_ptr<Ticket>> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return draining_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // draining and nothing left

            // Linger, measured from the oldest pending arrival: wait
            // for the batch to fill, but never hold the oldest request
            // past its linger budget. Draining skips the wait — the
            // goal is out, not throughput.
            if (!draining_) {
                const auto batch_by = queue_.front()->enqueued + linger;
                work_cv_.wait_until(lock, batch_by, [this] {
                    return draining_ ||
                           queue_.size() >= options_.max_batch;
                });
            }
            const size_t take =
                std::min(queue_.size(), options_.max_batch);
            batch.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }

        // Expire dead requests at dispatch time: their client already
        // gave up, so they must not spend model time.
        const auto now = Clock::now();
        std::vector<std::unique_ptr<Ticket>> live;
        live.reserve(batch.size());
        for (auto &ticket : batch) {
            if (ticket->has_deadline && ticket->deadline < now) {
                finish(std::move(ticket),
                       {Status::DeadlineExceeded, {},
                        "deadline expired before dispatch"});
            } else {
                live.push_back(std::move(ticket));
            }
        }
        if (live.empty())
            continue;

        // A batch runs at exactly one numeric tier (the serving
        // caches are tier-bound), so mixed-precision pulls split into
        // one dispatch per tier, arrival order preserved within each.
        // Single-tier traffic — the common case — still rides as one
        // batch.
        const auto dispatch =
            [this](std::vector<std::unique_ptr<Ticket>> &group,
                   core::Precision tier) {
                if (group.empty())
                    return;
                batches_total_.inc();
                batched_designs_total_.inc(group.size());
                std::vector<const graphir::Graph *> graphs;
                graphs.reserve(group.size());
                for (const auto &ticket : group)
                    graphs.push_back(&ticket->graph);
                try {
                    auto predictions = fn_(graphs, tier);
                    if (predictions.size() != group.size())
                        throw std::runtime_error(
                            "batch function returned " +
                            std::to_string(predictions.size()) +
                            " predictions for " +
                            std::to_string(group.size()) + " designs");
                    for (size_t i = 0; i < group.size(); ++i) {
                        finish(std::move(group[i]),
                               {Status::Ok, std::move(predictions[i]),
                                ""});
                    }
                } catch (const std::exception &e) {
                    for (auto &ticket : group)
                        finish(std::move(ticket),
                               {Status::Error, {}, e.what()});
                }
            };
        std::vector<std::unique_ptr<Ticket>> fp64_group;
        std::vector<std::unique_ptr<Ticket>> int8_group;
        for (auto &ticket : live) {
            auto &group = ticket->precision == core::Precision::Int8
                              ? int8_group
                              : fp64_group;
            group.push_back(std::move(ticket));
        }
        dispatch(fp64_group, core::Precision::Fp64);
        dispatch(int8_group, core::Precision::Int8);
    }
}

} // namespace sns::serve
