/**
 * @file
 * The sns-serve wire protocol (docs/serving.md §Protocol).
 *
 * Frames: every message — request or response — is one frame, a
 * little-endian uint32 payload length followed by that many payload
 * bytes. Multi-byte integers and doubles inside the payload are
 * little-endian host order (the client and server are assumed to run
 * on the same or an equally-ordered architecture; this is what makes
 * server responses bit-for-bit identical to a local predictBatch).
 *
 * Requests open with a verb byte, responses with a status byte:
 *
 *   PREDICT  u32 deadline_ms (0 = none), [v3: u8 precision,]
 *            u8 format (0 snl, 1 verilog), str design source
 *        ->  OK: <prediction>
 *   STATS    (empty) -> OK: str metrics text (obs render + cache)
 *   RELOAD   str checkpoint directory -> OK: (empty)
 *   PING     (empty) -> OK: (empty)
 *   HELLO    u32 client protocol version
 *        ->  OK: u32 server protocol version (the connection speaks
 *            min(client, server) from then on)
 *   OPEN     [v3: u8 precision,] u8 format, str design source
 *        ->  OK: u64 session_id, <prediction>, <diff>
 *   UPDATE   u64 session_id, [v3: u8 precision,] u8 format,
 *            str design source
 *        ->  OK: <prediction>, <diff>
 *   CLOSE    u64 session_id -> OK: (empty)
 *
 * with the shared blocks
 *
 *   <prediction> = f64 timing_ps, f64 area_um2, f64 power_mw,
 *                  u64 paths_sampled, u32 n, n×u32 critical-path ids
 *   <diff>       = u8 noop, u64 modules_changed, u64 modules_added,
 *                  u64 modules_removed, u64 modules_total,
 *                  u64 nodes_affected, u64 endpoints_affected,
 *                  u64 paths_total, u64 paths_reused,
 *                  u64 paths_recomputed
 *
 * and `str` a u32 byte length + bytes. Any non-OK status carries a str
 * message. Clients may pipeline requests on one connection; the server
 * answers in order.
 *
 * Version negotiation: the session verbs (OPEN/UPDATE/CLOSE) are a
 * version-2 feature and gated behind HELLO — a connection that has not
 * negotiated version >= 2 gets UNSUPPORTED, never a protocol break. A
 * version-1 server answers HELLO itself with ERROR "unknown verb",
 * which a version-2 client treats as "the peer speaks version 1" and
 * degrades to the stateless verbs (docs/serving.md §Compatibility).
 *
 * Version 3 threads the numeric tier (docs/quantization.md): PREDICT,
 * OPEN, and UPDATE gain one precision byte (0 fp64, 1 int8, the
 * core::Precision values) at the positions marked above — only on
 * connections that negotiated version >= 3; older payload layouts are
 * byte-for-byte unchanged. A v3 client asked for int8 against a v2 or
 * v1 server reports Unsupported locally instead of silently degrading
 * to fp64 numbers.
 *
 * Version 4 adds the cluster-control verbs (docs/cluster.md), all
 * gated behind a negotiated version >= 4:
 *
 *   DRAIN    (empty) -> OK: (empty). Soft drain: the worker keeps
 *            answering admitted and session traffic but refuses new
 *            PREDICT/OPEN with DRAINING until RESUME.
 *   RESUME   (empty) -> OK: (empty). Clears a previous DRAIN.
 *   WORKERS  (empty) -> OK: u32 n, n×(str address, u8 state) — the
 *            router's membership table; addresses are "unix:<path>"
 *            or "tcp:<host>:<port>", state is 0 up, 1 draining,
 *            2 down. Workers themselves answer UNSUPPORTED.
 *
 * On a version >= 4 connection the PING reply also carries one u8
 * drain-state byte (1 when admission is paused) after the status, so
 * a router's health loop observes drains without extra round trips;
 * older clients only read the status byte and are unaffected.
 */

#ifndef SNS_SERVE_PROTOCOL_HH
#define SNS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sns::serve {

/**
 * The highest protocol version this build speaks. Version 1 is the
 * stateless verbs (PREDICT/STATS/RELOAD/PING); version 2 adds HELLO
 * negotiation and the edit-loop session verbs; version 3 adds the
 * precision byte to PREDICT/OPEN/UPDATE; version 4 adds the cluster
 * verbs (DRAIN/RESUME/WORKERS) and the PING drain-state byte.
 */
inline constexpr uint32_t kProtocolVersion = 4;

/** Request kinds. */
enum class Verb : uint8_t {
    Predict = 1,
    Stats = 2,
    Reload = 3,
    Ping = 4,
    Hello = 5,
    Open = 6,
    Update = 7,
    Close = 8,
    Drain = 9,
    Resume = 10,
    Workers = 11,
};

/** Response status; every non-Ok reply carries a message string. */
enum class Status : uint8_t {
    Ok = 0,
    /** Admission control rejected the request: the batching queue is
     * at max_queue depth. Back off and retry. */
    Overloaded = 1,
    /** The request's deadline expired before a batch picked it up. */
    DeadlineExceeded = 2,
    /** Parse failure, bad frame, model error, … (message says). */
    Error = 3,
    /** The server is draining (SIGTERM); no new work is admitted. */
    Draining = 4,
    /** The verb exists in a newer protocol version than this
     * connection negotiated (or the peer supports). Not an error —
     * the client should fall back to the stateless verbs. */
    Unsupported = 5,
};

/** Human-readable status name ("OK", "OVERLOADED", ...). */
const char *statusName(Status status);

/** Design source language of a PREDICT payload. */
enum class DesignFormat : uint8_t { Snl = 0, Verilog = 1 };

/** Malformed frame or payload (underrun, oversize, bad verb). */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** Append-only payload builder. */
class WireWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);
    void str(const std::string &s);

    const std::vector<uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked payload reader; throws ProtocolError on underrun. */
class WireReader
{
  public:
    WireReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }
    explicit WireReader(const std::vector<uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();

    size_t remaining() const { return size_ - pos_; }

    /** Throws unless the payload was consumed exactly. */
    void expectEnd() const;

  private:
    void need(size_t bytes) const;

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

/**
 * Write one length-prefixed frame to a socket (full write, EINTR
 * retried). Throws ProtocolError on I/O failure (peer gone).
 */
void sendFrame(int fd, const std::vector<uint8_t> &payload);

/**
 * Read one frame. Returns nullopt on clean EOF at a frame boundary;
 * throws ProtocolError on a truncated frame, I/O error, or a payload
 * longer than max_bytes (a corrupt or hostile length prefix must not
 * become an allocation).
 */
std::optional<std::vector<uint8_t>> recvFrame(int fd, size_t max_bytes);

} // namespace sns::serve

#endif // SNS_SERVE_PROTOCOL_HH
