#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "netlist/snl_parser.hh"
#include "netlist/verilog_parser.hh"
#include "util/logging.hh"
#include "verify/diagnostics.hh"

namespace sns::serve {

namespace {

/** One non-Ok reply: status byte + message. */
std::vector<uint8_t>
statusReply(Status status, const std::string &message)
{
    WireWriter writer;
    writer.u8(static_cast<uint8_t>(status));
    writer.str(message);
    return writer.bytes();
}

/** The <prediction> reply block (shared by PREDICT and the session
 * verbs — byte-identical layouts keep the client decoder single). */
void
writePrediction(WireWriter &writer, const core::SnsPrediction &prediction)
{
    writer.f64(prediction.timing_ps);
    writer.f64(prediction.area_um2);
    writer.f64(prediction.power_mw);
    writer.u64(prediction.paths_sampled);
    writer.u32(static_cast<uint32_t>(prediction.critical_path.size()));
    for (const graphir::NodeId node : prediction.critical_path)
        writer.u32(node);
}

/** The <diff> reply block. */
void
writeDiff(WireWriter &writer, const core::DiffStats &diff)
{
    writer.u8(diff.noop ? 1 : 0);
    writer.u64(diff.modules_changed);
    writer.u64(diff.modules_added);
    writer.u64(diff.modules_removed);
    writer.u64(diff.modules_total);
    writer.u64(diff.nodes_affected);
    writer.u64(diff.endpoints_affected);
    writer.u64(diff.paths_total);
    writer.u64(diff.paths_reused);
    writer.u64(diff.paths_recomputed);
}

/** Valid wire precision byte? (core::Precision values.) */
bool
validPrecisionByte(uint8_t byte)
{
    return byte == static_cast<uint8_t>(core::Precision::Fp64) ||
           byte == static_cast<uint8_t>(core::Precision::Int8);
}

/** Parse a session verb's design payload (format byte + source). */
bool
parseDesign(WireReader &reader, graphir::Graph &graph, std::string &error)
{
    const auto format = static_cast<DesignFormat>(reader.u8());
    const std::string text = reader.str();
    reader.expectEnd();
    try {
        graph = format == DesignFormat::Verilog ? netlist::parseVerilog(text)
                                                : netlist::parseSnl(text);
    } catch (const std::exception &e) {
        error = std::string("design parse error: ") + e.what();
        return false;
    }
    return true;
}

} // namespace

Server::Server(std::shared_ptr<const core::SnsPredictor> predictor,
               ServerOptions options)
    : options_(std::move(options)), predictor_(std::move(predictor)),
      cache_(perf::PathCacheOptions{options_.cache_capacity, 16}),
      int8_cache_(perf::PathCacheOptions{options_.cache_capacity, 16}),
      connections_total_(
          options_.registry->counter("serve.connections_total")),
      protocol_errors_(
          options_.registry->counter("serve.protocol_errors")),
      reloads_total_(options_.registry->counter("serve.reloads_total")),
      session_opens_(options_.registry->counter("session.opens_total")),
      session_updates_(
          options_.registry->counter("session.updates_total")),
      session_closes_(
          options_.registry->counter("session.closes_total")),
      session_evicted_ttl_(
          options_.registry->counter("session.evicted_ttl")),
      session_paths_reused_(
          options_.registry->counter("session.paths_reused")),
      session_paths_recomputed_(
          options_.registry->counter("session.paths_recomputed"))
{
    SNS_ASSERT(predictor_ != nullptr, "Server needs a predictor");
}

Server::~Server() { stop(); }

void
Server::start()
{
    SNS_ASSERT(!running_.load(), "Server::start() called twice");

    if (!options_.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.unix_path.size() >= sizeof(addr.sun_path))
            throw std::runtime_error("unix socket path too long: " +
                                     options_.unix_path);
        std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw std::runtime_error(std::string("socket: ") +
                                     std::strerror(errno));
        // A previous crashed instance leaves a stale inode behind.
        ::unlink(options_.unix_path.c_str());
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const std::string err = std::strerror(errno);
            closeListener();
            throw std::runtime_error("bind(" + options_.unix_path +
                                     "): " + err);
        }
    } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
        if (::inet_pton(AF_INET, options_.tcp_host.c_str(),
                        &addr.sin_addr) != 1)
            throw std::runtime_error("bad listen address: " +
                                     options_.tcp_host);
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw std::runtime_error(std::string("socket: ") +
                                     std::strerror(errno));
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const std::string err = std::strerror(errno);
            closeListener();
            throw std::runtime_error(
                "bind(" + options_.tcp_host + ":" +
                std::to_string(options_.tcp_port) + "): " + err);
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listen_fd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            port_ = ntohs(bound.sin_port);
    }

    if (::listen(listen_fd_, 128) != 0) {
        const std::string err = std::strerror(errno);
        closeListener();
        throw std::runtime_error("listen: " + err);
    }

    batcher_ = std::make_unique<MicroBatcher>(
        options_.batch,
        [this](const std::vector<const graphir::Graph *> &graphs,
               core::Precision precision) {
            return runBatch(graphs, precision);
        },
        options_.registry);
    options_.registry->setGauge("serve.queue_depth", [this] {
        return static_cast<double>(batcher_->queueDepth());
    });
    options_.registry->setGauge("serve.sessions_open", [this] {
        return static_cast<double>(sessionsOpen());
    });

    stopping_.store(false);
    running_.store(true);
    listener_ = std::thread([this] { listenLoop(); });
    if (options_.stats_log_period_s > 0)
        logger_ = std::thread([this] { logLoop(); });
}

void
Server::closeListener()
{
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (!options_.unix_path.empty())
        ::unlink(options_.unix_path.c_str());
}

void
Server::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);

    // 1. Stop accepting: the listener polls with a timeout and checks
    //    stopping_, so it exits promptly; joining it first guarantees
    //    every accepted connection is registered in open_fds_.
    if (listener_.joinable())
        listener_.join();
    closeListener();

    // 2. Drain: every admitted request gets its real answer; submits
    //    from here on get DRAINING.
    if (batcher_)
        batcher_->drain();

    // 3. Unblock handlers parked in recvFrame. SHUT_RD only — a
    //    handler mid-reply still owns the write side.
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (const int fd : open_fds_)
            ::shutdown(fd, SHUT_RD);
    }
    for (auto &handler : handlers_) {
        if (handler.joinable())
            handler.join();
    }
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        handlers_.clear();
        open_fds_.clear();
    }

    options_.registry->removeGauge("serve.queue_depth");
    options_.registry->removeGauge("serve.sessions_open");
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        sessions_.clear();
    }
    log_cv_.notify_all();
    if (logger_.joinable())
        logger_.join();
}

void
Server::listenLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        // Piggyback session TTL eviction on the poll cadence: idle
        // sessions are swept within ~100 ms of their deadline whether
        // or not traffic arrives.
        sweepSessions();
        if (ready == 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_total_.inc();
        std::lock_guard<std::mutex> lock(conn_mutex_);
        open_fds_.insert(fd);
        handlers_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    ConnectionState conn;
    try {
        for (;;) {
            auto request = recvFrame(fd, options_.max_frame_bytes);
            if (!request)
                break; // clean EOF
            sendFrame(fd, handleRequest(*request, conn));
        }
    } catch (const ProtocolError &) {
        // Corrupt framing or a vanished peer; drop the connection.
        protocol_errors_.inc();
    }
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        open_fds_.erase(fd);
    }
    ::close(fd);
}

std::vector<uint8_t>
Server::handleRequest(const std::vector<uint8_t> &request,
                      ConnectionState &conn)
{
    WireReader reader(request);
    try {
        const auto verb = static_cast<Verb>(reader.u8());
        switch (verb) {
        case Verb::Predict:
            return handlePredict(reader, conn);
        case Verb::Stats: {
            reader.expectEnd();
            WireWriter writer;
            writer.u8(static_cast<uint8_t>(Status::Ok));
            writer.str(statsText());
            return writer.bytes();
        }
        case Verb::Reload: {
            const std::string directory = reader.str();
            reader.expectEnd();
            const std::string error = stageReload(directory);
            if (!error.empty())
                return statusReply(Status::Error, error);
            return statusReply(Status::Ok, "");
        }
        case Verb::Ping: {
            reader.expectEnd();
            WireWriter writer;
            writer.u8(static_cast<uint8_t>(Status::Ok));
            writer.str("");
            // v4 PING carries the drain state, so a router's health
            // loop sees DRAIN without an extra round trip. Older
            // clients only read the status byte and ignore the rest.
            if (conn.version >= 4)
                writer.u8(admission_paused_.load() ? 1 : 0);
            return writer.bytes();
        }
        case Verb::Hello: {
            const uint32_t client_version = reader.u32();
            reader.expectEnd();
            conn.version = std::min(client_version, kProtocolVersion);
            WireWriter writer;
            writer.u8(static_cast<uint8_t>(Status::Ok));
            writer.u32(kProtocolVersion);
            return writer.bytes();
        }
        case Verb::Open:
        case Verb::Update:
        case Verb::Close: {
            // Feature gate: session verbs exist from version 2 on, and
            // only after the connection negotiated them via HELLO —
            // un-negotiated peers get a clean UNSUPPORTED, never a
            // protocol break.
            if (conn.version < 2) {
                return statusReply(
                    Status::Unsupported,
                    "session verbs need protocol version >= 2 "
                    "(negotiate with HELLO first)");
            }
            if (verb == Verb::Open)
                return handleOpen(reader, conn);
            if (verb == Verb::Update)
                return handleUpdate(reader, conn);
            return handleClose(reader);
        }
        case Verb::Drain:
        case Verb::Resume: {
            // Cluster-control verbs exist from version 4 on; the same
            // negotiate-first discipline as the session verbs.
            reader.expectEnd();
            if (conn.version < 4) {
                return statusReply(
                    Status::Unsupported,
                    "cluster verbs need protocol version >= 4 "
                    "(negotiate with HELLO first)");
            }
            pauseAdmission(verb == Verb::Drain);
            return statusReply(Status::Ok, "");
        }
        case Verb::Workers:
            // Only the router holds a membership table; a worker
            // answers UNSUPPORTED so a mis-pointed CLI degrades
            // cleanly instead of hanging.
            reader.expectEnd();
            return statusReply(Status::Unsupported,
                               "WORKERS is a router verb; this is a "
                               "single sns-serve worker");
        }
        return statusReply(Status::Error, "unknown verb");
    } catch (const ProtocolError &e) {
        // Framing is intact (frames are length-delimited); answer and
        // keep the connection.
        protocol_errors_.inc();
        return statusReply(Status::Error,
                           std::string("bad request: ") + e.what());
    }
}

std::vector<uint8_t>
Server::handlePredict(WireReader &reader, const ConnectionState &conn)
{
    const uint32_t deadline_ms = reader.u32();
    // The precision byte exists from protocol v3; older connections'
    // payloads are unchanged and always run fp64.
    uint8_t precision_byte =
        static_cast<uint8_t>(core::Precision::Fp64);
    if (conn.version >= 3)
        precision_byte = reader.u8();
    const auto format = static_cast<DesignFormat>(reader.u8());
    const std::string text = reader.str();
    reader.expectEnd();
    if (!validPrecisionByte(precision_byte)) {
        return statusReply(Status::Error,
                           "unknown precision byte " +
                               std::to_string(precision_byte) +
                               " (0 fp64, 1 int8)");
    }
    // Soft drain (v4 DRAIN): refuse new work before it is admitted —
    // everything already in the queue still gets its real answer.
    if (admission_paused_.load())
        return statusReply(Status::Draining, "worker is draining");

    auto ticket = std::make_unique<Ticket>();
    ticket->precision = static_cast<core::Precision>(precision_byte);
    try {
        ticket->graph = format == DesignFormat::Verilog
                            ? netlist::parseVerilog(text)
                            : netlist::parseSnl(text);
    } catch (const std::exception &e) {
        return statusReply(Status::Error,
                           std::string("design parse error: ") +
                               e.what());
    }
    if (deadline_ms > 0) {
        ticket->has_deadline = true;
        ticket->deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(deadline_ms);
    }

    auto future = ticket->promise.get_future();
    switch (batcher_->submit(ticket)) {
    case MicroBatcher::Admit::Overloaded:
        return statusReply(Status::Overloaded,
                           "queue full (" +
                               std::to_string(
                                   batcher_->options().max_queue) +
                               " pending)");
    case MicroBatcher::Admit::Draining:
        return statusReply(Status::Draining, "server is draining");
    case MicroBatcher::Admit::Ok:
        break;
    }

    const Outcome outcome = future.get();
    if (outcome.status != Status::Ok)
        return statusReply(outcome.status, outcome.message);

    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Status::Ok));
    writer.f64(outcome.prediction.timing_ps);
    writer.f64(outcome.prediction.area_um2);
    writer.f64(outcome.prediction.power_mw);
    writer.u64(outcome.prediction.paths_sampled);
    writer.u32(
        static_cast<uint32_t>(outcome.prediction.critical_path.size()));
    for (const graphir::NodeId node : outcome.prediction.critical_path)
        writer.u32(node);
    return writer.bytes();
}

std::vector<uint8_t>
Server::runSession(const std::shared_ptr<SessionEntry> &entry,
                   const graphir::Graph &graph,
                   core::Precision precision, uint64_t echo_session_id,
                   bool include_session_id)
{
    // Sessions are stateful and per-design: they bypass the batcher
    // and run here on the handler thread, against the newest loaded
    // model. A staged reload is *read* here (sessions must not serve a
    // model the operator already replaced) but the live swap — which
    // rebinds the shared PREDICT cache — stays the executor's job, so
    // it can never race an in-flight batch's cache inserts; sessions
    // only touch their own pinned caches.
    std::shared_ptr<const core::SnsPredictor> predictor;
    {
        std::lock_guard<std::mutex> lock(model_mutex_);
        predictor = staged_predictor_ ? staged_predictor_ : predictor_;
    }

    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->session.isOpen() &&
        entry->session.boundModel() != predictor->modelFingerprint()) {
        // The model was hot-reloaded after this session opened; its
        // pinned predictions belong to the old weights (V-SESS-MODEL).
        return statusReply(Status::Error,
                           "session was opened under a different model "
                           "(the server reloaded); CLOSE and re-OPEN");
    }

    // An int8 request against a model with no scales must be a clean
    // reply, not a fatal V-OPT-PRECISION abort inside predict.
    if (precision == core::Precision::Int8 && !predictor->quantized()) {
        return statusReply(Status::Error,
                           "precision=int8 but the served model "
                           "carries no int8 scales (quantize the "
                           "checkpoint and RELOAD)");
    }
    // A session is pinned to the tier it opened at; switching
    // mid-session is a clean error (V-SESS-MODEL), same as a model
    // swap — the pinned predictions belong to the opening tier.
    if (entry->session.isOpen() &&
        entry->session.precision() != precision) {
        return statusReply(
            Status::Error,
            std::string("session opened at precision ") +
                core::precisionName(entry->session.precision()) +
                " but this request asks for " +
                core::precisionName(precision) +
                "; CLOSE and re-OPEN to switch");
    }

    core::SnsPrediction prediction;
    core::PredictOptions session_options;
    session_options.precision = precision;
    try {
        prediction =
            entry->session.predict(*predictor, graph, session_options);
    } catch (const std::exception &e) {
        return statusReply(Status::Error,
                           std::string("session predict failed: ") +
                               e.what());
    }
    entry->last_used_ns.store(std::chrono::steady_clock::now()
                                  .time_since_epoch()
                                  .count(),
                              std::memory_order_relaxed);

    const core::DiffStats &diff = entry->session.lastDiff();
    session_paths_reused_.inc(diff.paths_reused);
    session_paths_recomputed_.inc(diff.paths_recomputed);

    WireWriter writer;
    writer.u8(static_cast<uint8_t>(Status::Ok));
    if (include_session_id)
        writer.u64(echo_session_id);
    writePrediction(writer, prediction);
    writeDiff(writer, diff);
    return writer.bytes();
}

std::vector<uint8_t>
Server::handleOpen(WireReader &reader, const ConnectionState &conn)
{
    uint8_t precision_byte =
        static_cast<uint8_t>(core::Precision::Fp64);
    if (conn.version >= 3)
        precision_byte = reader.u8();
    graphir::Graph graph;
    std::string error;
    if (!parseDesign(reader, graph, error))
        return statusReply(Status::Error, error);
    if (!validPrecisionByte(precision_byte)) {
        return statusReply(Status::Error,
                           "unknown precision byte " +
                               std::to_string(precision_byte) +
                               " (0 fp64, 1 int8)");
    }
    // Soft drain: no new sessions; open sessions keep updating so
    // admitted edit loops finish wherever they started.
    if (admission_paused_.load())
        return statusReply(Status::Draining, "worker is draining");

    auto entry = std::make_shared<SessionEntry>();
    entry->last_used_ns.store(std::chrono::steady_clock::now()
                                  .time_since_epoch()
                                  .count(),
                              std::memory_order_relaxed);
    const uint64_t id = next_session_id_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        if (sessions_.size() >= options_.max_sessions) {
            return statusReply(
                Status::Overloaded,
                "session table full (" +
                    std::to_string(options_.max_sessions) +
                    " open); CLOSE a session or raise --max-sessions");
        }
        sessions_.emplace(id, entry);
    }
    session_opens_.inc();
    return runSession(entry, graph,
                      static_cast<core::Precision>(precision_byte), id,
                      /*include_session_id=*/true);
}

std::vector<uint8_t>
Server::handleUpdate(WireReader &reader, const ConnectionState &conn)
{
    const uint64_t id = reader.u64();
    uint8_t precision_byte =
        static_cast<uint8_t>(core::Precision::Fp64);
    if (conn.version >= 3)
        precision_byte = reader.u8();
    graphir::Graph graph;
    std::string error;
    if (!parseDesign(reader, graph, error))
        return statusReply(Status::Error, error);
    if (!validPrecisionByte(precision_byte)) {
        return statusReply(Status::Error,
                           "unknown precision byte " +
                               std::to_string(precision_byte) +
                               " (0 fp64, 1 int8)");
    }

    std::shared_ptr<SessionEntry> entry;
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        const auto it = sessions_.find(id);
        if (it != sessions_.end())
            entry = it->second;
    }
    if (!entry) {
        return statusReply(Status::Error,
                           "unknown session " + std::to_string(id) +
                               " (never opened, closed, or TTL-evicted)");
    }
    session_updates_.inc();
    return runSession(entry, graph,
                      static_cast<core::Precision>(precision_byte), id,
                      /*include_session_id=*/false);
}

std::vector<uint8_t>
Server::handleClose(WireReader &reader)
{
    const uint64_t id = reader.u64();
    reader.expectEnd();
    std::shared_ptr<SessionEntry> entry;
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        const auto it = sessions_.find(id);
        if (it == sessions_.end())
            return statusReply(Status::Error,
                               "unknown session " + std::to_string(id));
        entry = std::move(it->second);
        sessions_.erase(it);
    }
    // Free the pinned cache under the entry mutex so a racing UPDATE
    // that already grabbed the shared_ptr finishes first.
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->session.close();
    session_closes_.inc();
    return statusReply(Status::Ok, "");
}

void
Server::sweepSessions()
{
    if (options_.session_ttl_s <= 0)
        return;
    const int64_t deadline_ns =
        (std::chrono::steady_clock::now() -
         std::chrono::seconds(options_.session_ttl_s))
            .time_since_epoch()
            .count();
    std::vector<std::shared_ptr<SessionEntry>> evicted;
    {
        std::lock_guard<std::mutex> lock(session_mutex_);
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            if (it->second->last_used_ns.load(
                    std::memory_order_relaxed) < deadline_ns) {
                evicted.push_back(std::move(it->second));
                it = sessions_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &entry : evicted) {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->session.close();
        session_evicted_ttl_.inc();
    }
}

size_t
Server::sessionsOpen() const
{
    std::lock_guard<std::mutex> lock(session_mutex_);
    return sessions_.size();
}

std::vector<core::SnsPrediction>
Server::runBatch(const std::vector<const graphir::Graph *> &graphs,
                 core::Precision precision)
{
    // This runs on the batcher's executor — the only thread that ever
    // touches the model or inserts into the caches — so swapping the
    // staged checkpoint here makes hot-reload atomic per batch: no
    // batch mixes models, and clearing the caches before first use of
    // the new model can never race an old-model insert.
    std::shared_ptr<const core::SnsPredictor> predictor;
    {
        std::lock_guard<std::mutex> lock(model_mutex_);
        if (staged_predictor_) {
            predictor_ = std::move(staged_predictor_);
            staged_predictor_ = nullptr;
            cache_.clear(); // unbind; the new model re-binds below
            int8_cache_.clear();
        }
        predictor = predictor_;
    }
    // An int8 batch against a model with no scales must become a clean
    // Error outcome for its tickets, not a fatal V-OPT-PRECISION abort
    // inside predictBatch (the executor catches exceptions).
    if (precision == core::Precision::Int8 && !predictor->quantized()) {
        throw std::runtime_error(
            "precision=int8 but the served model carries no int8 "
            "scales (quantize the checkpoint and RELOAD)");
    }
    core::PredictOptions options;
    options.precision = precision;
    // One cache per tier: the binding fingerprint is precision-salted,
    // so fp64 and int8 entries must never share a cache.
    options.cache = precision == core::Precision::Int8 ? &int8_cache_
                                                       : &cache_;
    return predictor->predictBatch(graphs, options);
}

std::string
Server::stageReload(const std::string &directory)
{
    try {
        auto loaded = std::make_shared<const core::SnsPredictor>(
            core::SnsPredictor::load(directory));
        std::lock_guard<std::mutex> lock(model_mutex_);
        staged_predictor_ = std::move(loaded);
    } catch (const verify::VerifyError &e) {
        // A checkpoint that *parses* but fails static analysis (a
        // corrupt or mismatched plan.snsp, bad container hash, ...) —
        // name the analyzer so operators reach for sns_lint, not the
        // serializer.
        return std::string("verification failed: ") + e.what();
    } catch (const std::exception &e) {
        return e.what();
    }
    reloads_total_.inc();
    return "";
}

std::string
Server::statsText() const
{
    std::string text = options_.registry->render() +
                       obs::formatCacheStats(cache_.stats());
    const auto int8 = int8_cache_.stats();
    const auto line = [&text](const char *name, double value) {
        text += name;
        text += ' ';
        text += obs::formatValue(value);
        text += '\n';
    };
    line("cache_int8.hits", static_cast<double>(int8.hits));
    line("cache_int8.misses", static_cast<double>(int8.misses));
    line("cache_int8.entries", static_cast<double>(int8.entries));
    return text;
}

void
Server::logLoop()
{
    obs::Registry &registry = *options_.registry;
    obs::Counter &ok = registry.counter("serve.requests_ok");
    obs::Counter &total = registry.counter("serve.requests_total");
    obs::Counter &overloaded =
        registry.counter("serve.rejected_overloaded");
    obs::Histogram &latency =
        registry.histogram("serve.request_latency_us");
    std::unique_lock<std::mutex> lock(log_mutex_);
    while (running_.load()) {
        log_cv_.wait_for(
            lock, std::chrono::seconds(options_.stats_log_period_s));
        if (!running_.load())
            break;
        const auto snap = latency.snapshot();
        const auto stats = cache_.stats();
        inform("serve: requests=", total.value(), " ok=", ok.value(),
               " overloaded=", overloaded.value(),
               " p50_us=", static_cast<uint64_t>(snap.p50),
               " p99_us=", static_cast<uint64_t>(snap.p99),
               " queue=", batcher_->queueDepth(), " cache_hit_rate=",
               obs::formatValue(stats.hitRate()));
    }
}

} // namespace sns::serve
