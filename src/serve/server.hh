/**
 * @file
 * sns-serve — the long-lived prediction daemon (docs/serving.md).
 *
 * One process holds one trained SnsPredictor, one shared
 * perf::PathPredictionCache, and one MicroBatcher. A listener thread
 * accepts Unix-domain or TCP connections; each connection gets a
 * handler thread that decodes frames, parses PREDICT design sources
 * into graphs, and submits tickets to the batcher. The batcher's
 * executor coalesces concurrent tickets into single predictBatch
 * calls, so N clients cost one padded Circuitformer pass per batch
 * instead of N process spin-ups — the PR 2 batch API and PR 3 warm
 * cache finally serve traffic the way the ROADMAP intends.
 *
 * Model lifecycle: RELOAD stages a freshly-loaded checkpoint; the
 * *executor* swaps it in between batches (an atomic pointer swap plus
 * a cache clear/re-bind), so no batch ever mixes models, no in-flight
 * request is dropped, and the shared cache can never serve stale
 * predictions — the fingerprint binding of path_cache.hh backstops
 * this at runtime. A checkpoint that fails to load is an ERROR reply,
 * never a dead daemon.
 *
 * Shutdown: stop() (the SIGTERM path in tools/sns_serve.cc) stops
 * accepting, lets the batcher drain — every admitted request gets a
 * real answer, later submits get DRAINING — then unblocks and joins
 * every handler. Observability: counters, latency histograms, and
 * queue/cache gauges live in sns::obs; the STATS verb returns the
 * same rendering the CLI prints.
 */

#ifndef SNS_SERVE_SERVER_HH
#define SNS_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/predictor.hh"
#include "obs/metrics.hh"
#include "perf/path_cache.hh"
#include "serve/batcher.hh"
#include "serve/protocol.hh"

namespace sns::serve {

/** Server configuration. */
struct ServerOptions
{
    /** Non-empty: listen on this Unix-domain socket path (unlinked on
     * bind and on stop). Empty: listen on TCP. */
    std::string unix_path;

    /** TCP listen address; port 0 binds an ephemeral port (read the
     * resolved one from Server::port()). */
    std::string tcp_host = "127.0.0.1";
    int tcp_port = 0;

    /** Micro-batching and admission control. */
    BatchOptions batch;

    /** Largest accepted request frame (a corrupt length prefix must
     * not become a giant allocation). */
    size_t max_frame_bytes = 16u << 20;

    /** Shared path-prediction cache capacity (entries; 0 unbounded). */
    size_t cache_capacity = 1u << 20;

    /** Seconds between periodic stats log lines to stderr; 0 = off. */
    int stats_log_period_s = 0;

    /** Where instruments live; tests may pass a private registry. */
    obs::Registry *registry = &obs::Registry::global();
};

/** The daemon. start() to serve, stop() to drain and halt. */
class Server
{
  public:
    Server(std::shared_ptr<const core::SnsPredictor> predictor,
           ServerOptions options);

    /** Stops (gracefully) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the listener; throws std::runtime_error
     * on bind/listen failure. */
    void start();

    /**
     * Graceful shutdown: stop accepting, drain the batcher (every
     * admitted request is answered), unblock and join every handler.
     * Idempotent.
     */
    void stop();

    bool running() const { return running_.load(); }

    /** Resolved TCP port (after start(); 0 for Unix sockets). */
    int port() const { return port_; }

    const ServerOptions &options() const { return options_; }

    /** The process-shared path cache (e.g. for tests/benchmarks). */
    perf::PathPredictionCache &cache() { return cache_; }

    /** The STATS text: obs render + cache counters, one `name value`
     * line each. */
    std::string statsText() const;

    /**
     * Load `directory` and stage it for an atomic swap before the
     * next batch (the RELOAD verb calls this; callable directly too).
     * Returns "" on success, else the load error message.
     */
    std::string stageReload(const std::string &directory);

  private:
    void listenLoop();
    void handleConnection(int fd);
    std::vector<uint8_t> handleRequest(const std::vector<uint8_t> &req);
    std::vector<uint8_t> handlePredict(WireReader &reader);
    std::vector<core::SnsPrediction>
    runBatch(const std::vector<const graphir::Graph *> &graphs);
    void logLoop();
    void closeListener();

    ServerOptions options_;

    /** Current + staged model, both swapped under model_mutex_; the
     * staged one goes live only on the executor thread, between
     * batches (runBatch), so batches never mix models. */
    std::mutex model_mutex_;
    std::shared_ptr<const core::SnsPredictor> predictor_;
    std::shared_ptr<const core::SnsPredictor> staged_predictor_;

    perf::PathPredictionCache cache_;
    std::unique_ptr<MicroBatcher> batcher_;

    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread listener_;
    std::thread logger_;
    std::mutex log_mutex_;
    std::condition_variable log_cv_;

    std::mutex conn_mutex_;
    std::unordered_set<int> open_fds_;
    std::vector<std::thread> handlers_;

    obs::Counter &connections_total_;
    obs::Counter &protocol_errors_;
    obs::Counter &reloads_total_;
};

} // namespace sns::serve

#endif // SNS_SERVE_SERVER_HH
