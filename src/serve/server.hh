/**
 * @file
 * sns-serve — the long-lived prediction daemon (docs/serving.md).
 *
 * One process holds one trained SnsPredictor, one shared
 * perf::PathPredictionCache, and one MicroBatcher. A listener thread
 * accepts Unix-domain or TCP connections; each connection gets a
 * handler thread that decodes frames, parses PREDICT design sources
 * into graphs, and submits tickets to the batcher. The batcher's
 * executor coalesces concurrent tickets into single predictBatch
 * calls, so N clients cost one padded Circuitformer pass per batch
 * instead of N process spin-ups — the PR 2 batch API and PR 3 warm
 * cache finally serve traffic the way the ROADMAP intends.
 *
 * Model lifecycle: RELOAD stages a freshly-loaded checkpoint; the
 * *executor* swaps it in between batches (an atomic pointer swap plus
 * a cache clear/re-bind), so no batch ever mixes models, no in-flight
 * request is dropped, and the shared cache can never serve stale
 * predictions — the fingerprint binding of path_cache.hh backstops
 * this at runtime. A checkpoint that fails to load is an ERROR reply,
 * never a dead daemon.
 *
 * Edit-loop sessions (protocol v2, docs/editloop.md): OPEN parses a
 * design and opens a core::SnsDesignSession; UPDATE diffs an edited
 * revision against it and re-predicts only affected paths. Sessions
 * are stateful and per-design, so they bypass the MicroBatcher and run
 * on the handler thread under a per-session mutex, against the current
 * live predictor. A session opened before a RELOAD is detected by its
 * model fingerprint and answered with a clean ERROR (re-open), never a
 * stale prediction. The table is bounded (max_sessions) and idle
 * sessions are TTL-evicted by the listener's poll loop.
 *
 * Shutdown: stop() (the SIGTERM path in tools/sns_serve.cc) stops
 * accepting, lets the batcher drain — every admitted request gets a
 * real answer, later submits get DRAINING — then unblocks and joins
 * every handler. Observability: counters, latency histograms, and
 * queue/cache gauges live in sns::obs; the STATS verb returns the
 * same rendering the CLI prints.
 */

#ifndef SNS_SERVE_SERVER_HH
#define SNS_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/design_session.hh"
#include "core/predictor.hh"
#include "obs/metrics.hh"
#include "perf/path_cache.hh"
#include "serve/batcher.hh"
#include "serve/protocol.hh"

namespace sns::serve {

/** Server configuration. */
struct ServerOptions
{
    /** Non-empty: listen on this Unix-domain socket path (unlinked on
     * bind and on stop). Empty: listen on TCP. */
    std::string unix_path;

    /** TCP listen address; port 0 binds an ephemeral port (read the
     * resolved one from Server::port()). */
    std::string tcp_host = "127.0.0.1";
    int tcp_port = 0;

    /** Micro-batching and admission control. */
    BatchOptions batch;

    /** Largest accepted request frame (a corrupt length prefix must
     * not become a giant allocation). */
    size_t max_frame_bytes = 16u << 20;

    /** Shared path-prediction cache capacity (entries; 0 unbounded). */
    size_t cache_capacity = 1u << 20;

    /** Seconds between periodic stats log lines to stderr; 0 = off. */
    int stats_log_period_s = 0;

    /** Idle seconds before an edit-loop session is evicted (its pinned
     * cache freed); 0 disables TTL eviction. Swept by the listener's
     * poll loop, so eviction lags the deadline by at most ~100 ms. */
    int session_ttl_s = 300;

    /** Maximum concurrently open sessions; OPEN beyond this is
     * answered OVERLOADED (each session pins an unbounded cache, so
     * the table must be bounded). */
    size_t max_sessions = 64;

    /** Where instruments live; tests may pass a private registry. */
    obs::Registry *registry = &obs::Registry::global();
};

/** The daemon. start() to serve, stop() to drain and halt. */
class Server
{
  public:
    Server(std::shared_ptr<const core::SnsPredictor> predictor,
           ServerOptions options);

    /** Stops (gracefully) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the listener; throws std::runtime_error
     * on bind/listen failure. */
    void start();

    /**
     * Graceful shutdown: stop accepting, drain the batcher (every
     * admitted request is answered), unblock and join every handler.
     * Idempotent.
     */
    void stop();

    bool running() const { return running_.load(); }

    /** Resolved TCP port (after start(); 0 for Unix sockets). */
    int port() const { return port_; }

    const ServerOptions &options() const { return options_; }

    /** The process-shared path cache (e.g. for tests/benchmarks). */
    perf::PathPredictionCache &cache() { return cache_; }

    /** The STATS text: obs render + cache counters, one `name value`
     * line each. */
    std::string statsText() const;

    /**
     * Load `directory` and stage it for an atomic swap before the
     * next batch (the RELOAD verb calls this; callable directly too).
     * Returns "" on success, else the load error message.
     */
    std::string stageReload(const std::string &directory);

    /** Live edit-loop sessions (the serve.sessions_open gauge). */
    size_t sessionsOpen() const;

    /**
     * Soft drain (the v4 DRAIN/RESUME verbs, docs/cluster.md): while
     * paused, new PREDICT/OPEN requests are refused with DRAINING but
     * everything already admitted — queued tickets, open sessions,
     * STATS/PING/RELOAD — keeps being answered. Unlike stop(), this is
     * reversible; a router re-hashes the worker's slice meanwhile.
     */
    void pauseAdmission(bool paused) { admission_paused_.store(paused); }
    bool admissionPaused() const { return admission_paused_.load(); }

  private:
    /** One edit-loop session and its bookkeeping. Handlers hold the
     * entry's shared_ptr while operating, so TTL eviction (which only
     * erases the table slot) can never free a session mid-update. */
    struct SessionEntry
    {
        std::mutex mutex; ///< one caller at a time per session
        core::SnsDesignSession session;
        /** steady_clock time_since_epoch ns; atomic because the TTL
         * sweep reads it under session_mutex_ while handlers write it
         * under the entry mutex. */
        std::atomic<int64_t> last_used_ns{0};
    };

    /** Per-connection protocol state (each handler thread owns its
     * connection's instance; no locking). */
    struct ConnectionState
    {
        /** Verbs beyond version 1 unlock only after HELLO. */
        uint32_t version = 1;
    };

    void listenLoop();
    void handleConnection(int fd);
    std::vector<uint8_t> handleRequest(const std::vector<uint8_t> &req,
                                       ConnectionState &conn);
    std::vector<uint8_t> handlePredict(WireReader &reader,
                                       const ConnectionState &conn);
    std::vector<uint8_t> handleOpen(WireReader &reader,
                                    const ConnectionState &conn);
    std::vector<uint8_t> handleUpdate(WireReader &reader,
                                      const ConnectionState &conn);
    std::vector<uint8_t> handleClose(WireReader &reader);
    /** The OPEN/UPDATE shared tail: predict `graph` through `entry`'s
     * session under its mutex at the requested tier and serialize the
     * OK reply (session id echoed only for OPEN). */
    std::vector<uint8_t> runSession(const std::shared_ptr<SessionEntry> &entry,
                                    const graphir::Graph &graph,
                                    core::Precision precision,
                                    uint64_t echo_session_id,
                                    bool include_session_id);
    void sweepSessions();
    std::vector<core::SnsPrediction>
    runBatch(const std::vector<const graphir::Graph *> &graphs,
             core::Precision precision);
    void logLoop();
    void closeListener();

    ServerOptions options_;

    /** Current + staged model, both swapped under model_mutex_; the
     * staged one goes live only on the executor thread, between
     * batches (runBatch), so batches never mix models. */
    std::mutex model_mutex_;
    std::shared_ptr<const core::SnsPredictor> predictor_;
    std::shared_ptr<const core::SnsPredictor> staged_predictor_;

    /** Shared PREDICT caches, one per numeric tier: the binding
     * fingerprint is precision-salted (predictionFingerprint), so one
     * cache can never hold both tiers' entries — int8 traffic gets
     * its own. Both are cleared on a model swap. */
    perf::PathPredictionCache cache_;
    perf::PathPredictionCache int8_cache_;
    std::unique_ptr<MicroBatcher> batcher_;

    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> admission_paused_{false};
    std::thread listener_;
    std::thread logger_;
    std::mutex log_mutex_;
    std::condition_variable log_cv_;

    std::mutex conn_mutex_;
    std::unordered_set<int> open_fds_;
    std::vector<std::thread> handlers_;

    mutable std::mutex session_mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<SessionEntry>> sessions_;
    std::atomic<uint64_t> next_session_id_{1};

    obs::Counter &connections_total_;
    obs::Counter &protocol_errors_;
    obs::Counter &reloads_total_;
    obs::Counter &session_opens_;
    obs::Counter &session_updates_;
    obs::Counter &session_closes_;
    obs::Counter &session_evicted_ttl_;
    obs::Counter &session_paths_reused_;
    obs::Counter &session_paths_recomputed_;
};

} // namespace sns::serve

#endif // SNS_SERVE_SERVER_HH
