/**
 * @file
 * Tape-based reverse-mode automatic differentiation.
 *
 * Variables wrap Tensors and record the operations that produced them;
 * backward() on a scalar loss walks the tape in reverse topological
 * order accumulating gradients. One engine serves every model in the
 * library: the Circuitformer, the Aggregation MLP, the SeqGAN, the
 * D-SAGE baseline, and the DianNao accuracy-study CNN.
 *
 * Design notes:
 *   - a result requires grad iff any input does; pure-inference chains
 *    record no tape at all,
 *   - backward closures receive the result node itself and reach inputs
 *     through it, so no reference cycles and no tensor copies,
 *   - gradients accumulate (+=), so shared sub-expressions are handled
 *     naturally and zeroGrad() is explicit.
 */

#ifndef SNS_TENSOR_AUTOGRAD_HH
#define SNS_TENSOR_AUTOGRAD_HH

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hh"

namespace sns::tensor {

namespace detail {

/** One tape node: a value, its gradient, and how to push grads back. */
struct VarImpl
{
    Tensor value;
    Tensor grad;
    bool requires_grad = false;
    bool grad_ready = false;
    std::vector<std::shared_ptr<VarImpl>> parents;
    /** Accumulates this node's grad into its parents' grads. */
    std::function<void(VarImpl &)> backward_fn;

    /** Grad tensor, allocated (zeroed) on first use. */
    Tensor &
    ensureGrad()
    {
        if (!grad_ready) {
            grad = Tensor(value.shape());
            grad_ready = true;
        }
        return grad;
    }
};

} // namespace detail

/** A differentiable tensor handle (shared, cheap to copy). */
class Variable
{
  public:
    /** An undefined variable. */
    Variable() = default;

    /** Wrap a tensor; set requires_grad for trainable parameters. */
    explicit Variable(Tensor value, bool requires_grad = false);

    /** True once a tensor has been attached. */
    bool defined() const { return impl_ != nullptr; }

    /** The forward value. */
    const Tensor &value() const;

    /** Mutable access to the value (optimizer updates). */
    Tensor &valueMutable();

    /** The accumulated gradient (undefined before backward()). */
    const Tensor &grad() const;

    /** True if a gradient has been accumulated since the last zero. */
    bool hasGrad() const;

    /** Whether this node participates in differentiation. */
    bool requiresGrad() const;

    /** Clear the accumulated gradient. */
    void zeroGrad();

    /** Scale the accumulated gradient in place (no-op without one). */
    void scaleGrad(double factor);

    /**
     * Run reverse-mode differentiation from this scalar (1-element)
     * variable, accumulating into every reachable requires-grad node.
     */
    void backward();

    /** Internal: the tape node. */
    const std::shared_ptr<detail::VarImpl> &impl() const { return impl_; }

  private:
    std::shared_ptr<detail::VarImpl> impl_;
};

/** Wrap a constant (non-differentiable) tensor. */
Variable constant(Tensor value);

/**
 * RAII scope that disables tape recording: ops inside compute values
 * only, regardless of inputs' requires_grad. Use for inference and for
 * sequence sampling, where building a graph would waste time and
 * memory.
 */
class NoGradGuard
{
  public:
    NoGradGuard();
    ~NoGradGuard();

    NoGradGuard(const NoGradGuard &) = delete;
    NoGradGuard &operator=(const NoGradGuard &) = delete;

    /** True when tape recording is currently enabled. */
    static bool gradEnabled();

  private:
    bool previous_;
};

/** @name Linear algebra
 * @{
 */
/** Matrix product: [m,k] x [k,n] -> [m,n]. */
Variable matmul(const Variable &a, const Variable &b);
/** Batched matrix product: [B,m,k] x [B,k,n] -> [B,m,n]. */
Variable bmm(const Variable &a, const Variable &b);
/** Batched product with transposed RHS: [B,m,k] x [B,n,k] -> [B,m,n]. */
Variable bmmTransB(const Variable &a, const Variable &b);
/** @} */

/** @name Elementwise and broadcast arithmetic
 * @{
 */
Variable add(const Variable &a, const Variable &b);
Variable sub(const Variable &a, const Variable &b);
Variable mul(const Variable &a, const Variable &b);
/** x + bias where bias is [D] and x is [..., D]. */
Variable addBias(const Variable &x, const Variable &bias);
Variable scale(const Variable &x, double factor);
Variable addScalar(const Variable &x, double value);
/** @} */

/** @name Nonlinearities
 * @{
 */
Variable relu(const Variable &x);
Variable gelu(const Variable &x);
Variable tanhOp(const Variable &x);
Variable sigmoidOp(const Variable &x);
Variable softmaxLastDim(const Variable &x);
/** @} */

/** Layer normalization over the last dimension. */
Variable layerNorm(const Variable &x, const Variable &gamma,
                   const Variable &beta, double eps = 1e-5);

/**
 * Row lookup: weight is [V, D]; ids index rows; the result has shape
 * out_shape + [D] where shapeNumel(out_shape) == ids.size().
 */
Variable embedding(const Variable &weight, const std::vector<int> &ids,
                   std::vector<int> out_shape);

/** @name Attention plumbing
 * @{
 */
/** [B, T, H*dh] -> [B*H, T, dh]. */
Variable splitHeads(const Variable &x, int heads);
/** [B*H, T, dh] -> [B, T, H*dh]. */
Variable mergeHeads(const Variable &x, int heads);
/**
 * Add -inf (approximately) to attention scores of padded key columns:
 * scores is [B*H, Tq, Tk], lengths[b] gives the valid prefix of batch
 * element b.
 */
Variable addKeyPaddingMask(const Variable &scores,
                           const std::vector<int> &lengths, int heads);
/** Mean over valid time steps: [B, T, D] with lengths -> [B, D]. */
Variable meanPoolMasked(const Variable &x, const std::vector<int> &lengths);
/** @} */

/** Inverted-dropout regularization (identity when !train or p == 0). */
Variable dropout(const Variable &x, double p, Rng &rng, bool train);

/** @name Reductions and losses
 * @{
 */
Variable sumAll(const Variable &x);
Variable meanAll(const Variable &x);
/** Mean squared error against a constant target. */
Variable mseLoss(const Variable &pred, const Tensor &target);
/** Binary cross-entropy on logits against constant 0/1 targets. */
Variable bceWithLogitsLoss(const Variable &logits, const Tensor &targets);
/**
 * Weighted negative log-likelihood of the labelled class:
 * -(1/B) * sum_b weight[b] * log softmax(logits[b])[label[b]].
 * With unit weights this is standard cross-entropy; with reward
 * weights it is the REINFORCE policy-gradient surrogate.
 */
Variable weightedNllLoss(const Variable &logits,
                         const std::vector<int> &labels,
                         const std::vector<float> &weights);
/** Standard cross-entropy over logits [B, C]. */
Variable crossEntropyLoss(const Variable &logits,
                          const std::vector<int> &labels);
/** @} */

/**
 * Grouped row means: x is [N, D]; groups[g] lists row indices of group
 * g; the result is [G, D] with row g the mean of the selected rows (a
 * zero row for an empty group). This is the message-passing primitive
 * of mean-aggregator GNNs (GraphSAGE).
 */
Variable gatherMeanRows(const Variable &x,
                        const std::vector<std::vector<int>> &groups);

/**
 * im2col for 2-D convolution: x is [B, H*W*C] (HWC rows);
 * the result is [B*OH*OW, KH*KW*C] where each output row holds the
 * receptive field of one output position (stride 1, zero padding
 * `pad`). Convolution is then a matmul with a [C*KH*KW, F] filter
 * matrix of shape [KH*KW*C, F].
 */
Variable im2col(const Variable &x, int channels, int height, int width,
                int kernel_h, int kernel_w, int pad);

/**
 * 2x2 average pooling with stride 2 on HWC images: x is [B, H*W*C];
 * the result is [B, (H/2)*(W/2)*C] (H and W must be even).
 */
Variable avgPool2x2(const Variable &x, int channels, int height,
                    int width);

/** Tape-aware reshape (element count preserved, row-major layout). */
Variable reshape(const Variable &x, std::vector<int> shape);

/** Concatenate two 2-D variables along the last dimension. */
Variable concatCols(const Variable &a, const Variable &b);

/** Select one row of a 2-D variable as a [1, D] result. */
Variable row(const Variable &x, int index);

} // namespace sns::tensor

#endif // SNS_TENSOR_AUTOGRAD_HH
