#include "tensor/autograd.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/gemm.hh"
#include "verify/diagnostics.hh"

namespace sns::tensor {

using detail::VarImpl;

namespace {

/**
 * Debug-mode tensor sentinel (rule T-NONFINITE): scan a tensor for
 * NaN/Inf at an autograd boundary. Active only when
 * verify::tensorSentinelEnabled(); the scan is O(numel), which is why
 * it is opt-in rather than always-on.
 */
void
sentinelScan(const Tensor &tensor, const std::string &where)
{
    if (!verify::tensorSentinelEnabled())
        return;
    for (size_t i = 0; i < tensor.numel(); ++i) {
        if (std::isfinite(tensor[i]))
            continue;
        verify::Report report;
        report.error(verify::rules::kTensorNotFinite,
                     where + " " + tensor.shapeString(),
                     "non-finite value at flat index " + std::to_string(i),
                     "enable SNS_TENSOR_SENTINEL earlier in the pipeline "
                     "to find where the NaN/Inf is first produced");
        verify::enforce(std::move(report), "tensor sentinel");
        return; // Count mode: one diagnostic per tensor is enough.
    }
}

} // namespace

Variable::Variable(Tensor value, bool requires_grad)
{
    impl_ = std::make_shared<VarImpl>();
    impl_->value = std::move(value);
    impl_->requires_grad = requires_grad;
}

const Tensor &
Variable::value() const
{
    SNS_ASSERT(impl_, "value() on undefined Variable");
    return impl_->value;
}

Tensor &
Variable::valueMutable()
{
    SNS_ASSERT(impl_, "valueMutable() on undefined Variable");
    return impl_->value;
}

const Tensor &
Variable::grad() const
{
    SNS_ASSERT(impl_ && impl_->grad_ready, "grad() before backward()");
    return impl_->grad;
}

bool
Variable::hasGrad() const
{
    return impl_ && impl_->grad_ready;
}

bool
Variable::requiresGrad() const
{
    return impl_ && impl_->requires_grad;
}

void
Variable::zeroGrad()
{
    if (impl_ && impl_->grad_ready)
        impl_->grad.fill(0.0f);
}

void
Variable::scaleGrad(double factor)
{
    if (impl_ && impl_->grad_ready)
        impl_->grad.scaleInPlace(static_cast<float>(factor));
}

void
Variable::backward()
{
    SNS_ASSERT(impl_, "backward() on undefined Variable");
    SNS_ASSERT(impl_->value.numel() == 1,
               "backward() must start from a scalar, got shape ",
               impl_->value.shapeString());

    // Iterative DFS postorder; reversed it is a topological order with
    // the root first, so every node's gradient is complete before the
    // node pushes it into its parents.
    std::vector<VarImpl *> postorder;
    std::unordered_set<VarImpl *> visited;
    std::vector<std::pair<VarImpl *, size_t>> stack;
    stack.emplace_back(impl_.get(), 0);
    visited.insert(impl_.get());
    while (!stack.empty()) {
        auto &[node, idx] = stack.back();
        if (idx < node->parents.size()) {
            VarImpl *parent = node->parents[idx++].get();
            if (!visited.count(parent)) {
                visited.insert(parent);
                stack.emplace_back(parent, 0);
            }
        } else {
            postorder.push_back(node);
            stack.pop_back();
        }
    }

    impl_->ensureGrad().fill(1.0f);
    const bool sentinel = verify::tensorSentinelEnabled();
    for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
        VarImpl *node = *it;
        if (!node->backward_fn || !node->grad_ready)
            continue;
        if (sentinel) {
            // Shape drift between a value and its gradient corrupts
            // every accumulation downstream of this node (T-SHAPE).
            if (!node->grad.sameShape(node->value)) {
                verify::Report report;
                report.error(verify::rules::kTensorShape,
                             "backward node " + node->value.shapeString(),
                             "gradient shape " + node->grad.shapeString() +
                                 " does not match value shape",
                             "check the op's backward closure");
                verify::enforce(std::move(report), "tensor sentinel");
            }
            sentinelScan(node->grad, "gradient");
        }
        node->backward_fn(*node);
    }
}

Variable
constant(Tensor value)
{
    return Variable(std::move(value), false);
}

namespace {

thread_local bool grad_mode_enabled = true;

} // namespace

NoGradGuard::NoGradGuard() : previous_(grad_mode_enabled)
{
    grad_mode_enabled = false;
}

NoGradGuard::~NoGradGuard()
{
    grad_mode_enabled = previous_;
}

bool
NoGradGuard::gradEnabled()
{
    return grad_mode_enabled;
}

namespace {

/** Build a result node wired to its inputs with a backward closure. */
Variable
makeNode(Tensor value, const std::vector<Variable> &inputs,
         std::function<void(VarImpl &)> backward_fn)
{
    bool needs_grad = false;
    for (const auto &input : inputs) {
        SNS_ASSERT(input.defined(), "op on undefined Variable");
        needs_grad |= input.requiresGrad();
    }
    needs_grad &= grad_mode_enabled;
    Variable result(std::move(value), needs_grad);
    sentinelScan(result.value(), "op result");
    if (needs_grad) {
        auto &impl = *result.impl();
        impl.parents.reserve(inputs.size());
        for (const auto &input : inputs)
            impl.parents.push_back(input.impl());
        impl.backward_fn = std::move(backward_fn);
    }
    return result;
}

/** Accumulate src into parent's grad if it participates. */
void
accumulate(VarImpl &parent, const Tensor &delta)
{
    if (parent.requires_grad || !parent.parents.empty())
        parent.ensureGrad().addScaled(delta, 1.0f);
}

bool
wantsGrad(const VarImpl &node)
{
    return node.requires_grad || !node.parents.empty();
}

} // namespace

Variable
matmul(const Variable &a, const Variable &b)
{
    const Tensor &av = a.value();
    const Tensor &bv = b.value();
    SNS_ASSERT(av.ndim() == 2 && bv.ndim() == 2 && av.dim(1) == bv.dim(0),
               "matmul shape mismatch: ", av.shapeString(), " x ",
               bv.shapeString());
    const int m = av.dim(0);
    const int k = av.dim(1);
    const int n = bv.dim(1);

    Tensor out({m, n});
    gemmAcc(av.data(), bv.data(), out.data(), m, n, k, false, false);

    return makeNode(std::move(out), {a, b}, [m, n, k](VarImpl &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        if (wantsGrad(pa)) {
            // dA = dC * B^T : [m,n] x [k,n]^T.
            gemmAcc(self.grad.data(), pb.value.data(),
                    pa.ensureGrad().data(), m, k, n, false, true);
        }
        if (wantsGrad(pb)) {
            // dB = A^T * dC : [m,k]^T x [m,n].
            gemmAcc(pa.value.data(), self.grad.data(),
                    pb.ensureGrad().data(), k, n, m, true, false);
        }
    });
}

namespace {

Variable
bmmImpl(const Variable &a, const Variable &b, bool trans_b)
{
    const Tensor &av = a.value();
    const Tensor &bv = b.value();
    SNS_ASSERT(av.ndim() == 3 && bv.ndim() == 3 && av.dim(0) == bv.dim(0),
               "bmm batch mismatch");
    const int batches = av.dim(0);
    const int m = av.dim(1);
    const int k = av.dim(2);
    const int n = trans_b ? bv.dim(1) : bv.dim(2);
    SNS_ASSERT(trans_b ? bv.dim(2) == k : bv.dim(1) == k,
               "bmm inner-dimension mismatch");

    Tensor out({batches, m, n});
    const size_t a_stride = static_cast<size_t>(m) * k;
    const size_t b_stride = static_cast<size_t>(bv.dim(1)) * bv.dim(2);
    const size_t c_stride = static_cast<size_t>(m) * n;
    for (int i = 0; i < batches; ++i) {
        gemmAcc(av.data() + i * a_stride, bv.data() + i * b_stride,
                out.data() + i * c_stride, m, n, k, false, trans_b);
    }

    return makeNode(
        std::move(out), {a, b},
        [batches, m, n, k, a_stride, b_stride, c_stride,
         trans_b](VarImpl &self) {
            auto &pa = *self.parents[0];
            auto &pb = *self.parents[1];
            for (int i = 0; i < batches; ++i) {
                const float *dc = self.grad.data() + i * c_stride;
                if (wantsGrad(pa)) {
                    float *da = pa.ensureGrad().data() + i * a_stride;
                    const float *bvp = pb.value.data() + i * b_stride;
                    // !trans_b: dA = dC * B^T; trans_b: dA = dC * B.
                    gemmAcc(dc, bvp, da, m, k, n, false, !trans_b);
                }
                if (wantsGrad(pb)) {
                    float *db = pb.ensureGrad().data() + i * b_stride;
                    const float *avp = pa.value.data() + i * a_stride;
                    if (!trans_b) {
                        // dB = A^T * dC : [k,n].
                        gemmAcc(avp, dc, db, k, n, m, true, false);
                    } else {
                        // B is [n,k]; dB = dC^T * A : [n,m] x [m,k].
                        gemmAcc(dc, avp, db, n, k, m, true, false);
                    }
                }
            }
        });
}

} // namespace

Variable
bmm(const Variable &a, const Variable &b)
{
    return bmmImpl(a, b, false);
}

Variable
bmmTransB(const Variable &a, const Variable &b)
{
    return bmmImpl(a, b, true);
}

Variable
add(const Variable &a, const Variable &b)
{
    SNS_ASSERT(a.value().sameShape(b.value()), "add shape mismatch");
    Tensor out = a.value();
    out.addScaled(b.value(), 1.0f);
    return makeNode(std::move(out), {a, b}, [](VarImpl &self) {
        accumulate(*self.parents[0], self.grad);
        accumulate(*self.parents[1], self.grad);
    });
}

Variable
sub(const Variable &a, const Variable &b)
{
    SNS_ASSERT(a.value().sameShape(b.value()), "sub shape mismatch");
    Tensor out = a.value();
    out.addScaled(b.value(), -1.0f);
    return makeNode(std::move(out), {a, b}, [](VarImpl &self) {
        accumulate(*self.parents[0], self.grad);
        auto &pb = *self.parents[1];
        if (wantsGrad(pb))
            pb.ensureGrad().addScaled(self.grad, -1.0f);
    });
}

Variable
mul(const Variable &a, const Variable &b)
{
    SNS_ASSERT(a.value().sameShape(b.value()), "mul shape mismatch");
    Tensor out = a.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] *= b.value()[i];
    return makeNode(std::move(out), {a, b}, [](VarImpl &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        if (wantsGrad(pa)) {
            Tensor &da = pa.ensureGrad();
            for (size_t i = 0; i < da.numel(); ++i)
                da[i] += self.grad[i] * pb.value[i];
        }
        if (wantsGrad(pb)) {
            Tensor &db = pb.ensureGrad();
            for (size_t i = 0; i < db.numel(); ++i)
                db[i] += self.grad[i] * pa.value[i];
        }
    });
}

Variable
addBias(const Variable &x, const Variable &bias)
{
    const Tensor &xv = x.value();
    const Tensor &bv = bias.value();
    SNS_ASSERT(bv.ndim() == 1, "bias must be 1-D");
    const int d = bv.dim(0);
    SNS_ASSERT(xv.dim(xv.ndim() - 1) == d, "bias width mismatch");
    const size_t rows = xv.numel() / d;

    Tensor out = xv;
    for (size_t r = 0; r < rows; ++r) {
        float *dst = out.data() + r * d;
        for (int j = 0; j < d; ++j)
            dst[j] += bv[j];
    }
    return makeNode(std::move(out), {x, bias}, [rows, d](VarImpl &self) {
        accumulate(*self.parents[0], self.grad);
        auto &pb = *self.parents[1];
        if (wantsGrad(pb)) {
            Tensor &db = pb.ensureGrad();
            for (size_t r = 0; r < rows; ++r) {
                const float *src = self.grad.data() + r * d;
                for (int j = 0; j < d; ++j)
                    db[j] += src[j];
            }
        }
    });
}

Variable
scale(const Variable &x, double factor)
{
    Tensor out = x.value();
    out.scaleInPlace(static_cast<float>(factor));
    return makeNode(std::move(out), {x}, [factor](VarImpl &self) {
        auto &px = *self.parents[0];
        if (wantsGrad(px)) {
            px.ensureGrad().addScaled(self.grad,
                                      static_cast<float>(factor));
        }
    });
}

Variable
addScalar(const Variable &x, double value)
{
    Tensor out = x.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] += static_cast<float>(value);
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        accumulate(*self.parents[0], self.grad);
    });
}

Variable
relu(const Variable &x)
{
    Tensor out = x.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] = std::max(out[i], 0.0f);
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t i = 0; i < dx.numel(); ++i) {
            if (px.value[i] > 0.0f)
                dx[i] += self.grad[i];
        }
    });
}

namespace {

// tanh-approximation GELU and its derivative.
float
geluForward(float v)
{
    const float c = 0.7978845608f; // sqrt(2/pi)
    const float inner = c * (v + 0.044715f * v * v * v);
    return 0.5f * v * (1.0f + std::tanh(inner));
}

float
geluBackward(float v)
{
    const float c = 0.7978845608f;
    const float inner = c * (v + 0.044715f * v * v * v);
    const float t = std::tanh(inner);
    const float sech2 = 1.0f - t * t;
    return 0.5f * (1.0f + t) +
           0.5f * v * sech2 * c * (1.0f + 3.0f * 0.044715f * v * v);
}

} // namespace

Variable
gelu(const Variable &x)
{
    Tensor out = x.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] = geluForward(out[i]);
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t i = 0; i < dx.numel(); ++i)
            dx[i] += self.grad[i] * geluBackward(px.value[i]);
    });
}

Variable
tanhOp(const Variable &x)
{
    Tensor out = x.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] = std::tanh(out[i]);
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t i = 0; i < dx.numel(); ++i) {
            const float y = self.value[i];
            dx[i] += self.grad[i] * (1.0f - y * y);
        }
    });
}

Variable
sigmoidOp(const Variable &x)
{
    Tensor out = x.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] = 1.0f / (1.0f + std::exp(-out[i]));
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t i = 0; i < dx.numel(); ++i) {
            const float y = self.value[i];
            dx[i] += self.grad[i] * y * (1.0f - y);
        }
    });
}

Variable
softmaxLastDim(const Variable &x)
{
    const Tensor &xv = x.value();
    const int d = xv.dim(xv.ndim() - 1);
    const size_t rows = xv.numel() / d;

    Tensor out = xv;
    for (size_t r = 0; r < rows; ++r) {
        float *row_data = out.data() + r * d;
        float max_val = row_data[0];
        for (int j = 1; j < d; ++j)
            max_val = std::max(max_val, row_data[j]);
        float total = 0.0f;
        for (int j = 0; j < d; ++j) {
            row_data[j] = std::exp(row_data[j] - max_val);
            total += row_data[j];
        }
        const float inv = 1.0f / total;
        for (int j = 0; j < d; ++j)
            row_data[j] *= inv;
    }
    return makeNode(std::move(out), {x}, [rows, d](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t r = 0; r < rows; ++r) {
            const float *y = self.value.data() + r * d;
            const float *dy = self.grad.data() + r * d;
            float dot = 0.0f;
            for (int j = 0; j < d; ++j)
                dot += y[j] * dy[j];
            float *dst = dx.data() + r * d;
            for (int j = 0; j < d; ++j)
                dst[j] += y[j] * (dy[j] - dot);
        }
    });
}

Variable
layerNorm(const Variable &x, const Variable &gamma, const Variable &beta,
          double eps)
{
    const Tensor &xv = x.value();
    const int d = xv.dim(xv.ndim() - 1);
    SNS_ASSERT(gamma.value().numel() == size_t(d) &&
                   beta.value().numel() == size_t(d),
               "layerNorm parameter size mismatch");
    const size_t rows = xv.numel() / d;

    Tensor out(xv.shape());
    std::vector<float> mean(rows);
    std::vector<float> inv_std(rows);
    for (size_t r = 0; r < rows; ++r) {
        const float *src = xv.data() + r * d;
        float mu = 0.0f;
        for (int j = 0; j < d; ++j)
            mu += src[j];
        mu /= d;
        float var = 0.0f;
        for (int j = 0; j < d; ++j) {
            const float delta = src[j] - mu;
            var += delta * delta;
        }
        var /= d;
        const float inv = 1.0f / std::sqrt(var + static_cast<float>(eps));
        mean[r] = mu;
        inv_std[r] = inv;
        float *dst = out.data() + r * d;
        const float *g = gamma.value().data();
        const float *bb = beta.value().data();
        for (int j = 0; j < d; ++j)
            dst[j] = (src[j] - mu) * inv * g[j] + bb[j];
    }

    return makeNode(
        std::move(out), {x, gamma, beta},
        [rows, d, mean = std::move(mean),
         inv_std = std::move(inv_std)](VarImpl &self) {
            auto &px = *self.parents[0];
            auto &pg = *self.parents[1];
            auto &pb = *self.parents[2];
            const float *g = pg.value.data();
            for (size_t r = 0; r < rows; ++r) {
                const float *src = px.value.data() + r * d;
                const float *dy = self.grad.data() + r * d;
                const float mu = mean[r];
                const float inv = inv_std[r];

                if (wantsGrad(pg) || wantsGrad(pb)) {
                    Tensor &dgamma = pg.ensureGrad();
                    Tensor &dbeta = pb.ensureGrad();
                    for (int j = 0; j < d; ++j) {
                        const float xhat = (src[j] - mu) * inv;
                        if (wantsGrad(pg))
                            dgamma[j] += dy[j] * xhat;
                        if (wantsGrad(pb))
                            dbeta[j] += dy[j];
                    }
                }
                if (wantsGrad(px)) {
                    // dx = inv * (dxhat - mean(dxhat)
                    //             - xhat * mean(dxhat * xhat)).
                    float sum_dxhat = 0.0f;
                    float sum_dxhat_xhat = 0.0f;
                    for (int j = 0; j < d; ++j) {
                        const float xhat = (src[j] - mu) * inv;
                        const float dxhat = dy[j] * g[j];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                    }
                    const float m1 = sum_dxhat / d;
                    const float m2 = sum_dxhat_xhat / d;
                    Tensor &dx = px.ensureGrad();
                    float *dst = dx.data() + r * d;
                    for (int j = 0; j < d; ++j) {
                        const float xhat = (src[j] - mu) * inv;
                        const float dxhat = dy[j] * g[j];
                        dst[j] += inv * (dxhat - m1 - xhat * m2);
                    }
                }
            }
        });
}

Variable
embedding(const Variable &weight, const std::vector<int> &ids,
          std::vector<int> out_shape)
{
    const Tensor &wv = weight.value();
    SNS_ASSERT(wv.ndim() == 2, "embedding weight must be [V, D]");
    const int vocab = wv.dim(0);
    const int d = wv.dim(1);
    SNS_ASSERT(shapeNumel(out_shape) == ids.size(),
               "embedding out_shape / ids mismatch");

    out_shape.push_back(d);
    Tensor out(out_shape);
    for (size_t i = 0; i < ids.size(); ++i) {
        SNS_ASSERT(ids[i] >= 0 && ids[i] < vocab,
                   "embedding id out of range: ", ids[i]);
        const float *src = wv.data() + static_cast<size_t>(ids[i]) * d;
        float *dst = out.data() + i * d;
        std::copy(src, src + d, dst);
    }
    return makeNode(std::move(out), {weight}, [ids, d](VarImpl &self) {
        auto &pw = *self.parents[0];
        if (!wantsGrad(pw))
            return;
        Tensor &dw = pw.ensureGrad();
        for (size_t i = 0; i < ids.size(); ++i) {
            const float *src = self.grad.data() + i * d;
            float *dst = dw.data() + static_cast<size_t>(ids[i]) * d;
            for (int j = 0; j < d; ++j)
                dst[j] += src[j];
        }
    });
}

Variable
splitHeads(const Variable &x, int heads)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 3, "splitHeads input must be [B, T, D]");
    const int b = xv.dim(0);
    const int t = xv.dim(1);
    const int d = xv.dim(2);
    SNS_ASSERT(d % heads == 0, "model width not divisible by heads");
    const int dh = d / heads;

    Tensor out({b * heads, t, dh});
    for (int bi = 0; bi < b; ++bi) {
        for (int ti = 0; ti < t; ++ti) {
            const float *src = xv.data() +
                               (static_cast<size_t>(bi) * t + ti) * d;
            for (int h = 0; h < heads; ++h) {
                float *dst =
                    out.data() +
                    ((static_cast<size_t>(bi) * heads + h) * t + ti) * dh;
                std::copy(src + h * dh, src + (h + 1) * dh, dst);
            }
        }
    }
    return makeNode(std::move(out), {x}, [b, t, d, dh,
                                          heads](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (int bi = 0; bi < b; ++bi) {
            for (int ti = 0; ti < t; ++ti) {
                float *dst = dx.data() +
                             (static_cast<size_t>(bi) * t + ti) * d;
                for (int h = 0; h < heads; ++h) {
                    const float *src =
                        self.grad.data() +
                        ((static_cast<size_t>(bi) * heads + h) * t + ti) *
                            dh;
                    for (int j = 0; j < dh; ++j)
                        dst[h * dh + j] += src[j];
                }
            }
        }
    });
}

Variable
mergeHeads(const Variable &x, int heads)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 3, "mergeHeads input must be [B*H, T, dh]");
    SNS_ASSERT(xv.dim(0) % heads == 0, "batch not divisible by heads");
    const int b = xv.dim(0) / heads;
    const int t = xv.dim(1);
    const int dh = xv.dim(2);
    const int d = dh * heads;

    Tensor out({b, t, d});
    for (int bi = 0; bi < b; ++bi) {
        for (int ti = 0; ti < t; ++ti) {
            float *dst = out.data() +
                         (static_cast<size_t>(bi) * t + ti) * d;
            for (int h = 0; h < heads; ++h) {
                const float *src =
                    xv.data() +
                    ((static_cast<size_t>(bi) * heads + h) * t + ti) * dh;
                std::copy(src, src + dh, dst + h * dh);
            }
        }
    }
    return makeNode(std::move(out), {x}, [b, t, d, dh,
                                          heads](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (int bi = 0; bi < b; ++bi) {
            for (int ti = 0; ti < t; ++ti) {
                const float *src = self.grad.data() +
                                   (static_cast<size_t>(bi) * t + ti) * d;
                for (int h = 0; h < heads; ++h) {
                    float *dst =
                        dx.data() +
                        ((static_cast<size_t>(bi) * heads + h) * t + ti) *
                            dh;
                    for (int j = 0; j < dh; ++j)
                        dst[j] += src[h * dh + j];
                }
            }
        }
    });
}

Variable
addKeyPaddingMask(const Variable &scores, const std::vector<int> &lengths,
                  int heads)
{
    const Tensor &sv = scores.value();
    SNS_ASSERT(sv.ndim() == 3, "scores must be [B*H, Tq, Tk]");
    const int bh = sv.dim(0);
    const int tq = sv.dim(1);
    const int tk = sv.dim(2);
    SNS_ASSERT(bh % heads == 0 &&
                   lengths.size() == static_cast<size_t>(bh / heads),
               "mask length batch mismatch");
    constexpr float kNegInf = -1e9f;

    Tensor out = sv;
    for (int i = 0; i < bh; ++i) {
        const int len = lengths[i / heads];
        for (int q = 0; q < tq; ++q) {
            float *row_data = out.data() +
                              (static_cast<size_t>(i) * tq + q) * tk;
            for (int j = len; j < tk; ++j)
                row_data[j] = kNegInf;
        }
    }
    // The mask is constant; grads flow through unmasked entries only.
    return makeNode(std::move(out), {scores},
                    [bh, tq, tk, heads, lengths](VarImpl &self) {
                        auto &ps = *self.parents[0];
                        if (!wantsGrad(ps))
                            return;
                        Tensor &dx = ps.ensureGrad();
                        for (int i = 0; i < bh; ++i) {
                            const int len = lengths[i / heads];
                            for (int q = 0; q < tq; ++q) {
                                const size_t base =
                                    (static_cast<size_t>(i) * tq + q) * tk;
                                for (int j = 0; j < len; ++j)
                                    dx[base + j] += self.grad[base + j];
                            }
                        }
                    });
}

Variable
meanPoolMasked(const Variable &x, const std::vector<int> &lengths)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 3, "meanPoolMasked input must be [B, T, D]");
    const int b = xv.dim(0);
    const int t = xv.dim(1);
    const int d = xv.dim(2);
    SNS_ASSERT(lengths.size() == static_cast<size_t>(b),
               "lengths batch mismatch");

    Tensor out({b, d});
    for (int bi = 0; bi < b; ++bi) {
        const int len = std::max(1, std::min(lengths[bi], t));
        float *dst = out.data() + static_cast<size_t>(bi) * d;
        for (int ti = 0; ti < len; ++ti) {
            const float *src = xv.data() +
                               (static_cast<size_t>(bi) * t + ti) * d;
            for (int j = 0; j < d; ++j)
                dst[j] += src[j];
        }
        const float inv = 1.0f / len;
        for (int j = 0; j < d; ++j)
            dst[j] *= inv;
    }
    return makeNode(std::move(out), {x}, [b, t, d, lengths](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (int bi = 0; bi < b; ++bi) {
            const int len = std::max(1, std::min(lengths[bi], t));
            const float inv = 1.0f / len;
            const float *dy = self.grad.data() + static_cast<size_t>(bi) * d;
            for (int ti = 0; ti < len; ++ti) {
                float *dst = dx.data() +
                             (static_cast<size_t>(bi) * t + ti) * d;
                for (int j = 0; j < d; ++j)
                    dst[j] += dy[j] * inv;
            }
        }
    });
}

Variable
dropout(const Variable &x, double p, Rng &rng, bool train)
{
    if (!train || p <= 0.0)
        return x;
    SNS_ASSERT(p < 1.0, "dropout probability must be < 1");
    const float keep = static_cast<float>(1.0 - p);
    Tensor mask(x.value().shape());
    for (size_t i = 0; i < mask.numel(); ++i)
        mask[i] = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;

    Tensor out = x.value();
    for (size_t i = 0; i < out.numel(); ++i)
        out[i] *= mask[i];
    return makeNode(std::move(out), {x},
                    [mask = std::move(mask)](VarImpl &self) {
                        auto &px = *self.parents[0];
                        if (!wantsGrad(px))
                            return;
                        Tensor &dx = px.ensureGrad();
                        for (size_t i = 0; i < dx.numel(); ++i)
                            dx[i] += self.grad[i] * mask[i];
                    });
}

Variable
sumAll(const Variable &x)
{
    Tensor out = Tensor::scalar(static_cast<float>(x.value().sum()));
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px)) {
            return;
        }
        Tensor &dx = px.ensureGrad();
        const float g = self.grad[0];
        for (size_t i = 0; i < dx.numel(); ++i)
            dx[i] += g;
    });
}

Variable
meanAll(const Variable &x)
{
    const double inv = 1.0 / static_cast<double>(x.value().numel());
    return scale(sumAll(x), inv);
}

Variable
mseLoss(const Variable &pred, const Tensor &target)
{
    const Tensor &pv = pred.value();
    SNS_ASSERT(pv.sameShape(target), "mseLoss shape mismatch");
    const size_t n = pv.numel();
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double err = pv[i] - target[i];
        total += err * err;
    }
    Tensor out = Tensor::scalar(static_cast<float>(total / n));
    return makeNode(std::move(out), {pred}, [target, n](VarImpl &self) {
        auto &pp = *self.parents[0];
        if (!wantsGrad(pp))
            return;
        Tensor &dp = pp.ensureGrad();
        const float g = self.grad[0] * 2.0f / static_cast<float>(n);
        for (size_t i = 0; i < n; ++i)
            dp[i] += g * (pp.value[i] - target[i]);
    });
}

Variable
bceWithLogitsLoss(const Variable &logits, const Tensor &targets)
{
    const Tensor &zv = logits.value();
    SNS_ASSERT(zv.sameShape(targets), "bce shape mismatch");
    const size_t n = zv.numel();
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double z = zv[i];
        const double t = targets[i];
        total += std::max(z, 0.0) - z * t + std::log1p(std::exp(-std::abs(z)));
    }
    Tensor out = Tensor::scalar(static_cast<float>(total / n));
    return makeNode(std::move(out), {logits}, [targets, n](VarImpl &self) {
        auto &pz = *self.parents[0];
        if (!wantsGrad(pz))
            return;
        Tensor &dz = pz.ensureGrad();
        const float g = self.grad[0] / static_cast<float>(n);
        for (size_t i = 0; i < n; ++i) {
            const float s = 1.0f / (1.0f + std::exp(-pz.value[i]));
            dz[i] += g * (s - targets[i]);
        }
    });
}

Variable
weightedNllLoss(const Variable &logits, const std::vector<int> &labels,
                const std::vector<float> &weights)
{
    const Tensor &zv = logits.value();
    SNS_ASSERT(zv.ndim() == 2, "weightedNllLoss logits must be [B, C]");
    const int b = zv.dim(0);
    const int c = zv.dim(1);
    SNS_ASSERT(labels.size() == static_cast<size_t>(b) &&
                   weights.size() == static_cast<size_t>(b),
               "labels/weights batch mismatch");

    // Stable log-softmax rows; save the softmax for backward.
    std::vector<float> probs(static_cast<size_t>(b) * c);
    double total = 0.0;
    for (int i = 0; i < b; ++i) {
        const float *row_data = zv.data() + static_cast<size_t>(i) * c;
        float max_val = row_data[0];
        for (int j = 1; j < c; ++j)
            max_val = std::max(max_val, row_data[j]);
        double lse = 0.0;
        for (int j = 0; j < c; ++j)
            lse += std::exp(row_data[j] - max_val);
        lse = std::log(lse) + max_val;
        SNS_ASSERT(labels[i] >= 0 && labels[i] < c, "label out of range");
        total += weights[i] * (lse - row_data[labels[i]]);
        float *prow = probs.data() + static_cast<size_t>(i) * c;
        for (int j = 0; j < c; ++j)
            prow[j] = std::exp(row_data[j] - static_cast<float>(lse));
    }
    Tensor out = Tensor::scalar(static_cast<float>(total / b));
    return makeNode(std::move(out), {logits},
                    [labels, weights, probs = std::move(probs), b,
                     c](VarImpl &self) {
                        auto &pz = *self.parents[0];
                        if (!wantsGrad(pz))
                            return;
                        Tensor &dz = pz.ensureGrad();
                        const float g = self.grad[0] / static_cast<float>(b);
                        for (int i = 0; i < b; ++i) {
                            const float w = weights[i] * g;
                            const float *prow =
                                probs.data() + static_cast<size_t>(i) * c;
                            float *drow =
                                dz.data() + static_cast<size_t>(i) * c;
                            for (int j = 0; j < c; ++j)
                                drow[j] += w * prow[j];
                            drow[labels[i]] -= w;
                        }
                    });
}

Variable
crossEntropyLoss(const Variable &logits, const std::vector<int> &labels)
{
    return weightedNllLoss(logits, labels,
                           std::vector<float>(labels.size(), 1.0f));
}

Variable
gatherMeanRows(const Variable &x,
               const std::vector<std::vector<int>> &groups)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 2, "gatherMeanRows input must be [N, D]");
    const int n = xv.dim(0);
    const int d = xv.dim(1);
    const int g = static_cast<int>(groups.size());

    Tensor out({g, d});
    for (int gi = 0; gi < g; ++gi) {
        if (groups[gi].empty())
            continue;
        float *dst = out.data() + static_cast<size_t>(gi) * d;
        for (int row_idx : groups[gi]) {
            SNS_ASSERT(row_idx >= 0 && row_idx < n,
                       "gatherMeanRows index out of range");
            const float *src =
                xv.data() + static_cast<size_t>(row_idx) * d;
            for (int j = 0; j < d; ++j)
                dst[j] += src[j];
        }
        const float inv = 1.0f / static_cast<float>(groups[gi].size());
        for (int j = 0; j < d; ++j)
            dst[j] *= inv;
    }
    return makeNode(std::move(out), {x}, [groups, d](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            if (groups[gi].empty())
                continue;
            const float inv = 1.0f / static_cast<float>(groups[gi].size());
            const float *dy = self.grad.data() + gi * d;
            for (int row_idx : groups[gi]) {
                float *dst = dx.data() + static_cast<size_t>(row_idx) * d;
                for (int j = 0; j < d; ++j)
                    dst[j] += dy[j] * inv;
            }
        }
    });
}

Variable
im2col(const Variable &x, int channels, int height, int width,
       int kernel_h, int kernel_w, int pad)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 2 &&
                   xv.dim(1) == channels * height * width,
               "im2col input must be [B, C*H*W]");
    const int batch = xv.dim(0);
    const int out_h = height + 2 * pad - kernel_h + 1;
    const int out_w = width + 2 * pad - kernel_w + 1;
    SNS_ASSERT(out_h > 0 && out_w > 0, "kernel larger than padded input");
    const int cols = channels * kernel_h * kernel_w;

    // Precompute the source index (or -1 for padding) of every output
    // element of one batch row; forward and backward both replay it.
    // Images are HWC (position-major, channel-last), so convolution
    // chains compose without layout shuffles.
    std::vector<int> mapping(
        static_cast<size_t>(out_h) * out_w * cols, -1);
    {
        size_t slot = 0;
        for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
                for (int ky = 0; ky < kernel_h; ++ky) {
                    for (int kx = 0; kx < kernel_w; ++kx) {
                        for (int c = 0; c < channels; ++c) {
                            const int iy = oy + ky - pad;
                            const int ix = ox + kx - pad;
                            if (iy >= 0 && iy < height && ix >= 0 &&
                                ix < width) {
                                mapping[slot] =
                                    (iy * width + ix) * channels + c;
                            }
                            ++slot;
                        }
                    }
                }
            }
        }
    }

    Tensor out({batch * out_h * out_w, cols});
    const size_t row_elems = static_cast<size_t>(out_h) * out_w * cols;
    for (int b = 0; b < batch; ++b) {
        const float *src =
            xv.data() + static_cast<size_t>(b) * channels * height * width;
        float *dst = out.data() + static_cast<size_t>(b) * row_elems;
        for (size_t i = 0; i < row_elems; ++i)
            dst[i] = mapping[i] >= 0 ? src[mapping[i]] : 0.0f;
    }

    return makeNode(
        std::move(out), {x},
        [batch, channels, height, width, row_elems,
         mapping = std::move(mapping)](VarImpl &self) {
            auto &px = *self.parents[0];
            if (!wantsGrad(px))
                return;
            Tensor &dx = px.ensureGrad();
            const size_t image = static_cast<size_t>(channels) * height *
                                 width;
            for (int b = 0; b < batch; ++b) {
                const float *dy =
                    self.grad.data() + static_cast<size_t>(b) * row_elems;
                float *dst = dx.data() + static_cast<size_t>(b) * image;
                for (size_t i = 0; i < row_elems; ++i) {
                    if (mapping[i] >= 0)
                        dst[mapping[i]] += dy[i];
                }
            }
        });
}

Variable
avgPool2x2(const Variable &x, int channels, int height, int width)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 2 &&
                   xv.dim(1) == channels * height * width,
               "avgPool2x2 input must be [B, C*H*W]");
    SNS_ASSERT(height % 2 == 0 && width % 2 == 0,
               "avgPool2x2 needs even spatial dims");
    const int batch = xv.dim(0);
    const int out_h = height / 2;
    const int out_w = width / 2;

    Tensor out({batch, channels * out_h * out_w});
    for (int b = 0; b < batch; ++b) {
        const float *src =
            xv.data() + static_cast<size_t>(b) * channels * height * width;
        float *dst = out.data() +
                     static_cast<size_t>(b) * channels * out_h * out_w;
        for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
                for (int c = 0; c < channels; ++c) {
                    const int base =
                        ((2 * oy) * width + 2 * ox) * channels + c;
                    const int right = channels;
                    const int down = width * channels;
                    dst[(oy * out_w + ox) * channels + c] =
                        0.25f * (src[base] + src[base + right] +
                                 src[base + down] +
                                 src[base + down + right]);
                }
            }
        }
    }
    return makeNode(
        std::move(out), {x},
        [batch, channels, height, width, out_h, out_w](VarImpl &self) {
            auto &px = *self.parents[0];
            if (!wantsGrad(px))
                return;
            Tensor &dx = px.ensureGrad();
            for (int b = 0; b < batch; ++b) {
                const float *dy =
                    self.grad.data() +
                    static_cast<size_t>(b) * channels * out_h * out_w;
                float *dst = dx.data() + static_cast<size_t>(b) *
                                             channels * height * width;
                for (int oy = 0; oy < out_h; ++oy) {
                    for (int ox = 0; ox < out_w; ++ox) {
                        for (int c = 0; c < channels; ++c) {
                            const float g =
                                0.25f *
                                dy[(oy * out_w + ox) * channels + c];
                            const int base =
                                ((2 * oy) * width + 2 * ox) * channels +
                                c;
                            const int right = channels;
                            const int down = width * channels;
                            dst[base] += g;
                            dst[base + right] += g;
                            dst[base + down] += g;
                            dst[base + down + right] += g;
                        }
                    }
                }
            }
        });
}

Variable
reshape(const Variable &x, std::vector<int> shape)
{
    Tensor out = x.value().reshaped(std::move(shape));
    return makeNode(std::move(out), {x}, [](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        Tensor &dx = px.ensureGrad();
        for (size_t i = 0; i < dx.numel(); ++i)
            dx[i] += self.grad[i];
    });
}

Variable
concatCols(const Variable &a, const Variable &b)
{
    const Tensor &av = a.value();
    const Tensor &bv = b.value();
    SNS_ASSERT(av.ndim() == 2 && bv.ndim() == 2 && av.dim(0) == bv.dim(0),
               "concatCols needs 2-D inputs with equal row counts");
    const int rows = av.dim(0);
    const int da = av.dim(1);
    const int db = bv.dim(1);

    Tensor out({rows, da + db});
    for (int i = 0; i < rows; ++i) {
        std::copy(av.data() + static_cast<size_t>(i) * da,
                  av.data() + static_cast<size_t>(i + 1) * da,
                  out.data() + static_cast<size_t>(i) * (da + db));
        std::copy(bv.data() + static_cast<size_t>(i) * db,
                  bv.data() + static_cast<size_t>(i + 1) * db,
                  out.data() + static_cast<size_t>(i) * (da + db) + da);
    }
    return makeNode(std::move(out), {a, b}, [rows, da, db](VarImpl &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        for (int i = 0; i < rows; ++i) {
            const float *src =
                self.grad.data() + static_cast<size_t>(i) * (da + db);
            if (wantsGrad(pa)) {
                float *dst =
                    pa.ensureGrad().data() + static_cast<size_t>(i) * da;
                for (int j = 0; j < da; ++j)
                    dst[j] += src[j];
            }
            if (wantsGrad(pb)) {
                float *dst =
                    pb.ensureGrad().data() + static_cast<size_t>(i) * db;
                for (int j = 0; j < db; ++j)
                    dst[j] += src[da + j];
            }
        }
    });
}

Variable
row(const Variable &x, int index)
{
    const Tensor &xv = x.value();
    SNS_ASSERT(xv.ndim() == 2 && index >= 0 && index < xv.dim(0),
               "row() index out of range");
    const int d = xv.dim(1);
    Tensor out({1, d});
    std::copy(xv.data() + static_cast<size_t>(index) * d,
              xv.data() + static_cast<size_t>(index + 1) * d, out.data());
    return makeNode(std::move(out), {x}, [index, d](VarImpl &self) {
        auto &px = *self.parents[0];
        if (!wantsGrad(px))
            return;
        float *dst =
            px.ensureGrad().data() + static_cast<size_t>(index) * d;
        for (int j = 0; j < d; ++j)
            dst[j] += self.grad[j];
    });
}

} // namespace sns::tensor
