/**
 * @file
 * Reduced-precision integer GEMM for the quantized inference tier
 * (docs/quantization.md). Computes exact int32 accumulators
 *
 *     C[i][j] = sum_p  a[i][p] * b[p][j]
 *
 * for u7 activations `a` (quantized into [0, 127] around zero-point
 * 64) and s8 weights `b` (per-output-channel symmetric, [-127, 127]).
 * Every product term fits |a*b| <= 127*127 = 16129 and every adjacent
 * pair sum fits 2*127*127 = 32258 < 32767, so the AVX2 `maddubs`
 * widening path never saturates its intermediate int16 lanes and all
 * three dispatch levels — scalar reference, AVX2
 * (`_mm256_maddubs_epi16`), AVX-512 VNNI (`_mm512_dpbusd_epi32`) —
 * produce the *same exact integer* for every element. Integer
 * addition is associative, so unlike the float kernels in gemm.hh no
 * accumulation-order contract is needed: quantized SIMD == quantized
 * scalar bitwise at every level, by construction.
 *
 * Dispatch levels extend the SNS_SIMD kill switch of gemm.hh into a
 * ladder: SNS_SIMD=0 forces level 0 (scalar), SNS_SIMD=1 caps at
 * level 1 (AVX2), anything else (including unset) allows level 2
 * (AVX-512 VNNI) when the CPU does. The float kernels keep their
 * existing on/off semantics — only the int8 kernels read the ladder.
 */

#ifndef SNS_TENSOR_QGEMM_HH
#define SNS_TENSOR_QGEMM_HH

#include <cstdint>
#include <vector>

namespace sns::tensor {

/**
 * A weight matrix packed for the integer microkernels: 16-wide column
 * panels with the k dimension interleaved in groups of 4 (the VNNI
 * dot-product granularity). Within each 64-byte block, byte
 * `j * 4 + kk` holds op(B)[4g + kk][j0 + j] for block g of panel
 * starting at column j0 — one aligned 64-byte load feeds all 16
 * int32 lanes of a `vpdpbusd`, and the two 32-byte halves feed the
 * AVX2 path (columns 0-7, then 8-15). Padded rows/columns are zero,
 * so padded terms contribute exact zeros at every level.
 *
 * `colsum[j]` is the int32 sum of column j's *real* (unpadded) rows —
 * the zero-point correction term: with activations quantized as
 * q = round(x / s_x) + 64, the real accumulator is
 * `acc - 64 * colsum[j]`.
 */
struct QuantPanels {
    int k = 0;        ///< contraction depth (rows of op(B))
    int n = 0;        ///< output columns
    int k_padded = 0; ///< k rounded up to a multiple of 4
    std::vector<int8_t> data;    ///< ceil(n/16) panels * k_padded * 16
    std::vector<int32_t> colsum; ///< n zero-point correction sums
};

/** Pack a row-major (k x n) s8 matrix into interleaved panels and
 * compute the per-column zero-point correction sums. */
void qgemmPackB(const int8_t *b, int k, int n, QuantPanels &panels);

/**
 * Exact integer GEMM: C[i][j] = sum_p a[i][p] * b[p][j], overwriting
 * C (m x n, int32). `a` is row-major u8 with row stride
 * `panels.k_padded`; the caller zero-fills the padded tail bytes
 * (their products are zero anyway — the weight pads are zero — but
 * deterministic inputs keep memory tools quiet). Dispatches to the
 * highest permitted level (see qgemmLevel()); all levels return the
 * same bits.
 */
void qgemmI32(const uint8_t *a, const QuantPanels &panels, int32_t *c,
              int m);

/** Highest dispatch level this build + CPU can run: 0 scalar,
 * 1 AVX2, 2 AVX-512 VNNI. */
int qgemmMaxLevel();

/** The level qgemmI32 currently dispatches to: min of qgemmMaxLevel,
 * the SNS_SIMD environment ladder, and the test cap. */
int qgemmLevel();

/**
 * Test hook: cap the dispatch level to force a downlevel path (e.g.
 * exercise the AVX2 kernel on a VNNI machine). Negative values remove
 * the cap. Results never change — only which kernel computes them.
 */
void setQgemmLevelCap(int cap);

} // namespace sns::tensor

#endif // SNS_TENSOR_QGEMM_HH
