#include "tensor/gemm.hh"

#include <algorithm>
#include <cstddef>

#include "par/thread_pool.hh"

namespace sns::tensor {

namespace {

// Multi-threading threshold: below ~2 MFLOP the fork/join overhead of
// even an idle pool beats the arithmetic.
constexpr long long kParallelFlops = 1 << 21;

// Row-tile kernels: each computes the full GEMM restricted to rows
// [i0, i1) of C (column tile [j0, j1) for the trans_a case, whose
// natural loop order writes whole C rows). Every element of C keeps
// the exact serial accumulation order — the reduction over p runs
// ascending inside one tile — so tiling (and threading over tiles)
// never changes a single bit of the result.

void
gemmRowsNN(const float *a, const float *b, float *c, int n, int k,
           int i0, int i1)
{
    // C[i][j] += A[i][p] * B[p][j]; ikj order streams B and C rows.
    for (int i = i0; i < i1; ++i) {
        const float *arow = a + static_cast<size_t>(i) * k;
        float *crow = c + static_cast<size_t>(i) * n;
        for (int p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmRowsNT(const float *a, const float *b, float *c, int n, int k,
           int i0, int i1)
{
    // B stored (n x k): C[i][j] += dot(Arow_i, Brow_j).
    for (int i = i0; i < i1; ++i) {
        const float *arow = a + static_cast<size_t>(i) * k;
        float *crow = c + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
            const float *brow = b + static_cast<size_t>(j) * k;
            float acc = 0.0f;
            for (int p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += acc;
        }
    }
}

void
gemmColsTN(const float *a, const float *b, float *c, int m, int n,
           int k, int j0, int j1)
{
    // A stored (k x m): C[i][j] += A[p][i] * B[p][j]. The p-outer
    // order is kept (it streams A and B rows); tiles split the j
    // columns so concurrent tiles write disjoint slices of C.
    for (int p = 0; p < k; ++p) {
        const float *arow = a + static_cast<size_t>(p) * m;
        const float *brow = b + static_cast<size_t>(p) * n;
        for (int i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + static_cast<size_t>(i) * n;
            for (int j = j0; j < j1; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmRowsTT(const float *a, const float *b, float *c, int m, int n,
           int k, int i0, int i1)
{
    // Rare double-transpose case; plain triple loop.
    for (int i = i0; i < i1; ++i) {
        float *crow = c + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int p = 0; p < k; ++p) {
                acc += a[static_cast<size_t>(p) * m + i] *
                       b[static_cast<size_t>(j) * k + p];
            }
            crow[j] += acc;
        }
    }
}

} // namespace

void
gemmAcc(const float *a, const float *b, float *c, int m, int n, int k,
        bool trans_a, bool trans_b)
{
    auto &pool = par::globalPool();
    const long long flops = 2ll * m * n * k;
    const bool parallel = pool.threads() > 1 &&
                          !par::inParallelRegion() &&
                          flops >= kParallelFlops;

    if (trans_a && !trans_b) {
        // Tile over columns of C (disjoint writes under p-outer order).
        if (parallel && n >= 2 * pool.threads()) {
            pool.parallelFor(
                static_cast<size_t>(n), 16,
                [&](size_t j0, size_t j1) {
                    gemmColsTN(a, b, c, m, n, k, static_cast<int>(j0),
                               static_cast<int>(j1));
                });
        } else {
            gemmColsTN(a, b, c, m, n, k, 0, n);
        }
        return;
    }

    // The remaining cases tile over rows of C.
    auto rows = [&](int i0, int i1) {
        if (!trans_a && !trans_b)
            gemmRowsNN(a, b, c, n, k, i0, i1);
        else if (!trans_a && trans_b)
            gemmRowsNT(a, b, c, n, k, i0, i1);
        else
            gemmRowsTT(a, b, c, m, n, k, i0, i1);
    };
    if (parallel && m >= 2 * pool.threads()) {
        pool.parallelFor(static_cast<size_t>(m), 4,
                         [&](size_t i0, size_t i1) {
                             rows(static_cast<int>(i0),
                                  static_cast<int>(i1));
                         });
    } else {
        rows(0, m);
    }
}

} // namespace sns::tensor
