#include "tensor/gemm.hh"

#include <cstddef>

namespace sns::tensor {

void
gemmAcc(const float *a, const float *b, float *c, int m, int n, int k,
        bool trans_a, bool trans_b)
{
    if (!trans_a && !trans_b) {
        // C[i][j] += A[i][p] * B[p][j]; ikj order streams B and C rows.
        for (int i = 0; i < m; ++i) {
            const float *arow = a + static_cast<size_t>(i) * k;
            float *crow = c + static_cast<size_t>(i) * n;
            for (int p = 0; p < k; ++p) {
                const float av = arow[p];
                if (av == 0.0f)
                    continue;
                const float *brow = b + static_cast<size_t>(p) * n;
                for (int j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    } else if (!trans_a && trans_b) {
        // B stored (n x k): C[i][j] += dot(Arow_i, Brow_j).
        for (int i = 0; i < m; ++i) {
            const float *arow = a + static_cast<size_t>(i) * k;
            float *crow = c + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j) {
                const float *brow = b + static_cast<size_t>(j) * k;
                float acc = 0.0f;
                for (int p = 0; p < k; ++p)
                    acc += arow[p] * brow[p];
                crow[j] += acc;
            }
        }
    } else if (trans_a && !trans_b) {
        // A stored (k x m): C[i][j] += A[p][i] * B[p][j].
        for (int p = 0; p < k; ++p) {
            const float *arow = a + static_cast<size_t>(p) * m;
            const float *brow = b + static_cast<size_t>(p) * n;
            for (int i = 0; i < m; ++i) {
                const float av = arow[i];
                if (av == 0.0f)
                    continue;
                float *crow = c + static_cast<size_t>(i) * n;
                for (int j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    } else {
        // Rare double-transpose case; plain triple loop.
        for (int i = 0; i < m; ++i) {
            float *crow = c + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (int p = 0; p < k; ++p) {
                    acc += a[static_cast<size_t>(p) * m + i] *
                           b[static_cast<size_t>(j) * k + p];
                }
                crow[j] += acc;
            }
        }
    }
}

} // namespace sns::tensor
