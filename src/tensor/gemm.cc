#include "tensor/gemm.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "par/thread_pool.hh"

#if defined(SNS_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SNS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace sns::tensor {

namespace {

// Multi-threading threshold: below ~2 MFLOP the fork/join overhead of
// an idle pool beats the arithmetic.
constexpr long long kParallelFlops = 1 << 21;

// Packed-panel geometry: B columns are packed 16 wide (two 8-float
// vectors), and the microkernels cover 4 x 16 / 1 x 16 C tiles.
constexpr int kPanelWidth = 16;
constexpr int kRowBlock = 4;

/** op(A)[i][p] for either storage order. */
inline float
aAt(const float *a, int m, int k, bool trans_a, int i, int p)
{
    return trans_a ? a[static_cast<size_t>(p) * m + i]
                   : a[static_cast<size_t>(i) * k + p];
}

// ---------------------------------------------------------------------
// Scalar kernels. Per element the accumulation is the contract from
// gemm.hh — ascending p, one fused rounding per step (std::fmaf) — so
// they match the SIMD microkernels bit for bit. Loop *order around*
// the elements is free, and each layout picks the cache-friendly one.
// ---------------------------------------------------------------------

/** B untransposed (k x n): ikj order streams B and C rows. */
void
gemmRowsScalarBN(const float *a, const float *b, float *c, int m, int n,
                 int k, bool trans_a, int i0, int i1)
{
    for (int i = i0; i < i1; ++i) {
        float *crow = c + static_cast<size_t>(i) * n;
        for (int p = 0; p < k; ++p) {
            const float av = aAt(a, m, k, trans_a, i, p);
            const float *brow = b + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j)
                crow[j] = std::fmaf(av, brow[j], crow[j]);
        }
    }
}

/** B transposed (n x k): per-element dot over the contiguous B row. */
void
gemmRowsScalarBT(const float *a, const float *b, float *c, int m, int n,
                 int k, bool trans_a, int i0, int i1)
{
    for (int i = i0; i < i1; ++i) {
        float *crow = c + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
            const float *brow = b + static_cast<size_t>(j) * k;
            float acc = crow[j];
            for (int p = 0; p < k; ++p)
                acc = std::fmaf(aAt(a, m, k, trans_a, i, p), brow[p],
                                acc);
            crow[j] = acc;
        }
    }
}

void
gemmRowsScalar(const float *a, const float *b, float *c, int m, int n,
               int k, bool trans_a, bool trans_b, int i0, int i1)
{
    if (trans_b)
        gemmRowsScalarBT(a, b, c, m, n, k, trans_a, i0, i1);
    else
        gemmRowsScalarBN(a, b, c, m, n, k, trans_a, i0, i1);
}

// ---------------------------------------------------------------------
// Packed AVX2+FMA path. op(B) is packed once per call into 16-wide,
// zero-padded column panels (panel q = columns [16q, 16q + 16), rows
// p contiguous), which turns the strided trans_b access into unit
// stride and lets every microkernel iteration issue two aligned-width
// FMAs per row. Compiled with a target attribute so portable builds
// (SNS_NATIVE_ARCH=OFF) still carry the kernels; runtime dispatch
// keeps them off CPUs without AVX2/FMA. The pack itself is plain C++
// (no intrinsics) so gemmPackB works in every build — pre-packed
// weights serialize/compile identically whether or not the microkernels
// will consume them.
// ---------------------------------------------------------------------

/** Pack op(B) into zero-padded 16-wide panels (k * 16 floats each). */
void
packBPanels(const float *b, int n, int k, bool trans_b, float *bt)
{
    const int panels = (n + kPanelWidth - 1) / kPanelWidth;
    for (int q = 0; q < panels; ++q) {
        const int j0 = q * kPanelWidth;
        const int w = std::min(kPanelWidth, n - j0);
        float *panel = bt + static_cast<size_t>(q) * k * kPanelWidth;
        if (!trans_b) {
            // B (k x n): copy a row slice, zero the padded lanes.
            for (int p = 0; p < k; ++p) {
                const float *src = b + static_cast<size_t>(p) * n + j0;
                float *dst = panel + static_cast<size_t>(p) * kPanelWidth;
                std::memcpy(dst, src, static_cast<size_t>(w) *
                                          sizeof(float));
                for (int jj = w; jj < kPanelWidth; ++jj)
                    dst[jj] = 0.0f;
            }
        } else {
            // B (n x k): column j of op(B) is the contiguous row j of
            // B — the pack is where the transpose happens.
            for (int jj = 0; jj < w; ++jj) {
                const float *src =
                    b + static_cast<size_t>(j0 + jj) * k;
                float *dst = panel + jj;
                for (int p = 0; p < k; ++p)
                    dst[static_cast<size_t>(p) * kPanelWidth] = src[p];
            }
            for (int jj = w; jj < kPanelWidth; ++jj) {
                float *dst = panel + jj;
                for (int p = 0; p < k; ++p)
                    dst[static_cast<size_t>(p) * kPanelWidth] = 0.0f;
            }
        }
    }
}

#if SNS_SIMD_X86

/**
 * 4 x 16 microkernel: rows [i, i + 4) x panel columns [j0, j0 + w).
 * Eight accumulator registers, two panel loads and eight FMAs per p.
 * Partial panels (w < 16) stage C through a zero-padded stack tile;
 * the padded B lanes are zero, so the extra lanes accumulate exact
 * zeros and are simply not stored back.
 */
__attribute__((target("avx2,fma"))) void
micro4x16(const float *a, int m, int k, bool trans_a, const float *panel,
          float *c, int n, int i, int j0, int w)
{
    __m256 acc[kRowBlock][2];
    float tmp[kRowBlock][kPanelWidth];
    const bool partial = w < kPanelWidth;
    for (int r = 0; r < kRowBlock; ++r) {
        float *crow = c + static_cast<size_t>(i + r) * n + j0;
        if (partial) {
            std::memset(tmp[r], 0, sizeof(tmp[r]));
            std::memcpy(tmp[r], crow,
                        static_cast<size_t>(w) * sizeof(float));
            acc[r][0] = _mm256_loadu_ps(tmp[r]);
            acc[r][1] = _mm256_loadu_ps(tmp[r] + 8);
        } else {
            acc[r][0] = _mm256_loadu_ps(crow);
            acc[r][1] = _mm256_loadu_ps(crow + 8);
        }
    }
    for (int p = 0; p < k; ++p) {
        const float *brow = panel + static_cast<size_t>(p) * kPanelWidth;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (int r = 0; r < kRowBlock; ++r) {
            const __m256 av =
                _mm256_set1_ps(aAt(a, m, k, trans_a, i + r, p));
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    for (int r = 0; r < kRowBlock; ++r) {
        float *crow = c + static_cast<size_t>(i + r) * n + j0;
        if (partial) {
            _mm256_storeu_ps(tmp[r], acc[r][0]);
            _mm256_storeu_ps(tmp[r] + 8, acc[r][1]);
            std::memcpy(crow, tmp[r],
                        static_cast<size_t>(w) * sizeof(float));
        } else {
            _mm256_storeu_ps(crow, acc[r][0]);
            _mm256_storeu_ps(crow + 8, acc[r][1]);
        }
    }
}

/** 1 x 16 microkernel for the row remainder. */
__attribute__((target("avx2,fma"))) void
micro1x16(const float *a, int m, int k, bool trans_a, const float *panel,
          float *c, int n, int i, int j0, int w)
{
    __m256 acc0;
    __m256 acc1;
    float tmp[kPanelWidth];
    float *crow = c + static_cast<size_t>(i) * n + j0;
    const bool partial = w < kPanelWidth;
    if (partial) {
        std::memset(tmp, 0, sizeof(tmp));
        std::memcpy(tmp, crow, static_cast<size_t>(w) * sizeof(float));
        acc0 = _mm256_loadu_ps(tmp);
        acc1 = _mm256_loadu_ps(tmp + 8);
    } else {
        acc0 = _mm256_loadu_ps(crow);
        acc1 = _mm256_loadu_ps(crow + 8);
    }
    for (int p = 0; p < k; ++p) {
        const float *brow = panel + static_cast<size_t>(p) * kPanelWidth;
        const __m256 av = _mm256_set1_ps(aAt(a, m, k, trans_a, i, p));
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
    }
    if (partial) {
        _mm256_storeu_ps(tmp, acc0);
        _mm256_storeu_ps(tmp + 8, acc1);
        std::memcpy(crow, tmp, static_cast<size_t>(w) * sizeof(float));
    } else {
        _mm256_storeu_ps(crow, acc0);
        _mm256_storeu_ps(crow + 8, acc1);
    }
}

/** Row tile [i0, i1) over every packed panel. */
__attribute__((target("avx2,fma"))) void
gemmRowsSimd(const float *a, const float *bt, float *c, int m, int n,
             int k, bool trans_a, int i0, int i1)
{
    const int panels = (n + kPanelWidth - 1) / kPanelWidth;
    for (int q = 0; q < panels; ++q) {
        const int j0 = q * kPanelWidth;
        const int w = std::min(kPanelWidth, n - j0);
        const float *panel = bt + static_cast<size_t>(q) * k * kPanelWidth;
        int i = i0;
        for (; i + kRowBlock <= i1; i += kRowBlock)
            micro4x16(a, m, k, trans_a, panel, c, n, i, j0, w);
        for (; i < i1; ++i)
            micro1x16(a, m, k, trans_a, panel, c, n, i, j0, w);
    }
}

/** Per-thread reusable panel scratch (grows to the largest B seen). */
thread_local std::vector<float> t_pack_buffer;

#endif // SNS_SIMD_X86

bool
cpuHasSimd()
{
#if SNS_SIMD_X86
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

std::atomic<bool> &
simdFlag()
{
    static std::atomic<bool> flag([] {
        if (!cpuHasSimd())
            return false;
        // SNS_SIMD=0 forces the scalar path from the environment.
        const char *env = std::getenv("SNS_SIMD");
        return !(env != nullptr && env[0] == '0' && env[1] == '\0');
    }());
    return flag;
}

} // namespace

bool
gemmSimdAvailable()
{
    return cpuHasSimd();
}

void
setGemmSimd(bool enabled)
{
    simdFlag().store(enabled && cpuHasSimd(), std::memory_order_relaxed);
}

bool
gemmSimdActive()
{
    return simdFlag().load(std::memory_order_relaxed);
}

namespace {

/**
 * The one row-tiled execution path behind gemmAcc and gemmAccPacked:
 * `bt` (non-null iff the SIMD kernels should run) holds the packed
 * panels of op(B), `b` the raw operand for the scalar fallback. All
 * layouts tile over rows of C: each tile runs the full p loop for its
 * rows, so tiling (and threading over tiles) never changes a single
 * bit of the result.
 */
void
gemmDispatch(const float *a, const float *b, const float *bt, float *c,
             int m, int n, int k, bool trans_a, bool trans_b)
{
    auto rows = [&](int i0, int i1) {
#if SNS_SIMD_X86
        if (bt != nullptr) {
            gemmRowsSimd(a, bt, c, m, n, k, trans_a, i0, i1);
            return;
        }
#else
        (void)bt;
#endif
        gemmRowsScalar(a, b, c, m, n, k, trans_a, trans_b, i0, i1);
    };

    auto &pool = par::globalPool();
    const long long flops = 2ll * m * n * k;
    const bool parallel = pool.threads() > 1 &&
                          !par::inParallelRegion() &&
                          flops >= kParallelFlops &&
                          m >= 2 * pool.threads();
    if (parallel) {
        pool.parallelFor(static_cast<size_t>(m), kRowBlock,
                         [&](size_t i0, size_t i1) {
                             rows(static_cast<int>(i0),
                                  static_cast<int>(i1));
                         });
    } else {
        rows(0, m);
    }
}

} // namespace

void
gemmAcc(const float *a, const float *b, float *c, int m, int n, int k,
        bool trans_a, bool trans_b)
{
    if (m <= 0 || n <= 0 || k <= 0)
        return;

    const float *bt = nullptr;
#if SNS_SIMD_X86
    // Pack op(B) once, on the calling thread, before the parallel
    // region; row tiles share the read-only panels. The scratch is
    // thread-local, so GEMMs running inline inside pool workers (the
    // nested-parallelism case) each pack into their own buffer.
    if (gemmSimdActive()) {
        const size_t need = gemmPackedFloats(n, k);
        if (t_pack_buffer.size() < need)
            t_pack_buffer.resize(need);
        packBPanels(b, n, k, trans_b, t_pack_buffer.data());
        bt = t_pack_buffer.data();
    }
#endif
    gemmDispatch(a, b, bt, c, m, n, k, trans_a, trans_b);
}

size_t
gemmPackedFloats(int n, int k)
{
    if (n <= 0 || k <= 0)
        return 0;
    const size_t panels =
        (static_cast<size_t>(n) + kPanelWidth - 1) / kPanelWidth;
    return panels * static_cast<size_t>(k) * kPanelWidth;
}

void
gemmPackB(const float *b, int n, int k, bool trans_b, float *bt)
{
    if (n <= 0 || k <= 0)
        return;
    packBPanels(b, n, k, trans_b, bt);
}

void
gemmAccPacked(const float *a, const float *b, const float *bt, float *c,
              int m, int n, int k, bool trans_a, bool trans_b)
{
    if (m <= 0 || n <= 0 || k <= 0)
        return;
    // The panels are only consumed when the microkernels would run;
    // the scalar path reads the raw operand, exactly like gemmAcc.
    const bool simd = gemmSimdActive() && bt != nullptr;
    gemmDispatch(a, b, simd ? bt : nullptr, c, m, n, k, trans_a,
                 trans_b);
}

void
gemmAccScalar(const float *a, const float *b, float *c, int m, int n,
              int k, bool trans_a, bool trans_b)
{
    if (m <= 0 || n <= 0 || k <= 0)
        return;
    gemmRowsScalar(a, b, c, m, n, k, trans_a, trans_b, 0, m);
}

} // namespace sns::tensor
