/**
 * @file
 * Dense float32 tensors (up to 3 dimensions, row-major).
 *
 * This is the storage layer under the autograd engine. Shapes are kept
 * deliberately small-dimensional: everything the SNS models need is
 * expressible with 2-D matrices and 3-D batched matrices, with head
 * splitting handled by explicit permutation ops.
 */

#ifndef SNS_TENSOR_TENSOR_HH
#define SNS_TENSOR_TENSOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace sns::tensor {

/** A dense row-major float tensor with value semantics. */
class Tensor
{
  public:
    /** An empty 0-element tensor. */
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** @name Factories
     * @{
     */
    static Tensor zeros(std::vector<int> shape);
    static Tensor full(std::vector<int> shape, float value);
    static Tensor scalar(float value);
    /** i.i.d. N(0, stddev^2) entries. */
    static Tensor randn(std::vector<int> shape, Rng &rng,
                        float stddev = 1.0f);
    /** i.i.d. U[lo, hi) entries. */
    static Tensor uniform(std::vector<int> shape, Rng &rng, float lo,
                          float hi);
    /** Wrap explicit values (size must match the shape). */
    static Tensor fromValues(std::vector<int> shape,
                             std::vector<float> values);
    /** @} */

    /** Shape vector. */
    const std::vector<int> &shape() const { return shape_; }

    /** Number of dimensions. */
    int ndim() const { return static_cast<int>(shape_.size()); }

    /** Extent of one dimension. */
    int
    dim(int i) const
    {
        SNS_ASSERT(i >= 0 && i < ndim(), "dim index out of range");
        return shape_[i];
    }

    /** Total element count. */
    size_t numel() const { return data_.size(); }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** 2-D element access (tensor must be 2-D). */
    float &at2(int i, int j);
    float at2(int i, int j) const;

    /** 3-D element access (tensor must be 3-D). */
    float &at3(int b, int i, int j);
    float at3(int b, int i, int j) const;

    /** Same data viewed under a new shape (element count preserved). */
    Tensor reshaped(std::vector<int> shape) const;

    /** Set every element. */
    void fill(float value);

    /** this += alpha * other (shapes must match). Used by optimizers. */
    void addScaled(const Tensor &other, float alpha);

    /** this *= alpha. */
    void scaleInPlace(float alpha);

    /** Sum of all elements. */
    double sum() const;

    /** Human-readable shape, e.g. "[2, 3, 4]". */
    std::string shapeString() const;

    /** True if shapes are identical. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

  private:
    std::vector<int> shape_;
    std::vector<float> data_;
};

/** Total element count implied by a shape. */
size_t shapeNumel(const std::vector<int> &shape);

} // namespace sns::tensor

#endif // SNS_TENSOR_TENSOR_HH
