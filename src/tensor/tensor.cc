#include "tensor/tensor.hh"

#include <cmath>
#include <sstream>

namespace sns::tensor {

size_t
shapeNumel(const std::vector<int> &shape)
{
    size_t n = 1;
    for (int d : shape) {
        SNS_ASSERT(d >= 0, "negative dimension in shape");
        n *= static_cast<size_t>(d);
    }
    return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), 0.0f)
{
}

Tensor
Tensor::zeros(std::vector<int> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<int> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::scalar(float value)
{
    Tensor t(std::vector<int>{1});
    t[0] = value;
    return t;
}

Tensor
Tensor::randn(std::vector<int> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::uniform(std::vector<int> shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::fromValues(std::vector<int> shape, std::vector<float> values)
{
    SNS_ASSERT(shapeNumel(shape) == values.size(),
               "fromValues: size mismatch");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = std::move(values);
    return t;
}

float &
Tensor::at2(int i, int j)
{
    SNS_ASSERT(ndim() == 2, "at2 on non-2D tensor");
    return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float
Tensor::at2(int i, int j) const
{
    SNS_ASSERT(ndim() == 2, "at2 on non-2D tensor");
    return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float &
Tensor::at3(int b, int i, int j)
{
    SNS_ASSERT(ndim() == 3, "at3 on non-3D tensor");
    return data_[(static_cast<size_t>(b) * shape_[1] + i) * shape_[2] + j];
}

float
Tensor::at3(int b, int i, int j) const
{
    SNS_ASSERT(ndim() == 3, "at3 on non-3D tensor");
    return data_[(static_cast<size_t>(b) * shape_[1] + i) * shape_[2] + j];
}

Tensor
Tensor::reshaped(std::vector<int> shape) const
{
    SNS_ASSERT(shapeNumel(shape) == numel(), "reshape changes element count");
    Tensor t = *this;
    t.shape_ = std::move(shape);
    return t;
}

void
Tensor::fill(float value)
{
    for (auto &x : data_)
        x = value;
}

void
Tensor::addScaled(const Tensor &other, float alpha)
{
    SNS_ASSERT(sameShape(other), "addScaled shape mismatch: ",
               shapeString(), " vs ", other.shapeString());
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += alpha * other.data_[i];
}

void
Tensor::scaleInPlace(float alpha)
{
    for (auto &x : data_)
        x *= alpha;
}

double
Tensor::sum() const
{
    double total = 0.0;
    for (float x : data_)
        total += x;
    return total;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0)
            oss << ", ";
        oss << shape_[i];
    }
    oss << "]";
    return oss.str();
}

} // namespace sns::tensor
