/**
 * @file
 * The one dense matrix-multiply kernel under every model in the
 * library. C (m x n) += op(A) * op(B) where op optionally transposes.
 *
 * Accumulation contract (docs/perf.md): for every element C[i][j] the
 * update is
 *
 *     for p in 0..k-1:  C[i][j] = fma(opA(A)[i][p], opB(B)[p][j], C[i][j])
 *
 * — ascending p, one fused rounding per step — in *every* code path:
 * the packed AVX2+FMA microkernels, the scalar fallback (std::fmaf),
 * and every edge/remainder loop. Because the per-element order is
 * identical everywhere, SIMD and scalar results are bitwise equal, and
 * the sns::par row tiling (each tile runs its full p loop) keeps
 * results bitwise identical at any thread count.
 */

#ifndef SNS_TENSOR_GEMM_HH
#define SNS_TENSOR_GEMM_HH

#include <cstddef>

namespace sns::tensor {

/**
 * Accumulating GEMM: C += opA(A) * opB(B). Dispatches at runtime to
 * the packed AVX2+FMA microkernels when compiled in (SNS_SIMD) and the
 * CPU supports them, else to the scalar fallback; both produce bitwise
 * identical results.
 *
 * @param a pointer to A, stored (m x k) or (k x m) if trans_a
 * @param b pointer to B, stored (k x n) or (n x k) if trans_b
 * @param c pointer to C, stored (m x n); results accumulate into it
 */
void gemmAcc(const float *a, const float *b, float *c, int m, int n, int k,
             bool trans_a, bool trans_b);

/**
 * The scalar reference kernel: same accumulation contract, no SIMD,
 * no threading. Exists so tests and microbenchmarks can pin the
 * dispatched kernel against it (exact equality expected).
 */
void gemmAccScalar(const float *a, const float *b, float *c, int m, int n,
                   int k, bool trans_a, bool trans_b);

/** True when the SIMD microkernels are compiled in and this CPU can
 * run them (AVX2 + FMA). */
bool gemmSimdAvailable();

/**
 * Runtime kill switch for the SIMD path (benchmarking / debugging;
 * the env var SNS_SIMD=0 sets the initial state). Enabling is a no-op
 * when gemmSimdAvailable() is false. Results do not change either
 * way — only throughput does.
 */
void setGemmSimd(bool enabled);

/** True when gemmAcc currently dispatches to the SIMD microkernels. */
bool gemmSimdActive();

/** @name Pre-packed operation
 * gemmAcc packs op(B) into 16-wide column panels on every call. When
 * the same B is multiplied many times (the execution-plan path packs
 * each weight matrix once at model-load time), callers can hold the
 * packed panels themselves and skip the per-call pack:
 *
 *     std::vector<float> bt(gemmPackedFloats(n, k));
 *     gemmPackB(b, n, k, trans_b, bt.data());
 *     gemmAccPacked(a, b, bt.data(), c, m, n, k, trans_a, trans_b);
 *
 * gemmAccPacked follows the exact dispatch, tiling, and accumulation
 * contract of gemmAcc, so its results are bitwise identical to
 * gemmAcc's for the same operands. The raw `b` pointer is still
 * required: the scalar fallback (SIMD compiled out, unsupported CPU,
 * or SNS_SIMD=0) reads it instead of the panels.
 * @{
 */

/** Floats required for the packed panels of an op(B) with n columns
 * and k rows (zero-padded to a multiple of the 16-wide panel). */
size_t gemmPackedFloats(int n, int k);

/** Pack op(B) into caller-owned storage of gemmPackedFloats(n, k)
 * floats. `b` is stored (k x n), or (n x k) when trans_b. */
void gemmPackB(const float *b, int n, int k, bool trans_b, float *bt);

/** gemmAcc against pre-packed panels `bt` (may be null to force the
 * scalar path; results do not change, only throughput does). */
void gemmAccPacked(const float *a, const float *b, const float *bt,
                   float *c, int m, int n, int k, bool trans_a,
                   bool trans_b);
/** @} */

} // namespace sns::tensor

#endif // SNS_TENSOR_GEMM_HH
