/**
 * @file
 * The one dense matrix-multiply kernel under every model in the
 * library. C (m x n) += op(A) * op(B) where op optionally transposes.
 */

#ifndef SNS_TENSOR_GEMM_HH
#define SNS_TENSOR_GEMM_HH

namespace sns::tensor {

/**
 * Accumulating GEMM: C += opA(A) * opB(B).
 *
 * @param a pointer to A, stored (m x k) or (k x m) if trans_a
 * @param b pointer to B, stored (k x n) or (n x k) if trans_b
 * @param c pointer to C, stored (m x n); results accumulate into it
 */
void gemmAcc(const float *a, const float *b, float *c, int m, int n, int k,
             bool trans_a, bool trans_b);

} // namespace sns::tensor

#endif // SNS_TENSOR_GEMM_HH
