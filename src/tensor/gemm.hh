/**
 * @file
 * The one dense matrix-multiply kernel under every model in the
 * library. C (m x n) += op(A) * op(B) where op optionally transposes.
 *
 * Accumulation contract (docs/perf.md): for every element C[i][j] the
 * update is
 *
 *     for p in 0..k-1:  C[i][j] = fma(opA(A)[i][p], opB(B)[p][j], C[i][j])
 *
 * — ascending p, one fused rounding per step — in *every* code path:
 * the packed AVX2+FMA microkernels, the scalar fallback (std::fmaf),
 * and every edge/remainder loop. Because the per-element order is
 * identical everywhere, SIMD and scalar results are bitwise equal, and
 * the sns::par row tiling (each tile runs its full p loop) keeps
 * results bitwise identical at any thread count.
 */

#ifndef SNS_TENSOR_GEMM_HH
#define SNS_TENSOR_GEMM_HH

namespace sns::tensor {

/**
 * Accumulating GEMM: C += opA(A) * opB(B). Dispatches at runtime to
 * the packed AVX2+FMA microkernels when compiled in (SNS_SIMD) and the
 * CPU supports them, else to the scalar fallback; both produce bitwise
 * identical results.
 *
 * @param a pointer to A, stored (m x k) or (k x m) if trans_a
 * @param b pointer to B, stored (k x n) or (n x k) if trans_b
 * @param c pointer to C, stored (m x n); results accumulate into it
 */
void gemmAcc(const float *a, const float *b, float *c, int m, int n, int k,
             bool trans_a, bool trans_b);

/**
 * The scalar reference kernel: same accumulation contract, no SIMD,
 * no threading. Exists so tests and microbenchmarks can pin the
 * dispatched kernel against it (exact equality expected).
 */
void gemmAccScalar(const float *a, const float *b, float *c, int m, int n,
                   int k, bool trans_a, bool trans_b);

/** True when the SIMD microkernels are compiled in and this CPU can
 * run them (AVX2 + FMA). */
bool gemmSimdAvailable();

/**
 * Runtime kill switch for the SIMD path (benchmarking / debugging;
 * the env var SNS_SIMD=0 sets the initial state). Enabling is a no-op
 * when gemmSimdAvailable() is false. Results do not change either
 * way — only throughput does.
 */
void setGemmSimd(bool enabled);

/** True when gemmAcc currently dispatches to the SIMD microkernels. */
bool gemmSimdActive();

} // namespace sns::tensor

#endif // SNS_TENSOR_GEMM_HH
