#include "tensor/qgemm.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "par/thread_pool.hh"

#if defined(SNS_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SNS_QSIMD_X86 1
#include <immintrin.h>
#endif

namespace sns::tensor {

namespace {

// Panel geometry shared with the float kernels: 16 output columns per
// panel, k interleaved in VNNI groups of 4, 4 x 16 row blocking.
constexpr int kPanelWidth = 16;
constexpr int kKGroup = 4;
constexpr int kRowBlock = 4;

// Multi-threading threshold, mirroring gemm.cc: below ~2M multiply-adds
// the fork/join overhead of an idle pool beats the arithmetic. Integer
// accumulation is exact, so tiling over rows never changes a bit.
constexpr long long kParallelOps = 1 << 21;

inline size_t
panelBytes(const QuantPanels &p)
{
    return static_cast<size_t>(p.k_padded) * kPanelWidth;
}

// ---------------------------------------------------------------------
// Scalar reference. Reads the same packed layout as the SIMD kernels
// (byte j*4+kk of block g is op(B)[4g+kk][j0+j]) so a single pack
// serves every level; padded bytes are zero, so looping over k_padded
// adds exact zeros.
// ---------------------------------------------------------------------

void
qgemmRowsScalar(const uint8_t *a, const QuantPanels &b, int32_t *c,
                int i0, int i1)
{
    const int panels = (b.n + kPanelWidth - 1) / kPanelWidth;
    const int groups = b.k_padded / kKGroup;
    for (int q = 0; q < panels; ++q) {
        const int j0 = q * kPanelWidth;
        const int w = std::min(kPanelWidth, b.n - j0);
        const int8_t *panel = b.data.data() + q * panelBytes(b);
        for (int i = i0; i < i1; ++i) {
            const uint8_t *arow =
                a + static_cast<size_t>(i) * b.k_padded;
            int32_t acc[kPanelWidth] = {0};
            for (int g = 0; g < groups; ++g) {
                const int8_t *blk =
                    panel + static_cast<size_t>(g) * kPanelWidth * kKGroup;
                const uint8_t *ag = arow + g * kKGroup;
                for (int j = 0; j < w; ++j) {
                    for (int kk = 0; kk < kKGroup; ++kk) {
                        acc[j] += static_cast<int32_t>(ag[kk]) *
                                  static_cast<int32_t>(blk[j * kKGroup + kk]);
                    }
                }
            }
            int32_t *crow = c + static_cast<size_t>(i) * b.n + j0;
            for (int j = 0; j < w; ++j)
                crow[j] = acc[j];
        }
    }
}

#if SNS_QSIMD_X86

// ---------------------------------------------------------------------
// Level 1: AVX2. maddubs(u8, s8) -> saturating i16 pairs; with u7
// activations the pair sums top out at 32258, below the i16 ceiling,
// so no saturation ever fires and madd_epi16 against ones widens the
// exact group-of-4 dot products into 8 i32 lanes. Two 32-byte half-
// block loads cover the 16 panel columns.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
avx2Group(__m256i acc, __m256i av, const int8_t *half, __m256i ones)
{
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(half));
    return _mm256_add_epi32(
        acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones));
}

__attribute__((target("avx2"))) inline __m256i
broadcastGroup256(const uint8_t *ag)
{
    int32_t word;
    std::memcpy(&word, ag, sizeof(word));
    return _mm256_set1_epi32(word);
}

// A lambda would not inherit the enclosing function's target attribute
// (GCC compiles the closure body without AVX2), so the tail-masked
// store is a free function.
__attribute__((target("avx2"))) inline void
storePanelRow(int32_t *crow, int w, __m256i lo, __m256i hi)
{
    if (w == kPanelWidth) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(crow), lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(crow + 8), hi);
    } else {
        int32_t tmp[kPanelWidth];
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(tmp), lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(tmp + 8), hi);
        std::memcpy(crow, tmp, static_cast<size_t>(w) * sizeof(int32_t));
    }
}

__attribute__((target("avx2"))) void
qgemmRowsAvx2(const uint8_t *a, const QuantPanels &b, int32_t *c,
              int i0, int i1)
{
    const int panels = (b.n + kPanelWidth - 1) / kPanelWidth;
    const int groups = b.k_padded / kKGroup;
    const __m256i ones = _mm256_set1_epi16(1);
    for (int q = 0; q < panels; ++q) {
        const int j0 = q * kPanelWidth;
        const int w = std::min(kPanelWidth, b.n - j0);
        const int8_t *panel = b.data.data() + q * panelBytes(b);
        int i = i0;
        for (; i + kRowBlock <= i1; i += kRowBlock) {
            __m256i acc[kRowBlock][2];
            for (auto &row : acc)
                row[0] = row[1] = _mm256_setzero_si256();
            for (int g = 0; g < groups; ++g) {
                const int8_t *blk =
                    panel +
                    static_cast<size_t>(g) * kPanelWidth * kKGroup;
                for (int r = 0; r < kRowBlock; ++r) {
                    const __m256i av = broadcastGroup256(
                        a + static_cast<size_t>(i + r) * b.k_padded +
                        g * kKGroup);
                    acc[r][0] = avx2Group(acc[r][0], av, blk, ones);
                    acc[r][1] = avx2Group(acc[r][1], av, blk + 32, ones);
                }
            }
            for (int r = 0; r < kRowBlock; ++r)
                storePanelRow(c + static_cast<size_t>(i + r) * b.n + j0,
                              w, acc[r][0], acc[r][1]);
        }
        for (; i < i1; ++i) {
            __m256i lo = _mm256_setzero_si256();
            __m256i hi = _mm256_setzero_si256();
            for (int g = 0; g < groups; ++g) {
                const int8_t *blk =
                    panel +
                    static_cast<size_t>(g) * kPanelWidth * kKGroup;
                const __m256i av = broadcastGroup256(
                    a + static_cast<size_t>(i) * b.k_padded +
                    g * kKGroup);
                lo = avx2Group(lo, av, blk, ones);
                hi = avx2Group(hi, av, blk + 32, ones);
            }
            storePanelRow(c + static_cast<size_t>(i) * b.n + j0, w, lo,
                          hi);
        }
    }
}

// ---------------------------------------------------------------------
// Level 2: AVX-512 VNNI. One vpdpbusd per 64-byte block accumulates
// all 16 columns' group-of-4 dot products directly into i32 lanes —
// the exact sums the scalar reference computes.
// ---------------------------------------------------------------------

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
qgemmRowsVnni(const uint8_t *a, const QuantPanels &b, int32_t *c,
              int i0, int i1)
{
    const int panels = (b.n + kPanelWidth - 1) / kPanelWidth;
    const int groups = b.k_padded / kKGroup;
    for (int q = 0; q < panels; ++q) {
        const int j0 = q * kPanelWidth;
        const int w = std::min(kPanelWidth, b.n - j0);
        const __mmask16 mask =
            static_cast<__mmask16>((1u << w) - 1u);
        const int8_t *panel = b.data.data() + q * panelBytes(b);
        int i = i0;
        for (; i + kRowBlock <= i1; i += kRowBlock) {
            __m512i acc[kRowBlock];
            for (auto &row : acc)
                row = _mm512_setzero_si512();
            for (int g = 0; g < groups; ++g) {
                const __m512i bv = _mm512_loadu_si512(
                    panel +
                    static_cast<size_t>(g) * kPanelWidth * kKGroup);
                for (int r = 0; r < kRowBlock; ++r) {
                    int32_t word;
                    std::memcpy(&word,
                                a + static_cast<size_t>(i + r) *
                                        b.k_padded +
                                    g * kKGroup,
                                sizeof(word));
                    acc[r] = _mm512_dpbusd_epi32(
                        acc[r], _mm512_set1_epi32(word), bv);
                }
            }
            for (int r = 0; r < kRowBlock; ++r) {
                _mm512_mask_storeu_epi32(
                    c + static_cast<size_t>(i + r) * b.n + j0, mask,
                    acc[r]);
            }
        }
        for (; i < i1; ++i) {
            __m512i acc = _mm512_setzero_si512();
            for (int g = 0; g < groups; ++g) {
                const __m512i bv = _mm512_loadu_si512(
                    panel +
                    static_cast<size_t>(g) * kPanelWidth * kKGroup);
                int32_t word;
                std::memcpy(&word,
                            a + static_cast<size_t>(i) * b.k_padded +
                                g * kKGroup,
                            sizeof(word));
                acc = _mm512_dpbusd_epi32(
                    acc, _mm512_set1_epi32(word), bv);
            }
            _mm512_mask_storeu_epi32(
                c + static_cast<size_t>(i) * b.n + j0, mask, acc);
        }
    }
}

#endif // SNS_QSIMD_X86

int
cpuMaxLevel()
{
#if SNS_QSIMD_X86
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vnni"))
        return 2;
    if (__builtin_cpu_supports("avx2"))
        return 1;
#endif
    return 0;
}

/** SNS_SIMD as a ladder: "0" scalar, "1" AVX2 cap, else full. The
 * float kernels in gemm.cc keep their independent on/off read of the
 * same variable — "0" kills both tiers. */
int
envLevel()
{
    static const int level = [] {
        const char *env = std::getenv("SNS_SIMD");
        if (env != nullptr && env[1] == '\0') {
            if (env[0] == '0')
                return 0;
            if (env[0] == '1')
                return 1;
        }
        return 2;
    }();
    return level;
}

std::atomic<int> &
levelCap()
{
    static std::atomic<int> cap(-1);
    return cap;
}

} // namespace

int
qgemmMaxLevel()
{
    static const int level = cpuMaxLevel();
    return level;
}

int
qgemmLevel()
{
    int level = std::min(qgemmMaxLevel(), envLevel());
    const int cap = levelCap().load(std::memory_order_relaxed);
    if (cap >= 0)
        level = std::min(level, cap);
    return level;
}

void
setQgemmLevelCap(int cap)
{
    levelCap().store(cap, std::memory_order_relaxed);
}

void
qgemmPackB(const int8_t *b, int k, int n, QuantPanels &panels)
{
    panels.k = k;
    panels.n = n;
    panels.k_padded = (k + kKGroup - 1) / kKGroup * kKGroup;
    const int npanels = (n + kPanelWidth - 1) / kPanelWidth;
    panels.data.assign(static_cast<size_t>(npanels) *
                           panels.k_padded * kPanelWidth,
                       0);
    panels.colsum.assign(static_cast<size_t>(n), 0);
    for (int j = 0; j < n; ++j) {
        const int q = j / kPanelWidth;
        const int jj = j % kPanelWidth;
        int8_t *panel = panels.data.data() + q * panelBytes(panels);
        int32_t sum = 0;
        for (int p = 0; p < k; ++p) {
            const int8_t v = b[static_cast<size_t>(p) * n + j];
            panel[static_cast<size_t>(p / kKGroup) * kPanelWidth *
                      kKGroup +
                  jj * kKGroup + p % kKGroup] = v;
            sum += v;
        }
        panels.colsum[j] = sum;
    }
}

void
qgemmI32(const uint8_t *a, const QuantPanels &panels, int32_t *c, int m)
{
    if (m <= 0 || panels.n <= 0)
        return;
    if (panels.k_padded <= 0) {
        std::fill(c, c + static_cast<size_t>(m) * panels.n, 0);
        return;
    }

    const int level = qgemmLevel();
    auto rows = [&](int i0, int i1) {
#if SNS_QSIMD_X86
        if (level >= 2) {
            qgemmRowsVnni(a, panels, c, i0, i1);
            return;
        }
        if (level == 1) {
            qgemmRowsAvx2(a, panels, c, i0, i1);
            return;
        }
#else
        (void)level;
#endif
        qgemmRowsScalar(a, panels, c, i0, i1);
    };

    auto &pool = par::globalPool();
    const long long ops = 1ll * m * panels.n * panels.k_padded;
    const bool parallel = pool.threads() > 1 &&
                          !par::inParallelRegion() &&
                          ops >= kParallelOps &&
                          m >= 2 * pool.threads();
    if (parallel) {
        pool.parallelFor(static_cast<size_t>(m), kRowBlock,
                         [&](size_t i0, size_t i1) {
                             rows(static_cast<int>(i0),
                                  static_cast<int>(i1));
                         });
    } else {
        rows(0, m);
    }
}

} // namespace sns::tensor
