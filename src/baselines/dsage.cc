#include "baselines/dsage.hh"

#include <cmath>

#include "nn/optim.hh"
#include "util/logging.hh"

namespace sns::baselines {

using namespace sns::tensor;
using graphir::Graph;
using graphir::NodeId;

namespace {

int
inputDim()
{
    return graphir::kNumNodeTypes + 1;
}

} // namespace

Dsage::Dsage(DsageConfig config)
    : config_(config), init_rng_(config.seed)
{
    // Layer 0 consumes the raw node features; deeper layers consume
    // hidden states.
    for (int layer = 0; layer < config_.layers; ++layer) {
        const int in = layer == 0 ? inputDim() : config_.hidden_dim;
        self_layers_.emplace_back(in, config_.hidden_dim, init_rng_);
        neigh_layers_.emplace_back(in, config_.hidden_dim, init_rng_);
    }
    head_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1,
                                         init_rng_);
}

Tensor
Dsage::nodeFeatures(const Graph &graph) const
{
    const int n = static_cast<int>(graph.numNodes());
    Tensor x({n, inputDim()});
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        x.at2(static_cast<int>(id),
              static_cast<int>(graph.type(id))) = 1.0f;
        x.at2(static_cast<int>(id), graphir::kNumNodeTypes) =
            static_cast<float>(std::log2(graph.width(id)));
    }
    return x;
}

std::vector<std::vector<int>>
Dsage::neighborhoods(const Graph &graph) const
{
    std::vector<std::vector<int>> groups(graph.numNodes());
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        for (NodeId next : graph.successors(id)) {
            groups[id].push_back(static_cast<int>(next));
            groups[next].push_back(static_cast<int>(id));
        }
    }
    return groups;
}

Variable
Dsage::forward(const Graph &graph) const
{
    Variable h = constant(nodeFeatures(graph));
    const auto groups = neighborhoods(graph);
    for (int layer = 0; layer < config_.layers; ++layer) {
        const Variable neigh = gatherMeanRows(h, groups);
        h = relu(add(self_layers_[layer].forward(h),
                     neigh_layers_[layer].forward(neigh)));
    }
    // Global mean pooling over all nodes.
    std::vector<std::vector<int>> all(1);
    all[0].reserve(graph.numNodes());
    for (NodeId id = 0; id < graph.numNodes(); ++id)
        all[0].push_back(static_cast<int>(id));
    const Variable pooled = gatherMeanRows(h, all); // [1, hidden]
    return head_->forward(pooled);                  // [1, 1]
}

void
Dsage::fit(const std::vector<const Graph *> &graphs,
           const std::vector<double> &timing_ps)
{
    SNS_ASSERT(graphs.size() == timing_ps.size() && !graphs.empty(),
               "Dsage::fit needs matching, non-empty data");

    // Log-space target standardization.
    double sum = 0.0;
    double sq = 0.0;
    for (double t : timing_ps) {
        const double lt = std::log(std::max(t, 1e-9));
        sum += lt;
        sq += lt * lt;
    }
    const double n = static_cast<double>(timing_ps.size());
    target_mean_ = sum / n;
    const double var = sq / n - target_mean_ * target_mean_;
    target_std_ = var > 1e-8 ? std::sqrt(var) : 1.0;

    std::vector<Variable> params;
    for (int layer = 0; layer < config_.layers; ++layer) {
        for (const auto &p : self_layers_[layer].parameters())
            params.push_back(p);
        for (const auto &p : neigh_layers_[layer].parameters())
            params.push_back(p);
    }
    for (const auto &p : head_->parameters())
        params.push_back(p);
    nn::Adam optimizer(params, config_.learning_rate);

    Rng rng(config_.seed + 1);
    std::vector<size_t> order(graphs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (size_t idx : order) {
            optimizer.zeroGrad();
            const Variable pred = forward(*graphs[idx]);
            Tensor target({1, 1});
            target.at2(0, 0) = static_cast<float>(
                (std::log(std::max(timing_ps[idx], 1e-9)) -
                 target_mean_) /
                target_std_);
            Variable loss = mseLoss(pred, target);
            loss.backward();
            optimizer.step();
        }
    }
    fitted_ = true;
}

double
Dsage::predictTiming(const Graph &graph) const
{
    SNS_ASSERT(fitted_, "predictTiming() before fit()");
    NoGradGuard no_grad;
    const Variable pred = forward(graph);
    return std::exp(static_cast<double>(pred.value().at2(0, 0)) *
                        target_std_ +
                    target_mean_);
}

} // namespace sns::baselines
