/**
 * @file
 * A D-SAGE-style baseline (Ustun et al. 2020): a GraphSAGE graph neural
 * network with mean aggregation over the circuit graph, pooled into a
 * design-level timing prediction.
 *
 * This reproduces the comparison row of Table 7: a GNN that sees the
 * whole graph at once, against which SNS's path-based approach is
 * evaluated. Node features are the one-hot unit type plus log width;
 * K mean-aggregator layers propagate neighbourhood state; mean pooling
 * plus a linear head regress log cycle time.
 */

#ifndef SNS_BASELINES_DSAGE_HH
#define SNS_BASELINES_DSAGE_HH

#include <memory>
#include <vector>

#include "core/datasets.hh"
#include "nn/layers.hh"

namespace sns::baselines {

/** GraphSAGE baseline hyper-parameters. */
struct DsageConfig
{
    int hidden_dim = 32;
    int layers = 2;       ///< K-hop neighbourhood depth
    int epochs = 120;
    double learning_rate = 3e-3;
    uint64_t seed = 0xd5a6e;
};

/** Design-level GNN timing predictor. */
class Dsage
{
  public:
    explicit Dsage(DsageConfig config = DsageConfig());

    /** Train on design graphs with ground-truth cycle times. */
    void fit(const std::vector<const graphir::Graph *> &graphs,
             const std::vector<double> &timing_ps);

    /** Predict one design's cycle time. */
    double predictTiming(const graphir::Graph &graph) const;

    bool fitted() const { return fitted_; }

    const DsageConfig &config() const { return config_; }

  private:
    /** Per-node input feature matrix (one-hot type + log width). */
    tensor::Tensor nodeFeatures(const graphir::Graph &graph) const;

    /** Undirected neighbour lists for mean aggregation. */
    std::vector<std::vector<int>> neighborhoods(
        const graphir::Graph &graph) const;

    /** Forward pass to the scalar normalized log-timing prediction. */
    tensor::Variable forward(const graphir::Graph &graph) const;

    DsageConfig config_;
    Rng init_rng_;
    /** Per layer: self transform and neighbour transform. */
    std::vector<nn::Linear> self_layers_;
    std::vector<nn::Linear> neigh_layers_;
    std::unique_ptr<nn::Linear> head_;
    bool fitted_ = false;
    double target_mean_ = 0.0;
    double target_std_ = 1.0;
};

} // namespace sns::baselines

#endif // SNS_BASELINES_DSAGE_HH
