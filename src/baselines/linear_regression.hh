/**
 * @file
 * The §3.3 strawman baseline: a linear (ridge) regression that predicts
 * a circuit path's physical characteristics from its token counts
 * alone. By construction it cannot distinguish [mul, add] from
 * [add, mul] — the ordering blindness that motivates the
 * Circuitformer — and the ablation bench quantifies exactly that gap.
 */

#ifndef SNS_BASELINES_LINEAR_REGRESSION_HH
#define SNS_BASELINES_LINEAR_REGRESSION_HH

#include <vector>

#include "core/datasets.hh"
#include "core/circuitformer.hh"

namespace sns::baselines {

/** Closed-form ridge regression over path token-count features. */
class LinearPathRegression
{
  public:
    /** @param ridge L2 regularization strength */
    explicit LinearPathRegression(double ridge = 1e-3);

    /** Fit on labelled circuit paths (targets learned in log space). */
    void fit(const std::vector<core::PathRecord> &records);

    /** Predict one path. */
    core::PathPrediction predict(
        const std::vector<graphir::TokenId> &tokens) const;

    /** Predict many paths. */
    std::vector<core::PathPrediction> predictAll(
        const std::vector<std::vector<graphir::TokenId>> &paths) const;

    bool fitted() const { return fitted_; }

  private:
    /** Token-count feature vector (+1 bias and +1 length feature). */
    std::vector<double> features(
        const std::vector<graphir::TokenId> &tokens) const;

    double ridge_;
    bool fitted_ = false;
    /** weights_[target][feature], targets = timing/area/power logs. */
    std::vector<std::vector<double>> weights_;
};

/**
 * Solve the symmetric positive-definite system A x = b in place via
 * Gaussian elimination with partial pivoting. Exposed for testing.
 */
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b);

} // namespace sns::baselines

#endif // SNS_BASELINES_LINEAR_REGRESSION_HH
