#include "baselines/linear_regression.hh"

#include <cmath>

#include "util/logging.hh"

namespace sns::baselines {

using core::PathPrediction;
using core::PathRecord;
using graphir::TokenId;
using graphir::Vocabulary;

std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const size_t n = b.size();
    SNS_ASSERT(a.size() == n, "system dimensions mismatch");

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        size_t pivot = col;
        for (size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        SNS_ASSERT(std::fabs(a[col][col]) > 1e-12,
                   "singular system (increase ridge)");

        for (size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (size_t k = row + 1; k < n; ++k)
            acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

LinearPathRegression::LinearPathRegression(double ridge) : ridge_(ridge)
{
}

std::vector<double>
LinearPathRegression::features(const std::vector<TokenId> &tokens) const
{
    const auto &vocab = Vocabulary::instance();
    std::vector<double> f(vocab.circuitSize() + 2, 0.0);
    for (TokenId token : tokens) {
        SNS_ASSERT(token >= 0 && token < vocab.circuitSize(),
                   "non-circuit token in path");
        f[token] += 1.0;
    }
    f[vocab.circuitSize()] = static_cast<double>(tokens.size());
    f[vocab.circuitSize() + 1] = 1.0; // bias
    return f;
}

void
LinearPathRegression::fit(const std::vector<PathRecord> &records)
{
    SNS_ASSERT(!records.empty(), "fit() needs records");
    const size_t dim = features(records.front().tokens).size();

    // Normal equations with ridge: (X^T X + rI) w = X^T y.
    std::vector<std::vector<double>> xtx(
        dim, std::vector<double>(dim, 0.0));
    std::vector<std::vector<double>> xty(3, std::vector<double>(dim, 0.0));

    for (const auto &record : records) {
        const auto f = features(record.tokens);
        const double y[3] = {std::log(std::max(record.timing_ps, 1e-9)),
                             std::log(std::max(record.area_um2, 1e-9)),
                             std::log(std::max(record.power_mw, 1e-9))};
        for (size_t i = 0; i < dim; ++i) {
            if (f[i] == 0.0)
                continue;
            for (size_t j = 0; j < dim; ++j)
                xtx[i][j] += f[i] * f[j];
            for (int t = 0; t < 3; ++t)
                xty[t][i] += f[i] * y[t];
        }
    }
    for (size_t i = 0; i < dim; ++i)
        xtx[i][i] += ridge_;

    weights_.clear();
    for (int t = 0; t < 3; ++t)
        weights_.push_back(solveLinearSystem(xtx, xty[t]));
    fitted_ = true;
}

PathPrediction
LinearPathRegression::predict(const std::vector<TokenId> &tokens) const
{
    SNS_ASSERT(fitted_, "predict() before fit()");
    const auto f = features(tokens);
    double logs[3] = {0.0, 0.0, 0.0};
    for (int t = 0; t < 3; ++t) {
        for (size_t i = 0; i < f.size(); ++i)
            logs[t] += weights_[t][i] * f[i];
    }
    PathPrediction p;
    p.timing_ps = std::exp(logs[0]);
    p.area_um2 = std::exp(logs[1]);
    p.power_mw = std::exp(logs[2]);
    return p;
}

std::vector<PathPrediction>
LinearPathRegression::predictAll(
    const std::vector<std::vector<TokenId>> &paths) const
{
    std::vector<PathPrediction> out;
    out.reserve(paths.size());
    for (const auto &path : paths)
        out.push_back(predict(path));
    return out;
}

} // namespace sns::baselines
