/**
 * @file
 * A structural/dataflow Verilog front-end (the paper's primary input
 * format, §5.5) for a synthesizable subset:
 *
 *   - one module per file, ANSI-style port declarations
 *     (`input [7:0] a`, `output [15:0] y`, plain `input clk`),
 *   - `wire` / `reg` declarations with optional ranges,
 *   - continuous assignments: `assign y = a * b + c;`,
 *   - registered assignments:
 *     `always @(posedge clk) begin acc <= acc + p; end`
 *     (also the single-statement form without begin/end),
 *   - expressions: `?:`, `| & ^ + - * / % << >> == != < > <= >=`,
 *     unary `~ - & | ^` (the last three as reductions), parentheses,
 *     identifiers, and integer literals (plain or sized like `8'hff`).
 *
 * Elaboration maps each operator onto the Table-1 vocabulary with the
 * §3.1 width rule (a node's width is the maximum of its operand and
 * target widths; rounding happens inside GraphIR). Constant operands
 * are tie-offs: the operator node is still instantiated, wired only to
 * its non-constant operands — a `+ 1` is an incrementer, hardware that
 * exists even though one input is constant.
 *
 * Unsupported constructs (initial blocks, instantiation, generate,
 * behavioural if/case) raise VerilogError with a line number.
 */

#ifndef SNS_NETLIST_VERILOG_PARSER_HH
#define SNS_NETLIST_VERILOG_PARSER_HH

#include <stdexcept>
#include <string>

#include "graphir/graph.hh"

namespace sns::netlist {

/** Error in Verilog input, carrying a 1-based line number. */
class VerilogError : public std::runtime_error
{
  public:
    VerilogError(int line, const std::string &message);

    int line() const { return line_; }

  private:
    int line_;
};

/** Parse Verilog source text into a validated GraphIR circuit. */
graphir::Graph parseVerilog(const std::string &source);

/** Parse a Verilog file from disk. */
graphir::Graph loadVerilogFile(const std::string &path);

} // namespace sns::netlist

#endif // SNS_NETLIST_VERILOG_PARSER_HH
