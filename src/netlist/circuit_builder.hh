/**
 * @file
 * Programmatic construction of GraphIR circuits.
 *
 * CircuitBuilder is the structural front-end used by the design
 * generator library (src/designs) and the case-study generators. It
 * offers one method per Table-1 functional unit plus composite helpers
 * (register banks, balanced reduction trees, pipelined chains) that the
 * generators use to express realistic microarchitecture.
 */

#ifndef SNS_NETLIST_CIRCUIT_BUILDER_HH
#define SNS_NETLIST_CIRCUIT_BUILDER_HH

#include <initializer_list>
#include <string>
#include <vector>

#include "graphir/graph.hh"

namespace sns::netlist {

using graphir::Graph;
using graphir::NodeId;
using graphir::NodeType;

/** Fluent builder producing a validated GraphIR circuit. */
class CircuitBuilder
{
  public:
    /** Start a new design with the given name. */
    explicit CircuitBuilder(std::string name);

    /** Add an input port of the given width. */
    NodeId input(int width);

    /** Add an output port driven by the given sources. */
    NodeId output(int width, std::initializer_list<NodeId> sources);

    /** Add an output port driven by a vector of sources. */
    NodeId output(int width, const std::vector<NodeId> &sources);

    /** Add a free-standing register of the given width. */
    NodeId dff(int width);

    /**
     * Add a generic functional unit fed by the given sources.
     *
     * @param type unit category
     * @param width maximal wire width (rounded per §3.1)
     * @param sources driving vertices
     */
    NodeId op(NodeType type, int width,
              const std::vector<NodeId> &sources);

    /** @name Table-1 unit shorthands
     * Width is the unit's maximal connection width; sources are the
     * driving vertices.
     * @{
     */
    NodeId add(int width, NodeId a, NodeId b);
    NodeId mul(int width, NodeId a, NodeId b);
    NodeId div(int width, NodeId a, NodeId b);
    NodeId mod(int width, NodeId a, NodeId b);
    NodeId eq(int width, NodeId a, NodeId b);
    NodeId lgt(int width, NodeId a, NodeId b);
    NodeId mux(int width, NodeId sel, NodeId a, NodeId b);
    NodeId bnot(int width, NodeId a);
    NodeId band(int width, NodeId a, NodeId b);
    NodeId bor(int width, NodeId a, NodeId b);
    NodeId bxor(int width, NodeId a, NodeId b);
    NodeId shifter(int width, NodeId value, NodeId amount);
    NodeId reduceAnd(NodeId a);
    NodeId reduceOr(NodeId a);
    NodeId reduceXor(NodeId a);
    /** @} */

    /** Register the given source (dff of the same width). */
    NodeId reg(NodeId source);

    /** Register the given source with an explicit register width. */
    NodeId reg(int width, NodeId source);

    /** Register every element of a bus. */
    std::vector<NodeId> regBank(const std::vector<NodeId> &sources);

    /**
     * Balanced binary reduction tree combining a bus with a two-input
     * unit type (typically Add for adder trees, Or/And for logic).
     * @return the tree's root vertex
     */
    NodeId reduceTree(NodeType type, int width,
                      std::vector<NodeId> inputs);

    /**
     * N-input one-hot multiplexer network built from 2:1 muxes.
     * @param select vertex driving every mux select input
     */
    NodeId muxTree(int width, NodeId select, std::vector<NodeId> inputs);

    /** A bus of fresh input ports. */
    std::vector<NodeId> inputBus(int width, int count);

    /** Wire an extra edge after construction (e.g. feedback into a dff). */
    void connect(NodeId from, NodeId to);

    /** Width of an existing vertex (rounded). */
    int widthOf(NodeId id) const { return graph_.width(id); }

    /** Access the graph under construction. */
    const Graph &graph() const { return graph_; }

    /** Validate and take ownership of the finished design. */
    Graph build();

  private:
    Graph graph_;
};

} // namespace sns::netlist

#endif // SNS_NETLIST_CIRCUIT_BUILDER_HH
