#include "netlist/snl_parser.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/logging.hh"
#include "util/string_utils.hh"
#include "verify/analyzer.hh"

namespace sns::netlist {

using graphir::Graph;
using graphir::NodeId;
using graphir::NodeType;

SnlError::SnlError(int line, const std::string &message)
    : std::runtime_error("SNL line " + std::to_string(line) + ": " + message),
      line_(line)
{
}

namespace {

struct Statement
{
    int line;
    std::string kind;     // input / output / node / reg
    std::string id;
    NodeType type;
    int width;
    std::vector<std::string> sources;
    std::string module; // enclosing `module` scope ("" = default)
};

int
parseWidth(int line, const std::string &text)
{
    try {
        size_t pos = 0;
        const int width = std::stoi(text, &pos);
        if (pos != text.size() || width <= 0)
            throw SnlError(line, "bad width '" + text + "'");
        return width;
    } catch (const std::invalid_argument &) {
        throw SnlError(line, "bad width '" + text + "'");
    } catch (const std::out_of_range &) {
        throw SnlError(line, "width out of range '" + text + "'");
    }
}

} // namespace

Graph
parseSnl(const std::string &source)
{
    std::istringstream stream(source);
    std::string line_text;
    int line_no = 0;

    std::string design_name;
    std::string module_scope;
    std::vector<Statement> statements;

    // Pass 1: parse statements.
    while (std::getline(stream, line_text)) {
        ++line_no;
        const auto hash = line_text.find('#');
        if (hash != std::string::npos)
            line_text.erase(hash);
        const auto fields = splitWhitespace(line_text);
        if (fields.empty())
            continue;

        const std::string &kind = fields[0];
        if (kind == "design") {
            if (fields.size() != 2)
                throw SnlError(line_no, "design needs exactly one name");
            design_name = fields[1];
            continue;
        }
        if (kind == "module") {
            if (fields.size() > 2)
                throw SnlError(line_no, "module takes at most one name");
            module_scope = fields.size() == 2 ? fields[1] : "";
            continue;
        }

        Statement stmt;
        stmt.line = line_no;
        stmt.kind = kind;
        stmt.module = module_scope;
        if (kind == "input") {
            if (fields.size() != 3)
                throw SnlError(line_no, "input needs <id> <width>");
            stmt.id = fields[1];
            stmt.type = NodeType::Io;
            stmt.width = parseWidth(line_no, fields[2]);
        } else if (kind == "output" || kind == "reg") {
            if (fields.size() < 3)
                throw SnlError(line_no, kind + " needs <id> <width> [src...]");
            stmt.id = fields[1];
            stmt.type = kind == "reg" ? NodeType::Dff : NodeType::Io;
            stmt.width = parseWidth(line_no, fields[2]);
            stmt.sources.assign(fields.begin() + 3, fields.end());
        } else if (kind == "node") {
            if (fields.size() < 4)
                throw SnlError(line_no,
                               "node needs <id> <type> <width> [src...]");
            stmt.id = fields[1];
            const auto type = graphir::nodeTypeFromName(fields[2]);
            if (!type)
                throw SnlError(line_no, "unknown node type '" + fields[2] +
                                        "'");
            if (*type == NodeType::Io || *type == NodeType::Dff) {
                throw SnlError(line_no,
                               "use input/output/reg statements for io/dff");
            }
            stmt.type = *type;
            stmt.width = parseWidth(line_no, fields[3]);
            stmt.sources.assign(fields.begin() + 4, fields.end());
        } else {
            throw SnlError(line_no, "unknown statement '" + kind + "'");
        }
        statements.push_back(std::move(stmt));
    }

    if (design_name.empty())
        throw SnlError(line_no, "missing 'design <name>' statement");

    // Pass 2: declare all vertices, then wire sources.
    Graph graph(design_name);
    std::unordered_map<std::string, NodeId> symbols;
    for (const auto &stmt : statements) {
        if (symbols.count(stmt.id)) {
            throw SnlError(stmt.line,
                           "duplicate identifier '" + stmt.id + "'");
        }
        const NodeId id = graph.addNode(stmt.type, stmt.width);
        if (!stmt.module.empty())
            graph.setModule(id, stmt.module);
        symbols[stmt.id] = id;
    }
    for (const auto &stmt : statements) {
        const NodeId target = symbols.at(stmt.id);
        for (const auto &src : stmt.sources) {
            const auto it = symbols.find(src);
            if (it == symbols.end()) {
                throw SnlError(stmt.line,
                               "undefined identifier '" + src + "'");
            }
            graph.addEdge(it->second, target);
        }
    }

    // Static verification at the front-end boundary. Under a lint
    // tool's CollectGuard every finding is gathered; otherwise a
    // structural ERROR (combinational loop, width-rule violation,
    // dangling net, ...) is malformed user input and raises SnlError.
    if (verify::enabled()) {
        auto report = verify::GraphAnalyzer().run(graph);
        if (verify::collecting()) {
            verify::enforce(std::move(report), "snl:" + design_name);
        } else if (report.hasErrors()) {
            throw SnlError(line_no, "design '" + design_name + "': " +
                                        report.summary());
        }
    }
    return graph;
}

Graph
loadSnlFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open SNL file: ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseSnl(buffer.str());
}

std::string
writeSnl(const Graph &graph)
{
    std::ostringstream out;
    out << "design " << graph.name() << "\n";
    auto sym = [](NodeId id) { return "n" + std::to_string(id); };

    // Declarations in id order; wiring lives on the consumer side, so
    // inputs (no predecessors) need no source list. Module scopes are
    // re-opened whenever the label changes between consecutive ids.
    std::string scope;
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        if (graph.module(id) != scope) {
            scope = graph.module(id);
            out << "module";
            if (!scope.empty())
                out << " " << scope;
            out << "\n";
        }
        const NodeType type = graph.type(id);
        const auto &preds = graph.predecessors(id);
        if (type == NodeType::Io && preds.empty()) {
            out << "input " << sym(id) << " " << graph.rawWidth(id) << "\n";
            continue;
        }
        if (type == NodeType::Io)
            out << "output ";
        else if (type == NodeType::Dff)
            out << "reg ";
        else
            out << "node ";
        out << sym(id) << " ";
        if (type != NodeType::Io && type != NodeType::Dff)
            out << graphir::nodeTypeName(type) << " ";
        out << graph.rawWidth(id);
        for (NodeId src : preds)
            out << " " << sym(src);
        out << "\n";
    }
    return out.str();
}

} // namespace sns::netlist
