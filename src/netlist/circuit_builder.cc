#include "netlist/circuit_builder.hh"

#include <utility>

#include "util/logging.hh"
#include "verify/analyzer.hh"

namespace sns::netlist {

CircuitBuilder::CircuitBuilder(std::string name) : graph_(std::move(name))
{
}

NodeId
CircuitBuilder::input(int width)
{
    return graph_.addNode(NodeType::Io, width);
}

NodeId
CircuitBuilder::output(int width, std::initializer_list<NodeId> sources)
{
    return output(width, std::vector<NodeId>(sources));
}

NodeId
CircuitBuilder::output(int width, const std::vector<NodeId> &sources)
{
    return op(NodeType::Io, width, sources);
}

NodeId
CircuitBuilder::dff(int width)
{
    return graph_.addNode(NodeType::Dff, width);
}

NodeId
CircuitBuilder::op(NodeType type, int width,
                   const std::vector<NodeId> &sources)
{
    const NodeId id = graph_.addNode(type, width);
    for (NodeId src : sources)
        graph_.addEdge(src, id);
    return id;
}

NodeId
CircuitBuilder::add(int width, NodeId a, NodeId b)
{
    return op(NodeType::Add, width, {a, b});
}

NodeId
CircuitBuilder::mul(int width, NodeId a, NodeId b)
{
    return op(NodeType::Mul, width, {a, b});
}

NodeId
CircuitBuilder::div(int width, NodeId a, NodeId b)
{
    return op(NodeType::Div, width, {a, b});
}

NodeId
CircuitBuilder::mod(int width, NodeId a, NodeId b)
{
    return op(NodeType::Mod, width, {a, b});
}

NodeId
CircuitBuilder::eq(int width, NodeId a, NodeId b)
{
    return op(NodeType::Eq, width, {a, b});
}

NodeId
CircuitBuilder::lgt(int width, NodeId a, NodeId b)
{
    return op(NodeType::Lgt, width, {a, b});
}

NodeId
CircuitBuilder::mux(int width, NodeId sel, NodeId a, NodeId b)
{
    return op(NodeType::Mux, width, {sel, a, b});
}

NodeId
CircuitBuilder::bnot(int width, NodeId a)
{
    return op(NodeType::Not, width, {a});
}

NodeId
CircuitBuilder::band(int width, NodeId a, NodeId b)
{
    return op(NodeType::And, width, {a, b});
}

NodeId
CircuitBuilder::bor(int width, NodeId a, NodeId b)
{
    return op(NodeType::Or, width, {a, b});
}

NodeId
CircuitBuilder::bxor(int width, NodeId a, NodeId b)
{
    return op(NodeType::Xor, width, {a, b});
}

NodeId
CircuitBuilder::shifter(int width, NodeId value, NodeId amount)
{
    return op(NodeType::Sh, width, {value, amount});
}

NodeId
CircuitBuilder::reduceAnd(NodeId a)
{
    return op(NodeType::ReduceAnd, graph_.width(a), {a});
}

NodeId
CircuitBuilder::reduceOr(NodeId a)
{
    return op(NodeType::ReduceOr, graph_.width(a), {a});
}

NodeId
CircuitBuilder::reduceXor(NodeId a)
{
    return op(NodeType::ReduceXor, graph_.width(a), {a});
}

NodeId
CircuitBuilder::reg(NodeId source)
{
    return reg(graph_.width(source), source);
}

NodeId
CircuitBuilder::reg(int width, NodeId source)
{
    return op(NodeType::Dff, width, {source});
}

std::vector<NodeId>
CircuitBuilder::regBank(const std::vector<NodeId> &sources)
{
    std::vector<NodeId> regs;
    regs.reserve(sources.size());
    for (NodeId src : sources)
        regs.push_back(reg(src));
    return regs;
}

NodeId
CircuitBuilder::reduceTree(NodeType type, int width,
                           std::vector<NodeId> inputs)
{
    SNS_ASSERT(!inputs.empty(), "reduceTree() needs at least one input");
    while (inputs.size() > 1) {
        std::vector<NodeId> level;
        level.reserve((inputs.size() + 1) / 2);
        for (size_t i = 0; i + 1 < inputs.size(); i += 2)
            level.push_back(op(type, width, {inputs[i], inputs[i + 1]}));
        if (inputs.size() % 2 == 1)
            level.push_back(inputs.back());
        inputs = std::move(level);
    }
    return inputs.front();
}

NodeId
CircuitBuilder::muxTree(int width, NodeId select,
                        std::vector<NodeId> inputs)
{
    SNS_ASSERT(!inputs.empty(), "muxTree() needs at least one input");
    while (inputs.size() > 1) {
        std::vector<NodeId> level;
        level.reserve((inputs.size() + 1) / 2);
        for (size_t i = 0; i + 1 < inputs.size(); i += 2)
            level.push_back(mux(width, select, inputs[i], inputs[i + 1]));
        if (inputs.size() % 2 == 1)
            level.push_back(inputs.back());
        inputs = std::move(level);
    }
    return inputs.front();
}

std::vector<NodeId>
CircuitBuilder::inputBus(int width, int count)
{
    std::vector<NodeId> bus;
    bus.reserve(count);
    for (int i = 0; i < count; ++i)
        bus.push_back(input(width));
    return bus;
}

void
CircuitBuilder::connect(NodeId from, NodeId to)
{
    graph_.addEdge(from, to);
}

Graph
CircuitBuilder::build()
{
    // Full static analysis at the programmatic front-end boundary:
    // fatal on ERROR under the default (test) policy, log-and-count
    // under SNS_VERIFY=count, collected when a lint tool is driving.
    if (verify::enabled()) {
        verify::enforce(verify::GraphAnalyzer().run(graph_),
                        "CircuitBuilder(" + graph_.name() + ")");
    }
    return std::move(graph_);
}

} // namespace sns::netlist
