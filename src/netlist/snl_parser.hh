/**
 * @file
 * SNL — the Simple NetList language, our textual HDL front-end.
 *
 * SNL replaces the paper's Verilog + Yosys combination: it is a
 * structural description whose elaboration directly yields the same
 * typed, width-annotated operator graph that SNS consumes.
 *
 * Grammar (one statement per line, '#' starts a comment):
 *
 *     design <name>
 *     module [<name>]
 *     input  <id> <width>
 *     node   <id> <type> <width> [<src> ...]
 *     reg    <id> <width> [<src> ...]
 *     output <id> <width> [<src> ...]
 *
 * where <type> is a Table-1 mnemonic (add, mul, mux, reduce_xor, ...).
 * `module <name>` opens a named scope: every following vertex is
 * labeled with that module until the next module statement (`module`
 * with no name returns to the unnamed default scope). Module labels
 * are annotations for the edit-loop diff (docs/editloop.md) — they
 * never change a prediction, and older SNL files without them parse
 * exactly as before.
 * Identifiers may be referenced before their defining line (two-pass
 * elaboration), which is how register feedback loops are written:
 *
 *     design mac8
 *     input  a 8
 *     input  b 8
 *     node   m   mul 16 a b
 *     node   s   add 16 m acc
 *     reg    acc 16 s
 *     output out 16 acc
 */

#ifndef SNS_NETLIST_SNL_PARSER_HH
#define SNS_NETLIST_SNL_PARSER_HH

#include <stdexcept>
#include <string>

#include "graphir/graph.hh"

namespace sns::netlist {

/** Error thrown on malformed SNL input, carrying a line number. */
class SnlError : public std::runtime_error
{
  public:
    SnlError(int line, const std::string &message);

    /** 1-based line number of the offending statement. */
    int line() const { return line_; }

  private:
    int line_;
};

/** Parse SNL source text into a validated GraphIR circuit. */
graphir::Graph parseSnl(const std::string &source);

/** Parse an SNL file from disk. */
graphir::Graph loadSnlFile(const std::string &path);

/** Serialize a circuit back to SNL text (round-trip support). */
std::string writeSnl(const graphir::Graph &graph);

} // namespace sns::netlist

#endif // SNS_NETLIST_SNL_PARSER_HH
