#include "netlist/verilog_parser.hh"

#include <cctype>
#include <fstream>
#include <algorithm>
#include <map>
#include <set>
#include <memory>
#include <sstream>
#include <vector>

#include "util/logging.hh"
#include "verify/analyzer.hh"

namespace sns::netlist {

using graphir::Graph;
using graphir::NodeId;
using graphir::NodeType;

VerilogError::VerilogError(int line, const std::string &message)
    : std::runtime_error("Verilog line " + std::to_string(line) + ": " +
                         message),
      line_(line)
{
}

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokKind
{
    Ident,
    Number,
    Punct,
    End,
};

struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    int line = 0;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &source)
    {
        tokenize(source);
        // Errors at end-of-input report the last line, not line 0.
        end_.line = tokens_.empty() ? 1 : tokens_.back().line;
    }

    const Token &peek(size_t ahead = 0) const
    {
        const size_t idx = cursor_ + ahead;
        return idx < tokens_.size() ? tokens_[idx] : end_;
    }

    Token next()
    {
        const Token tok = peek();
        if (cursor_ < tokens_.size())
            ++cursor_;
        return tok;
    }

    bool
    accept(const std::string &text)
    {
        if (peek().text == text && peek().kind != TokKind::End) {
            next();
            return true;
        }
        return false;
    }

    Token
    expect(const std::string &text)
    {
        if (peek().text != text) {
            throw VerilogError(peek().line, "expected '" + text +
                                                "', got '" +
                                                peek().text + "'");
        }
        return next();
    }

    Token
    expectIdent()
    {
        if (peek().kind != TokKind::Ident) {
            throw VerilogError(peek().line, "expected identifier, got '" +
                                                peek().text + "'");
        }
        return next();
    }

    bool done() const { return peek().kind == TokKind::End; }

  private:
    void
    tokenize(const std::string &src)
    {
        int line = 1;
        size_t i = 0;
        const auto n = src.size();
        while (i < n) {
            const char c = src[i];
            if (c == '\n') {
                ++line;
                ++i;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            // Comments.
            if (c == '/' && i + 1 < n && src[i + 1] == '/') {
                while (i < n && src[i] != '\n')
                    ++i;
                continue;
            }
            if (c == '/' && i + 1 < n && src[i + 1] == '*') {
                i += 2;
                while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                    if (src[i] == '\n')
                        ++line;
                    ++i;
                }
                i = std::min(n, i + 2);
                continue;
            }
            // Identifiers / keywords.
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                size_t j = i;
                while (j < n && (std::isalnum(
                                     static_cast<unsigned char>(src[j])) ||
                                 src[j] == '_' || src[j] == '$')) {
                    ++j;
                }
                tokens_.push_back(
                    {TokKind::Ident, src.substr(i, j - i), line});
                i = j;
                continue;
            }
            // Numbers, including sized literals like 8'hff and '1.
            if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
                size_t j = i;
                while (j < n &&
                       (std::isalnum(
                            static_cast<unsigned char>(src[j])) ||
                        src[j] == '\'' || src[j] == '_')) {
                    ++j;
                }
                tokens_.push_back(
                    {TokKind::Number, src.substr(i, j - i), line});
                i = j;
                continue;
            }
            // Multi-character punctuation.
            static const char *two_char[] = {"<=", ">=", "==", "!=",
                                             "<<", ">>", "&&", "||"};
            bool matched = false;
            for (const char *op : two_char) {
                if (src.compare(i, 2, op) == 0) {
                    tokens_.push_back({TokKind::Punct, op, line});
                    i += 2;
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
            tokens_.push_back({TokKind::Punct, std::string(1, c), line});
            ++i;
        }
    }

    std::vector<Token> tokens_;
    Token end_;
    size_t cursor_ = 0;
};

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

struct Expr
{
    enum class Kind
    {
        Constant,
        Ident,
        Unary,
        Binary,
        Ternary,
    };

    Kind kind = Kind::Constant;
    int line = 0;
    std::string op;     // operator spelling for Unary/Binary
    std::string ident;  // for Ident
    int const_width = 1;
    std::unique_ptr<Expr> a;
    std::unique_ptr<Expr> b;
    std::unique_ptr<Expr> c;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Net
{
    enum class Kind
    {
        Input,
        Output,
        Wire,
        Reg,
    };

    Kind kind = Kind::Wire;
    int width = 1;
    int line = 0;
    const Expr *driver = nullptr; // for Output/Wire/Reg
    bool registered = false;      // driver comes from an always block
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(Lexer &lex) : lex_(lex) {}

    std::string module_name;
    std::map<std::string, Net> nets;
    std::vector<std::string> port_order;
    std::vector<ExprPtr> owned_exprs;
    std::vector<std::string> clocks;

    void
    parseModule()
    {
        lex_.expect("module");
        module_name = lex_.expectIdent().text;
        lex_.expect("(");
        if (!lex_.accept(")")) {
            parsePortDecl();
            while (lex_.accept(","))
                parsePortDecl();
            lex_.expect(")");
        }
        lex_.expect(";");
        while (!lex_.accept("endmodule")) {
            if (lex_.done()) {
                throw VerilogError(lex_.peek().line,
                                   "missing 'endmodule'");
            }
            parseItem();
        }
    }

  private:
    int
    parseRange()
    {
        // "[msb:lsb]" -> width; absent -> 1.
        if (!lex_.accept("["))
            return 1;
        const int msb = parseIntLiteral();
        lex_.expect(":");
        const int lsb = parseIntLiteral();
        lex_.expect("]");
        if (msb < lsb) {
            throw VerilogError(lex_.peek().line,
                               "descending ranges only ([msb:lsb])");
        }
        return msb - lsb + 1;
    }

    int
    parseIntLiteral()
    {
        const Token tok = lex_.next();
        if (tok.kind != TokKind::Number)
            throw VerilogError(tok.line, "expected number");
        try {
            return std::stoi(tok.text);
        } catch (const std::exception &) {
            throw VerilogError(tok.line, "bad number '" + tok.text + "'");
        }
    }

    void
    declare(const std::string &name, Net net)
    {
        if (nets.count(name)) {
            throw VerilogError(net.line,
                               "duplicate declaration of '" + name + "'");
        }
        nets[name] = net;
    }

    void
    parsePortDecl()
    {
        const Token dir = lex_.expectIdent();
        Net net;
        net.line = dir.line;
        if (dir.text == "input") {
            net.kind = Net::Kind::Input;
        } else if (dir.text == "output") {
            net.kind = Net::Kind::Output;
        } else {
            throw VerilogError(dir.line,
                               "ports must be 'input' or 'output'");
        }
        lex_.accept("wire");
        if (lex_.accept("reg")) {
            if (net.kind != Net::Kind::Output) {
                throw VerilogError(dir.line, "'reg' on an input port");
            }
        }
        net.width = parseRange();
        const std::string name = lex_.expectIdent().text;
        declare(name, net);
        port_order.push_back(name);
    }

    void
    parseItem()
    {
        const Token head = lex_.peek();
        if (head.text == "wire" || head.text == "reg") {
            lex_.next();
            Net net;
            net.kind = head.text == "wire" ? Net::Kind::Wire
                                           : Net::Kind::Reg;
            net.line = head.line;
            net.width = parseRange();
            declare(lex_.expectIdent().text, net);
            while (lex_.accept(","))
                declare(lex_.expectIdent().text, net);
            lex_.expect(";");
            return;
        }
        if (head.text == "assign") {
            lex_.next();
            const Token target = lex_.expectIdent();
            lex_.expect("=");
            ExprPtr expr = parseExpr();
            lex_.expect(";");
            attachDriver(target, std::move(expr), /*registered=*/false);
            return;
        }
        if (head.text == "always") {
            parseAlways();
            return;
        }
        throw VerilogError(head.line,
                           "unsupported construct '" + head.text + "'");
    }

    void
    parseAlways()
    {
        const Token head = lex_.expect("always");
        lex_.expect("@");
        lex_.expect("(");
        lex_.expect("posedge");
        clocks.push_back(lex_.expectIdent().text);
        lex_.expect(")");

        auto parseRegAssign = [this]() {
            const Token target = lex_.expectIdent();
            lex_.expect("<=");
            ExprPtr expr = parseExpr();
            lex_.expect(";");
            attachDriver(target, std::move(expr), /*registered=*/true);
        };

        if (lex_.accept("begin")) {
            while (!lex_.accept("end"))
                parseRegAssign();
        } else {
            parseRegAssign();
        }
        (void)head;
    }

    void
    attachDriver(const Token &target, ExprPtr expr, bool registered)
    {
        const auto it = nets.find(target.text);
        if (it == nets.end()) {
            throw VerilogError(target.line,
                               "assignment to undeclared '" +
                                   target.text + "'");
        }
        Net &net = it->second;
        if (net.driver != nullptr) {
            throw VerilogError(target.line,
                               "'" + target.text + "' has two drivers");
        }
        if (registered && net.kind != Net::Kind::Reg &&
            net.kind != Net::Kind::Output) {
            throw VerilogError(target.line,
                               "non-blocking assignment to a non-reg");
        }
        if (!registered && net.kind == Net::Kind::Reg) {
            throw VerilogError(target.line,
                               "continuous assignment to a reg");
        }
        if (net.kind == Net::Kind::Input) {
            throw VerilogError(target.line, "assignment to an input");
        }
        net.driver = expr.get();
        net.registered = registered;
        owned_exprs.push_back(std::move(expr));
    }

    // Precedence-climbing expression parser.
    ExprPtr
    parseExpr()
    {
        return parseTernary();
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (!lex_.accept("?"))
            return cond;
        ExprPtr then_val = parseExpr();
        lex_.expect(":");
        ExprPtr else_val = parseExpr();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Ternary;
        node->line = cond->line;
        node->a = std::move(cond);
        node->b = std::move(then_val);
        node->c = std::move(else_val);
        return node;
    }

    static int
    precedenceOf(const std::string &op)
    {
        if (op == "|" || op == "||")
            return 1;
        if (op == "^")
            return 2;
        if (op == "&" || op == "&&")
            return 3;
        if (op == "==" || op == "!=")
            return 4;
        if (op == "<" || op == ">" || op == "<=" || op == ">=")
            return 5;
        if (op == "<<" || op == ">>")
            return 6;
        if (op == "+" || op == "-")
            return 7;
        if (op == "*" || op == "/" || op == "%")
            return 8;
        return -1;
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            const std::string op = lex_.peek().text;
            const int prec = precedenceOf(op);
            if (lex_.peek().kind != TokKind::Punct || prec < min_prec ||
                prec < 0) {
                return lhs;
            }
            // "<=" is ambiguous with non-blocking assignment; inside an
            // expression it is always the comparison.
            lex_.next();
            ExprPtr rhs = parseBinary(prec + 1);
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = lhs->line;
            node->op = op;
            node->a = std::move(lhs);
            node->b = std::move(rhs);
            lhs = std::move(node);
        }
    }

    ExprPtr
    parseUnary()
    {
        const Token head = lex_.peek();
        if (head.kind == TokKind::Punct &&
            (head.text == "~" || head.text == "-" || head.text == "&" ||
             head.text == "|" || head.text == "^" || head.text == "!")) {
            lex_.next();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Unary;
            node->line = head.line;
            node->op = head.text;
            node->a = parseUnary();
            return node;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        const Token head = lex_.next();
        if (head.text == "(") {
            ExprPtr inner = parseExpr();
            lex_.expect(")");
            return inner;
        }
        auto node = std::make_unique<Expr>();
        node->line = head.line;
        if (head.kind == TokKind::Ident) {
            node->kind = Expr::Kind::Ident;
            node->ident = head.text;
            return node;
        }
        if (head.kind == TokKind::Number) {
            node->kind = Expr::Kind::Constant;
            // Sized literal "8'hff" -> width 8; otherwise a small
            // default.
            const auto quote = head.text.find('\'');
            if (quote != std::string::npos && quote > 0) {
                node->const_width = std::stoi(head.text.substr(0, quote));
            } else {
                node->const_width = 8;
            }
            return node;
        }
        throw VerilogError(head.line,
                           "unexpected token '" + head.text + "'");
    }

    Lexer &lex_;
};

// ---------------------------------------------------------------------
// Elaborator
// ---------------------------------------------------------------------

class Elaborator
{
  public:
    explicit Elaborator(Parser &parsed)
        : parsed_(parsed), graph_(parsed.module_name)
    {
    }

    Graph
    run()
    {
        // Clock inputs (used only in sensitivity lists) do not become
        // datapath vertices.
        std::map<std::string, bool> is_clock;
        for (const auto &clk : parsed_.clocks)
            is_clock[clk] = true;

        // Declare sequential boundary vertices up front so feedback
        // resolves: inputs and registers.
        for (auto &[name, net] : parsed_.nets) {
            if (net.kind == Net::Kind::Input && !is_clock.count(name)) {
                nodes_[name] = graph_.addNode(NodeType::Io, net.width);
            } else if (net.kind == Net::Kind::Reg ||
                       (net.kind == Net::Kind::Output &&
                        net.registered)) {
                nodes_[name] = graph_.addNode(NodeType::Dff, net.width);
            }
        }

        // Wire every register and output driver. Wires elaborate on
        // demand (memoized in evalIdent) so shared logic is built once
        // and unused wires — like dead code under synthesis — not at
        // all.
        for (auto &[name, net] : parsed_.nets) {
            if (net.kind == Net::Kind::Input ||
                net.kind == Net::Kind::Wire) {
                continue;
            }
            if (net.driver == nullptr) {
                throw VerilogError(net.line,
                                   "'" + name + "' is never assigned");
            }
            const NodeId source =
                evalExpr(*net.driver, net.width, name);
            if (net.kind == Net::Kind::Reg ||
                (net.kind == Net::Kind::Output && net.registered)) {
                if (source != graphir::kInvalidNode)
                    graph_.addEdge(source, nodes_.at(name));
                if (net.kind == Net::Kind::Output) {
                    // Registered output: the dff also drives a port.
                    const NodeId port =
                        graph_.addNode(NodeType::Io, net.width);
                    graph_.addEdge(nodes_.at(name), port);
                }
            } else if (net.kind == Net::Kind::Output) {
                const NodeId port =
                    graph_.addNode(NodeType::Io, net.width);
                if (source != graphir::kInvalidNode)
                    graph_.addEdge(source, port);
                nodes_[name] = port;
            }
        }

        // Front-end boundary verification (see snl_parser for the
        // policy): collect under a lint tool, raise VerilogError on
        // structural errors otherwise.
        if (verify::enabled()) {
            auto report = verify::GraphAnalyzer().run(graph_);
            if (verify::collecting()) {
                verify::enforce(std::move(report),
                                "verilog:" + graph_.name());
            } else if (report.hasErrors()) {
                throw VerilogError(1, "module '" + graph_.name() +
                                           "': " + report.summary());
            }
        }
        return std::move(graph_);
    }

  private:
    /**
     * Evaluate an expression to a driving vertex. Constants return
     * kInvalidNode (tie-offs have no vertex); operator nodes wire only
     * their non-constant operands.
     */
    NodeId
    evalExpr(const Expr &expr, int width_hint, const std::string &context)
    {
        switch (expr.kind) {
          case Expr::Kind::Constant:
            return graphir::kInvalidNode;
          case Expr::Kind::Ident:
            return evalIdent(expr, context);
          case Expr::Kind::Unary:
            return evalUnary(expr, width_hint, context);
          case Expr::Kind::Binary:
            return evalBinary(expr, width_hint, context);
          case Expr::Kind::Ternary: {
            const NodeId cond = evalExpr(*expr.a, 1, context);
            const NodeId then_val =
                evalExpr(*expr.b, width_hint, context);
            const NodeId else_val =
                evalExpr(*expr.c, width_hint, context);
            const int width = std::max(
                {width_hint, widthOf(then_val), widthOf(else_val)});
            return makeOp(NodeType::Mux, width,
                          {cond, then_val, else_val}, expr.line);
          }
        }
        throw VerilogError(expr.line, "unhandled expression");
    }

    NodeId
    evalIdent(const Expr &expr, const std::string &context)
    {
        const auto node_it = nodes_.find(expr.ident);
        if (node_it != nodes_.end())
            return node_it->second;

        const auto net_it = parsed_.nets.find(expr.ident);
        if (net_it == parsed_.nets.end()) {
            throw VerilogError(expr.line, "use of undeclared '" +
                                              expr.ident + "'");
        }
        const Net &net = net_it->second;
        if (net.driver == nullptr) {
            throw VerilogError(expr.line,
                               "'" + expr.ident + "' is never assigned");
        }
        if (in_progress_.count(expr.ident)) {
            throw VerilogError(expr.line,
                               "combinational loop through '" +
                                   expr.ident + "'");
        }
        in_progress_.insert(expr.ident);
        const NodeId node =
            evalExpr(*net.driver, net.width, expr.ident);
        in_progress_.erase(expr.ident);
        if (node == graphir::kInvalidNode) {
            throw VerilogError(expr.line,
                               "'" + expr.ident +
                                   "' reduces to a pure constant");
        }
        nodes_[expr.ident] = node;
        return node;
    }

    NodeId
    evalUnary(const Expr &expr, int width_hint,
              const std::string &context)
    {
        const NodeId operand = evalExpr(*expr.a, width_hint, context);
        if (operand == graphir::kInvalidNode) {
            throw VerilogError(expr.line,
                               "unary operator on a pure constant");
        }
        const int width = std::max(width_hint, widthOf(operand));
        if (expr.op == "~" || expr.op == "!")
            return makeOp(NodeType::Not, width, {operand}, expr.line);
        if (expr.op == "-") {
            // Two's-complement negation: inverter + incrementer.
            const NodeId inverted =
                makeOp(NodeType::Not, width, {operand}, expr.line);
            return makeOp(NodeType::Add, width, {inverted}, expr.line);
        }
        // Reductions collapse to 1 bit; the unit's width is the
        // operand's.
        const int op_width = widthOf(operand);
        if (expr.op == "&") {
            return makeOp(NodeType::ReduceAnd, op_width, {operand},
                          expr.line);
        }
        if (expr.op == "|") {
            return makeOp(NodeType::ReduceOr, op_width, {operand},
                          expr.line);
        }
        if (expr.op == "^") {
            return makeOp(NodeType::ReduceXor, op_width, {operand},
                          expr.line);
        }
        throw VerilogError(expr.line,
                           "unsupported unary operator '" + expr.op +
                               "'");
    }

    NodeId
    evalBinary(const Expr &expr, int width_hint,
               const std::string &context)
    {
        const NodeId lhs = evalExpr(*expr.a, width_hint, context);
        const NodeId rhs = evalExpr(*expr.b, width_hint, context);
        if (lhs == graphir::kInvalidNode &&
            rhs == graphir::kInvalidNode) {
            throw VerilogError(expr.line,
                               "constant-only expressions are not "
                               "synthesizable here");
        }
        const int operand_width = std::max(widthOf(lhs), widthOf(rhs));

        static const std::map<std::string, NodeType> kOps = {
            {"+", NodeType::Add},  {"-", NodeType::Add},
            {"*", NodeType::Mul},  {"/", NodeType::Div},
            {"%", NodeType::Mod},  {"&", NodeType::And},
            {"&&", NodeType::And}, {"|", NodeType::Or},
            {"||", NodeType::Or},  {"^", NodeType::Xor},
            {"<<", NodeType::Sh},  {">>", NodeType::Sh},
            {"==", NodeType::Eq},  {"!=", NodeType::Eq},
            {"<", NodeType::Lgt},  {">", NodeType::Lgt},
            {"<=", NodeType::Lgt}, {">=", NodeType::Lgt},
        };
        const auto it = kOps.find(expr.op);
        if (it == kOps.end()) {
            throw VerilogError(expr.line, "unsupported operator '" +
                                              expr.op + "'");
        }
        const NodeType type = it->second;
        // Comparisons keep their operand width (that is the datapath
        // the comparator processes); arithmetic and logic take the
        // wider of operands and assignment target.
        const bool comparison =
            type == NodeType::Eq || type == NodeType::Lgt;
        const int width = comparison
                              ? operand_width
                              : std::max(operand_width, width_hint);
        std::vector<NodeId> inputs;
        if (lhs != graphir::kInvalidNode)
            inputs.push_back(lhs);
        if (rhs != graphir::kInvalidNode)
            inputs.push_back(rhs);
        return makeOp(type, width, inputs, expr.line);
    }

    NodeId
    makeOp(NodeType type, int width, const std::vector<NodeId> &inputs,
           int line)
    {
        // Clamp degenerate widths (e.g. 1-bit conditions feeding a
        // comparator).
        const int clamped = std::max(width, 1);
        const NodeId id = graph_.addNode(type, clamped);
        for (NodeId input : inputs) {
            if (input != graphir::kInvalidNode)
                graph_.addEdge(input, id);
        }
        (void)line;
        return id;
    }

    int
    widthOf(NodeId id) const
    {
        return id == graphir::kInvalidNode ? 1 : graph_.rawWidth(id);
    }

    Parser &parsed_;
    Graph graph_;
    std::map<std::string, NodeId> nodes_;
    std::set<std::string> in_progress_;
};

} // namespace

Graph
parseVerilog(const std::string &source)
{
    Lexer lexer(source);
    Parser parser(lexer);
    parser.parseModule();
    if (!lexer.done()) {
        throw VerilogError(lexer.peek().line,
                           "trailing content after endmodule (one "
                           "module per file)");
    }
    Elaborator elaborator(parser);
    return elaborator.run();
}

Graph
loadVerilogFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open Verilog file: ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseVerilog(buffer.str());
}

} // namespace sns::netlist
