#include "gen/seqgan.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "gen/path_check.hh"
#include "util/logging.hh"

namespace sns::gen {

using graphir::Vocabulary;
using namespace sns::tensor;
using nn::Adam;
using nn::Embedding;
using nn::GruCell;
using nn::Linear;

namespace {

/** Model vocabulary: circuit tokens + pad + bos + eos. */
int
modelVocab()
{
    return Vocabulary::instance().totalSize();
}

} // namespace

SeqGan::SeqGan(SeqGanConfig config) : config_(config), rng_(config.seed)
{
    Rng init_rng = rng_.fork();
    const int vocab = modelVocab();
    g_embed_ = std::make_unique<Embedding>(vocab, config_.embed_dim,
                                           init_rng);
    g_rnn_ = std::make_unique<GruCell>(config_.embed_dim,
                                       config_.hidden_dim, init_rng);
    g_head_ = std::make_unique<Linear>(config_.hidden_dim, vocab,
                                       init_rng);
    d_embed_ = std::make_unique<Embedding>(vocab, config_.embed_dim,
                                           init_rng);
    d_rnn_ = std::make_unique<GruCell>(config_.embed_dim,
                                       config_.hidden_dim, init_rng);
    d_head_ = std::make_unique<Linear>(config_.hidden_dim, 1, init_rng);

    std::vector<Variable> g_params = g_embed_->parameters();
    for (const auto &p : g_rnn_->parameters())
        g_params.push_back(p);
    for (const auto &p : g_head_->parameters())
        g_params.push_back(p);
    g_opt_ = std::make_unique<Adam>(g_params, config_.generator_lr);

    std::vector<Variable> d_params = d_embed_->parameters();
    for (const auto &p : d_rnn_->parameters())
        d_params.push_back(p);
    for (const auto &p : d_head_->parameters())
        d_params.push_back(p);
    d_opt_ = std::make_unique<Adam>(d_params, config_.discriminator_lr);
}

std::vector<std::vector<TokenId>>
SeqGan::sampleBatch(int batch)
{
    NoGradGuard no_grad;
    const auto &vocab = Vocabulary::instance();
    const int bos = vocab.bosId();
    const int eos = vocab.eosId();

    std::vector<std::vector<TokenId>> sequences(batch);
    std::vector<bool> done(batch, false);
    std::vector<int> current(batch, bos);

    Variable h = g_rnn_->initialState(batch);
    for (int t = 0; t < config_.max_length; ++t) {
        const Variable emb = g_embed_->forward(current, {batch});
        h = g_rnn_->step(emb, h);
        const Variable probs = softmaxLastDim(g_head_->forward(h));
        bool all_done = true;
        for (int b = 0; b < batch; ++b) {
            if (done[b])
                continue;
            std::vector<double> weights(modelVocab());
            for (int v = 0; v < modelVocab(); ++v)
                weights[v] = probs.value().at2(b, v);
            // Never emit pad or bos mid-sequence.
            weights[vocab.padId()] = 0.0;
            weights[bos] = 0.0;
            const int next = static_cast<int>(rng_.categorical(weights));
            if (next == eos) {
                done[b] = true;
            } else {
                sequences[b].push_back(next);
                current[b] = next;
                all_done = false;
            }
        }
        if (all_done)
            break;
    }
    return sequences;
}

std::vector<TokenId>
SeqGan::sample()
{
    return sampleBatch(1)[0];
}

std::vector<TokenId>
SeqGan::rollOut(const std::vector<TokenId> &prefix)
{
    NoGradGuard no_grad;
    const auto &vocab = Vocabulary::instance();

    std::vector<TokenId> seq = prefix;
    Variable h = g_rnn_->initialState(1);
    int current = vocab.bosId();
    // Replay the prefix to rebuild the hidden state, then free-run.
    for (TokenId token : prefix) {
        h = g_rnn_->step(g_embed_->forward({current}, {1}), h);
        current = token;
    }
    while (seq.size() < static_cast<size_t>(config_.max_length)) {
        h = g_rnn_->step(g_embed_->forward({current}, {1}), h);
        const Variable probs = softmaxLastDim(g_head_->forward(h));
        std::vector<double> weights(modelVocab());
        for (int v = 0; v < modelVocab(); ++v)
            weights[v] = probs.value().at2(0, v);
        weights[vocab.padId()] = 0.0;
        weights[vocab.bosId()] = 0.0;
        const int next = static_cast<int>(rng_.categorical(weights));
        if (next == vocab.eosId())
            break;
        seq.push_back(next);
        current = next;
    }
    return seq;
}

Variable
SeqGan::discriminate(const std::vector<std::vector<TokenId>> &paths)
{
    const auto &vocab = Vocabulary::instance();
    const int batch = static_cast<int>(paths.size());
    int time = 1;
    for (const auto &path : paths)
        time = std::max(time, static_cast<int>(path.size()));
    time = std::min(time, config_.max_length);

    Variable h = d_rnn_->initialState(batch);
    for (int t = 0; t < time; ++t) {
        std::vector<int> step_tokens(batch, vocab.padId());
        Tensor mask({batch, config_.hidden_dim});
        for (int b = 0; b < batch; ++b) {
            const bool live = t < static_cast<int>(paths[b].size());
            if (live)
                step_tokens[b] = paths[b][t];
            for (int j = 0; j < config_.hidden_dim; ++j)
                mask.at2(b, j) = live ? 1.0f : 0.0f;
        }
        const Variable emb = d_embed_->forward(step_tokens, {batch});
        const Variable h_new = d_rnn_->step(emb, h);
        // Hold the state once a sequence has ended.
        const Variable m = constant(mask);
        h = add(mul(m, h_new), sub(h, mul(m, h)));
    }
    return d_head_->forward(h); // [batch, 1] logits
}

double
SeqGan::mleEpoch(const std::vector<std::vector<TokenId>> &paths)
{
    const auto &vocab = Vocabulary::instance();
    double total_loss = 0.0;
    int batches = 0;

    std::vector<size_t> order(paths.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng_.shuffle(order);

    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
        const size_t end =
            std::min(order.size(), start + config_.batch_size);
        const int batch = static_cast<int>(end - start);

        int time = 1;
        for (size_t i = start; i < end; ++i) {
            time = std::max(
                time, static_cast<int>(paths[order[i]].size()) + 1);
        }
        time = std::min(time, config_.max_length);

        g_opt_->zeroGrad();
        Variable h = g_rnn_->initialState(batch);
        std::vector<int> inputs(batch, vocab.bosId());
        Variable loss;
        for (int t = 0; t < time; ++t) {
            const Variable emb = g_embed_->forward(inputs, {batch});
            h = g_rnn_->step(emb, h);
            const Variable logits = g_head_->forward(h);

            std::vector<int> targets(batch, vocab.padId());
            std::vector<float> weights(batch, 0.0f);
            for (int b = 0; b < batch; ++b) {
                const auto &path = paths[order[start + b]];
                if (t < static_cast<int>(path.size())) {
                    targets[b] = path[t];
                    weights[b] = 1.0f;
                    inputs[b] = path[t];
                } else if (t == static_cast<int>(path.size())) {
                    targets[b] = vocab.eosId();
                    weights[b] = 1.0f;
                }
            }
            const Variable step_loss =
                weightedNllLoss(logits, targets, weights);
            loss = loss.defined() ? add(loss, step_loss) : step_loss;
        }
        loss = scale(loss, 1.0 / time);
        loss.backward();
        g_opt_->step();
        total_loss += loss.value()[0];
        ++batches;
    }
    return batches == 0 ? 0.0 : total_loss / batches;
}

double
SeqGan::discriminatorEpoch(const std::vector<std::vector<TokenId>> &real,
                           const std::vector<std::vector<TokenId>> &fake)
{
    std::vector<std::vector<TokenId>> data;
    std::vector<float> labels;
    for (const auto &path : real) {
        data.push_back(path);
        labels.push_back(1.0f);
    }
    for (const auto &path : fake) {
        if (path.empty())
            continue;
        data.push_back(path);
        labels.push_back(0.0f);
    }
    if (data.empty())
        return 0.0;

    d_opt_->zeroGrad();
    const Variable logits = discriminate(data);
    Tensor targets =
        Tensor::fromValues({static_cast<int>(labels.size()), 1},
                           std::vector<float>(labels));
    Variable loss = bceWithLogitsLoss(logits, targets);
    loss.backward();
    d_opt_->step();
    return loss.value()[0];
}

double
SeqGan::policyGradientRound()
{
    const auto &vocab = Vocabulary::instance();
    auto sequences = sampleBatch(config_.batch_size);
    // Drop empty generations.
    sequences.erase(std::remove_if(sequences.begin(), sequences.end(),
                                   [](const auto &s) { return s.empty(); }),
                    sequences.end());
    if (sequences.empty())
        return 0.0;
    const int batch = static_cast<int>(sequences.size());

    // Per-step rewards from the discriminator.
    std::vector<std::vector<float>> rewards(batch);
    double mean_terminal = 0.0;
    {
        NoGradGuard no_grad;
        const Variable terminal = discriminate(sequences);
        for (int b = 0; b < batch; ++b) {
            const float score =
                1.0f / (1.0f + std::exp(-terminal.value().at2(b, 0)));
            mean_terminal += score;
            rewards[b].assign(sequences[b].size(), score);
        }
        mean_terminal /= batch;

        if (config_.rollouts > 0) {
            for (int b = 0; b < batch; ++b) {
                for (size_t t = 0; t + 1 < sequences[b].size(); ++t) {
                    double acc = 0.0;
                    for (int r = 0; r < config_.rollouts; ++r) {
                        const std::vector<TokenId> prefix(
                            sequences[b].begin(),
                            sequences[b].begin() + t + 1);
                        const auto completed = rollOut(prefix);
                        const Variable score = discriminate({completed});
                        acc += 1.0 /
                               (1.0 +
                                std::exp(-score.value().at2(0, 0)));
                    }
                    rewards[b][t] =
                        static_cast<float>(acc / config_.rollouts);
                }
            }
        }
    }

    // Advantage baseline: batch-mean terminal reward.
    const float baseline = static_cast<float>(mean_terminal);

    // Teacher-forced replay with gradients, REINFORCE objective.
    int time = 1;
    for (const auto &seq : sequences)
        time = std::max(time, static_cast<int>(seq.size()));

    g_opt_->zeroGrad();
    Variable h = g_rnn_->initialState(batch);
    std::vector<int> inputs(batch, vocab.bosId());
    Variable loss;
    for (int t = 0; t < time; ++t) {
        const Variable emb = g_embed_->forward(inputs, {batch});
        h = g_rnn_->step(emb, h);
        const Variable logits = g_head_->forward(h);

        std::vector<int> actions(batch, vocab.padId());
        std::vector<float> weights(batch, 0.0f);
        for (int b = 0; b < batch; ++b) {
            if (t < static_cast<int>(sequences[b].size())) {
                actions[b] = sequences[b][t];
                weights[b] = rewards[b][t] - baseline;
                inputs[b] = sequences[b][t];
            }
        }
        const Variable step_loss =
            weightedNllLoss(logits, actions, weights);
        loss = loss.defined() ? add(loss, step_loss) : step_loss;
    }
    loss = scale(loss, 1.0 / time);
    loss.backward();
    g_opt_->step();
    return mean_terminal;
}

void
SeqGan::fit(const std::vector<std::vector<TokenId>> &real_paths)
{
    SNS_ASSERT(!real_paths.empty(), "SeqGan::fit needs real paths");
    real_paths_.clear();
    for (const auto &path : real_paths) {
        if (!path.empty() &&
            path.size() < static_cast<size_t>(config_.max_length)) {
            real_paths_.push_back(path);
        }
    }
    SNS_ASSERT(!real_paths_.empty(), "no path fits within max_length");

    // 1. Generator MLE pre-training.
    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch)
        mleEpoch(real_paths_);

    // 2. Discriminator pre-training against early fakes.
    for (int epoch = 0; epoch < config_.d_pretrain_epochs; ++epoch)
        discriminatorEpoch(real_paths_, sampleBatch(config_.batch_size));

    // 3. Adversarial alternation.
    for (int round = 0; round < config_.adversarial_rounds; ++round) {
        policyGradientRound();
        discriminatorEpoch(real_paths_, sampleBatch(config_.batch_size));
    }
    fitted_ = true;
}

std::vector<std::vector<TokenId>>
SeqGan::generateUnique(size_t count,
                       const std::vector<std::vector<TokenId>> &exclude)
{
    std::set<std::vector<TokenId>> seen(exclude.begin(), exclude.end());
    std::vector<std::vector<TokenId>> result;
    const size_t max_attempts = count * 100 + 500;
    size_t attempts = 0;
    while (result.size() < count && attempts < max_attempts) {
        auto batch = sampleBatch(config_.batch_size);
        attempts += batch.size();
        for (auto &path : batch) {
            if (result.size() >= count)
                break;
            if (!isValidCircuitPath(path, config_.max_length))
                continue;
            if (!seen.insert(path).second)
                continue;
            result.push_back(std::move(path));
        }
    }
    return result;
}

double
SeqGan::discriminatorScore(
    const std::vector<std::vector<TokenId>> &paths)
{
    if (paths.empty())
        return 0.0;
    NoGradGuard no_grad;
    const Variable logits = discriminate(paths);
    double total = 0.0;
    for (size_t b = 0; b < paths.size(); ++b) {
        total += 1.0 / (1.0 + std::exp(-logits.value().at2(
                                  static_cast<int>(b), 0)));
    }
    return total / paths.size();
}

double
SeqGan::generatorNll(const std::vector<std::vector<TokenId>> &paths)
{
    SNS_ASSERT(!paths.empty(), "generatorNll needs paths");
    NoGradGuard no_grad;
    const auto &vocab = Vocabulary::instance();
    double total = 0.0;
    size_t tokens = 0;
    for (const auto &path : paths) {
        Variable h = g_rnn_->initialState(1);
        int current = vocab.bosId();
        for (size_t t = 0; t <= path.size(); ++t) {
            h = g_rnn_->step(g_embed_->forward({current}, {1}), h);
            const Variable logits = g_head_->forward(h);
            const int target = t < path.size()
                                   ? path[t]
                                   : vocab.eosId();
            // log-softmax of the target entry.
            float max_val = logits.value().at2(0, 0);
            for (int v = 1; v < modelVocab(); ++v)
                max_val = std::max(max_val, logits.value().at2(0, v));
            double lse = 0.0;
            for (int v = 0; v < modelVocab(); ++v)
                lse += std::exp(logits.value().at2(0, v) - max_val);
            lse = std::log(lse) + max_val;
            total += lse - logits.value().at2(0, target);
            ++tokens;
            if (t < path.size())
                current = path[t];
        }
    }
    return total / static_cast<double>(tokens);
}

} // namespace sns::gen
