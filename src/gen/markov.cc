#include "gen/markov.hh"

#include <set>

#include "gen/path_check.hh"
#include "util/logging.hh"

namespace sns::gen {

using graphir::Vocabulary;

MarkovChainGenerator::MarkovChainGenerator(uint64_t seed) : rng_(seed)
{
}

int
MarkovChainGenerator::states() const
{
    return Vocabulary::instance().circuitSize() + 2;
}

int
MarkovChainGenerator::bosState() const
{
    return Vocabulary::instance().circuitSize();
}

int
MarkovChainGenerator::eosState() const
{
    return Vocabulary::instance().circuitSize() + 1;
}

void
MarkovChainGenerator::fit(const std::vector<std::vector<TokenId>> &paths)
{
    counts_.assign(states(), std::vector<double>(states(), 0.0));
    size_t used = 0;
    for (const auto &path : paths) {
        if (path.empty())
            continue;
        int prev = bosState();
        for (TokenId token : path) {
            SNS_ASSERT(token >= 0 &&
                           token < Vocabulary::instance().circuitSize(),
                       "fit() path contains non-circuit token");
            counts_[prev][token] += 1.0;
            prev = token;
        }
        counts_[prev][eosState()] += 1.0;
        ++used;
    }
    SNS_ASSERT(used > 0, "MarkovChainGenerator::fit needs paths");
    fitted_ = true;
}

std::vector<TokenId>
MarkovChainGenerator::sample(size_t max_length)
{
    SNS_ASSERT(fitted_, "sample() before fit()");
    std::vector<TokenId> path;
    int state = bosState();
    while (path.size() < max_length) {
        const auto &row_counts = counts_[state];
        double total = 0.0;
        for (double c : row_counts)
            total += c;
        if (total <= 0.0)
            break; // dead end: token never seen mid-path
        const int next = static_cast<int>(rng_.categorical(row_counts));
        if (next == eosState())
            break;
        path.push_back(next);
        state = next;
    }
    return path;
}

std::vector<std::vector<TokenId>>
MarkovChainGenerator::generateUnique(
    size_t count, const std::vector<std::vector<TokenId>> &exclude,
    size_t max_length)
{
    std::set<std::vector<TokenId>> seen(exclude.begin(), exclude.end());
    std::vector<std::vector<TokenId>> result;
    const size_t max_attempts = count * 200 + 1000;
    for (size_t attempt = 0;
         attempt < max_attempts && result.size() < count; ++attempt) {
        auto path = sample(max_length);
        if (!isValidCircuitPath(path, max_length))
            continue;
        if (!seen.insert(path).second)
            continue;
        result.push_back(std::move(path));
    }
    return result;
}

std::vector<TokenId>
MarkovChainGenerator::sampleWithTargetLength(size_t target_length)
{
    SNS_ASSERT(fitted_, "sampleWithTargetLength() before fit()");
    const auto &vocab = Vocabulary::instance();
    std::vector<TokenId> path;

    // First token: endpoints only (the BOS row already is).
    {
        const auto &row_counts = counts_[bosState()];
        double total = 0.0;
        for (double c : row_counts)
            total += c;
        if (total <= 0.0)
            return {};
        path.push_back(static_cast<int>(rng_.categorical(row_counts)));
    }

    // Middle: combinational tokens only, until the target is reached.
    const size_t slack = 8; // allowed overshoot while hunting an ending
    while (path.size() + 1 < target_length + slack) {
        const bool want_end = path.size() + 1 >= target_length;
        auto masked = [&](bool endpoints_only) {
            std::vector<double> weights = counts_[path.back()];
            weights[bosState()] = 0.0;
            weights[eosState()] = 0.0;
            for (size_t token = 0;
                 token < static_cast<size_t>(vocab.circuitSize());
                 ++token) {
                const bool endpoint =
                    vocab.isEndpointToken(static_cast<TokenId>(token));
                if (endpoint != endpoints_only)
                    weights[token] = 0.0;
            }
            return weights;
        };

        std::vector<double> weights = masked(want_end);
        double total = 0.0;
        for (double w : weights)
            total += w;
        if (total <= 0.0) {
            if (!want_end)
                return {}; // dead end mid-path
            // No endpoint transition from here: keep walking through
            // combinational tokens towards one (the slack bounds this).
            weights = masked(false);
            total = 0.0;
            for (double w : weights)
                total += w;
            if (total <= 0.0)
                return {};
        }
        const int next = static_cast<int>(rng_.categorical(weights));
        path.push_back(next);
        if (vocab.isEndpointToken(next))
            return path;
    }
    return {};
}

std::vector<std::vector<TokenId>>
MarkovChainGenerator::generateStratified(
    size_t count, const std::vector<std::vector<TokenId>> &exclude,
    size_t max_length)
{
    std::set<std::vector<TokenId>> seen(exclude.begin(), exclude.end());
    std::vector<std::vector<TokenId>> result;
    const size_t max_attempts = count * 40 + 1000;
    for (size_t attempt = 0;
         attempt < max_attempts && result.size() < count; ++attempt) {
        const size_t target = 3 + rng_.uniformInt(
            static_cast<uint64_t>(std::max<size_t>(1, max_length - 2)));
        auto path = sampleWithTargetLength(target);
        if (!isValidCircuitPath(path, max_length + 8))
            continue;
        if (!seen.insert(path).second)
            continue;
        result.push_back(std::move(path));
    }
    return result;
}

std::vector<double>
MarkovChainGenerator::transitionRow(TokenId from) const
{
    SNS_ASSERT(fitted_, "transitionRow() before fit()");
    SNS_ASSERT(from >= 0 && from < states(), "bad state");
    const auto &row_counts = counts_[from];
    double total = 0.0;
    for (double c : row_counts)
        total += c;
    std::vector<double> probs(row_counts.size(), 0.0);
    if (total > 0.0) {
        for (size_t i = 0; i < row_counts.size(); ++i)
            probs[i] = row_counts[i] / total;
    }
    return probs;
}

} // namespace sns::gen
