#include "gen/path_check.hh"

#include "verify/analyzer.hh"

namespace sns::gen {

using graphir::TokenId;

bool
isValidCircuitPath(const std::vector<TokenId> &tokens, size_t max_length)
{
    // The boolean view of verify::checkPath — the generators use it as
    // a rejection filter, the analyzer reports the structured reasons.
    return !verify::checkPath(tokens, max_length).hasErrors();
}

verify::Report
checkCircuitPath(const std::vector<TokenId> &tokens, size_t max_length,
                 const std::string &where)
{
    return verify::checkPath(tokens, max_length, where);
}

} // namespace sns::gen
