#include "gen/path_check.hh"

namespace sns::gen {

using graphir::TokenId;
using graphir::Vocabulary;

bool
isValidCircuitPath(const std::vector<TokenId> &tokens, size_t max_length)
{
    if (tokens.size() < 2 || tokens.size() > max_length)
        return false;
    const auto &vocab = Vocabulary::instance();
    for (TokenId token : tokens) {
        if (token < 0 || token >= vocab.circuitSize())
            return false;
    }
    if (!vocab.isEndpointToken(tokens.front()) ||
        !vocab.isEndpointToken(tokens.back())) {
        return false;
    }
    // Interior vertices must be combinational: an endpoint inside the
    // sequence would have terminated the path earlier.
    for (size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (vocab.isEndpointToken(tokens[i]))
            return false;
    }
    return true;
}

} // namespace sns::gen
