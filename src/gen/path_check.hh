/**
 * @file
 * Validity rules for complete circuit paths, shared by the generative
 * models: a usable path begins and ends on an endpoint token (io/dff),
 * has only circuit tokens, and stays within the Circuitformer's input
 * limit.
 */

#ifndef SNS_GEN_PATH_CHECK_HH
#define SNS_GEN_PATH_CHECK_HH

#include <cstddef>
#include <vector>

#include "graphir/vocabulary.hh"

namespace sns::gen {

/** True if tokens form a structurally valid complete circuit path. */
bool isValidCircuitPath(const std::vector<graphir::TokenId> &tokens,
                        size_t max_length = 512);

} // namespace sns::gen

#endif // SNS_GEN_PATH_CHECK_HH
