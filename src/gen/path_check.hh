/**
 * @file
 * Validity rules for complete circuit paths, shared by the generative
 * models: a usable path begins and ends on an endpoint token (io/dff),
 * has only circuit tokens, and stays within the Circuitformer's input
 * limit. The structured rule implementations live in verify::checkPath
 * (rule ids P-*); this header keeps the cheap boolean filter the
 * generators reject candidates with, plus a reporting variant.
 */

#ifndef SNS_GEN_PATH_CHECK_HH
#define SNS_GEN_PATH_CHECK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "graphir/vocabulary.hh"
#include "verify/diagnostics.hh"

namespace sns::gen {

/** True if tokens form a structurally valid complete circuit path. */
bool isValidCircuitPath(const std::vector<graphir::TokenId> &tokens,
                        size_t max_length = 512);

/**
 * Structured variant: one diagnostic per violated path rule (P-SHORT,
 * P-LONG, P-OOV, P-ENDPOINT, P-INTERIOR).
 */
verify::Report checkCircuitPath(
    const std::vector<graphir::TokenId> &tokens, size_t max_length = 512,
    const std::string &where = "path");

} // namespace sns::gen

#endif // SNS_GEN_PATH_CHECK_HH
