/**
 * @file
 * The Markov-chain circuit-path generator (§4.2.1).
 *
 * A first-order transition matrix over vocabulary tokens (plus virtual
 * BOS/EOS states) is estimated from the directly sampled circuit paths;
 * new unique paths are then drawn from the chain. Generated paths are
 * "variants of paths directly sampled from real designs" — locally
 * realistic, globally noisier than SeqGAN output.
 */

#ifndef SNS_GEN_MARKOV_HH
#define SNS_GEN_MARKOV_HH

#include <vector>

#include "graphir/vocabulary.hh"
#include "util/rng.hh"

namespace sns::gen {

using graphir::TokenId;

/** First-order Markov model over circuit-path token sequences. */
class MarkovChainGenerator
{
  public:
    explicit MarkovChainGenerator(uint64_t seed = 0xbadc0de);

    /** Estimate the transition matrix from real sampled paths. */
    void fit(const std::vector<std::vector<TokenId>> &paths);

    /**
     * Sample one path from the chain (BOS -> ... -> EOS). May return an
     * invalid or over-long path; callers filter with
     * isValidCircuitPath().
     */
    std::vector<TokenId> sample(size_t max_length = 512);

    /**
     * Generate `count` valid circuit paths that are unique among
     * themselves and absent from `exclude`. Gives up after a bounded
     * number of attempts, so the result may be shorter than requested.
     */
    std::vector<std::vector<TokenId>> generateUnique(
        size_t count, const std::vector<std::vector<TokenId>> &exclude,
        size_t max_length = 512);

    /**
     * Sample one path steered towards a target length: end-of-sequence
     * and endpoint transitions are suppressed while the path is shorter
     * than the target, then endpoint transitions are forced. Gives the
     * Circuitformer length coverage beyond what the (mostly short)
     * naturally-terminating samples provide.
     * @return a valid complete path, or an empty vector on a dead end
     */
    std::vector<TokenId> sampleWithTargetLength(size_t target_length);

    /**
     * Like generateUnique() but with target lengths drawn uniformly
     * from [3, max_length], covering the whole length range.
     */
    std::vector<std::vector<TokenId>> generateStratified(
        size_t count, const std::vector<std::vector<TokenId>> &exclude,
        size_t max_length);

    /** Transition probability row for a token (for tests/inspection). */
    std::vector<double> transitionRow(TokenId from) const;

    /** True once fit() has seen at least one path. */
    bool fitted() const { return fitted_; }

  private:
    int states() const;
    int bosState() const;
    int eosState() const;

    Rng rng_;
    bool fitted_ = false;
    /** counts_[from][to] transition counts including BOS/EOS states. */
    std::vector<std::vector<double>> counts_;
};

} // namespace sns::gen

#endif // SNS_GEN_MARKOV_HH
