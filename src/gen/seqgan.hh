/**
 * @file
 * SeqGAN — Sequence Generative Adversarial Nets with policy gradient
 * (Yu et al. 2017), the paper's second circuit-path generator
 * (§4.2.2).
 *
 * The generator is an autoregressive GRU language model over circuit
 * tokens; the discriminator is a GRU sequence classifier. Training
 * follows the SeqGAN recipe:
 *
 *   1. MLE pre-training of the generator on real sampled paths,
 *   2. pre-training of the discriminator on real vs generated paths,
 *   3. adversarial rounds: the generator samples sequences, receives
 *      discriminator scores as rewards (optionally via Monte-Carlo
 *      rollouts for per-step credit), and updates with REINFORCE; the
 *      discriminator re-trains on the fresh fakes.
 */

#ifndef SNS_GEN_SEQGAN_HH
#define SNS_GEN_SEQGAN_HH

#include <memory>
#include <vector>

#include "graphir/vocabulary.hh"
#include "nn/gru.hh"
#include "nn/layers.hh"
#include "nn/optim.hh"
#include "util/rng.hh"

namespace sns::gen {

using graphir::TokenId;

/** SeqGAN hyper-parameters (scaled-down defaults; Table 6 for paper). */
struct SeqGanConfig
{
    int embed_dim = 24;        ///< token embedding width
    int hidden_dim = 48;       ///< GRU state width
    int max_length = 64;       ///< generation cap
    int pretrain_epochs = 12;  ///< generator MLE epochs
    int d_pretrain_epochs = 4; ///< discriminator pre-training epochs
    int adversarial_rounds = 8;
    int batch_size = 32;
    int rollouts = 2;          ///< MC rollouts per step (0 = terminal
                               ///< reward broadcast to every step)
    double generator_lr = 0.01; ///< Adam LR (Table 6 uses 0.01)
    double discriminator_lr = 0.005;
    uint64_t seed = 0x5e9a;
};

/** The SeqGAN circuit-path generator. */
class SeqGan
{
  public:
    explicit SeqGan(SeqGanConfig config = SeqGanConfig());

    /** Run the full training recipe on real sampled paths. */
    void fit(const std::vector<std::vector<TokenId>> &real_paths);

    /** Sample one token sequence from the trained generator. */
    std::vector<TokenId> sample();

    /**
     * Generate `count` valid, unique circuit paths (unique among
     * themselves and absent from `exclude`); may return fewer if the
     * attempt budget is exhausted.
     */
    std::vector<std::vector<TokenId>> generateUnique(
        size_t count, const std::vector<std::vector<TokenId>> &exclude);

    /** Mean discriminator score (sigmoid) on the given sequences. */
    double discriminatorScore(
        const std::vector<std::vector<TokenId>> &paths);

    /** Mean per-token negative log-likelihood under the generator. */
    double generatorNll(const std::vector<std::vector<TokenId>> &paths);

    /** True once fit() completed. */
    bool fitted() const { return fitted_; }

    const SeqGanConfig &config() const { return config_; }

  private:
    /** Sample a batch of sequences, returning token rows. */
    std::vector<std::vector<TokenId>> sampleBatch(int batch);

    /** Complete a prefix with greedy-free sampling (for rollouts). */
    std::vector<TokenId> rollOut(const std::vector<TokenId> &prefix);

    /** Discriminator logits for a batch of padded sequences. */
    tensor::Variable discriminate(
        const std::vector<std::vector<TokenId>> &paths);

    /** One MLE (teacher-forced) generator epoch; returns mean loss. */
    double mleEpoch(const std::vector<std::vector<TokenId>> &paths);

    /** One discriminator epoch on real + fake data; returns mean loss. */
    double discriminatorEpoch(
        const std::vector<std::vector<TokenId>> &real,
        const std::vector<std::vector<TokenId>> &fake);

    /** One policy-gradient round; returns the mean reward. */
    double policyGradientRound();

    SeqGanConfig config_;
    Rng rng_;
    bool fitted_ = false;
    std::vector<std::vector<TokenId>> real_paths_;

    // Generator: embedding -> GRU -> vocab logits.
    std::unique_ptr<nn::Embedding> g_embed_;
    std::unique_ptr<nn::GruCell> g_rnn_;
    std::unique_ptr<nn::Linear> g_head_;
    std::unique_ptr<nn::Adam> g_opt_;

    // Discriminator: embedding -> GRU -> real/fake logit.
    std::unique_ptr<nn::Embedding> d_embed_;
    std::unique_ptr<nn::GruCell> d_rnn_;
    std::unique_ptr<nn::Linear> d_head_;
    std::unique_ptr<nn::Adam> d_opt_;
};

} // namespace sns::gen

#endif // SNS_GEN_SEQGAN_HH
