#include "core/circuitformer.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "dist/exchange.hh"
#include "nn/serialize.hh"
#include "par/thread_pool.hh"
#include "util/logging.hh"

namespace sns::core {

using namespace sns::tensor;
using graphir::TokenId;
using graphir::Vocabulary;

namespace {

constexpr double kLogFloor = 1e-9;

double
safeLog(double value)
{
    return std::log(std::max(value, kLogFloor));
}

} // namespace

const char *
precisionName(Precision precision)
{
    switch (precision) {
    case Precision::Fp64:
        return "fp64";
    case Precision::Int8:
        return "int8";
    }
    return "unknown";
}

CircuitformerConfig::CircuitformerConfig()
{
    encoder.vocab_size = Vocabulary::instance().totalSize();
    encoder.max_positions = 512;
    encoder.d_model = 128;
    encoder.heads = 2;
    encoder.layers = 2;
    encoder.d_ff = 512;
}

CircuitformerConfig
CircuitformerConfig::small()
{
    CircuitformerConfig config;
    config.encoder.max_positions = 96;
    config.encoder.d_model = 32;
    config.encoder.heads = 2;
    config.encoder.layers = 2;
    config.encoder.d_ff = 64;
    config.head_hidden = 32;
    return config;
}

Circuitformer::Circuitformer(CircuitformerConfig config)
    : config_(config),
      init_rng_(config.seed),
      encoder_(config_.encoder, init_rng_),
      head_({config_.encoder.d_model, config_.head_hidden, 3}, init_rng_)
{
}

void
Circuitformer::fitNormalization(const std::vector<PathRecord> &records)
{
    SNS_ASSERT(!records.empty(), "fitNormalization needs records");
    std::array<double, 3> sum{};
    std::array<double, 3> sq{};
    for (const auto &record : records) {
        const std::array<double, 3> logs = {safeLog(record.timing_ps),
                                            safeLog(record.area_um2),
                                            safeLog(record.power_mw)};
        for (int t = 0; t < 3; ++t) {
            sum[t] += logs[t];
            sq[t] += logs[t] * logs[t];
        }
    }
    const double n = static_cast<double>(records.size());
    for (int t = 0; t < 3; ++t) {
        target_mean_[t] = sum[t] / n;
        const double var = sq[t] / n - target_mean_[t] * target_mean_[t];
        target_std_[t] = var > 1e-8 ? std::sqrt(var) : 1.0;
    }
    normalized_ = true;
}

std::array<float, 3>
Circuitformer::normalizedTargets(const PathRecord &record) const
{
    SNS_ASSERT(normalized_, "fitNormalization() must run first");
    const std::array<double, 3> logs = {safeLog(record.timing_ps),
                                        safeLog(record.area_um2),
                                        safeLog(record.power_mw)};
    std::array<float, 3> out;
    for (int t = 0; t < 3; ++t) {
        out[t] = static_cast<float>((logs[t] - target_mean_[t]) /
                                    target_std_[t]);
    }
    return out;
}

void
Circuitformer::pack(
    const std::vector<const std::vector<TokenId> *> &paths,
    std::vector<int> &ids, int &time, std::vector<int> &lengths) const
{
    const int batch = static_cast<int>(paths.size());
    const int cap = config_.encoder.max_positions;
    time = 1;
    lengths.assign(batch, 0);
    for (int b = 0; b < batch; ++b) {
        lengths[b] = std::min<int>(cap, paths[b]->size());
        time = std::max(time, lengths[b]);
    }
    ids.assign(static_cast<size_t>(batch) * time,
               Vocabulary::instance().padId());
    for (int b = 0; b < batch; ++b) {
        for (int t = 0; t < lengths[b]; ++t)
            ids[static_cast<size_t>(b) * time + t] = (*paths[b])[t];
    }
}

Variable
Circuitformer::forwardBatch(const std::vector<int> &ids, int batch,
                            int time,
                            const std::vector<int> &lengths) const
{
    const Variable pooled = encoder_.encode(ids, batch, time, lengths);
    return head_.forward(pooled); // [B, 3] normalized log targets
}

double
Circuitformer::trainEpoch(const std::vector<PathRecord> &records,
                          nn::Adam &optimizer, Rng &rng, int batch_size)
{
    SNS_ASSERT(normalized_, "fitNormalization() before trainEpoch()");
    std::vector<size_t> order(records.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    double total = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size(); start += batch_size) {
        const size_t end =
            std::min(order.size(), start + static_cast<size_t>(batch_size));
        std::vector<const std::vector<TokenId> *> batch_paths;
        Tensor targets({static_cast<int>(end - start), 3});
        for (size_t i = start; i < end; ++i) {
            const auto &record = records[order[i]];
            batch_paths.push_back(&record.tokens);
            const auto y = normalizedTargets(record);
            for (int t = 0; t < 3; ++t)
                targets.at2(static_cast<int>(i - start), t) = y[t];
        }

        std::vector<int> ids;
        std::vector<int> lengths;
        int time = 0;
        pack(batch_paths, ids, time, lengths);

        optimizer.zeroGrad();
        Variable loss = mseLoss(
            forwardBatch(ids, static_cast<int>(batch_paths.size()), time,
                         lengths),
            targets);
        loss.backward();
        nn::clipGradNorm(parameters(), 5.0);
        optimizer.step();
        total += loss.value()[0];
        ++batches;
    }
    return batches == 0 ? 0.0 : total / batches;
}

double
Circuitformer::trainEpochSliced(const std::vector<PathRecord> &records,
                                nn::Adam &optimizer, Rng &rng,
                                int batch_size,
                                dist::GradientExchange &exchange)
{
    SNS_ASSERT(normalized_, "fitNormalization() before trainEpochSliced()");
    const int slices = exchange.gradSlices();
    const int world = exchange.worldSize();
    const int rank = exchange.rank();
    SNS_ASSERT(slices > 0 && world > 0 && slices % world == 0,
               "grad_slices must be a positive multiple of world_size");
    const int owned = slices / world;

    std::vector<Variable> params = parameters();
    const size_t flat_elems = dist::flatSize(params);

    // Identical shuffle on every rank: all ranks hold the same records
    // and drive the same epoch RNG stream.
    std::vector<size_t> order(records.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    double total = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size(); start += batch_size) {
        const size_t end =
            std::min(order.size(), start + static_cast<size_t>(batch_size));
        const size_t b = end - start;

        // This rank's slices: one independent backward pass each,
        // weighted by sample share, combined along the canonical tree.
        std::vector<std::optional<std::vector<float>>> grad_slots(owned);
        std::vector<std::optional<dist::ScalarPartial>> loss_slots(owned);
        for (int s = 0; s < owned; ++s) {
            const auto [lo, hi] =
                dist::sliceRange(b, slices, rank * owned + s);
            if (lo == hi)
                continue; // empty slice: identity at every world size
            std::vector<const std::vector<TokenId> *> batch_paths;
            Tensor targets({static_cast<int>(hi - lo), 3});
            for (size_t i = lo; i < hi; ++i) {
                const auto &record = records[order[start + i]];
                batch_paths.push_back(&record.tokens);
                const auto y = normalizedTargets(record);
                for (int t = 0; t < 3; ++t)
                    targets.at2(static_cast<int>(i - lo), t) = y[t];
            }
            std::vector<int> ids;
            std::vector<int> lengths;
            int time = 0;
            pack(batch_paths, ids, time, lengths);

            optimizer.zeroGrad();
            Variable loss = mseLoss(
                forwardBatch(ids, static_cast<int>(batch_paths.size()),
                             time, lengths),
                targets);
            loss.backward();
            // w·(slice-mean gradient) is the slice's share of the
            // batch-mean gradient; w depends only on (b, slices).
            const float w = static_cast<float>(hi - lo) /
                            static_cast<float>(b);
            grad_slots[s] = dist::flattenGrads(params, w);
            dist::ScalarPartial part;
            part.sum = static_cast<double>(loss.value()[0]) *
                       static_cast<double>(hi - lo);
            part.count = hi - lo;
            loss_slots[s] = part;
        }

        auto partial = dist::combineTreeGrad(std::move(grad_slots));
        const bool present = partial.has_value();
        std::vector<float> flat =
            present ? std::move(*partial)
                    : std::vector<float>(flat_elems, 0.0f);
        exchange.allreduceGrad(flat, present);
        dist::scatterGrads(params, flat);
        nn::clipGradNorm(params, 5.0);
        optimizer.step();
        exchange.allgatherWeights(params);

        const dist::ScalarPartial batch_loss =
            exchange.reduceLoss(dist::combineTreeLoss(std::move(loss_slots)));
        total += batch_loss.count == 0
                     ? 0.0
                     : batch_loss.sum /
                           static_cast<double>(batch_loss.count);
        ++batches;
    }
    return batches == 0 ? 0.0 : total / batches;
}

double
Circuitformer::evaluateLoss(const std::vector<PathRecord> &records,
                            int batch_size)
{
    SNS_ASSERT(normalized_, "fitNormalization() before evaluateLoss()");
    NoGradGuard no_grad;
    double total = 0.0;
    double weight = 0.0;
    for (size_t start = 0; start < records.size(); start += batch_size) {
        const size_t end = std::min(records.size(),
                                    start + static_cast<size_t>(batch_size));
        std::vector<const std::vector<TokenId> *> batch_paths;
        Tensor targets({static_cast<int>(end - start), 3});
        for (size_t i = start; i < end; ++i) {
            batch_paths.push_back(&records[i].tokens);
            const auto y = normalizedTargets(records[i]);
            for (int t = 0; t < 3; ++t)
                targets.at2(static_cast<int>(i - start), t) = y[t];
        }
        std::vector<int> ids;
        std::vector<int> lengths;
        int time = 0;
        pack(batch_paths, ids, time, lengths);
        const Variable loss = mseLoss(
            forwardBatch(ids, static_cast<int>(batch_paths.size()), time,
                         lengths),
            targets);
        total += loss.value()[0] * static_cast<double>(end - start);
        weight += static_cast<double>(end - start);
    }
    return weight == 0.0 ? 0.0 : total / weight;
}

std::vector<PathPrediction>
Circuitformer::predict(const std::vector<std::vector<TokenId>> &paths,
                       int batch_size, Precision precision) const
{
    SNS_ASSERT(normalized_, "fitNormalization() before predict()");
    SNS_ASSERT(batch_size > 0, "predict() needs batch_size > 0");
    // Int8 runs exclusively through the quantized plan — there is no
    // integer module walk to fall back on. predictBatch() turns these
    // preconditions into V-OPT-PRECISION diagnostics before the call
    // ever reaches this layer.
    const plan::CompiledPlan *active = plan_.get();
    if (precision == Precision::Int8) {
        SNS_ASSERT(qplan_ != nullptr && plan::planEnabled(),
                   "predict: precision=int8 needs a bound quantized "
                   "plan and SNS_PLAN on");
        SNS_ASSERT(batch_size <= qplan_->batchMax(),
                   "predict: precision=int8 batch_size ", batch_size,
                   " exceeds the quantized plan's batch_max ",
                   qplan_->batchMax());
        active = qplan_.get();
    }
    std::vector<PathPrediction> out(paths.size());
    // Batch boundaries depend only on batch_size, never on the thread
    // count, and each forward pass writes a disjoint slice of `out` —
    // so the parallel prediction is bitwise identical to the serial one.
    const size_t stride = static_cast<size_t>(batch_size);
    const size_t num_batches = (paths.size() + stride - 1) / stride;
    par::parallelFor(num_batches, [&](size_t bbegin, size_t bend) {
        NoGradGuard no_grad;
        for (size_t b = bbegin; b < bend; ++b) {
            const size_t start = b * stride;
            const size_t end = std::min(paths.size(), start + stride);
            std::vector<const std::vector<TokenId> *> batch_paths;
            for (size_t i = start; i < end; ++i)
                batch_paths.push_back(&paths[i]);
            std::vector<int> ids;
            std::vector<int> lengths;
            int time = 0;
            pack(batch_paths, ids, time, lengths);
            const int rows = static_cast<int>(batch_paths.size());
            // Planned execution when a verified plan is bound and the
            // batch fits it; bitwise-identical to the module walk
            // (docs/plan.md), so mixing the two paths is sound.
            const float *planned = nullptr;
            if (active != nullptr && plan::planEnabled() &&
                rows <= active->batchMax())
                planned = active->run(ids, lengths, rows, time);
            Variable pred;
            if (planned == nullptr)
                pred = forwardBatch(ids, rows, time, lengths);
            const auto logit = [&](size_t row, int t) {
                return planned != nullptr
                           ? planned[row * 3 + t]
                           : pred.value().at2(static_cast<int>(row), t);
            };
            for (size_t i = 0; i < batch_paths.size(); ++i) {
                PathPrediction p;
                p.timing_ps = std::exp(logit(i, 0) * target_std_[0] +
                                       target_mean_[0]);
                p.area_um2 = std::exp(logit(i, 1) * target_std_[1] +
                                      target_mean_[1]);
                p.power_mw = std::exp(logit(i, 2) * target_std_[2] +
                                      target_mean_[2]);
                out[start + i] = p;
            }
        }
    });
    return out;
}

std::vector<Variable>
Circuitformer::parameters() const
{
    std::vector<Variable> params = encoder_.parameters();
    for (const auto &param : head_.parameters())
        params.push_back(param);
    return params;
}

uint64_t
Circuitformer::fingerprintWith(const std::array<double, 3> &mean,
                               const std::array<double, 3> &std) const
{
    uint64_t hash = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    const auto mix = [&hash](const void *data, size_t bytes) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < bytes; ++i) {
            hash ^= p[i];
            hash *= kPrime;
        }
    };
    for (const auto &param : parameters()) {
        const tensor::Tensor &value = param.value();
        mix(value.data(), value.numel() * sizeof(float));
    }
    mix(mean.data(), sizeof(mean));
    mix(std.data(), sizeof(std));
    return hash == 0 ? 1 : hash; // 0 means "unbound" to the cache
}

uint64_t
Circuitformer::parametersFingerprint() const
{
    // FNV-1a over the raw bytes of every weight tensor, then the
    // double-precision normalization statistics. The statistics are
    // hashed at full precision on purpose: save() truncates them to
    // float32, so a freshly-trained model and its reloaded checkpoint
    // correctly fingerprint as *different* models (their predictions
    // differ in the last bits), while two loads of the same checkpoint
    // fingerprint identically.
    return fingerprintWith(target_mean_, target_std_);
}

namespace {

/**
 * double → float32 → double, with the narrowing forced through a real
 * float store. A plain `(double)(float)x` pair here gets (mis)folded
 * away by the vectorizer at -O3 (observed with GCC 12: the packed
 * lanes of the loop skip the cvtpd2ps/cvtps2pd round trip), which
 * silently breaks the save/load fingerprint contract below. The
 * volatile store is the minimal fence that guarantees the value
 * actually passes through float32.
 */
double
snapToFloat(double value)
{
    volatile float snapped = static_cast<float>(value);
    return static_cast<double>(snapped);
}

} // namespace

uint64_t
Circuitformer::parametersFingerprintSnapped() const
{
    std::array<double, 3> mean;
    std::array<double, 3> std;
    for (int t = 0; t < 3; ++t) {
        mean[t] = snapToFloat(target_mean_[t]);
        std[t] = snapToFloat(target_std_[t]);
    }
    return fingerprintWith(mean, std);
}

plan::Plan
Circuitformer::tracePlan(int batch_max) const
{
    // The canonical plan *is* the module walk for this architecture;
    // assert the composed modules actually have that architecture so a
    // future module change cannot silently diverge from the trace.
    const auto dims = head_.layerDims();
    SNS_ASSERT(dims ==
                   std::vector<int>({config_.encoder.d_model,
                                     config_.head_hidden, 3}),
               "tracePlan: head MLP is not the {d_model, head_hidden, 3}"
               " stack the plan IR encodes");

    plan::PlanConfig plan_config;
    plan_config.vocab = config_.encoder.vocab_size;
    plan_config.max_positions = config_.encoder.max_positions;
    plan_config.d_model = config_.encoder.d_model;
    plan_config.heads = config_.encoder.heads;
    plan_config.layers = config_.encoder.layers;
    plan_config.d_ff = config_.encoder.d_ff;
    plan_config.head_hidden = config_.head_hidden;
    plan_config.batch_max = batch_max;
    return plan::buildCanonicalPlan(plan_config, parametersFingerprint());
}

void
Circuitformer::bindPlan(std::shared_ptr<const plan::CompiledPlan> compiled)
{
    if (compiled) {
        SNS_ASSERT(compiled->fingerprint() == parametersFingerprint(),
                   "bindPlan: plan was traced from a different model "
                   "(fingerprint mismatch)");
    }
    plan_ = std::move(compiled);
}

bool
Circuitformer::planActive() const
{
    return plan_ != nullptr && plan::planEnabled();
}

void
Circuitformer::bindQuantPlan(
    std::shared_ptr<const plan::CompiledPlan> compiled)
{
    if (compiled) {
        SNS_ASSERT(compiled->fingerprint() == parametersFingerprint(),
                   "bindQuantPlan: plan was traced from a different "
                   "model (fingerprint mismatch)");
        SNS_ASSERT(compiled->quantized(),
                   "bindQuantPlan: plan carries no int8 side table — "
                   "bind it with bindPlan() instead");
    }
    qplan_ = std::move(compiled);
}

void
Circuitformer::saveTo(std::ostream &out, const std::string &where) const
{
    SNS_ASSERT(normalized_, "save() before fitNormalization()");
    std::vector<Variable> all = parameters();
    // The normalization statistics ride along as one extra tensor.
    // They are float-snapped here; docs/serving.md explains why the
    // fingerprint treats a freshly-trained model and its reloaded twin
    // as different models because of this truncation.
    Tensor norm({6});
    for (int t = 0; t < 3; ++t) {
        norm[t] = static_cast<float>(target_mean_[t]);
        norm[3 + t] = static_cast<float>(target_std_[t]);
    }
    all.emplace_back(norm);
    nn::saveParameters(out, all, where);
}

void
Circuitformer::loadFrom(std::istream &in, const std::string &where)
{
    std::vector<Variable> all = parameters();
    all.emplace_back(Tensor({6}));
    nn::loadParameters(in, all, where);
    const Tensor &norm = all.back().value();
    for (int t = 0; t < 3; ++t) {
        target_mean_[t] = norm[t];
        target_std_[t] = norm[3 + t];
    }
    normalized_ = true;
}

void
Circuitformer::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw nn::SerializeError(
            "cannot open weight file for writing: " + path);
    }
    saveTo(out, path);
    if (!out)
        throw nn::SerializeError("short write to weight file: " + path);
}

void
Circuitformer::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw nn::SerializeError("cannot open weight file: " + path);
    loadFrom(in, path);
}

} // namespace sns::core
