#include "core/trainer.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "dist/shard.hh"
#include "nn/serialize.hh"
#include "obs/metrics.hh"
#include "par/thread_pool.hh"
#include "util/logging.hh"
#include "util/timer.hh"
#include "verify/diagnostics.hh"

namespace sns::core {

namespace {

/** Payload producer tag; a reader refuses anything else up front. */
constexpr const char *kProducer = "sns-trainer-v1";

uint64_t
fnvBytes(uint64_t hash, const void *data, size_t size)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
fnvU64(uint64_t hash, uint64_t value)
{
    return fnvBytes(hash, &value, sizeof(value));
}

uint64_t
fnvF64(uint64_t hash, double value)
{
    return fnvBytes(hash, &value, sizeof(value));
}

/**
 * FNV-1a over every configuration field that shapes the final model.
 * A resumed run must agree on all of them, or "resume" would silently
 * splice two different training trajectories together.
 */
uint64_t
configFingerprint(const TrainerConfig &config)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = fnvU64(h, config.seed);
    h = fnvU64(h, static_cast<uint64_t>(config.circuitformer_epochs));
    h = fnvU64(h, static_cast<uint64_t>(config.circuitformer_batch));
    h = fnvF64(h, config.circuitformer_lr);
    h = fnvF64(h, config.validation_fraction);
    h = fnvU64(h, config.seqgan_small ? 1 : 0);

    const nn::TransformerConfig &enc = config.model.encoder;
    h = fnvU64(h, static_cast<uint64_t>(enc.vocab_size));
    h = fnvU64(h, static_cast<uint64_t>(enc.max_positions));
    h = fnvU64(h, static_cast<uint64_t>(enc.d_model));
    h = fnvU64(h, static_cast<uint64_t>(enc.heads));
    h = fnvU64(h, static_cast<uint64_t>(enc.layers));
    h = fnvU64(h, static_cast<uint64_t>(enc.d_ff));
    h = fnvU64(h, static_cast<uint64_t>(config.model.head_hidden));
    h = fnvU64(h, config.model.seed);

    const PathDatasetOptions &pd = config.path_data;
    h = fnvU64(h, pd.max_paths_per_design);
    h = fnvU64(h, pd.markov_paths);
    h = fnvU64(h, pd.seqgan_paths);
    h = fnvU64(h, pd.enable_markov ? 1 : 0);
    h = fnvU64(h, pd.enable_seqgan ? 1 : 0);
    h = fnvU64(h, pd.seed);
    h = fnvF64(h, pd.sampler.k);
    h = fnvU64(h, pd.sampler.max_path_length);
    h = fnvU64(h, pd.sampler.max_paths_per_source);
    h = fnvU64(h, pd.sampler.max_total_paths);
    h = fnvU64(h, pd.sampler.seed);
    h = fnvU64(h, pd.sampler.longest_paths);

    h = fnvU64(h, static_cast<uint64_t>(config.mlp.epochs));
    h = fnvU64(h, static_cast<uint64_t>(config.mlp.batch_size));
    h = fnvF64(h, config.mlp.learning_rate);
    h = fnvF64(h, config.mlp.momentum);
    h = fnvU64(h, config.mlp.seed);

    // grad_slices shapes the numerics (the slice-tree reduction order),
    // so it is part of the trajectory identity. world_size, rank, and
    // the rendezvous are transport choices and deliberately are NOT:
    // that is what makes resuming at a different rank count legal.
    // Hashed only when sliced training is on, so plain-run fingerprints
    // keep their historical values.
    if (config.dist.grad_slices > 0)
        h = fnvU64(h, static_cast<uint64_t>(config.dist.grad_slices));
    return h;
}

uint64_t
hashRecords(uint64_t h, const std::vector<PathRecord> &records)
{
    h = fnvU64(h, records.size());
    for (const auto &record : records) {
        h = fnvU64(h, record.tokens.size());
        h = fnvBytes(h, record.tokens.data(),
                     record.tokens.size() * sizeof(record.tokens[0]));
        h = fnvF64(h, record.timing_ps);
        h = fnvF64(h, record.area_um2);
        h = fnvF64(h, record.power_mw);
    }
    return h;
}

/** FNV-1a over the exact train/validation record assignment. */
uint64_t
splitFingerprint(const std::vector<PathRecord> &train_paths,
                 const std::vector<PathRecord> &val_paths)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = hashRecords(h, train_paths);
    h = hashRecords(h, val_paths);
    return h;
}

void
writeRngState(nn::CheckpointWriter &writer, const Rng::State &state)
{
    for (uint64_t word : state.words)
        writer.u64(word);
    writer.u32(state.has_cached_normal ? 1 : 0);
    writer.f64(state.cached_normal);
}

Rng::State
readRngState(nn::CheckpointReader &reader)
{
    Rng::State state;
    for (auto &word : state.words)
        word = reader.u64();
    state.has_cached_normal = reader.u32() != 0;
    state.cached_normal = reader.f64();
    return state;
}

/** %.17g — round-trips a double exactly through decimal. */
std::string
jsonNumber(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

bool
StderrProgressSink::onEpoch(const EpochProgress &progress)
{
    if (!header_printed_) {
        std::fprintf(stderr,
                     "  epoch   train_loss     val_loss  sec/epoch"
                     "    paths/s  checkpoint\n");
        header_printed_ = true;
    }
    std::fprintf(stderr, "%4d/%-3d %12.6f %12.6f %10.2f %10.1f  %s\n",
                 progress.epoch + 1, progress.total_epochs,
                 progress.train_loss, progress.validation_loss,
                 progress.epoch_seconds, progress.samples_per_sec,
                 progress.checkpoint_path.empty()
                     ? "-"
                     : progress.checkpoint_path.c_str());
    return true;
}

void
StderrProgressSink::onEvent(const std::string &message)
{
    std::fprintf(stderr, "[train] %s\n", message.c_str());
}

JsonlProgressSink::JsonlProgressSink(const std::string &path)
    : out_(std::make_unique<std::ofstream>(path, std::ios::app))
{
    if (!*out_)
        throw std::runtime_error("cannot open JSONL training log: " + path);
}

JsonlProgressSink::~JsonlProgressSink() = default;

bool
JsonlProgressSink::onEpoch(const EpochProgress &progress)
{
    *out_ << "{\"epoch\":" << progress.epoch
          << ",\"total_epochs\":" << progress.total_epochs
          << ",\"train_loss\":" << jsonNumber(progress.train_loss)
          << ",\"validation_loss\":"
          << jsonNumber(progress.validation_loss)
          << ",\"epoch_seconds\":" << jsonNumber(progress.epoch_seconds)
          << ",\"samples_per_sec\":"
          << jsonNumber(progress.samples_per_sec)
          << ",\"train_paths\":" << progress.train_paths
          << ",\"validation_paths\":" << progress.validation_paths
          << ",\"checkpoint\":\"" << jsonEscape(progress.checkpoint_path)
          << "\"}" << std::endl; // endl: flush each line, crash-safe
    return true;
}

void
JsonlProgressSink::onEvent(const std::string &message)
{
    *out_ << "{\"event\":\"" << jsonEscape(message) << "\"}"
          << std::endl;
}

bool
TeeProgressSink::onEpoch(const EpochProgress &progress)
{
    bool keep_going = true;
    for (TrainProgressSink *sink : sinks_)
        keep_going = sink->onEpoch(progress) && keep_going;
    return keep_going;
}

void
TeeProgressSink::onEvent(const std::string &message)
{
    for (TrainProgressSink *sink : sinks_)
        sink->onEvent(message);
}

TrainingInterrupted::TrainingInterrupted(int epoch,
                                         std::string checkpoint_path)
    : std::runtime_error(
          // 1-based in the message to match the progress table.
          "training interrupted after epoch " +
          std::to_string(epoch + 1) +
          (checkpoint_path.empty()
               ? std::string(" (checkpointing disabled)")
               : " (state in " + checkpoint_path + ")")),
      epoch_(epoch),
      checkpoint_path_(std::move(checkpoint_path))
{
}

TrainerConfig
TrainerConfig::fast()
{
    TrainerConfig config;
    config.model = CircuitformerConfig::small();
    config.circuitformer_epochs = 8;
    config.circuitformer_batch = 32;
    config.path_data.max_paths_per_design = 24;
    config.path_data.markov_paths = 48;
    config.path_data.seqgan_paths = 48;
    config.path_data.sampler.max_paths_per_source = 8;
    config.mlp.epochs = 1500;
    config.seqgan_small = true;
    return config;
}

SnsTrainer::SnsTrainer(TrainerConfig config) : config_(config)
{
}

SnsPredictor
SnsTrainer::train(const HardwareDesignDataset &designs,
                  const std::vector<size_t> &train_indices,
                  const synth::Synthesizer &oracle)
{
    Rng rng(config_.seed);

    obs::Registry &registry =
        config_.registry ? *config_.registry : obs::Registry::global();
    obs::Counter &epochs_total = registry.counter("train.epochs_total");
    obs::Counter &checkpoints_total =
        registry.counter("train.checkpoints_total");
    obs::Counter &resumes_total = registry.counter("train.resumes_total");
    obs::Histogram &epoch_latency =
        registry.histogram("train.epoch_latency_us");
    obs::Histogram &checkpoint_latency =
        registry.histogram("train.checkpoint_write_us");

    // Live gauges for the duration of this train() call only.
    struct GaugeState
    {
        std::atomic<double> epoch{0.0};
        std::atomic<double> samples_per_sec{0.0};
        std::atomic<double> train_loss{0.0};
        std::atomic<double> validation_loss{0.0};
    } gauge_state;
    obs::ScopedGauge epoch_gauge(registry, "train.epoch", [&gauge_state] {
        return gauge_state.epoch.load();
    });
    obs::ScopedGauge sps_gauge(registry, "train.samples_per_sec",
                               [&gauge_state] {
                                   return gauge_state.samples_per_sec
                                       .load();
                               });
    obs::ScopedGauge train_loss_gauge(registry, "train.loss.train",
                                      [&gauge_state] {
                                          return gauge_state.train_loss
                                              .load();
                                      });
    obs::ScopedGauge val_loss_gauge(
        registry, "train.loss.validation", [&gauge_state] {
            return gauge_state.validation_loss.load();
        });

    // --- 1. Circuit Path Dataset (Fig. 4 left). -----------------------
    path_dataset_ = buildCircuitPathDataset(designs, train_indices, oracle,
                                            config_.path_data,
                                            config_.seqgan_small);
    inform("circuit path dataset: ", path_dataset_.size(), " paths (",
           path_dataset_.countByOrigin(PathOrigin::Sampled), " sampled, ",
           path_dataset_.countByOrigin(PathOrigin::Markov), " markov, ",
           path_dataset_.countByOrigin(PathOrigin::SeqGan), " seqgan)");

    // Train/validation split of the path records.
    std::vector<size_t> order(path_dataset_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    const size_t val_count = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(order.size())));
    std::vector<PathRecord> train_paths;
    std::vector<PathRecord> val_paths;
    for (size_t i = 0; i < order.size(); ++i) {
        const auto &record = path_dataset_.records()[order[i]];
        if (i < val_count)
            val_paths.push_back(record);
        else
            train_paths.push_back(record);
    }
    SNS_ASSERT(!train_paths.empty(), "empty path training set");

    // --- 2. Circuitformer training (Adam, Table 6). -------------------
    // The RNG draws below happen identically whether training from
    // scratch or resuming: a resume rebuilds the dataset, split, and
    // model deterministically from the seed, then *overwrites* weights,
    // optimizer moments, and both RNG streams with the checkpointed
    // state — which is exactly the state an uninterrupted run would
    // have reached, so the remaining epochs replay bitwise-identically.
    CircuitformerConfig model_config = config_.model;
    model_config.seed = rng.next();
    auto circuitformer = std::make_shared<Circuitformer>(model_config);
    circuitformer->fitNormalization(train_paths);

    nn::Adam optimizer(circuitformer->parameters(),
                       config_.circuitformer_lr);
    Rng epoch_rng = rng.fork();
    loss_curve_.clear();

    const uint64_t config_fp = configFingerprint(config_);
    const uint64_t split_fp = splitFingerprint(train_paths, val_paths);
    const int total_epochs = config_.circuitformer_epochs;
    TrainProgressSink *sink = config_.progress;

    // --- Distributed setup (docs/distributed.md). ---------------------
    // Every rank runs the whole flow above identically (same seed, same
    // dataset, same split); only the epoch loop splits work. The
    // exchange is the sole cross-rank coupling.
    const dist::DistConfig &dc = config_.dist;
    const auto all_params = circuitformer->parameters();
    std::unique_ptr<dist::GradientExchange> exchange;
    std::vector<size_t> param_cuts; // tensor-index ZeRO ownership cuts
    std::optional<obs::ScopedGauge> world_gauge;
    std::optional<obs::ScopedGauge> rank_gauge;
    if (dc.active()) {
        verify::enforce(dist::validateDistConfig(dc, all_params.size()),
                        "SnsTrainer::train");
        std::vector<size_t> elems;
        elems.reserve(all_params.size());
        for (const auto &param : all_params)
            elems.push_back(param.value().numel());
        param_cuts = dist::partitionParams(elems, dc.world_size);
        optimizer.shardMoments(param_cuts[dc.rank],
                               param_cuts[dc.rank + 1]);
        if (dc.world_size > 1) {
            auto channel = dc.channel
                               ? dc.channel
                               : dist::connectRing(dc.rendezvous, dc.rank,
                                                   dc.world_size);
            auto ring = std::make_unique<dist::RingExchange>(
                std::move(channel), dc.world_size, dc.rank,
                dc.grad_slices, &registry);
            ring->handshake(config_fp, split_fp,
                            dist::flatSize(all_params));
            exchange = std::move(ring);
        } else {
            exchange =
                std::make_unique<dist::LocalExchange>(dc.grad_slices);
        }
        std::vector<size_t> prefix(elems.size() + 1, 0);
        for (size_t i = 0; i < elems.size(); ++i)
            prefix[i + 1] = prefix[i] + elems[i];
        std::vector<size_t> elem_cuts(param_cuts.size());
        for (size_t r = 0; r < param_cuts.size(); ++r)
            elem_cuts[r] = prefix[param_cuts[r]];
        exchange->setWeightPartition(std::move(elem_cuts));
        world_gauge.emplace(registry, "dist.world_size", [this] {
            return static_cast<double>(config_.dist.world_size);
        });
        rank_gauge.emplace(registry, "dist.rank", [this] {
            return static_cast<double>(config_.dist.rank);
        });
    }

    /** Serialize full training state after `completed_epoch` and commit
     * it atomically; returns the checkpoint path. */
    const auto writeCheckpoint = [&](int completed_epoch) {
        WallTimer timer;
        std::ostringstream payload;
        nn::CheckpointWriter writer(payload);
        std::string file_name;
        if (dc.active()) {
            // One shard per rank (docs/distributed.md §Checkpoints):
            // meta + RNG streams + loss curve (identical everywhere,
            // cheap), rank 0 additionally the full model, then this
            // rank's ZeRO-owned Adam moments by global tensor index.
            dist::ShardMeta meta;
            meta.world = static_cast<uint32_t>(dc.world_size);
            meta.rank = static_cast<uint32_t>(dc.rank);
            meta.grad_slices = static_cast<uint32_t>(dc.grad_slices);
            meta.param_count =
                static_cast<uint32_t>(all_params.size());
            meta.owned_begin =
                static_cast<uint32_t>(param_cuts[dc.rank]);
            meta.owned_end =
                static_cast<uint32_t>(param_cuts[dc.rank + 1]);
            meta.config_fp = config_fp;
            meta.split_fp = split_fp;
            meta.completed_epoch = completed_epoch;
            meta.total_epochs = total_epochs;
            dist::writeShardMeta(writer, meta);
            writeRngState(writer, rng.state());
            writeRngState(writer, epoch_rng.state());
            writer.u32(static_cast<uint32_t>(loss_curve_.size()));
            for (const LossPoint &point : loss_curve_) {
                writer.i64(point.epoch);
                writer.f64(point.train_loss);
                writer.f64(point.validation_loss);
            }
            if (dc.rank == 0)
                circuitformer->saveTo(payload, "checkpoint payload");
            writer.i64(optimizer.stepCount());
            writer.u32(meta.owned_end - meta.owned_begin);
            for (size_t i = param_cuts[dc.rank];
                 i < param_cuts[dc.rank + 1]; ++i) {
                writer.u32(static_cast<uint32_t>(i));
                writer.tensor(optimizer.firstMoment(i));
                writer.tensor(optimizer.secondMoment(i));
            }
            file_name = dist::shardFileName(completed_epoch, dc.rank,
                                            dc.world_size);
        } else {
            writer.str(kProducer);
            writer.u64(config_fp);
            writer.u64(split_fp);
            writer.i64(completed_epoch);
            writer.i64(total_epochs);
            writeRngState(writer, rng.state());
            writeRngState(writer, epoch_rng.state());
            writer.u32(static_cast<uint32_t>(loss_curve_.size()));
            for (const LossPoint &point : loss_curve_) {
                writer.i64(point.epoch);
                writer.f64(point.train_loss);
                writer.f64(point.validation_loss);
            }
            circuitformer->saveTo(payload, "checkpoint payload");
            nn::writeOptimizerState(writer, optimizer);
            file_name = nn::checkpointFileName(completed_epoch);
        }

        std::filesystem::create_directories(config_.checkpoint_dir);
        const std::string path =
            (std::filesystem::path(config_.checkpoint_dir) / file_name)
                .string();
        nn::commitCheckpoint(path, payload.str());
        // In a distributed run only rank 0 prunes: retention is
        // epoch-grouped, so it only ever deletes *older* complete
        // epochs, which no peer is still writing (the allreduce
        // lockstep bounds rank skew to less than one epoch).
        if (!dc.active() || dc.rank == 0) {
            nn::pruneCheckpoints(config_.checkpoint_dir,
                                 config_.checkpoint_keep <= 0
                                     ? 0
                                     : static_cast<size_t>(
                                           config_.checkpoint_keep));
        }
        checkpoints_total.inc();
        checkpoint_latency.record(
            static_cast<uint64_t>(timer.seconds() * 1e6));
        return path;
    };

    int start_epoch = 0;
    if (!config_.resume_from.empty() && dc.active()) {
        // Merge a complete shard set. Every rank reads every shard;
        // each keeps the slice of the merged optimizer state its NEW
        // ownership cut assigns it — which is how a 4-rank run resumes
        // at 2 ranks (or 1) bitwise-identically.
        std::vector<std::string> files;
        std::string source = config_.resume_from;
        if (std::filesystem::is_directory(source)) {
            files = dist::latestCompleteShardSet(source);
            if (files.empty()) {
                throw nn::SerializeError(
                    "no complete ckpt-*-rNNofMM.ckpt shard set in " +
                    source);
            }
        } else {
            files.push_back(source); // a single world-1 shard
        }
        std::vector<std::string> payloads;
        std::vector<dist::ShardMeta> metas;
        for (const std::string &file : files) {
            payloads.push_back(nn::readCheckpointPayload(file));
            std::istringstream in(payloads.back());
            nn::CheckpointReader reader(in, file);
            metas.push_back(dist::readShardMeta(reader, file));
        }
        verify::enforce(dist::validateShardSet(metas, source),
                        "SnsTrainer::train");
        const dist::ShardMeta &first = metas.front();
        if (first.config_fp != config_fp) {
            throw nn::SerializeError(
                "shard set in " + source +
                " was written under a different training configuration "
                "(config fingerprint mismatch); refusing to resume");
        }
        if (first.split_fp != split_fp) {
            throw nn::SerializeError(
                "shard set in " + source +
                " was trained on a different dataset split "
                "(split fingerprint mismatch); refusing to resume");
        }
        if (first.param_count != all_params.size()) {
            throw nn::SerializeError(
                "shard set in " + source + " covers " +
                std::to_string(first.param_count) +
                " parameter tensors, model has " +
                std::to_string(all_params.size()));
        }
        for (size_t i = 0; i < files.size(); ++i) {
            std::istringstream in(payloads[i]);
            nn::CheckpointReader reader(in, files[i]);
            const dist::ShardMeta meta =
                dist::readShardMeta(reader, files[i]);
            const Rng::State rng_state = readRngState(reader);
            const Rng::State epoch_rng_state = readRngState(reader);
            const uint32_t curve_count = reader.u32();
            std::vector<LossPoint> curve(curve_count);
            for (auto &point : curve) {
                point.epoch = static_cast<int>(reader.i64());
                point.train_loss = reader.f64();
                point.validation_loss = reader.f64();
            }
            if (meta.rank == 0) {
                rng.setState(rng_state);
                epoch_rng.setState(epoch_rng_state);
                loss_curve_ = std::move(curve);
                circuitformer->loadFrom(in, files[i]);
            }
            optimizer.setStepCount(reader.i64());
            const uint32_t owned_count = reader.u32();
            for (uint32_t k = 0; k < owned_count; ++k) {
                const uint32_t idx = reader.u32();
                if (idx >= all_params.size()) {
                    throw nn::SerializeError(
                        "shard " + files[i] +
                        " names parameter tensor " +
                        std::to_string(idx) + " of " +
                        std::to_string(all_params.size()));
                }
                tensor::Tensor m(all_params[idx].value().shape());
                tensor::Tensor v(all_params[idx].value().shape());
                reader.tensor(m);
                reader.tensor(v);
                if (idx >= param_cuts[dc.rank] &&
                    idx < param_cuts[dc.rank + 1])
                    optimizer.setMoments(idx, m, v);
            }
        }
        // Same float-snap refit as the plain resume path below.
        circuitformer->fitNormalization(train_paths);
        start_epoch = static_cast<int>(first.completed_epoch) + 1;
        resumes_total.inc();
        const std::string note =
            "resumed rank " + std::to_string(dc.rank) + "/" +
            std::to_string(dc.world_size) + " from " +
            std::to_string(files.size()) + "-shard set in " + source +
            " (saved at world " + std::to_string(first.world) +
            ") at epoch " + std::to_string(start_epoch + 1) + "/" +
            std::to_string(total_epochs);
        inform(note);
        if (sink != nullptr)
            sink->onEvent(note);
    } else if (!config_.resume_from.empty()) {
        std::string source = config_.resume_from;
        if (std::filesystem::is_directory(source)) {
            source = nn::latestCheckpoint(source);
            if (source.empty()) {
                throw nn::SerializeError("no ckpt-*.ckpt files in " +
                                         config_.resume_from);
            }
        }
        const std::string payload = nn::readCheckpointPayload(source);
        std::istringstream in(payload);
        nn::CheckpointReader reader(in, source);
        const std::string producer = reader.str();
        if (producer != kProducer) {
            throw nn::SerializeError("checkpoint " + source +
                                     " was written by \"" + producer +
                                     "\", expected \"" + kProducer +
                                     "\"");
        }
        const uint64_t saved_config_fp = reader.u64();
        if (saved_config_fp != config_fp) {
            throw nn::SerializeError(
                "checkpoint " + source +
                " was written under a different training configuration "
                "(config fingerprint mismatch); refusing to resume");
        }
        const uint64_t saved_split_fp = reader.u64();
        if (saved_split_fp != split_fp) {
            throw nn::SerializeError(
                "checkpoint " + source +
                " was trained on a different dataset split "
                "(split fingerprint mismatch); refusing to resume");
        }
        const int64_t completed_epoch = reader.i64();
        reader.i64(); // total_epochs at write time; config_fp covers it
        rng.setState(readRngState(reader));
        epoch_rng.setState(readRngState(reader));
        const uint32_t curve_count = reader.u32();
        loss_curve_.resize(curve_count);
        for (auto &point : loss_curve_) {
            point.epoch = static_cast<int>(reader.i64());
            point.train_loss = reader.f64();
            point.validation_loss = reader.f64();
        }
        circuitformer->loadFrom(in, source);
        // loadFrom() float-snaps the normalization statistics (the
        // SNSW block stores them as float32). The uninterrupted run
        // holds them at full double precision, and they feed every
        // training target — so recompute them from the train split,
        // which is fingerprint-identical to the original: bitwise the
        // same doubles fitNormalization produced before the crash.
        circuitformer->fitNormalization(train_paths);
        nn::readOptimizerState(reader, optimizer);
        start_epoch = static_cast<int>(completed_epoch) + 1;
        resumes_total.inc();
        const std::string note =
            "resumed from " + source + " at epoch " +
            std::to_string(start_epoch + 1) + "/" +
            std::to_string(total_epochs);
        inform(note);
        if (sink != nullptr)
            sink->onEvent(note);
    }

    for (int epoch = start_epoch; epoch < total_epochs; ++epoch) {
        WallTimer epoch_timer;
        LossPoint point;
        point.epoch = epoch;
        point.train_loss =
            dc.active()
                ? circuitformer->trainEpochSliced(
                      train_paths, optimizer, epoch_rng,
                      config_.circuitformer_batch, *exchange)
                : circuitformer->trainEpoch(train_paths, optimizer,
                                            epoch_rng,
                                            config_.circuitformer_batch);
        point.validation_loss = circuitformer->evaluateLoss(val_paths);
        // A NaN/Inf loss means training has diverged; later epochs
        // cannot recover, so flag it the moment it appears.
        if (verify::enabled() && (!std::isfinite(point.train_loss) ||
                                  !std::isfinite(point.validation_loss))) {
            verify::Report report;
            report.error(verify::rules::kTrainLoss,
                         "epoch " + std::to_string(epoch),
                         "non-finite loss (train=" +
                             std::to_string(point.train_loss) +
                             ", validation=" +
                             std::to_string(point.validation_loss) + ")",
                         "lower the learning rate or check the dataset "
                         "labels");
            verify::enforce(std::move(report), "SnsTrainer::train");
        }
        loss_curve_.push_back(point);

        const double seconds = epoch_timer.seconds();
        epochs_total.inc();
        epoch_latency.record(static_cast<uint64_t>(seconds * 1e6));

        EpochProgress progress;
        progress.epoch = epoch;
        progress.total_epochs = total_epochs;
        progress.train_loss = point.train_loss;
        progress.validation_loss = point.validation_loss;
        progress.epoch_seconds = seconds;
        progress.samples_per_sec =
            seconds > 0.0
                ? static_cast<double>(train_paths.size()) / seconds
                : 0.0;
        progress.train_paths = train_paths.size();
        progress.validation_paths = val_paths.size();

        gauge_state.epoch.store(static_cast<double>(epoch + 1));
        gauge_state.samples_per_sec.store(progress.samples_per_sec);
        gauge_state.train_loss.store(point.train_loss);
        gauge_state.validation_loss.store(point.validation_loss);

        const bool checkpointing = !config_.checkpoint_dir.empty();
        const bool final_epoch = epoch + 1 == total_epochs;
        const bool due =
            checkpointing &&
            (final_epoch ||
             (config_.checkpoint_every > 0 &&
              (epoch + 1) % config_.checkpoint_every == 0));
        if (due)
            progress.checkpoint_path = writeCheckpoint(epoch);

        bool keep_going = sink == nullptr || sink->onEpoch(progress);
        // Coherent interruption: a stop on ANY rank (e.g. SIGINT
        // delivered to one process) stops every rank after the SAME
        // epoch, so the per-rank shards of the final checkpoint form
        // one complete resumable set. The vote runs every epoch — it
        // is part of the fixed collective sequence.
        if (dc.active())
            keep_going = !exchange->anyStop(!keep_going);
        if (!keep_going && !final_epoch) {
            if (checkpointing && progress.checkpoint_path.empty())
                progress.checkpoint_path = writeCheckpoint(epoch);
            if (sink != nullptr) {
                sink->onEvent(
                    "stop requested; state through epoch " +
                    std::to_string(epoch + 1) +
                    (progress.checkpoint_path.empty()
                         ? " lost (checkpointing disabled)"
                         : " saved to " + progress.checkpoint_path));
            }
            throw TrainingInterrupted(epoch, progress.checkpoint_path);
        }
    }

    // --- 3. Aggregation MLPs (SGD, Table 6). --------------------------
    // Each design's sampler seed depends only on its dataset index, so
    // the per-design summaries can be computed on the sns::par pool in
    // any order; the compaction below restores train_indices order.
    const size_t num_train = train_indices.size();
    std::vector<AggregateSummary> design_summaries(num_train);
    std::vector<char> has_summary(num_train, 0);
    par::parallelFor(num_train, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            const size_t idx = train_indices[i];
            const auto &record = designs.records()[idx];
            sampler::SamplerOptions sopts = config_.path_data.sampler;
            sopts.seed = config_.seed ^ (idx * 0x9e3779b9ULL);
            const auto paths =
                sampler::PathSampler(sopts).sample(record.graph);
            if (paths.empty())
                continue;
            std::vector<std::vector<graphir::TokenId>> token_paths;
            std::vector<size_t> lengths;
            for (const auto &path : paths) {
                token_paths.push_back(path.tokens);
                lengths.push_back(path.nodes.size());
            }
            const auto preds = circuitformer->predict(token_paths);
            design_summaries[i] =
                reduceAggregates(record.graph, preds, lengths);
            has_summary[i] = 1;
        }
    });

    std::vector<AggregateSummary> summaries;
    std::vector<double> timing_truth;
    std::vector<double> area_truth;
    std::vector<double> power_truth;
    for (size_t i = 0; i < num_train; ++i) {
        if (!has_summary[i])
            continue;
        const auto &record = designs.records()[train_indices[i]];
        summaries.push_back(std::move(design_summaries[i]));
        timing_truth.push_back(record.truth.timing_ps);
        area_truth.push_back(record.truth.area_um2);
        power_truth.push_back(record.truth.power_mw);
    }
    SNS_ASSERT(!summaries.empty(), "no designs to fit aggregation MLPs");

    MlpTrainConfig mlp_config = config_.mlp;
    mlp_config.seed = rng.next();
    // Named draws: function-argument evaluation order is unspecified,
    // and the seed sequence (timing, area, power) must match the
    // pre-AggregationHeads trainer exactly.
    const uint64_t timing_seed = rng.next();
    const uint64_t area_seed = rng.next();
    const uint64_t power_seed = rng.next();
    AggregationHeads heads =
        AggregationHeads::make(timing_seed, area_seed, power_seed);
    heads.fit(summaries, timing_truth, area_truth, power_truth,
              mlp_config);

    return SnsPredictor(circuitformer, std::move(heads),
                        config_.path_data.sampler);
}

} // namespace sns::core
