#include "core/trainer.hh"

#include <algorithm>
#include <cmath>

#include "par/thread_pool.hh"
#include "util/logging.hh"
#include "verify/diagnostics.hh"

namespace sns::core {

TrainerConfig
TrainerConfig::fast()
{
    TrainerConfig config;
    config.model = CircuitformerConfig::small();
    config.circuitformer_epochs = 8;
    config.circuitformer_batch = 32;
    config.path_data.max_paths_per_design = 24;
    config.path_data.markov_paths = 48;
    config.path_data.seqgan_paths = 48;
    config.path_data.sampler.max_paths_per_source = 8;
    config.mlp.epochs = 1500;
    config.seqgan_small = true;
    return config;
}

SnsTrainer::SnsTrainer(TrainerConfig config) : config_(config)
{
}

SnsPredictor
SnsTrainer::train(const HardwareDesignDataset &designs,
                  const std::vector<size_t> &train_indices,
                  const synth::Synthesizer &oracle)
{
    Rng rng(config_.seed);

    // --- 1. Circuit Path Dataset (Fig. 4 left). -----------------------
    path_dataset_ = buildCircuitPathDataset(designs, train_indices, oracle,
                                            config_.path_data,
                                            config_.seqgan_small);
    inform("circuit path dataset: ", path_dataset_.size(), " paths (",
           path_dataset_.countByOrigin(PathOrigin::Sampled), " sampled, ",
           path_dataset_.countByOrigin(PathOrigin::Markov), " markov, ",
           path_dataset_.countByOrigin(PathOrigin::SeqGan), " seqgan)");

    // Train/validation split of the path records.
    std::vector<size_t> order(path_dataset_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    const size_t val_count = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(order.size())));
    std::vector<PathRecord> train_paths;
    std::vector<PathRecord> val_paths;
    for (size_t i = 0; i < order.size(); ++i) {
        const auto &record = path_dataset_.records()[order[i]];
        if (i < val_count)
            val_paths.push_back(record);
        else
            train_paths.push_back(record);
    }
    SNS_ASSERT(!train_paths.empty(), "empty path training set");

    // --- 2. Circuitformer training (Adam, Table 6). -------------------
    CircuitformerConfig model_config = config_.model;
    model_config.seed = rng.next();
    auto circuitformer = std::make_shared<Circuitformer>(model_config);
    circuitformer->fitNormalization(train_paths);

    nn::Adam optimizer(circuitformer->parameters(),
                       config_.circuitformer_lr);
    Rng epoch_rng = rng.fork();
    loss_curve_.clear();
    for (int epoch = 0; epoch < config_.circuitformer_epochs; ++epoch) {
        LossPoint point;
        point.epoch = epoch;
        point.train_loss = circuitformer->trainEpoch(
            train_paths, optimizer, epoch_rng, config_.circuitformer_batch);
        point.validation_loss = circuitformer->evaluateLoss(val_paths);
        // A NaN/Inf loss means training has diverged; later epochs
        // cannot recover, so flag it the moment it appears.
        if (verify::enabled() && (!std::isfinite(point.train_loss) ||
                                  !std::isfinite(point.validation_loss))) {
            verify::Report report;
            report.error(verify::rules::kTrainLoss,
                         "epoch " + std::to_string(epoch),
                         "non-finite loss (train=" +
                             std::to_string(point.train_loss) +
                             ", validation=" +
                             std::to_string(point.validation_loss) + ")",
                         "lower the learning rate or check the dataset "
                         "labels");
            verify::enforce(std::move(report), "SnsTrainer::train");
        }
        loss_curve_.push_back(point);
    }

    // --- 3. Aggregation MLPs (SGD, Table 6). --------------------------
    // Each design's sampler seed depends only on its dataset index, so
    // the per-design summaries can be computed on the sns::par pool in
    // any order; the compaction below restores train_indices order.
    const size_t num_train = train_indices.size();
    std::vector<AggregateSummary> design_summaries(num_train);
    std::vector<char> has_summary(num_train, 0);
    par::parallelFor(num_train, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            const size_t idx = train_indices[i];
            const auto &record = designs.records()[idx];
            sampler::SamplerOptions sopts = config_.path_data.sampler;
            sopts.seed = config_.seed ^ (idx * 0x9e3779b9ULL);
            const auto paths =
                sampler::PathSampler(sopts).sample(record.graph);
            if (paths.empty())
                continue;
            std::vector<std::vector<graphir::TokenId>> token_paths;
            std::vector<size_t> lengths;
            for (const auto &path : paths) {
                token_paths.push_back(path.tokens);
                lengths.push_back(path.nodes.size());
            }
            const auto preds = circuitformer->predict(token_paths);
            design_summaries[i] =
                reduceAggregates(record.graph, preds, lengths);
            has_summary[i] = 1;
        }
    });

    std::vector<AggregateSummary> summaries;
    std::vector<double> timing_truth;
    std::vector<double> area_truth;
    std::vector<double> power_truth;
    for (size_t i = 0; i < num_train; ++i) {
        if (!has_summary[i])
            continue;
        const auto &record = designs.records()[train_indices[i]];
        summaries.push_back(std::move(design_summaries[i]));
        timing_truth.push_back(record.truth.timing_ps);
        area_truth.push_back(record.truth.area_um2);
        power_truth.push_back(record.truth.power_mw);
    }
    SNS_ASSERT(!summaries.empty(), "no designs to fit aggregation MLPs");

    MlpTrainConfig mlp_config = config_.mlp;
    mlp_config.seed = rng.next();
    // Named draws: function-argument evaluation order is unspecified,
    // and the seed sequence (timing, area, power) must match the
    // pre-AggregationHeads trainer exactly.
    const uint64_t timing_seed = rng.next();
    const uint64_t area_seed = rng.next();
    const uint64_t power_seed = rng.next();
    AggregationHeads heads =
        AggregationHeads::make(timing_seed, area_seed, power_seed);
    heads.fit(summaries, timing_truth, area_truth, power_truth,
              mlp_config);

    return SnsPredictor(circuitformer, std::move(heads),
                        config_.path_data.sampler);
}

} // namespace sns::core
