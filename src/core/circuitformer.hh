/**
 * @file
 * The Circuitformer (§3.3, Table 2): a light-weight Transformer
 * regressor that predicts the physical characteristics (timing, area,
 * power) of one complete circuit path.
 *
 * Targets are learned in standardized log space (area and power span
 * several decades across the path population); the normalization
 * statistics are fitted on the training paths and stored with the
 * model.
 */

#ifndef SNS_CORE_CIRCUITFORMER_HH
#define SNS_CORE_CIRCUITFORMER_HH

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/datasets.hh"
#include "nn/optim.hh"
#include "nn/transformer.hh"
#include "plan/runtime.hh"

namespace sns::dist {
class GradientExchange;
}

namespace sns::core {

/**
 * Numeric tier a prediction runs at (docs/quantization.md).
 *
 * Fp64 is the default double-accumulation pipeline; Int8 routes the
 * plan's Gemm ops through the u7 x s8 integer kernels using the
 * per-output-channel scales carried by a quantized plan. The enum is
 * serialized as one byte in the serve protocol (v3) and in session
 * records, so the underlying values are part of the wire contract.
 */
enum class Precision : uint8_t
{
    Fp64 = 0,
    Int8 = 1,
};

/** Wire/CLI spelling of a precision tier ("fp64" / "int8"). */
const char *precisionName(Precision precision);

/** Predicted physical characteristics of one circuit path. */
struct PathPrediction
{
    double timing_ps = 0.0;
    double area_um2 = 0.0;
    double power_mw = 0.0;
};

/** Circuitformer hyper-parameters (defaults follow Table 2). */
struct CircuitformerConfig
{
    nn::TransformerConfig encoder;
    int head_hidden = 64;    ///< regression-head hidden width
    uint64_t seed = 0xc1;

    CircuitformerConfig();

    /** A scaled-down configuration for fast tests/CI runs. */
    static CircuitformerConfig small();
};

/** The path-level synthesis predictor. */
class Circuitformer : public nn::Module
{
  public:
    explicit Circuitformer(CircuitformerConfig config =
                               CircuitformerConfig());

    /**
     * Fit the target-normalization statistics (per-target mean/std of
     * the log labels) on the training paths. Must run before training.
     */
    void fitNormalization(const std::vector<PathRecord> &records);

    /**
     * One training epoch of Adam + MSE on normalized log targets.
     * @return mean batch loss
     */
    double trainEpoch(const std::vector<PathRecord> &records,
                      nn::Adam &optimizer, Rng &rng, int batch_size);

    /**
     * One slice-deterministic training epoch (docs/distributed.md):
     * every batch is cut into exchange.gradSlices() contiguous sample
     * slices, this rank backpropagates its owned slices, and the
     * gradients combine along the canonical slice tree — locally and
     * then through the exchange — so the updated weights (and the
     * returned mean loss) are bitwise-identical at every admissible
     * world size. The optimizer may be moment-sharded; after its step
     * the exchange allgathers the owned weight ranges. All ranks must
     * call this in lockstep with identical records/rng/batch_size.
     * @return mean batch loss (identical on every rank)
     */
    double trainEpochSliced(const std::vector<PathRecord> &records,
                            nn::Adam &optimizer, Rng &rng,
                            int batch_size,
                            dist::GradientExchange &exchange);

    /** Mean loss without updating weights (validation). */
    double evaluateLoss(const std::vector<PathRecord> &records,
                        int batch_size = 64);

    /**
     * Predict a batch of paths (no gradients, de-normalized).
     *
     * Precision::Int8 requires a bound quantized plan (bindQuantPlan)
     * with batch_max >= batch_size and the SNS_PLAN switch on —
     * predictBatch() validates all three up front (V-OPT-PRECISION);
     * this layer asserts them.
     */
    std::vector<PathPrediction> predict(
        const std::vector<std::vector<graphir::TokenId>> &paths,
        int batch_size = 64,
        Precision precision = Precision::Fp64) const;

    std::vector<tensor::Variable> parameters() const override;

    /**
     * A nonzero FNV-1a fingerprint of everything a path prediction
     * depends on: the raw float bytes of every parameter tensor plus
     * the (double-precision) normalization statistics. Two models map
     * a token path to bitwise-identical predictions iff their
     * fingerprints match, which is the key to *sharing* a
     * perf::PathPredictionCache across predictor instances — the cache
     * binds to this value and rejects mismatched writers. A save/load
     * round trip preserves the fingerprint once the statistics have
     * been float-snapped by one load (the checkpoint invariant
     * hot-reload relies on; see docs/serving.md).
     */
    uint64_t parametersFingerprint() const;

    /**
     * The fingerprint this model will have after one save/load round
     * trip (normalization statistics passed through float32). A
     * plan.snsp written at save() time records this value so the
     * P-MODEL check passes against the *reloaded* model; see
     * parametersFingerprint() for why the two differ.
     */
    uint64_t parametersFingerprintSnapped() const;

    /**
     * Trace the module walk into the static execution-plan IR
     * (docs/plan.md): the canonical op sequence for this
     * architecture, carrying parametersFingerprint() and accepting
     * batches up to `batch_max`. Asserts that the composed modules
     * (encoder config, head layer dims) actually form the walk the
     * plan encodes.
     */
    plan::Plan tracePlan(int batch_max) const;

    /**
     * Bind a compiled plan: predict() batches that fit its batch_max
     * run through CompiledPlan::run() instead of the module walk —
     * bitwise-identically (the test_plan.cc gate). The plan must have
     * been compiled against this model's current parameters; like the
     * path cache, a bound plan assumes frozen weights. Pass nullptr
     * to unbind.
     */
    void bindPlan(std::shared_ptr<const plan::CompiledPlan> compiled);

    /** The bound plan, if any. */
    const std::shared_ptr<const plan::CompiledPlan> &
    boundPlan() const
    {
        return plan_;
    }

    /** True when a bound plan would serve predict() right now (a plan
     * is bound and the SNS_PLAN kill switch is not off). */
    bool planActive() const;

    /**
     * Bind the quantized twin of the fp64 plan: a compiled plan whose
     * int8 side table is non-empty (plan::quantizePlan output). It
     * serves predict(..., Precision::Int8) only — the fp64 path is
     * untouched, which is the "precision=fp64 stays bitwise identical"
     * kill-switch guarantee. Same fingerprint/frozen-weights contract
     * as bindPlan(); pass nullptr to unbind.
     */
    void
    bindQuantPlan(std::shared_ptr<const plan::CompiledPlan> compiled);

    /** The bound quantized plan, if any. */
    const std::shared_ptr<const plan::CompiledPlan> &
    boundQuantPlan() const
    {
        return qplan_;
    }

    /** True when a quantized plan is bound (int8 inference possible —
     * modulo the SNS_PLAN switch, which predictBatch checks). */
    bool hasQuantPlan() const { return qplan_ != nullptr; }

    /** Persist weights + normalization to a file. */
    void save(const std::string &path) const;

    /** Restore weights + normalization from a file. */
    void load(const std::string &path);

    /** Stream forms of save()/load(), used to embed the model inside a
     * training checkpoint (nn::CheckpointWriter/Reader payloads);
     * `where` labels load errors. */
    void saveTo(std::ostream &out, const std::string &where) const;
    void loadFrom(std::istream &in, const std::string &where);

    const CircuitformerConfig &config() const { return config_; }

  private:
    /** Forward a padded batch to normalized [B, 3] predictions. */
    tensor::Variable forwardBatch(const std::vector<int> &ids, int batch,
                                  int time,
                                  const std::vector<int> &lengths) const;

    /** Pack a list of token paths into padded ids + lengths. */
    void pack(const std::vector<const std::vector<graphir::TokenId> *>
                  &paths,
              std::vector<int> &ids, int &time,
              std::vector<int> &lengths) const;

    /** Normalized log-target triple for a record. */
    std::array<float, 3> normalizedTargets(const PathRecord &record) const;

    /** Fingerprint with explicit normalization statistics (shared by
     * the plain and float-snapped variants). */
    uint64_t fingerprintWith(const std::array<double, 3> &mean,
                             const std::array<double, 3> &std) const;

    CircuitformerConfig config_;
    Rng init_rng_; ///< consumed during member construction only
    nn::TransformerEncoder encoder_;
    nn::Mlp head_;
    std::array<double, 3> target_mean_{};
    std::array<double, 3> target_std_{};
    bool normalized_ = false;
    std::shared_ptr<const plan::CompiledPlan> plan_;
    std::shared_ptr<const plan::CompiledPlan> qplan_;
};

} // namespace sns::core

#endif // SNS_CORE_CIRCUITFORMER_HH
