#include "core/evaluation.hh"

#include "util/stats.hh"

namespace sns::core {

EvaluationResult
summarizeEvals(std::vector<DesignEval> evals)
{
    EvaluationResult result;
    std::vector<double> tt;
    std::vector<double> tp;
    std::vector<double> at;
    std::vector<double> ap;
    std::vector<double> pt;
    std::vector<double> pp;
    for (const auto &eval : evals) {
        tt.push_back(eval.true_timing_ps);
        tp.push_back(eval.pred_timing_ps);
        at.push_back(eval.true_area_um2);
        ap.push_back(eval.pred_area_um2);
        pt.push_back(eval.true_power_mw);
        pp.push_back(eval.pred_power_mw);
    }
    result.timing = {rrse(tp, tt), maep(tp, tt)};
    result.area = {rrse(ap, at), maep(ap, at)};
    result.power = {rrse(pp, pt), maep(pp, pt)};
    result.designs = std::move(evals);
    return result;
}

EvaluationResult
evaluatePredictor(const SnsPredictor &predictor,
                  const HardwareDesignDataset &designs,
                  const std::vector<size_t> &test_indices)
{
    std::vector<const graphir::Graph *> graphs;
    graphs.reserve(test_indices.size());
    for (size_t idx : test_indices)
        graphs.push_back(&designs.records()[idx].graph);
    PredictOptions options;
    options.collect_critical_path = false;
    const auto preds = predictor.predictBatch(graphs, options);

    std::vector<DesignEval> evals;
    evals.reserve(test_indices.size());
    for (size_t i = 0; i < test_indices.size(); ++i) {
        const auto &record = designs.records()[test_indices[i]];
        DesignEval eval;
        eval.name = record.name;
        eval.true_timing_ps = record.truth.timing_ps;
        eval.true_area_um2 = record.truth.area_um2;
        eval.true_power_mw = record.truth.power_mw;
        eval.pred_timing_ps = preds[i].timing_ps;
        eval.pred_area_um2 = preds[i].area_um2;
        eval.pred_power_mw = preds[i].power_mw;
        evals.push_back(std::move(eval));
    }
    return summarizeEvals(std::move(evals));
}

EvaluationResult
crossValidate2Fold(const HardwareDesignDataset &designs,
                   const TrainerConfig &config,
                   const synth::Synthesizer &oracle, uint64_t split_seed)
{
    const auto [fold_a, fold_b] = designs.splitByBase(0.5, split_seed);

    std::vector<DesignEval> evals;
    auto run_fold = [&](const std::vector<size_t> &train_idx,
                        const std::vector<size_t> &test_idx,
                        uint64_t seed_offset) {
        TrainerConfig fold_config = config;
        fold_config.seed = config.seed + seed_offset;
        // The two folds train different models: give each its own
        // checkpoint directory (and resume source) so their
        // ckpt-*.ckpt sequences never collide.
        const std::string fold_suffix =
            "/fold-" + std::to_string(seed_offset);
        if (!fold_config.checkpoint_dir.empty())
            fold_config.checkpoint_dir += fold_suffix;
        if (!fold_config.resume_from.empty())
            fold_config.resume_from += fold_suffix;
        SnsTrainer trainer(fold_config);
        const auto predictor = trainer.train(designs, train_idx, oracle);
        auto fold_result =
            evaluatePredictor(predictor, designs, test_idx);
        for (auto &eval : fold_result.designs)
            evals.push_back(std::move(eval));
    };
    run_fold(fold_a, fold_b, 0);
    run_fold(fold_b, fold_a, 1);
    return summarizeEvals(std::move(evals));
}

} // namespace sns::core
