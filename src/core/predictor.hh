/**
 * @file
 * SnsPredictor — the end-to-end prediction flow of Fig. 1: GraphIR in,
 * (timing, area, power) out.
 *
 *   1. sample complete circuit paths (Algorithm 1, k = 5),
 *   2. Circuitformer predicts each path's physical characteristics,
 *   3. reductions (max / sum / activity-scaled sum, §3.4),
 *   4. per-target Aggregation MLPs produce the design-level numbers.
 *
 * Because every path is explicitly sampled, the predictor also reports
 * *where* the predicted critical path lies in the design — the paper's
 * §2.2 "local property" advantage over whole-graph GNNs.
 *
 * The serving entry point is `predictBatch`: many designs in, one
 * prediction per design out, with work distributed over the sns::par
 * runtime — across designs when the batch has several, across path
 * batches (and GEMM tiles) inside a single large design. Predictions
 * are bitwise identical at any thread count (docs/parallelism.md).
 */

#ifndef SNS_CORE_PREDICTOR_HH
#define SNS_CORE_PREDICTOR_HH

#include <memory>
#include <span>

#include "core/aggregation.hh"
#include "core/circuitformer.hh"
#include "perf/path_cache.hh"
#include "sampler/path_sampler.hh"

namespace sns::core {

class SnsDesignSession;

/** Design-level prediction plus located critical path. */
struct SnsPrediction
{
    double timing_ps = 0.0;
    double area_um2 = 0.0;
    double power_mw = 0.0;
    /** Vertices of the predicted-slowest sampled path (empty when
     * PredictOptions::collect_critical_path is off). */
    std::vector<graphir::NodeId> critical_path;
    /** Number of complete circuit paths sampled for this prediction. */
    size_t paths_sampled = 0;
};

/** Knobs of one predictBatch() call. */
struct PredictOptions
{
    /**
     * Pool width for this call: 0 keeps the process-wide width
     * (par::configuredThreads()); > 0 runs this call on a pool of
     * that width and restores the prior configuration on return
     * (par::ScopedThreads) — the override is scoped to the call, it
     * no longer leaks into the process like a --threads flag would.
     */
    int threads = 0;

    /** Paths per Circuitformer forward pass. Changing it regroups the
     * padded batches, which legitimately changes results at the
     * float level — it is a model-evaluation knob, not a parallelism
     * knob, and the thread count never alters it. */
    int batch_size = 64;

    /** Record each design's predicted critical path (skip to save the
     * per-design argmax + node-vector copy in bulk serving). */
    bool collect_critical_path = true;

    /**
     * Optional content-addressed path-prediction cache (not owned).
     * When set, every sampled path is looked up first and only the
     * unique misses are forwarded through the Circuitformer — within
     * one design each unique path runs exactly once, and a cache held
     * across predictBatch calls (DSE sweeps over design variants that
     * share most of their paths) extends the reuse across batches.
     * Predictions are bitwise identical cache-on vs cache-off
     * (docs/perf.md).
     *
     * The cache may be shared across predictor instances and threads,
     * but only among predictors whose Circuitformer weights are
     * identical: the first user binds the cache to its
     * modelFingerprint() and a mismatched later user panics rather
     * than serve another model's predictions (the path_cache.hh
     * sharing contract).
     */
    perf::PathPredictionCache *cache = nullptr;

    /** The caller will read `cache`->stats() after the call (e.g.
     * `sns-cli predict --cache-stats`). Pure intent flag — it changes
     * no computation, but declaring it lets validatePredictOptions
     * reject the silently-useless `cache == nullptr` combination
     * (V-OPT-CACHE) instead of printing nothing. */
    bool cache_stats = false;

    /**
     * Optional incremental edit-loop session (not owned; see
     * design_session.hh). When set, the call must carry exactly one
     * graph and routes through SnsDesignSession::predict — open() on
     * first use, update() afterwards — and the session's *pinned*
     * cache supersedes `cache` (setting both is V-OPT-SESSION).
     * Results stay bitwise identical to a cold session-less call;
     * session->lastDiff() reports the reuse.
     */
    SnsDesignSession *session = nullptr;

    /**
     * Numeric tier for this call (docs/quantization.md). Fp64 (the
     * default) is the existing double pipeline, bitwise-untouched by
     * quantization. Int8 runs every quantized Gemm through the integer
     * kernels and needs a model that carries int8 scales
     * (SnsPredictor::quantize or a saved plan_int8.snsp) plus planned
     * execution (SNS_PLAN on) — violations are V-OPT-PRECISION, and
     * Count-mode enforcement recovers by falling back to fp64.
     */
    Precision precision = Precision::Fp64;
};

/**
 * Validate a PredictOptions combination in one place (V-OPT-* rules):
 * negative thread counts, non-positive batch sizes, `cache_stats`
 * without a cache, `session` combined with an external cache, a
 * precision value outside the known enum (V-OPT-PRECISION — possible
 * because the serve protocol carries it as a raw byte). Model-aware
 * precision checks (int8 without scales) live in predictBatch, which
 * can see the model. Pipeline boundaries (predictBatch, sns-serve)
 * hand the report to verify::enforce() — callers probing ahead of
 * time can inspect it directly.
 */
verify::Report validatePredictOptions(const PredictOptions &options);

/** The trained SNS prediction pipeline. */
class SnsPredictor
{
  public:
    SnsPredictor(std::shared_ptr<Circuitformer> circuitformer,
                 AggregationHeads heads,
                 sampler::SamplerOptions sampler_options);

    /**
     * Predict the post-synthesis characteristics of a batch of
     * designs; result i belongs to graphs[i]. Register activity
     * coefficients on each graph (§3.4.4) scale per-path power before
     * aggregation.
     */
    std::vector<SnsPrediction> predictBatch(
        std::span<const graphir::Graph *const> graphs,
        const PredictOptions &options = PredictOptions()) const;

    /**
     * Single-design convenience wrapper over predictBatch (kept for
     * tests and exploratory callers; bulk callers should batch). The
     * options overload is the single-design entry of the edit loop:
     * with options.session set it opens/updates the session in place.
     */
    SnsPrediction predict(const graphir::Graph &graph) const;
    SnsPrediction predict(const graphir::Graph &graph,
                          const PredictOptions &options) const;

    /** The path-level model (e.g. for per-path inspection). */
    const Circuitformer &circuitformer() const { return *circuitformer_; }

    /** Shared handle to the path-level model (for re-wiring pipelines,
     * e.g. the k-sweep ablation that swaps samplers and MLPs). */
    std::shared_ptr<Circuitformer>
    circuitformerPtr() const
    {
        return circuitformer_;
    }

    /** The per-target aggregation heads. */
    const AggregationHeads &heads() const { return heads_; }

    /** The Circuitformer weight fingerprint this predictor binds a
     * shared path cache to (computed once at construction). */
    uint64_t modelFingerprint() const { return model_fingerprint_; }

    /**
     * Calibrate and bind the int8 tier (docs/quantization.md): run the
     * calibration designs through the fp64 plan with a
     * plan::Calibrator observing every Gemm input, derive per-tensor
     * activation scales and per-output-channel weight scales
     * (plan::quantizePlan), compile the rewritten plan — the analyzer
     * enforces the P-QUANT-* rules — and bind it for
     * Precision::Int8 calls. The fp64 path is untouched. Requires
     * planned execution (SNS_PLAN on) and at least one calibration
     * design; re-quantizing replaces the previous scales.
     */
    void quantize(std::span<const graphir::Graph *const> calibration);

    /** True when an int8 plan is bound (quantize() ran, or load()
     * found a plan_int8.snsp). */
    bool quantized() const { return circuitformer_->hasQuantPlan(); }

    /**
     * The fingerprint predictions at `precision` bind a shared path
     * cache to. Fp64 is modelFingerprint(); Int8 additionally hashes
     * the quantized plan (scales included), so caches never mix the
     * two numeric tiers — int8 predictions are deliberately *not*
     * bitwise-equal to fp64 ones — and two predictors share int8
     * entries only when weights *and* calibration match.
     */
    uint64_t predictionFingerprint(Precision precision) const;

    /**
     * The tier a call with `options` will actually run at: the
     * requested precision with the V-OPT-PRECISION fallbacks applied
     * (int8 without scales, SNS_PLAN off, or an oversized batch all
     * resolve to fp64), without emitting diagnostics — predictBatch
     * reports them. Sessions use this to pin the tier they open at.
     */
    Precision effectivePrecision(const PredictOptions &options) const;

    /** Sampler configuration in use. */
    const sampler::SamplerOptions &samplerOptions() const
    {
        return sampler_options_;
    }

    /**
     * Persist the whole trained pipeline into a directory:
     * circuitformer weights, the aggregation heads, and a metadata
     * file with the architecture and sampler configuration.
     */
    void save(const std::string &directory) const;

    /** Restore a pipeline saved by save(). */
    static SnsPredictor load(const std::string &directory);

  private:
    /** The full single-design pipeline (sample -> infer -> aggregate). */
    SnsPrediction predictOne(const graphir::Graph &graph,
                             const PredictOptions &options) const;

    /** Path-level inference through a cache: probe every path, dedup
     * the misses, forward each unique miss once, scatter in order. */
    std::vector<PathPrediction> predictPathsCached(
        const std::vector<std::vector<graphir::TokenId>> &token_paths,
        perf::PathPredictionCache &cache, int batch_size,
        Precision precision) const;

    /** Resolve the call's numeric tier against this model: emits the
     * model-aware V-OPT-PRECISION diagnostics and returns the tier to
     * actually run at (Count-mode recovery falls back to Fp64). */
    Precision resolvePrecision(const PredictOptions &options) const;

    std::shared_ptr<Circuitformer> circuitformer_;
    AggregationHeads heads_;
    sampler::SamplerOptions sampler_options_;
    uint64_t model_fingerprint_ = 0;
    /** predictionFingerprint(Int8); 0 until a quantized plan binds. */
    uint64_t quant_fingerprint_ = 0;
};

} // namespace sns::core

#endif // SNS_CORE_PREDICTOR_HH
