/**
 * @file
 * SnsPredictor — the end-to-end prediction flow of Fig. 1: GraphIR in,
 * (timing, area, power) out.
 *
 *   1. sample complete circuit paths (Algorithm 1, k = 5),
 *   2. Circuitformer predicts each path's physical characteristics,
 *   3. reductions (max / sum / activity-scaled sum, §3.4),
 *   4. per-target Aggregation MLPs produce the design-level numbers.
 *
 * Because every path is explicitly sampled, the predictor also reports
 * *where* the predicted critical path lies in the design — the paper's
 * §2.2 "local property" advantage over whole-graph GNNs.
 */

#ifndef SNS_CORE_PREDICTOR_HH
#define SNS_CORE_PREDICTOR_HH

#include <memory>

#include "core/aggregation.hh"
#include "core/circuitformer.hh"
#include "sampler/path_sampler.hh"

namespace sns::core {

/** Design-level prediction plus located critical path. */
struct SnsPrediction
{
    double timing_ps = 0.0;
    double area_um2 = 0.0;
    double power_mw = 0.0;
    /** Vertices of the predicted-slowest sampled path. */
    std::vector<graphir::NodeId> critical_path;
    /** Number of complete circuit paths sampled for this prediction. */
    size_t paths_sampled = 0;
};

/** The trained SNS prediction pipeline. */
class SnsPredictor
{
  public:
    SnsPredictor(std::shared_ptr<Circuitformer> circuitformer,
                 std::shared_ptr<AggregationMlp> timing_mlp,
                 std::shared_ptr<AggregationMlp> area_mlp,
                 std::shared_ptr<AggregationMlp> power_mlp,
                 sampler::SamplerOptions sampler_options);

    /**
     * Predict the post-synthesis characteristics of a design. Register
     * activity coefficients on the graph (§3.4.4) scale per-path power
     * before aggregation.
     */
    SnsPrediction predict(const graphir::Graph &graph) const;

    /** The path-level model (e.g. for per-path inspection). */
    const Circuitformer &circuitformer() const { return *circuitformer_; }

    /** Shared handle to the path-level model (for re-wiring pipelines,
     * e.g. the k-sweep ablation that swaps samplers and MLPs). */
    std::shared_ptr<Circuitformer>
    circuitformerPtr() const
    {
        return circuitformer_;
    }

    /** Sampler configuration in use. */
    const sampler::SamplerOptions &samplerOptions() const
    {
        return sampler_options_;
    }

    /**
     * Persist the whole trained pipeline into a directory:
     * circuitformer weights, the three MLPs, and a metadata file with
     * the architecture and sampler configuration.
     */
    void save(const std::string &directory) const;

    /** Restore a pipeline saved by save(). */
    static SnsPredictor load(const std::string &directory);

  private:
    std::shared_ptr<Circuitformer> circuitformer_;
    std::shared_ptr<AggregationMlp> timing_mlp_;
    std::shared_ptr<AggregationMlp> area_mlp_;
    std::shared_ptr<AggregationMlp> power_mlp_;
    sampler::SamplerOptions sampler_options_;
};

} // namespace sns::core

#endif // SNS_CORE_PREDICTOR_HH
