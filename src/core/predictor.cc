#include "core/predictor.hh"

#include "core/design_session.hh"

#include <filesystem>
#include <fstream>
#include <map>
#include <unordered_map>

#include "nn/serialize.hh"
#include "par/thread_pool.hh"
#include "plan/calibrate.hh"
#include "plan/snsp.hh"
#include "tensor/autograd.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace sns::core {

namespace {

/** Largest padded batch the traced plan accepts; covers the default
 * PredictOptions::batch_size. Bigger batch_size values fall back to
 * the (bitwise-identical) module walk. */
constexpr int kPlanBatchMax = 64;

} // namespace

verify::Report
validatePredictOptions(const PredictOptions &options)
{
    verify::Report report;
    if (options.threads < 0) {
        report.error(verify::rules::kOptionsThreads, "PredictOptions",
                     "threads is negative (" +
                         std::to_string(options.threads) + ")",
                     "0 keeps the process-wide width; > 0 overrides it "
                     "for this call");
    }
    if (options.batch_size <= 0) {
        report.error(verify::rules::kOptionsBatch, "PredictOptions",
                     "batch_size must be positive (got " +
                         std::to_string(options.batch_size) + ")");
    }
    if (options.cache_stats && options.cache == nullptr &&
        options.session == nullptr) {
        report.error(verify::rules::kOptionsCache, "PredictOptions",
                     "cache_stats requested without a cache — there "
                     "would be no counters to report",
                     "set PredictOptions::cache (or session), or drop "
                     "cache_stats");
    }
    if (options.session != nullptr && options.cache != nullptr) {
        report.error(verify::rules::kOptionsSession, "PredictOptions",
                     "session and cache are both set — a session "
                     "predicts through its own pinned cache, the "
                     "external one would be silently ignored",
                     "drop the cache (read session->cacheStats() "
                     "instead) or drop the session");
    }
    if (options.precision != Precision::Fp64 &&
        options.precision != Precision::Int8) {
        report.error(
            verify::rules::kOptionsPrecision, "PredictOptions",
            "unknown precision value (" +
                std::to_string(static_cast<int>(options.precision)) +
                ")",
            "known tiers: fp64 (0) and int8 (1); under Count "
            "enforcement the call recovers to fp64");
    }
    return report;
}

SnsPredictor::SnsPredictor(std::shared_ptr<Circuitformer> circuitformer,
                           AggregationHeads heads,
                           sampler::SamplerOptions sampler_options)
    : circuitformer_(std::move(circuitformer)),
      heads_(std::move(heads)),
      sampler_options_(sampler_options)
{
    SNS_ASSERT(circuitformer_ && heads_.complete(),
               "SnsPredictor needs all four models");
    SNS_ASSERT(heads_.timing->target() == Target::Timing &&
                   heads_.area->target() == Target::Area &&
                   heads_.power->target() == Target::Power,
               "MLP target mismatch");
    model_fingerprint_ = circuitformer_->parametersFingerprint();
    // Trace the module walk into the static execution plan, run the
    // analyzer over it, and bind it (docs/plan.md). Like the path
    // cache, the bound plan assumes the weights stay frozen for this
    // predictor's lifetime. load() re-binds from the verified
    // plan.snsp when the save directory carries one.
    circuitformer_->bindPlan(plan::compilePlan(
        circuitformer_->tracePlan(kPlanBatchMax),
        circuitformer_->parameters()));
}

SnsPrediction
SnsPredictor::predictOne(const graphir::Graph &graph,
                         const PredictOptions &options) const
{
    SnsPrediction prediction;

    // 1. Sample complete circuit paths.
    const auto paths = sampler::PathSampler(sampler_options_).sample(graph);
    prediction.paths_sampled = paths.size();
    if (paths.empty())
        return prediction;

    // 2. Path-level inference, memoized when the caller holds a cache.
    std::vector<std::vector<graphir::TokenId>> token_paths;
    token_paths.reserve(paths.size());
    for (const auto &path : paths)
        token_paths.push_back(path.tokens);
    const auto path_preds =
        options.cache != nullptr
            ? predictPathsCached(token_paths, *options.cache,
                                 options.batch_size, options.precision)
            : circuitformer_->predict(token_paths, options.batch_size,
                                      options.precision);

    // 3. Reductions. Per-path activity is the mean of the endpoint
    //    registers' activity coefficients (§3.4.4).
    std::vector<double> activities;
    std::vector<size_t> lengths;
    activities.reserve(paths.size());
    lengths.reserve(paths.size());
    for (const auto &path : paths) {
        const double front = graph.activity(path.nodes.front());
        const double back = graph.activity(path.nodes.back());
        activities.push_back(0.5 * (front + back));
        lengths.push_back(path.nodes.size());
    }
    const auto summary =
        reduceAggregates(graph, path_preds, lengths, activities);

    // 4. Design-level MLPs.
    prediction.timing_ps = heads_.timing->predict(summary);
    prediction.area_um2 = heads_.area->predict(summary);
    prediction.power_mw = heads_.power->predict(summary);

    // Critical-path localization: the sampled path with the largest
    // predicted timing.
    if (options.collect_critical_path) {
        size_t argmax = 0;
        for (size_t i = 1; i < path_preds.size(); ++i) {
            if (path_preds[i].timing_ps > path_preds[argmax].timing_ps)
                argmax = i;
        }
        prediction.critical_path = paths[argmax].nodes;
    }
    return prediction;
}

std::vector<PathPrediction>
SnsPredictor::predictPathsCached(
    const std::vector<std::vector<graphir::TokenId>> &token_paths,
    perf::PathPredictionCache &cache, int batch_size,
    Precision precision) const
{
    std::vector<PathPrediction> preds(token_paths.size());

    // A shared cache only memoizes soundly under one fixed model *and*
    // numeric tier — int8 predictions deliberately differ from fp64
    // ones — so the binding fingerprint is precision-salted
    // (predictionFingerprint); first binder wins, equal fingerprints
    // coexist, a conflict is a caller bug.
    SNS_ASSERT(cache.bindModel(predictionFingerprint(precision)),
               "path cache is bound to a different model or precision "
               "(fingerprint ", cache.boundModel(),
               ") — a shared cache requires identical Circuitformer "
               "weights and numeric tier; clear() it before switching");

    // Probe phase: resolve hits immediately; dedup the misses so each
    // unique path is forwarded through the Circuitformer exactly once.
    // `unique` holds the first index of each distinct missed sequence,
    // `assign[i]` maps every miss back to its unique slot. Hash
    // buckets are verified by full token comparison, so colliding
    // sequences never share a slot.
    std::vector<size_t> unique;
    std::vector<size_t> assign(token_paths.size());
    std::vector<char> hit(token_paths.size(), 0);
    std::unordered_map<uint64_t, std::vector<size_t>> pending;
    for (size_t i = 0; i < token_paths.size(); ++i) {
        if (cache.lookup(token_paths[i], preds[i])) {
            hit[i] = 1;
            continue;
        }
        const uint64_t hash = perf::hashTokens(token_paths[i]);
        auto &slots = pending[hash];
        size_t slot = unique.size();
        for (const size_t candidate : slots) {
            if (token_paths[unique[candidate]] == token_paths[i]) {
                slot = candidate;
                break;
            }
        }
        if (slot == unique.size()) {
            slots.push_back(slot);
            unique.push_back(i);
        }
        assign[i] = slot;
    }
    if (unique.empty())
        return preds;

    // Compute phase: one forward pass over the deduplicated misses.
    // Batch padding is key-masked, so each path's row is bitwise
    // independent of its batch mates — regrouping misses never changes
    // a prediction (docs/perf.md).
    std::vector<std::vector<graphir::TokenId>> miss_paths;
    miss_paths.reserve(unique.size());
    for (const size_t index : unique)
        miss_paths.push_back(token_paths[index]);
    const auto miss_preds =
        circuitformer_->predict(miss_paths, batch_size, precision);

    // Scatter phase: memoize and fill every miss in original order.
    for (size_t u = 0; u < unique.size(); ++u)
        cache.insert(miss_paths[u], miss_preds[u]);
    for (size_t i = 0; i < token_paths.size(); ++i) {
        if (!hit[i])
            preds[i] = miss_preds[assign[i]];
    }
    return preds;
}

std::vector<SnsPrediction>
SnsPredictor::predictBatch(std::span<const graphir::Graph *const> graphs,
                           const PredictOptions &options) const
{
    // Conflicting knob combinations are rejected in one place instead
    // of silently ignored field by field (V-OPT-*).
    if (verify::enabled()) {
        auto report = validatePredictOptions(options);
        if (options.session != nullptr && graphs.size() != 1) {
            report.error(verify::rules::kOptionsSession, "PredictOptions",
                         "session routing needs exactly one graph, got " +
                             std::to_string(graphs.size()),
                         "a session tracks one design's edit history");
        }
        verify::enforce(std::move(report), "predictBatch options");
    }

    // Resolve the numeric tier against this model: int8 without scales
    // (or with SNS_PLAN off, or an oversized batch) is diagnosed here
    // — V-OPT-PRECISION — and recovers to fp64 under Count mode.
    PredictOptions effective = options;
    effective.precision = resolvePrecision(options);

    // Edit-loop routing: the session applies its own scoped-threads
    // override when it re-enters predictBatch session-less.
    if (effective.session != nullptr && graphs.size() == 1) {
        SNS_ASSERT(graphs[0] != nullptr, "predictBatch: null graph");
        PredictOptions inner = effective;
        inner.session = nullptr;
        inner.cache = nullptr;
        return {effective.session->predict(*this, *graphs[0], inner)};
    }

    // Call-scoped width override; restores the prior process-wide
    // configuration (including "unset") when this call returns.
    par::ScopedThreads scoped_threads(options.threads);

    std::vector<SnsPrediction> predictions(graphs.size());
    // One task per design; each design's pipeline is self-contained and
    // writes only its own slot. With a single design (or one thread)
    // this degrades to the serial loop, and the per-design pipeline's
    // inner parallelism (GEMM tiles, Circuitformer batches) takes over.
    par::parallelFor(graphs.size(), [&](size_t begin, size_t end) {
        tensor::NoGradGuard no_grad;
        for (size_t i = begin; i < end; ++i) {
            SNS_ASSERT(graphs[i] != nullptr,
                       "predictBatch: null graph at index ", i);
            predictions[i] = predictOne(*graphs[i], effective);
        }
    });
    return predictions;
}

Precision
SnsPredictor::effectivePrecision(const PredictOptions &options) const
{
    if (options.precision != Precision::Int8)
        return Precision::Fp64;
    if (!circuitformer_->hasQuantPlan() || !plan::planEnabled() ||
        options.batch_size >
            circuitformer_->boundQuantPlan()->batchMax())
        return Precision::Fp64;
    return Precision::Int8;
}

Precision
SnsPredictor::resolvePrecision(const PredictOptions &options) const
{
    // An out-of-enum byte (possible via the serve protocol) was
    // already diagnosed by validatePredictOptions; recover to fp64.
    if (options.precision != Precision::Fp64 &&
        options.precision != Precision::Int8)
        return Precision::Fp64;
    if (options.precision == Precision::Fp64)
        return Precision::Fp64;

    verify::Report report;
    if (!circuitformer_->hasQuantPlan()) {
        report.error(verify::rules::kOptionsPrecision, "PredictOptions",
                     "precision=int8 but this model carries no int8 "
                     "scales",
                     "calibrate first: SnsPredictor::quantize() or "
                     "`sns-cli quantize` (docs/quantization.md)");
    } else if (!plan::planEnabled()) {
        report.error(verify::rules::kOptionsPrecision, "PredictOptions",
                     "precision=int8 needs planned execution, which "
                     "SNS_PLAN=0 disables",
                     "unset SNS_PLAN (or set it to 1), or request "
                     "fp64");
    } else if (options.batch_size >
               circuitformer_->boundQuantPlan()->batchMax()) {
        report.error(
            verify::rules::kOptionsPrecision, "PredictOptions",
            "batch_size " + std::to_string(options.batch_size) +
                " exceeds the quantized plan's batch_max " +
                std::to_string(
                    circuitformer_->boundQuantPlan()->batchMax()),
            "int8 has no module-walk fallback for oversized batches; "
            "shrink batch_size or request fp64");
    }
    if (report.hasErrors()) {
        verify::enforce(std::move(report), "predictBatch precision");
        return Precision::Fp64; // Count-mode (and Off-mode) recovery
    }
    return Precision::Int8;
}

uint64_t
SnsPredictor::predictionFingerprint(Precision precision) const
{
    if (precision == Precision::Int8) {
        SNS_ASSERT(quant_fingerprint_ != 0,
                   "predictionFingerprint: no quantized plan bound");
        return quant_fingerprint_;
    }
    return model_fingerprint_;
}

void
SnsPredictor::quantize(
    std::span<const graphir::Graph *const> calibration)
{
    SNS_ASSERT(!calibration.empty(),
               "quantize() needs at least one calibration design");
    SNS_ASSERT(circuitformer_->planActive(),
               "quantize() calibrates through the fp64 execution plan "
               "— a plan must be bound and SNS_PLAN on");
    const auto &fp64_plan = circuitformer_->boundPlan();

    // Calibration pass: run the held-out shard through the exact fp64
    // pipeline int8 will replace (same sampler, same batching), with a
    // Calibrator observing every Gemm input's absmax. Observation
    // changes no computed value.
    plan::Calibrator calibrator;
    fp64_plan->setCalibrationObserver(&calibrator);
    PredictOptions calibration_options;
    calibration_options.collect_critical_path = false;
    predictBatch(calibration, calibration_options);
    fp64_plan->setCalibrationObserver(nullptr);

    // Rewrite -> analyze (P-QUANT-* inside compilePlan) -> bind.
    const plan::Plan quantized = plan::quantizePlan(
        fp64_plan->plan(), calibrator, circuitformer_->parameters());
    circuitformer_->bindQuantPlan(
        plan::compilePlan(quantized, circuitformer_->parameters()));

    // Int8 cache identity: weights + scales, so caches never mix
    // tiers or calibrations (see predictionFingerprint()).
    const auto payload = plan::serializePlanPayload(quantized);
    const uint64_t hash = plan::fnv1a(payload.data(), payload.size());
    quant_fingerprint_ = hash == 0 ? 1 : hash;
}

SnsPrediction
SnsPredictor::predict(const graphir::Graph &graph) const
{
    const graphir::Graph *graphs[1] = {&graph};
    return predictBatch(graphs).front();
}

SnsPrediction
SnsPredictor::predict(const graphir::Graph &graph,
                      const PredictOptions &options) const
{
    const graphir::Graph *graphs[1] = {&graph};
    return predictBatch(graphs, options).front();
}

namespace {

constexpr const char *kMetaFile = "predictor.meta";

} // namespace

void
SnsPredictor::save(const std::string &directory) const
{
    std::filesystem::create_directories(directory);
    circuitformer_->save(directory + "/circuitformer.bin");
    heads_.save(directory);

    // The serialized plan records the *snapped* fingerprint — the one
    // the model will have after this directory is loaded back (the
    // normalization statistics are float32 in circuitformer.bin) — so
    // load()'s P-MODEL check passes against the reloaded model.
    plan::Plan traced = circuitformer_->tracePlan(kPlanBatchMax);
    traced.fingerprint = circuitformer_->parametersFingerprintSnapped();
    plan::writePlanFile(traced, directory + "/plan.snsp");

    // The int8 tier rides along as a second plan file carrying the
    // calibrated side table; a load() that finds it re-binds the
    // quantized plan so `--precision int8` works on the reloaded
    // pipeline without re-calibrating.
    if (circuitformer_->hasQuantPlan()) {
        plan::Plan quantized = circuitformer_->boundQuantPlan()->plan();
        quantized.fingerprint =
            circuitformer_->parametersFingerprintSnapped();
        plan::writePlanFile(quantized, directory + "/plan_int8.snsp");
    }

    std::ofstream meta(directory + "/" + kMetaFile);
    if (!meta)
        throw nn::SerializeError("cannot write " + directory + "/" +
                                 kMetaFile);
    const auto &model = circuitformer_->config();
    meta << "format 1\n"
         << "vocab_size " << model.encoder.vocab_size << "\n"
         << "max_positions " << model.encoder.max_positions << "\n"
         << "d_model " << model.encoder.d_model << "\n"
         << "heads " << model.encoder.heads << "\n"
         << "layers " << model.encoder.layers << "\n"
         << "d_ff " << model.encoder.d_ff << "\n"
         << "head_hidden " << model.head_hidden << "\n"
         << "sampler_k " << sampler_options_.k << "\n"
         << "max_path_length " << sampler_options_.max_path_length
         << "\n"
         << "max_paths_per_source "
         << sampler_options_.max_paths_per_source << "\n"
         << "max_total_paths " << sampler_options_.max_total_paths
         << "\n"
         << "longest_paths " << sampler_options_.longest_paths << "\n"
         << "sampler_seed " << sampler_options_.seed << "\n";
}

SnsPredictor
SnsPredictor::load(const std::string &directory)
{
    std::ifstream meta(directory + "/" + kMetaFile);
    if (!meta)
        throw nn::SerializeError("cannot open " + directory + "/" +
                                 kMetaFile);
    std::map<std::string, std::string> kv;
    std::string line;
    while (std::getline(meta, line)) {
        const auto fields = splitWhitespace(line);
        if (fields.size() == 2)
            kv[fields[0]] = fields[1];
    }
    auto geti = [&kv](const char *key) {
        const auto it = kv.find(key);
        if (it == kv.end())
            throw nn::SerializeError(
                std::string("predictor.meta missing key: ") + key);
        return std::stoll(it->second);
    };
    auto getd = [&kv](const char *key) {
        const auto it = kv.find(key);
        if (it == kv.end())
            throw nn::SerializeError(
                std::string("predictor.meta missing key: ") + key);
        return std::stod(it->second);
    };
    if (geti("format") != 1)
        throw nn::SerializeError("unsupported predictor.meta format");

    CircuitformerConfig model;
    model.encoder.vocab_size = static_cast<int>(geti("vocab_size"));
    model.encoder.max_positions =
        static_cast<int>(geti("max_positions"));
    model.encoder.d_model = static_cast<int>(geti("d_model"));
    model.encoder.heads = static_cast<int>(geti("heads"));
    model.encoder.layers = static_cast<int>(geti("layers"));
    model.encoder.d_ff = static_cast<int>(geti("d_ff"));
    model.head_hidden = static_cast<int>(geti("head_hidden"));

    sampler::SamplerOptions sopts;
    sopts.k = getd("sampler_k");
    sopts.max_path_length =
        static_cast<size_t>(geti("max_path_length"));
    sopts.max_paths_per_source =
        static_cast<size_t>(geti("max_paths_per_source"));
    sopts.max_total_paths =
        static_cast<size_t>(geti("max_total_paths"));
    sopts.longest_paths = static_cast<size_t>(geti("longest_paths"));
    sopts.seed = static_cast<uint64_t>(geti("sampler_seed"));

    auto circuitformer = std::make_shared<Circuitformer>(model);
    circuitformer->load(directory + "/circuitformer.bin");
    SnsPredictor predictor(std::move(circuitformer),
                           AggregationHeads::load(directory), sopts);

    // When the directory carries a serialized plan, verify it
    // (container P-* checks + the full analyzer pipeline inside
    // compilePlan) and bind it in place of the constructor's in-memory
    // trace. A missing plan.snsp (pre-plan save) is fine — the traced
    // plan stays bound; a corrupt or mismatched one is a hard error
    // under the default Fatal enforcement mode.
    const std::string plan_path = directory + "/plan.snsp";
    if (std::filesystem::exists(plan_path)) {
        verify::Report report;
        plan::Plan file_plan;
        const bool parsed =
            plan::readPlanFile(plan_path, file_plan, report);
        if (parsed) {
            const Circuitformer &model_ref = *predictor.circuitformer_;
            const uint64_t want = model_ref.parametersFingerprint();
            if (file_plan.fingerprint != want) {
                report.error(verify::rules::kPlanModel, plan_path,
                             "plan fingerprint does not match the "
                             "loaded model's parameters",
                             "the model files were modified after the "
                             "plan was written; re-save the predictor");
            }
            const auto &config = model_ref.config();
            if (file_plan.config.vocab != config.encoder.vocab_size ||
                file_plan.config.max_positions !=
                    config.encoder.max_positions ||
                file_plan.config.d_model != config.encoder.d_model ||
                file_plan.config.heads != config.encoder.heads ||
                file_plan.config.layers != config.encoder.layers ||
                file_plan.config.d_ff != config.encoder.d_ff ||
                file_plan.config.head_hidden != config.head_hidden) {
                report.error(verify::rules::kPlanModel, plan_path,
                             "plan architecture does not match "
                             "predictor.meta");
            }
        }
        const bool usable = parsed && !report.hasErrors();
        verify::enforce(std::move(report), plan_path);
        if (usable) {
            predictor.circuitformer_->bindPlan(plan::compilePlan(
                file_plan, predictor.circuitformer_->parameters()));
        }
    }

    // A saved int8 tier (plan_int8.snsp) goes through the same gate:
    // container checks, the P-QUANT-* analyzer passes inside
    // compilePlan, and the model-fingerprint match — then binds for
    // Precision::Int8 calls.
    const std::string qplan_path = directory + "/plan_int8.snsp";
    if (std::filesystem::exists(qplan_path)) {
        verify::Report report;
        plan::Plan file_plan;
        const bool parsed =
            plan::readPlanFile(qplan_path, file_plan, report);
        if (parsed) {
            if (file_plan.fingerprint !=
                predictor.circuitformer_->parametersFingerprint()) {
                report.error(verify::rules::kPlanModel, qplan_path,
                             "quantized plan fingerprint does not "
                             "match the loaded model's parameters",
                             "the model files were modified after "
                             "quantization; re-run quantize");
            }
            if (file_plan.quant.empty()) {
                report.error(verify::rules::kPlanQuantOp, qplan_path,
                             "plan_int8.snsp carries no int8 side "
                             "table",
                             "re-save the predictor after quantize()");
            }
        }
        const bool usable = parsed && !report.hasErrors();
        verify::enforce(std::move(report), qplan_path);
        if (usable) {
            predictor.circuitformer_->bindQuantPlan(plan::compilePlan(
                file_plan, predictor.circuitformer_->parameters()));
            const auto payload = plan::serializePlanPayload(file_plan);
            const uint64_t hash =
                plan::fnv1a(payload.data(), payload.size());
            predictor.quant_fingerprint_ = hash == 0 ? 1 : hash;
        }
    }
    return predictor;
}

} // namespace sns::core
