/**
 * @file
 * The SNS training flow (Fig. 4): build the Circuit Path Dataset from
 * the training designs (direct sampling + Markov + SeqGAN), train the
 * Circuitformer (Adam, Table 6), then train the three Aggregation MLPs
 * (SGD, Table 6) on the training designs' aggregated path predictions
 * and ground truth.
 *
 * Training is crash-safe and observable (docs/training.md):
 *
 *   - With TrainerConfig::checkpoint_dir set, the trainer commits a
 *     full-state checkpoint (weights, optimizer moments, RNG streams,
 *     epoch counters, loss history, dataset fingerprints) every
 *     checkpoint_every epochs, atomically, with rolling keep-last-N
 *     retention. A run killed at any epoch and restarted with
 *     resume_from produces a bitwise-identical final model.
 *   - A pluggable TrainProgressSink observes every epoch (stderr
 *     table, JSONL log, or both via TeeProgressSink) and can request a
 *     graceful stop; sns::obs counters/histograms/gauges expose the
 *     same signals to the STATS machinery.
 */

#ifndef SNS_CORE_TRAINER_HH
#define SNS_CORE_TRAINER_HH

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/datasets.hh"
#include "core/predictor.hh"
#include "dist/exchange.hh"

namespace sns::obs {
class Registry;
}

namespace sns::core {

/** One point of the Fig. 5 loss curves. */
struct LossPoint
{
    int epoch = 0;
    double train_loss = 0.0;
    double validation_loss = 0.0;
};

/** What a TrainProgressSink sees after each completed epoch. */
struct EpochProgress
{
    int epoch = 0;        ///< 0-based index of the epoch just finished
    int total_epochs = 0; ///< configured Circuitformer epoch count
    double train_loss = 0.0;
    double validation_loss = 0.0;
    double epoch_seconds = 0.0;    ///< wall time of this epoch
    double samples_per_sec = 0.0;  ///< training paths / epoch_seconds
    size_t train_paths = 0;
    size_t validation_paths = 0;
    /** Checkpoint committed this epoch, or "" if none was due. */
    std::string checkpoint_path;
};

/**
 * Observer of training progress. onEpoch() returning false requests a
 * graceful stop: the trainer commits a checkpoint (when checkpointing
 * is enabled) and throws TrainingInterrupted — this is how the CLI
 * turns SIGINT into a resumable interruption.
 */
class TrainProgressSink
{
  public:
    virtual ~TrainProgressSink() = default;

    /** Called after every completed epoch; return false to stop. */
    virtual bool onEpoch(const EpochProgress &progress) = 0;

    /** Out-of-band lifecycle notes (resume, interruption). */
    virtual void
    onEvent(const std::string &message)
    {
        (void)message;
    }
};

/** Human-readable epoch table on stderr (`sns-cli train` default). */
class StderrProgressSink : public TrainProgressSink
{
  public:
    bool onEpoch(const EpochProgress &progress) override;
    void onEvent(const std::string &message) override;

  private:
    bool header_printed_ = false;
};

/** One JSON object per epoch, appended to a log file and flushed per
 * line (crash-safe observability; `sns-cli train --log-jsonl`). */
class JsonlProgressSink : public TrainProgressSink
{
  public:
    /** Opens `path` in append mode; throws std::runtime_error if the
     * file cannot be opened. */
    explicit JsonlProgressSink(const std::string &path);
    ~JsonlProgressSink() override;

    bool onEpoch(const EpochProgress &progress) override;
    void onEvent(const std::string &message) override;

  private:
    std::unique_ptr<std::ofstream> out_;
};

/** Fans out to several sinks; stops when ANY child requests a stop
 * (all children still observe every epoch). */
class TeeProgressSink : public TrainProgressSink
{
  public:
    explicit TeeProgressSink(std::vector<TrainProgressSink *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    bool onEpoch(const EpochProgress &progress) override;
    void onEvent(const std::string &message) override;

  private:
    std::vector<TrainProgressSink *> sinks_; ///< non-owning
};

/**
 * Thrown when a progress sink requests a stop mid-training. Training
 * state up to and including epoch() is safe in checkpointPath() (empty
 * only when checkpointing was disabled); rerun with
 * TrainerConfig::resume_from to continue bitwise-exactly.
 */
class TrainingInterrupted : public std::runtime_error
{
  public:
    TrainingInterrupted(int epoch, std::string checkpoint_path);

    /** Last completed epoch (0-based). */
    int epoch() const { return epoch_; }

    /** Checkpoint holding the interrupted state ("" if disabled). */
    const std::string &checkpointPath() const { return checkpoint_path_; }

  private:
    int epoch_;
    std::string checkpoint_path_;
};

/** End-to-end training configuration. */
struct TrainerConfig
{
    /** Circuit Path Dataset assembly (§4.2). */
    PathDatasetOptions path_data;

    /** Circuitformer model size (Table 2 by default). */
    CircuitformerConfig model;

    /** @name Circuitformer schedule (Table 6)
     * @{
     */
    int circuitformer_epochs = 256;
    int circuitformer_batch = 128;
    double circuitformer_lr = 1e-3;
    /** @} */

    /** Fraction of the path dataset held out for the Fig.-5 curve. */
    double validation_fraction = 0.15;

    /** Aggregation-MLP schedule (Table 6). */
    MlpTrainConfig mlp;

    /** Use the scaled-down SeqGAN schedule (fast runs). */
    bool seqgan_small = true;

    uint64_t seed = 0x7ea1;

    /** @name Crash-safe checkpointing (docs/training.md)
     * @{
     */
    /** Directory for ckpt-NNNNNN.ckpt files; "" disables. Created on
     * demand. The final epoch is always checkpointed when enabled. */
    std::string checkpoint_dir;

    /** Commit a checkpoint every N completed epochs (<= 0: only the
     * final epoch and interruptions). */
    int checkpoint_every = 1;

    /** Rolling retention: keep only the newest N checkpoints
     * (0 keeps everything). */
    int checkpoint_keep = 3;

    /**
     * Resume source: a .ckpt file, or a directory whose newest
     * ckpt-*.ckpt is used. "" trains from scratch. The checkpoint's
     * config and dataset-split fingerprints must match this config or
     * train() throws nn::SerializeError.
     */
    std::string resume_from;
    /** @} */

    /**
     * Distributed data-parallel training (docs/distributed.md).
     * dist.active() (grad_slices > 0) selects the slice-deterministic
     * training path; world_size > 1 additionally requires a rendezvous
     * (or an injected ring channel) and produces per-rank shard
     * checkpoints (ckpt-NNNNNN-rRRofWW.ckpt) that resume at any
     * admissible rank count. The final model is bitwise-identical at
     * every power-of-two world size that divides grad_slices.
     */
    dist::DistConfig dist;

    /** Metrics destination; nullptr publishes to
     * obs::Registry::global(). */
    obs::Registry *registry = nullptr;

    /** Per-epoch observer; nullptr trains silently. Non-owning. */
    TrainProgressSink *progress = nullptr;

    /**
     * A configuration small enough for unit tests: tiny model, few
     * epochs, modest path counts. Same code paths, minutes -> seconds.
     */
    static TrainerConfig fast();
};

/** Runs the Fig.-4 training flow and produces an SnsPredictor. */
class SnsTrainer
{
  public:
    explicit SnsTrainer(TrainerConfig config = TrainerConfig());

    /**
     * Train on the given subset of the Hardware Design Dataset.
     * @param oracle the reference synthesizer used to label circuit
     *        paths (the paper's Synopsys DC role)
     * @throws TrainingInterrupted when the progress sink requests a
     *        stop; nn::SerializeError when resume_from is unusable
     */
    SnsPredictor train(const HardwareDesignDataset &designs,
                       const std::vector<size_t> &train_indices,
                       const synth::Synthesizer &oracle);

    /** Fig.-5 loss curve of the last train() call (on resume this
     * includes the epochs restored from the checkpoint). */
    const std::vector<LossPoint> &lossCurve() const { return loss_curve_; }

    /** The Circuit Path Dataset assembled by the last train() call. */
    const CircuitPathDataset &pathDataset() const { return path_dataset_; }

    const TrainerConfig &config() const { return config_; }

  private:
    TrainerConfig config_;
    std::vector<LossPoint> loss_curve_;
    CircuitPathDataset path_dataset_;
};

} // namespace sns::core

#endif // SNS_CORE_TRAINER_HH
