/**
 * @file
 * The SNS training flow (Fig. 4): build the Circuit Path Dataset from
 * the training designs (direct sampling + Markov + SeqGAN), train the
 * Circuitformer (Adam, Table 6), then train the three Aggregation MLPs
 * (SGD, Table 6) on the training designs' aggregated path predictions
 * and ground truth.
 */

#ifndef SNS_CORE_TRAINER_HH
#define SNS_CORE_TRAINER_HH

#include <vector>

#include "core/datasets.hh"
#include "core/predictor.hh"

namespace sns::core {

/** One point of the Fig. 5 loss curves. */
struct LossPoint
{
    int epoch = 0;
    double train_loss = 0.0;
    double validation_loss = 0.0;
};

/** End-to-end training configuration. */
struct TrainerConfig
{
    /** Circuit Path Dataset assembly (§4.2). */
    PathDatasetOptions path_data;

    /** Circuitformer model size (Table 2 by default). */
    CircuitformerConfig model;

    /** @name Circuitformer schedule (Table 6)
     * @{
     */
    int circuitformer_epochs = 256;
    int circuitformer_batch = 128;
    double circuitformer_lr = 1e-3;
    /** @} */

    /** Fraction of the path dataset held out for the Fig.-5 curve. */
    double validation_fraction = 0.15;

    /** Aggregation-MLP schedule (Table 6). */
    MlpTrainConfig mlp;

    /** Use the scaled-down SeqGAN schedule (fast runs). */
    bool seqgan_small = true;

    uint64_t seed = 0x7ea1;

    /**
     * A configuration small enough for unit tests: tiny model, few
     * epochs, modest path counts. Same code paths, minutes -> seconds.
     */
    static TrainerConfig fast();
};

/** Runs the Fig.-4 training flow and produces an SnsPredictor. */
class SnsTrainer
{
  public:
    explicit SnsTrainer(TrainerConfig config = TrainerConfig());

    /**
     * Train on the given subset of the Hardware Design Dataset.
     * @param oracle the reference synthesizer used to label circuit
     *        paths (the paper's Synopsys DC role)
     */
    SnsPredictor train(const HardwareDesignDataset &designs,
                       const std::vector<size_t> &train_indices,
                       const synth::Synthesizer &oracle);

    /** Fig.-5 loss curve of the last train() call. */
    const std::vector<LossPoint> &lossCurve() const { return loss_curve_; }

    /** The Circuit Path Dataset assembled by the last train() call. */
    const CircuitPathDataset &pathDataset() const { return path_dataset_; }

    const TrainerConfig &config() const { return config_; }

  private:
    TrainerConfig config_;
    std::vector<LossPoint> loss_curve_;
    CircuitPathDataset path_dataset_;
};

} // namespace sns::core

#endif // SNS_CORE_TRAINER_HH
