#include "core/design_session.hh"

#include "util/logging.hh"
#include "verify/diagnostics.hh"

namespace sns::core {

namespace {

perf::PathCacheOptions
pinnedCacheOptions(const SessionOptions &options)
{
    perf::PathCacheOptions cache;
    cache.capacity = 0; // pinned: eviction would turn reuse into recompute
    cache.shards = options.cache_shards;
    return cache;
}

} // namespace

SnsDesignSession::SnsDesignSession(SessionOptions options)
    : cache_(pinnedCacheOptions(options))
{
}

SnsPrediction
SnsDesignSession::predictPinned(const SnsPredictor &predictor,
                                const graphir::Graph &graph,
                                const PredictOptions &options,
                                DiffStats &diff)
{
    // The session always collects the critical path so the pinned
    // prediction can serve a later no-op update that asks for it; the
    // caller-facing copy is stripped on return when they opted out.
    PredictOptions inner;
    inner.threads = options.threads;
    inner.batch_size = options.batch_size;
    inner.collect_critical_path = true;
    inner.cache = &cache_;
    // The tier was pinned at open(); update() rejects a change before
    // this runs, so the pinned cache only ever sees one precision.
    inner.precision = precision_;

    const auto before = cache_.stats();
    const graphir::Graph *graphs[1] = {&graph};
    SnsPrediction prediction =
        predictor.predictBatch(graphs, inner).front();
    const auto after = cache_.stats();

    diff.paths_total = prediction.paths_sampled;
    diff.paths_reused = after.hits - before.hits;
    diff.paths_recomputed = after.misses - before.misses;
    return prediction;
}

void
SnsDesignSession::snapshot(const graphir::Graph &graph)
{
    fingerprint_ = graphir::structuralFingerprint(graph);
    signatures_ = graphir::moduleSignatures(graph);
}

SnsPrediction
SnsDesignSession::open(const SnsPredictor &predictor,
                       const graphir::Graph &graph,
                       const PredictOptions &options)
{
    if (open_) {
        verify::Report report;
        report.error(verify::rules::kSessionState,
                     "session on '" + graph.name() + "'",
                     "open() on a session that is already open",
                     "close() the session first, or call update()");
        verify::enforce(std::move(report), "SnsDesignSession::open");
        close(); // Count-mode recovery: start over
    }

    cache_.clear();
    // Pin the tier the whole session will run at — the fallbacks
    // (no scales, SNS_PLAN off) applied once, here, so every update
    // replays cache entries of exactly this precision. The binding
    // fingerprint is precision-salted (predictionFingerprint), which
    // keeps an int8 session's pins from ever answering an fp64 call.
    precision_ = predictor.effectivePrecision(options);
    SNS_ASSERT(cache_.bindModel(
                   predictor.predictionFingerprint(precision_)),
               "fresh session cache failed to bind the model");
    model_fingerprint_ = predictor.modelFingerprint();

    DiffStats diff;
    pinned_ = predictPinned(predictor, graph, options, diff);
    snapshot(graph);
    diff.modules_total = signatures_.size();
    last_diff_ = diff;
    open_ = true;

    SnsPrediction result = pinned_;
    if (!options.collect_critical_path)
        result.critical_path.clear();
    return result;
}

SnsPrediction
SnsDesignSession::update(const SnsPredictor &predictor,
                         const graphir::Graph &graph,
                         const PredictOptions &options)
{
    if (!open_) {
        verify::Report report;
        report.error(verify::rules::kSessionState,
                     "session on '" + graph.name() + "'",
                     "update() on a session that is not open",
                     "open() the session first");
        verify::enforce(std::move(report), "SnsDesignSession::update");
        return open(predictor, graph, options); // Count-mode recovery
    }
    if (predictor.modelFingerprint() != model_fingerprint_) {
        verify::Report report;
        report.error(
            verify::rules::kSessionModel,
            "session on '" + graph.name() + "'",
            "predictor weights (fingerprint " +
                std::to_string(predictor.modelFingerprint()) +
                ") differ from the model that opened the session (" +
                std::to_string(model_fingerprint_) + ")",
            "re-open the session after a model reload — pinned "
            "predictions are only valid under the opening model");
        verify::enforce(std::move(report), "SnsDesignSession::update");
        close(); // Count-mode recovery: re-open under the new model
        return open(predictor, graph, options);
    }
    if (predictor.effectivePrecision(options) != precision_) {
        verify::Report report;
        report.error(
            verify::rules::kSessionModel,
            "session on '" + graph.name() + "'",
            std::string("update() runs at precision ") +
                precisionName(predictor.effectivePrecision(options)) +
                " but the session opened at " +
                precisionName(precision_),
            "the pinned predictions are only valid at the opening "
            "tier — close() and re-open to switch precision");
        verify::enforce(std::move(report), "SnsDesignSession::update");
        close(); // Count-mode recovery: re-open at the new tier
        return open(predictor, graph, options);
    }

    const auto diff_result =
        graphir::diffAgainst(signatures_, fingerprint_, graph);

    DiffStats diff;
    diff.modules_changed = diff_result.modules_changed.size();
    diff.modules_added = diff_result.modules_added.size();
    diff.modules_removed = diff_result.modules_removed.size();
    diff.modules_total = diff_result.modules_total;
    diff.nodes_affected = diff_result.nodes_affected;
    diff.endpoints_affected = diff_result.endpoints_affected;

    if (diff_result.identical) {
        // Rename-only edit: the pinned prediction is already the
        // bitwise answer. Refresh the signature snapshot so the *next*
        // diff compares against the new labels, and report 100% reuse.
        snapshot(graph);
        diff.noop = true;
        diff.paths_total = pinned_.paths_sampled;
        diff.paths_reused = pinned_.paths_sampled;
        last_diff_ = diff;
    } else {
        // Real edit: re-sample the whole revision (the sampler's RNG
        // stream is global, so partial re-sampling would diverge from
        // a cold run) and predict through the pinned cache — only
        // paths through the edit cone miss.
        pinned_ = predictPinned(predictor, graph, options, diff);
        snapshot(graph);
        last_diff_ = diff;
    }

    SnsPrediction result = pinned_;
    if (!options.collect_critical_path)
        result.critical_path.clear();
    return result;
}

SnsPrediction
SnsDesignSession::predict(const SnsPredictor &predictor,
                          const graphir::Graph &graph,
                          const PredictOptions &options)
{
    return open_ ? update(predictor, graph, options)
                 : open(predictor, graph, options);
}

void
SnsDesignSession::close()
{
    cache_.clear();
    open_ = false;
    model_fingerprint_ = 0;
    precision_ = Precision::Fp64;
    fingerprint_ = 0;
    signatures_.clear();
    pinned_ = SnsPrediction();
    last_diff_ = DiffStats();
}

} // namespace sns::core
