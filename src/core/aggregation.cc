#include "core/aggregation.hh"

#include <algorithm>
#include <cmath>

#include "nn/serialize.hh"
#include "par/thread_pool.hh"
#include "synth/tech_library.hh"
#include "util/logging.hh"

namespace sns::core {

using namespace sns::tensor;

const char *
targetName(Target target)
{
    switch (target) {
      case Target::Timing:
        return "timing";
      case Target::Area:
        return "area";
      case Target::Power:
        return "power";
    }
    panic("unhandled Target");
}

AggregateSummary
reduceAggregates(const graphir::Graph &graph,
                 const std::vector<PathPrediction> &path_predictions,
                 const std::vector<size_t> &path_lengths,
                 const std::vector<double> &activities)
{
    SNS_ASSERT(activities.empty() ||
                   activities.size() == path_predictions.size(),
               "activity vector must match path count");
    SNS_ASSERT(path_lengths.empty() ||
                   path_lengths.size() == path_predictions.size(),
               "path-length vector must match path count");
    AggregateSummary summary;
    summary.num_paths = path_predictions.size();
    summary.num_nodes = graph.numNodes();
    summary.num_edges = graph.numEdges();
    summary.token_counts = graph.tokenCounts();

    for (size_t i = 0; i < path_predictions.size(); ++i) {
        const auto &p = path_predictions[i];
        const double activity = activities.empty() ? 1.0 : activities[i];
        summary.max_timing_ps = std::max(summary.max_timing_ps,
                                         p.timing_ps);
        summary.sum_area_um2 += p.area_um2;
        summary.sum_power_mw += p.power_mw * activity;
        if (!path_lengths.empty())
            summary.sum_path_nodes += path_lengths[i];
    }
    return summary;
}

namespace {

constexpr int kExtraFeatures = 8;

// The MLP's standardized output is clamped to this many units: with
// ~20 training designs the network must not extrapolate the
// truth/aggregate ratio far beyond the observed range.
constexpr double kOutputClamp = 2.5;

double
safeLog(double value)
{
    return std::log(std::max(value, 1e-9));
}

int
featureDim()
{
    return kExtraFeatures + graphir::Vocabulary::instance().circuitSize();
}

/**
 * Library-informed graph statistics: a predictor ships with the
 * technology library, so a mapped-area/gate-count estimate from the
 * token histogram is available without synthesis. These act as strong
 * scale features next to the raw counts.
 */
void
libraryFeatures(const AggregateSummary &summary, double &log_lib_area,
                double &log_lib_gates, double &log_lib_max_delay)
{
    const auto &vocab = graphir::Vocabulary::instance();
    const auto &lib = synth::TechLibrary::freePdk15();
    double area = 0.0;
    double gates = 0.0;
    double max_delay = 0.0;
    for (int token = 0; token < vocab.circuitSize(); ++token) {
        const double count = summary.token_counts[token];
        if (count == 0.0)
            continue;
        const auto cell = lib.cell(vocab.tokenType(token),
                                   vocab.tokenWidth(token));
        area += count * cell.area_um2;
        gates += count * cell.gates;
        max_delay = std::max(max_delay, cell.delay_ps);
    }
    log_lib_area = safeLog(area);
    log_lib_gates = safeLog(gates);
    log_lib_max_delay = safeLog(max_delay);
}

} // namespace

AggregationMlp::AggregationMlp(Target target, uint64_t seed)
    : target_(target),
      init_rng_(seed ^ static_cast<uint64_t>(target)),
      mlp_({featureDim(), 32, 32, 32, 1}, init_rng_)
{
}

double
AggregationMlp::aggregateLog(const AggregateSummary &summary) const
{
    // Area and power anchors are coverage-corrected: the sampled paths
    // visit sum_path_nodes vertex slots out of num_nodes vertices, so
    // scaling the path sum by num_nodes / sum_path_nodes yields an
    // unbiased per-vertex estimate regardless of how many paths the
    // sampler's budget admitted. (With no length information the plain
    // sum is used, as in the paper.)
    const double coverage =
        summary.sum_path_nodes > 0
            ? static_cast<double>(summary.num_nodes) /
                  static_cast<double>(summary.sum_path_nodes)
            : 1.0;
    switch (target_) {
      case Target::Timing:
        return safeLog(summary.max_timing_ps);
      case Target::Area:
        return safeLog(summary.sum_area_um2 * coverage);
      case Target::Power:
        return safeLog(summary.sum_power_mw * coverage);
    }
    panic("unhandled Target");
}

std::vector<float>
AggregationMlp::rawFeatures(const AggregateSummary &summary) const
{
    SNS_ASSERT(summary.token_counts.size() ==
                   static_cast<size_t>(
                       graphir::Vocabulary::instance().circuitSize()),
               "token_counts has wrong length");
    std::vector<float> features;
    features.reserve(featureDim());

    double aggregate = 0.0;
    switch (target_) {
      case Target::Timing:
        aggregate = summary.max_timing_ps;
        break;
      case Target::Area:
        aggregate = summary.sum_area_um2;
        break;
      case Target::Power:
        aggregate = summary.sum_power_mw;
        break;
    }
    features.push_back(static_cast<float>(safeLog(aggregate)));
    features.push_back(static_cast<float>(
        std::log1p(static_cast<double>(summary.num_paths))));
    features.push_back(static_cast<float>(
        std::log1p(static_cast<double>(summary.num_nodes))));
    features.push_back(static_cast<float>(
        std::log1p(static_cast<double>(summary.num_edges))));
    features.push_back(static_cast<float>(
        std::log1p(static_cast<double>(summary.sum_path_nodes))));
    double log_lib_area = 0.0;
    double log_lib_gates = 0.0;
    double log_lib_max_delay = 0.0;
    libraryFeatures(summary, log_lib_area, log_lib_gates,
                    log_lib_max_delay);
    features.push_back(static_cast<float>(log_lib_area));
    features.push_back(static_cast<float>(log_lib_gates));
    features.push_back(static_cast<float>(log_lib_max_delay));
    for (double count : summary.token_counts)
        features.push_back(static_cast<float>(std::log1p(count)));
    return features;
}

void
AggregationMlp::standardize(std::vector<float> &features) const
{
    for (size_t i = 0; i < features.size(); ++i) {
        features[i] = static_cast<float>(
            (features[i] - feature_mean_[i]) / feature_std_[i]);
    }
}

void
AggregationMlp::fit(const std::vector<AggregateSummary> &summaries,
                    const std::vector<double> &truths,
                    const MlpTrainConfig &config)
{
    SNS_ASSERT(summaries.size() == truths.size() && !summaries.empty(),
               "fit() needs matching, non-empty data");
    const int n = static_cast<int>(summaries.size());
    const int dim = featureDim();

    // Feature standardization statistics.
    std::vector<std::vector<float>> raw;
    raw.reserve(n);
    for (const auto &summary : summaries)
        raw.push_back(rawFeatures(summary));
    feature_mean_.assign(dim, 0.0);
    feature_std_.assign(dim, 0.0);
    for (const auto &row : raw) {
        for (int j = 0; j < dim; ++j)
            feature_mean_[j] += row[j];
    }
    for (int j = 0; j < dim; ++j)
        feature_mean_[j] /= n;
    for (const auto &row : raw) {
        for (int j = 0; j < dim; ++j) {
            const double d = row[j] - feature_mean_[j];
            feature_std_[j] += d * d;
        }
    }
    for (int j = 0; j < dim; ++j) {
        feature_std_[j] = std::sqrt(feature_std_[j] / n);
        if (feature_std_[j] < 1e-6)
            feature_std_[j] = 1.0;
    }

    // The MLP regresses the log-ratio between the design-level truth
    // and the path-level aggregate: the aggregate carries the scale
    // (it is proportional to the target by construction, §3.4) and the
    // network learns the calibration/correction from the graph
    // statistics. This keeps predictions anchored to the aggregate
    // even in the small-training-set regime the paper operates in.
    double tsum = 0.0;
    double tsq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double lt = safeLog(truths[i]) - aggregateLog(summaries[i]);
        tsum += lt;
        tsq += lt * lt;
    }
    target_mean_ = tsum / n;
    const double tvar = tsq / n - target_mean_ * target_mean_;
    target_std_ = tvar > 1e-8 ? std::sqrt(tvar) : 1.0;

    // Assemble standardized training matrices.
    Tensor x({n, dim});
    Tensor y({n, 1});
    for (int i = 0; i < n; ++i) {
        auto row = raw[i];
        standardize(row);
        for (int j = 0; j < dim; ++j)
            x.at2(i, j) = row[j];
        y.at2(i, 0) = static_cast<float>(
            (safeLog(truths[i]) - aggregateLog(summaries[i]) -
             target_mean_) /
            target_std_);
    }

    // SGD with momentum (Table 6), mini-batched.
    nn::Sgd optimizer(mlp_.parameters(), config.learning_rate,
                      config.momentum);
    Rng rng(config.seed);
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        for (int start = 0; start < n; start += config.batch_size) {
            const int end = std::min(n, start + config.batch_size);
            Tensor bx({end - start, dim});
            Tensor by({end - start, 1});
            for (int i = start; i < end; ++i) {
                for (int j = 0; j < dim; ++j)
                    bx.at2(i - start, j) = x.at2(order[i], j);
                by.at2(i - start, 0) = y.at2(order[i], 0);
            }
            optimizer.zeroGrad();
            Variable loss = mseLoss(mlp_.forward(Variable(bx)), by);
            loss.backward();
            optimizer.step();
        }
    }
    fitted_ = true;
}

double
AggregationMlp::predict(const AggregateSummary &summary) const
{
    SNS_ASSERT(fitted_, "predict() before fit()");
    NoGradGuard no_grad;
    auto row = rawFeatures(summary);
    standardize(row);
    Tensor x({1, featureDim()});
    for (int j = 0; j < featureDim(); ++j)
        x.at2(0, j) = row[j];
    const Variable out = mlp_.forward(Variable(x));
    const double clamped =
        std::clamp(static_cast<double>(out.value().at2(0, 0)),
                   -kOutputClamp, kOutputClamp);
    return std::exp(clamped * target_std_ + target_mean_ +
                    aggregateLog(summary));
}

std::vector<Variable>
AggregationMlp::parameters() const
{
    return mlp_.parameters();
}

void
AggregationMlp::save(const std::string &path) const
{
    SNS_ASSERT(fitted_, "save() before fit()");
    std::vector<Variable> all = parameters();
    const int dim = featureDim();
    // One stats tensor: feature means, feature stds, target mean/std.
    Tensor stats({2 * dim + 2});
    for (int j = 0; j < dim; ++j) {
        stats[j] = static_cast<float>(feature_mean_[j]);
        stats[dim + j] = static_cast<float>(feature_std_[j]);
    }
    stats[2 * dim] = static_cast<float>(target_mean_);
    stats[2 * dim + 1] = static_cast<float>(target_std_);
    all.emplace_back(stats);
    nn::saveParameters(path, all);
}

void
AggregationMlp::load(const std::string &path)
{
    std::vector<Variable> all = parameters();
    const int dim = featureDim();
    all.emplace_back(Tensor({2 * dim + 2}));
    nn::loadParameters(path, all);
    const Tensor &stats = all.back().value();
    feature_mean_.assign(dim, 0.0);
    feature_std_.assign(dim, 1.0);
    for (int j = 0; j < dim; ++j) {
        feature_mean_[j] = stats[j];
        feature_std_[j] = stats[dim + j];
    }
    target_mean_ = stats[2 * dim];
    target_std_ = stats[2 * dim + 1];
    fitted_ = true;
}

AggregationHeads
AggregationHeads::make(uint64_t timing_seed, uint64_t area_seed,
                       uint64_t power_seed)
{
    AggregationHeads heads;
    heads.timing =
        std::make_shared<AggregationMlp>(Target::Timing, timing_seed);
    heads.area = std::make_shared<AggregationMlp>(Target::Area, area_seed);
    heads.power =
        std::make_shared<AggregationMlp>(Target::Power, power_seed);
    return heads;
}

void
AggregationHeads::fit(const std::vector<AggregateSummary> &summaries,
                      const std::vector<double> &timing_truth,
                      const std::vector<double> &area_truth,
                      const std::vector<double> &power_truth,
                      const MlpTrainConfig &config)
{
    SNS_ASSERT(complete(), "fit() on incomplete AggregationHeads");
    AggregationMlp *mlps[3] = {timing.get(), area.get(), power.get()};
    const std::vector<double> *truths[3] = {&timing_truth, &area_truth,
                                            &power_truth};
    // The three fits are independent (each MLP owns its parameters and
    // seeds its own SGD shuffle from config.seed), so target order and
    // thread count cannot change any of the three results.
    par::globalPool().run(3, [&](size_t t) {
        mlps[t]->fit(summaries, *truths[t], config);
    });
}

void
AggregationHeads::save(const std::string &directory) const
{
    SNS_ASSERT(complete(), "save() on incomplete AggregationHeads");
    timing->save(directory + "/mlp_timing.bin");
    area->save(directory + "/mlp_area.bin");
    power->save(directory + "/mlp_power.bin");
}

AggregationHeads
AggregationHeads::load(const std::string &directory)
{
    AggregationHeads heads = make();
    heads.timing->load(directory + "/mlp_timing.bin");
    heads.area->load(directory + "/mlp_area.bin");
    heads.power->load(directory + "/mlp_power.bin");
    return heads;
}

} // namespace sns::core
