/**
 * @file
 * Path-to-design aggregation (§3.4) and the per-target Aggregation
 * MLPs.
 *
 * The reductions follow the paper exactly: timing is the max over
 * sampled paths, area and power are sums (power scaled per path by the
 * endpoint registers' activity coefficients when clock-gating
 * information is present, §3.4.4). Each target then gets its own MLP
 * with three 32-neuron fully-connected layers, fed the corresponding
 * aggregate together with the design's graph statistics (Fig. 2c), and
 * trained with SGD (Table 6).
 */

#ifndef SNS_CORE_AGGREGATION_HH
#define SNS_CORE_AGGREGATION_HH

#include <memory>
#include <string>
#include <vector>

#include "core/circuitformer.hh"
#include "nn/layers.hh"

namespace sns::core {

/** Which physical characteristic an MLP predicts. */
enum class Target
{
    Timing,
    Area,
    Power,
};

/** Printable name of a target. */
const char *targetName(Target target);

/** Per-design reduction of path predictions + graph statistics. */
struct AggregateSummary
{
    double max_timing_ps = 0.0;  ///< max over path timing predictions
    double sum_area_um2 = 0.0;   ///< sum over path area predictions
    double sum_power_mw = 0.0;   ///< activity-scaled sum of path power
    size_t num_paths = 0;
    size_t sum_path_nodes = 0;   ///< total node visits across paths
    size_t num_nodes = 0;
    size_t num_edges = 0;
    std::vector<double> token_counts; ///< Fig. 2c statistics (79 bins)
};

/**
 * Reduce per-path predictions into an AggregateSummary for a design.
 * @param path_lengths per-path vertex counts (used for the coverage
 *        correction that anchors area/power predictions); pass an
 *        empty vector to skip the correction
 * @param activities per-path activity coefficients (§3.4.4); pass an
 *        empty vector when no clock-gating information exists
 */
AggregateSummary reduceAggregates(
    const graphir::Graph &graph,
    const std::vector<PathPrediction> &path_predictions,
    const std::vector<size_t> &path_lengths = {},
    const std::vector<double> &activities = {});

/** SGD training schedule for an Aggregation MLP (Table 6 defaults). */
struct MlpTrainConfig
{
    int epochs = 10240;
    int batch_size = 64;
    double learning_rate = 1e-4;
    double momentum = 0.9;
    uint64_t seed = 0xa99;
};

class AggregationMlp;

/**
 * The three per-target Aggregation MLPs as one unit. Everything that
 * used to juggle three parallel shared_ptrs — the predictor's
 * constructor, pipeline save/load, the trainer, the k-sweep
 * ablation's re-wiring — passes one AggregationHeads instead.
 */
struct AggregationHeads
{
    std::shared_ptr<AggregationMlp> timing;
    std::shared_ptr<AggregationMlp> area;
    std::shared_ptr<AggregationMlp> power;

    /** Heads with freshly-initialized (unfitted) MLPs. */
    static AggregationHeads make(uint64_t timing_seed = 0xa99,
                                 uint64_t area_seed = 0xa99,
                                 uint64_t power_seed = 0xa99);

    /** True when all three handles are present. */
    bool complete() const { return timing && area && power; }

    /**
     * Fit all three MLPs on the same training summaries, one fit per
     * sns::par worker (the fits are independent).
     */
    void fit(const std::vector<AggregateSummary> &summaries,
             const std::vector<double> &timing_truth,
             const std::vector<double> &area_truth,
             const std::vector<double> &power_truth,
             const MlpTrainConfig &config = MlpTrainConfig());

    /** Persist the three MLPs into a model directory. */
    void save(const std::string &directory) const;

    /** Restore heads saved by save(). */
    static AggregationHeads load(const std::string &directory);
};

/** One per-target design-level regressor. */
class AggregationMlp : public nn::Module
{
  public:
    AggregationMlp(Target target, uint64_t seed = 0xa99);

    /**
     * Fit on training designs.
     * @param summaries per-design aggregates (training set)
     * @param truths per-design ground-truth values of this target
     */
    void fit(const std::vector<AggregateSummary> &summaries,
             const std::vector<double> &truths,
             const MlpTrainConfig &config = MlpTrainConfig());

    /** Predict this target for one design. */
    double predict(const AggregateSummary &summary) const;

    /** True once fit() has run. */
    bool fitted() const { return fitted_; }

    Target target() const { return target_; }

    std::vector<tensor::Variable> parameters() const override;

    /** Persist weights + normalization statistics. */
    void save(const std::string &path) const;

    /** Restore weights + normalization statistics. */
    void load(const std::string &path);

  private:
    /** Log of this target's path-level aggregate for a summary. */
    double aggregateLog(const AggregateSummary &summary) const;

    /** Raw (unstandardized) feature vector for a summary. */
    std::vector<float> rawFeatures(const AggregateSummary &summary) const;

    /** Standardize a raw feature vector in place. */
    void standardize(std::vector<float> &features) const;

    Target target_;
    Rng init_rng_;
    nn::Mlp mlp_;
    bool fitted_ = false;
    std::vector<double> feature_mean_;
    std::vector<double> feature_std_;
    double target_mean_ = 0.0;
    double target_std_ = 1.0;
};

} // namespace sns::core

#endif // SNS_CORE_AGGREGATION_HH
