#include "core/datasets.hh"

#include <algorithm>
#include <map>
#include <set>

#include "gen/markov.hh"
#include "gen/path_check.hh"
#include "gen/seqgan.hh"
#include "par/thread_pool.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "verify/analyzer.hh"

namespace sns::core {

using graphir::TokenId;

HardwareDesignDataset
HardwareDesignDataset::build(const std::vector<designs::DesignSpec> &specs,
                             const synth::Synthesizer &synthesizer)
{
    HardwareDesignDataset dataset;
    dataset.records_.resize(specs.size());
    // Each design elaborates and characterizes independently; slot i
    // belongs to specs[i], so the record order matches the serial build.
    par::parallelFor(specs.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            DesignRecord &record = dataset.records_[i];
            record.name = specs[i].name;
            record.base = specs[i].base;
            record.category = specs[i].category;
            record.graph = specs[i].build();
            record.truth = synthesizer.run(record.graph);
        }
    });
    // Dataset boundary: every ground-truth label must be usable before
    // it can reach a training loop.
    if (verify::enabled()) {
        verify::Report report;
        for (const auto &record : dataset.records_) {
            report.merge(verify::checkLabels(
                record.truth.timing_ps, record.truth.area_um2,
                record.truth.power_mw, "design '" + record.name + "'"));
        }
        verify::enforce(std::move(report), "HardwareDesignDataset");
    }
    return dataset;
}

std::pair<std::vector<size_t>, std::vector<size_t>>
HardwareDesignDataset::splitByBase(double train_fraction,
                                   uint64_t seed) const
{
    SNS_ASSERT(train_fraction > 0.0 && train_fraction < 1.0,
               "train_fraction must be in (0, 1)");

    // Group record indices by base family, shuffle the families, then
    // assign whole families to the training side until the quota is
    // met (§4.1: same-base variants never straddle the split).
    std::map<std::string, std::vector<size_t>> by_base;
    for (size_t i = 0; i < records_.size(); ++i)
        by_base[records_[i].base].push_back(i);

    std::vector<std::string> bases;
    for (const auto &[base, indices] : by_base)
        bases.push_back(base);
    Rng rng(seed);
    rng.shuffle(bases);

    const size_t train_quota = static_cast<size_t>(
        train_fraction * static_cast<double>(records_.size()) + 0.5);
    std::vector<size_t> train;
    std::vector<size_t> test;
    for (const auto &base : bases) {
        auto &dst = train.size() < train_quota ? train : test;
        for (size_t idx : by_base[base])
            dst.push_back(idx);
    }
    SNS_ASSERT(!train.empty() && !test.empty(),
               "degenerate split: adjust train_fraction");
    std::sort(train.begin(), train.end());
    std::sort(test.begin(), test.end());
    // Machine-check the §4.1 fairness rule rather than trusting the
    // construction above: no base family may straddle the boundary.
    if (verify::enabled()) {
        std::vector<std::string> train_bases;
        std::vector<std::string> test_bases;
        for (size_t idx : train)
            train_bases.push_back(records_[idx].base);
        for (size_t idx : test)
            test_bases.push_back(records_[idx].base);
        verify::enforce(verify::checkSplit(train_bases, test_bases),
                        "HardwareDesignDataset::splitByBase");
    }
    return {std::move(train), std::move(test)};
}

size_t
CircuitPathDataset::countByOrigin(PathOrigin origin) const
{
    size_t count = 0;
    for (PathOrigin o : origins_)
        count += o == origin;
    return count;
}

void
CircuitPathDataset::add(PathRecord record, PathOrigin origin)
{
    records_.push_back(std::move(record));
    origins_.push_back(origin);
}

namespace {

/** Characterize a batch of paths (parallel oracle) and append the
 * labelled records to the dataset in input order. */
void
labelPaths(const std::vector<std::vector<TokenId>> &token_paths,
           const synth::Synthesizer &synthesizer,
           PathOrigin origin, CircuitPathDataset &dataset)
{
    const auto results = synthesizer.runPaths(token_paths);
    for (size_t i = 0; i < token_paths.size(); ++i) {
        PathRecord record;
        record.tokens = token_paths[i];
        record.timing_ps = results[i].timing_ps;
        record.area_um2 = results[i].area_um2;
        record.power_mw = results[i].power_mw;
        dataset.add(std::move(record), origin);
    }
}

} // namespace

CircuitPathDataset
buildCircuitPathDataset(const HardwareDesignDataset &designs,
                        const std::vector<size_t> &train_indices,
                        const synth::Synthesizer &synthesizer,
                        const PathDatasetOptions &options,
                        bool seqgan_config_small)
{
    SNS_ASSERT(!train_indices.empty(),
               "path dataset needs at least one training design");
    CircuitPathDataset dataset;

    // --- 1. Direct sampling from the training designs. ---------------
    // Seeds are drawn serially first so the per-design seed sequence is
    // identical to the serial build; sampling then fans out over the
    // sns::par pool, and the dedup pass walks designs in order so the
    // surviving path set matches the serial build exactly.
    Rng rng(options.seed);
    std::vector<uint64_t> design_seeds;
    design_seeds.reserve(train_indices.size());
    for (size_t i = 0; i < train_indices.size(); ++i)
        design_seeds.push_back(rng.next());

    std::vector<std::vector<sampler::SampledPath>> per_design(
        train_indices.size());
    par::parallelFor(train_indices.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            sampler::SamplerOptions sopts = options.sampler;
            sopts.seed = design_seeds[i];
            per_design[i] = sampler::PathSampler(sopts).sample(
                designs.records()[train_indices[i]].graph);
        }
    });

    std::set<std::vector<TokenId>> unique_paths;
    std::vector<std::vector<TokenId>> sampled;
    for (const auto &paths : per_design) {
        size_t taken = 0;
        for (const auto &path : paths) {
            if (taken >= options.max_paths_per_design)
                break;
            if (path.tokens.size() > options.sampler.max_path_length)
                continue;
            if (unique_paths.insert(path.tokens).second) {
                sampled.push_back(path.tokens);
                ++taken;
            }
        }
    }
    SNS_ASSERT(!sampled.empty(), "no circuit paths sampled");
    labelPaths(sampled, synthesizer, PathOrigin::Sampled, dataset);

    // --- 2. Markov-chain augmentation (§4.2.1). ----------------------
    std::vector<std::vector<TokenId>> exclude(unique_paths.begin(),
                                              unique_paths.end());
    if (options.enable_markov && options.markov_paths > 0) {
        gen::MarkovChainGenerator markov(rng.next());
        markov.fit(sampled);
        // Half of the Markov budget follows the chain's natural length
        // distribution; the other half is length-stratified so the
        // Circuitformer sees the full path-length range (real designs
        // contain paths far longer than the typical sample).
        size_t longest = 8;
        for (const auto &tokens : sampled)
            longest = std::max(longest, tokens.size());
        const size_t strat_cap =
            std::min<size_t>(options.sampler.max_path_length,
                             std::max<size_t>(2 * longest, 48));
        auto generated = markov.generateUnique(
            options.markov_paths / 2, exclude,
            options.sampler.max_path_length);
        for (const auto &tokens : markov.generateStratified(
                 options.markov_paths - generated.size(), exclude,
                 strat_cap)) {
            generated.push_back(tokens);
        }
        std::vector<std::vector<TokenId>> accepted;
        for (const auto &tokens : generated) {
            if (unique_paths.insert(tokens).second)
                accepted.push_back(tokens);
        }
        labelPaths(accepted, synthesizer, PathOrigin::Markov, dataset);
        exclude.assign(unique_paths.begin(), unique_paths.end());
    }

    // --- 3. SeqGAN augmentation (§4.2.2). ----------------------------
    if (options.enable_seqgan && options.seqgan_paths > 0) {
        gen::SeqGanConfig config;
        config.seed = rng.next();
        if (!seqgan_config_small) {
            // Paper-scale schedule (Table 6: batch 2048, 130 epochs).
            config.pretrain_epochs = 60;
            config.adversarial_rounds = 70;
            config.batch_size = 128;
            config.rollouts = 4;
        }
        gen::SeqGan gan(config);
        gan.fit(sampled);
        const auto generated =
            gan.generateUnique(options.seqgan_paths, exclude);
        labelPaths(generated, synthesizer, PathOrigin::SeqGan, dataset);
    }

    // Dataset boundary: every record that will feed the Circuitformer
    // must be a legal path with finite labels. The +8 mirrors the
    // length-stratified Markov generator's endpoint-forcing overshoot.
    if (verify::enabled()) {
        verify::Report report;
        for (size_t i = 0; i < dataset.size(); ++i) {
            const auto &record = dataset.records()[i];
            const std::string where =
                "path record " + std::to_string(i);
            report.merge(verify::checkPath(
                record.tokens, options.sampler.max_path_length + 8,
                where));
            report.merge(verify::checkLabels(record.timing_ps,
                                             record.area_um2,
                                             record.power_mw, where));
        }
        verify::enforce(std::move(report), "CircuitPathDataset");
    }
    return dataset;
}

} // namespace sns::core
