/**
 * @file
 * SnsDesignSession — incremental prediction for the edit loop
 * (docs/editloop.md).
 *
 * The paper's headline use case (§1) is interactive designer feedback:
 * tweak one RTL module, re-predict, repeat. A stateless predictBatch
 * re-extracts and re-scores every path on every edit even when 95% of
 * the design is untouched. A session exploits the PR3 observation that
 * a path's prediction is a pure function of its token sequence:
 *
 *   open(graph)    full prediction through a private *pinned* cache
 *                  (unbounded, so no entry is ever evicted mid-session)
 *                  + a snapshot of per-module content hashes and the
 *                  design's structural fingerprint;
 *   update(graph)  structural diff against the snapshot. An identical
 *                  fingerprint short-circuits to the pinned prediction
 *                  (module/design renames land here). Otherwise the new
 *                  revision is re-sampled and predicted through the
 *                  pinned cache: every path outside the edit's fanin/
 *                  fanout cone replays its cached bits, only affected
 *                  paths pay the Circuitformer;
 *   close()        drop the pinned entries and the snapshot.
 *
 * Bitwise contract: update() returns exactly what a cold full
 * predictBatch of the same revision would — cached replay is
 * bit-exact, and re-sampling the whole graph keeps the sampler's
 * single RNG stream identical to the cold run. DiffStats only reports
 * *how much work* was reused; it never changes the numbers.
 *
 * A session is bound to the model that opened it: update() with a
 * predictor whose weights differ raises V-SESS-MODEL (a hot-reloaded
 * server must re-open, docs/serving.md). Sessions are externally
 * synchronized — one session, one caller at a time (sns-serve holds a
 * per-session mutex).
 */

#ifndef SNS_CORE_DESIGN_SESSION_HH
#define SNS_CORE_DESIGN_SESSION_HH

#include <memory>

#include "core/predictor.hh"
#include "graphir/diff.hh"
#include "perf/path_cache.hh"

namespace sns::core {

/** How much of an update()'s work was answered from the session. */
struct DiffStats
{
    /** The revision's structural fingerprint matched the snapshot:
     * nothing was re-sampled or re-predicted (rename-only edits). */
    bool noop = false;

    size_t modules_changed = 0; ///< same name, new content hash
    size_t modules_added = 0;
    size_t modules_removed = 0;
    size_t modules_total = 0; ///< distinct modules in the revision

    size_t nodes_affected = 0;     ///< vertices in changed/added modules
    size_t endpoints_affected = 0; ///< endpoints reaching the edit cone

    size_t paths_total = 0;      ///< paths sampled for the revision
    size_t paths_reused = 0;     ///< answered from the pinned cache
    size_t paths_recomputed = 0; ///< paid the Circuitformer

    /** paths_reused / paths_total, 0 when no paths. */
    double
    reuseRate() const
    {
        return paths_total == 0 ? 0.0
                                : static_cast<double>(paths_reused) /
                                      static_cast<double>(paths_total);
    }
};

/** Construction knobs of a session. */
struct SessionOptions
{
    /** Mutex shards of the pinned cache (its capacity is always
     * unbounded — eviction mid-session would silently turn reuse into
     * recompute). */
    size_t cache_shards = 16;
};

/** One design's incremental prediction state across an edit loop. */
class SnsDesignSession
{
  public:
    explicit SnsDesignSession(SessionOptions options = {});

    SnsDesignSession(const SnsDesignSession &) = delete;
    SnsDesignSession &operator=(const SnsDesignSession &) = delete;

    /**
     * Open the session on a design revision: full prediction through
     * the pinned cache plus the diff snapshot. Re-opening an open
     * session raises V-SESS-STATE (close() first — under Count
     * enforcement it recovers by closing and opening fresh).
     */
    SnsPrediction open(const SnsPredictor &predictor,
                       const graphir::Graph &graph,
                       const PredictOptions &options = PredictOptions());

    /**
     * Predict an edited revision incrementally. The result is bitwise
     * identical to a cold full predictBatch of the same revision;
     * lastDiff() reports how much of the work was reused. Raises
     * V-SESS-STATE when the session is not open and V-SESS-MODEL when
     * `predictor` runs different weights than the one that opened the
     * session (under Count enforcement both recover by re-opening).
     */
    SnsPrediction update(const SnsPredictor &predictor,
                         const graphir::Graph &graph,
                         const PredictOptions &options = PredictOptions());

    /**
     * open() when closed, update() when open — the entry point
     * PredictOptions::session routes through.
     */
    SnsPrediction predict(const SnsPredictor &predictor,
                          const graphir::Graph &graph,
                          const PredictOptions &options = PredictOptions());

    /** Drop the pinned cache, snapshot, and prediction. Idempotent. */
    void close();

    bool isOpen() const { return open_; }

    /** Diff accounting of the most recent open()/update(). open()
     * reports zero reuse by construction. */
    const DiffStats &lastDiff() const { return last_diff_; }

    /** Structural fingerprint of the current snapshot (0 if closed). */
    uint64_t fingerprint() const { return fingerprint_; }

    /** Weight fingerprint of the model this session is bound to
     * (0 if closed). */
    uint64_t boundModel() const { return model_fingerprint_; }

    /** Numeric tier the session opened at (docs/quantization.md). The
     * pinned cache holds predictions of exactly this tier, so an
     * update() requesting a different effective precision raises
     * V-SESS-MODEL — under Count enforcement it recovers by
     * re-opening at the new tier. Fp64 when closed. */
    Precision precision() const { return precision_; }

    /** Counters of the pinned cache (hits accumulate across updates). */
    perf::CacheStats cacheStats() const { return cache_.stats(); }

  private:
    /** Full prediction of `graph` through the pinned cache, with the
     * hit/miss delta booked into `diff`. */
    SnsPrediction predictPinned(const SnsPredictor &predictor,
                                const graphir::Graph &graph,
                                const PredictOptions &options,
                                DiffStats &diff);

    /** Refresh the diff snapshot from a revision. */
    void snapshot(const graphir::Graph &graph);

    perf::PathPredictionCache cache_;
    bool open_ = false;
    uint64_t model_fingerprint_ = 0;
    Precision precision_ = Precision::Fp64;
    uint64_t fingerprint_ = 0;
    std::vector<graphir::ModuleSignature> signatures_;
    /** Prediction of the current snapshot, critical path included (the
     * return path strips it when the caller opted out). */
    SnsPrediction pinned_;
    DiffStats last_diff_;
};

} // namespace sns::core

#endif // SNS_CORE_DESIGN_SESSION_HH
