/**
 * @file
 * The two datasets of the SNS training flow (Fig. 4):
 *
 *   - the Hardware Design Dataset (Table 4): designs with design-level
 *     synthesis ground truth, split by base family (§4.1's fairness
 *     rule: variants of one parameterizable base never straddle the
 *     train/test boundary);
 *   - the Circuit Path Dataset (Table 5): complete circuit paths with
 *     per-path synthesis ground truth, assembled from direct sampling
 *     plus Markov-chain and SeqGAN augmentation (§4.2).
 */

#ifndef SNS_CORE_DATASETS_HH
#define SNS_CORE_DATASETS_HH

#include <string>
#include <vector>

#include "designs/designs.hh"
#include "graphir/graph.hh"
#include "sampler/path_sampler.hh"
#include "synth/synthesizer.hh"

namespace sns::core {

/** One row of the Hardware Design Dataset. */
struct DesignRecord
{
    std::string name;
    std::string base;
    std::string category;
    graphir::Graph graph;
    synth::SynthesisResult truth;
};

/** One row of the Circuit Path Dataset. */
struct PathRecord
{
    std::vector<graphir::TokenId> tokens;
    double timing_ps = 0.0;
    double area_um2 = 0.0;
    double power_mw = 0.0;
};

/** Where a circuit path came from (for the augmentation ablation). */
enum class PathOrigin
{
    Sampled,  ///< directly sampled from a training design
    Markov,   ///< Markov-chain generated (§4.2.1)
    SeqGan,   ///< SeqGAN generated (§4.2.2)
};

/** The Hardware Design Dataset. */
class HardwareDesignDataset
{
  public:
    /** Build by synthesizing every spec with the given oracle. */
    static HardwareDesignDataset build(
        const std::vector<designs::DesignSpec> &specs,
        const synth::Synthesizer &synthesizer);

    const std::vector<DesignRecord> &records() const { return records_; }

    size_t size() const { return records_.size(); }

    /**
     * Deterministic train/test split keeping all variants of one base
     * family on the same side.
     *
     * @param train_fraction approximate fraction of designs to train on
     * @param seed shuffle seed (different seeds give different folds)
     * @return (train indices, test indices)
     */
    std::pair<std::vector<size_t>, std::vector<size_t>> splitByBase(
        double train_fraction, uint64_t seed) const;

  private:
    std::vector<DesignRecord> records_;
};

/** Options controlling Circuit Path Dataset assembly (§4.2). */
struct PathDatasetOptions
{
    sampler::SamplerOptions sampler;    ///< k = 5 by default
    size_t max_paths_per_design = 128;  ///< direct-sample cap per design
    size_t markov_paths = 256;          ///< Markov-chain augmentation
    size_t seqgan_paths = 512;          ///< SeqGAN augmentation
    bool enable_markov = true;
    bool enable_seqgan = true;
    uint64_t seed = 17;
};

/** The Circuit Path Dataset with per-origin bookkeeping. */
class CircuitPathDataset
{
  public:
    const std::vector<PathRecord> &records() const { return records_; }
    const std::vector<PathOrigin> &origins() const { return origins_; }

    size_t size() const { return records_.size(); }

    /** Number of records from one origin. */
    size_t countByOrigin(PathOrigin origin) const;

    /** Append a labelled record. */
    void add(PathRecord record, PathOrigin origin);

  private:
    std::vector<PathRecord> records_;
    std::vector<PathOrigin> origins_;
};

/**
 * Assemble the Circuit Path Dataset from the training designs: direct
 * sampling, then Markov and SeqGAN augmentation (trained on the
 * directly sampled paths), all labelled by synthesizing each path as a
 * standalone chain.
 *
 * @param seqgan_config_small if true, use scaled-down SeqGAN training
 *        (fast enough for tests); otherwise paper-scale settings
 */
CircuitPathDataset buildCircuitPathDataset(
    const HardwareDesignDataset &designs,
    const std::vector<size_t> &train_indices,
    const synth::Synthesizer &synthesizer,
    const PathDatasetOptions &options, bool seqgan_config_small = true);

} // namespace sns::core

#endif // SNS_CORE_DATASETS_HH
