/**
 * @file
 * Evaluation harness: RRSE/MAEP metrics (§5.1) over held-out designs,
 * including the 2-fold cross-validation protocol of §5.2 (each half of
 * the dataset predicted by a model trained on the other half).
 */

#ifndef SNS_CORE_EVALUATION_HH
#define SNS_CORE_EVALUATION_HH

#include <string>
#include <vector>

#include "core/trainer.hh"

namespace sns::core {

/** Prediction vs truth for one design. */
struct DesignEval
{
    std::string name;
    double true_timing_ps = 0.0;
    double true_area_um2 = 0.0;
    double true_power_mw = 0.0;
    double pred_timing_ps = 0.0;
    double pred_area_um2 = 0.0;
    double pred_power_mw = 0.0;
};

/** RRSE and MAEP for one target. */
struct TargetErrors
{
    double rrse = 0.0;
    double maep = 0.0;
};

/** Full evaluation result over a design set. */
struct EvaluationResult
{
    std::vector<DesignEval> designs;
    TargetErrors timing;
    TargetErrors area;
    TargetErrors power;
};

/** Compute per-target RRSE/MAEP from collected design evals. */
EvaluationResult summarizeEvals(std::vector<DesignEval> evals);

/** Run a trained predictor over the given test designs. */
EvaluationResult evaluatePredictor(const SnsPredictor &predictor,
                                   const HardwareDesignDataset &designs,
                                   const std::vector<size_t> &test_indices);

/**
 * 2-fold cross validation (§5.2): split the dataset into halves A/B by
 * base family, train on A / predict B and vice versa, and pool every
 * design's prediction into one result.
 */
EvaluationResult crossValidate2Fold(const HardwareDesignDataset &designs,
                                    const TrainerConfig &config,
                                    const synth::Synthesizer &oracle,
                                    uint64_t split_seed = 11);

} // namespace sns::core

#endif // SNS_CORE_EVALUATION_HH
