#include "util/string_utils.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sns {

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::vector<std::string>
splitWhitespace(const std::string &text)
{
    std::vector<std::string> fields;
    std::istringstream iss(text);
    std::string field;
    while (iss >> field)
        fields.push_back(field);
    return fields;
}

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string> &pieces, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
formatEng(double value)
{
    const char *suffixes[] = {"", "K", "M", "G", "T"};
    int idx = 0;
    double magnitude = std::fabs(value);
    while (magnitude >= 1000.0 && idx < 4) {
        magnitude /= 1000.0;
        value /= 1000.0;
        ++idx;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.2f%s", value, suffixes[idx]);
    return buffer;
}

} // namespace sns
