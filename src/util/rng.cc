#include "util/rng.hh"

#include <cmath>

namespace sns {

namespace {

/** SplitMix64 step, used for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::State
Rng::state() const
{
    State snapshot;
    for (size_t i = 0; i < 4; ++i)
        snapshot.words[i] = state_[i];
    snapshot.has_cached_normal = hasCachedNormal_;
    snapshot.cached_normal = cachedNormal_;
    return snapshot;
}

void
Rng::setState(const State &state)
{
    for (size_t i = 0; i < 4; ++i)
        state_[i] = state.words[i];
    hasCachedNormal_ = state.has_cached_normal;
    cachedNormal_ = state.cached_normal;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1)
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    SNS_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    SNS_ASSERT(lo <= hi, "uniformInt range is inverted");
    return lo + static_cast<int64_t>(
        uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(theta);
    hasCachedNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<double> &weights)
{
    SNS_ASSERT(!weights.empty(), "categorical() on empty weights");
    double total = 0.0;
    for (double w : weights) {
        SNS_ASSERT(w >= 0.0, "categorical() weight must be non-negative");
        total += w;
    }
    if (total <= 0.0) {
        // Degenerate distribution: fall back to uniform.
        return uniformInt(weights.size());
    }
    double target = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace sns
