#include "util/table.hh"

#include <algorithm>
#include <fstream>

#include "util/logging.hh"

namespace sns {

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

} // namespace

Table::Table(std::string caption) : caption_(std::move(caption))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    size_t columns = header_.size();
    for (const auto &row : rows_)
        columns = std::max(columns, row.size());
    if (columns == 0)
        return;

    std::vector<size_t> widths(columns, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &row : rows_)
        measure(row);

    auto emit = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t i = 0; i < columns; ++i) {
            const std::string &cell = i < row.size() ? row[i] : std::string();
            os << " " << cell << std::string(widths[i] - cell.size(), ' ')
               << " |";
        }
        os << "\n";
    };
    auto rule = [&]() {
        os << "+";
        for (size_t i = 0; i < columns; ++i)
            os << std::string(widths[i] + 2, '-') << "+";
        os << "\n";
    };

    if (!caption_.empty())
        os << caption_ << "\n";
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &row : rows_)
        emit(row);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                os << ",";
            os << csvEscape(row[i]);
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("could not write CSV to ", path);
        return;
    }
    printCsv(out);
}

} // namespace sns
