/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (path sampler, dataset
 * generators, neural-network initialization, SeqGAN rollouts) draws from
 * an explicitly seeded Rng so that all experiments are reproducible.
 * The engine is xoshiro256** seeded via SplitMix64.
 */

#ifndef SNS_UTIL_RNG_HH
#define SNS_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace sns {

/** A small, fast, deterministic random number generator. */
class Rng
{
  public:
    /**
     * The complete generator state: the four xoshiro256** words plus
     * the Box-Muller carry. Exposed so training checkpoints can
     * persist a stream mid-sequence and resume it bitwise (see
     * docs/training.md); state()/setState() round-trips exactly.
     */
    struct State
    {
        std::array<uint64_t, 4> words{};
        bool has_cached_normal = false;
        double cached_normal = 0.0;
    };

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed5eedULL);

    /** Snapshot the full generator state. */
    State state() const;

    /** Restore a state captured by state(); the next draws reproduce
     * the original stream exactly. */
    void setState(const State &state);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be positive. */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @return index in [0, weights.size())
     */
    size_t categorical(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an arbitrary container. */
    template <typename Container>
    void
    shuffle(Container &items)
    {
        if (items.size() < 2)
            return;
        for (size_t i = items.size() - 1; i > 0; --i) {
            size_t j = uniformInt(i + 1);
            std::swap(items[i], items[j]);
        }
    }

    /** Pick one element of a non-empty vector uniformly at random. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        SNS_ASSERT(!items.empty(), "choice() on empty vector");
        return items[uniformInt(items.size())];
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

  private:
    uint64_t state_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace sns

#endif // SNS_UTIL_RNG_HH
