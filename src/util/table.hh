/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * the paper's tables and figure data series.
 */

#ifndef SNS_UTIL_TABLE_HH
#define SNS_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace sns {

/**
 * A simple column-aligned text table. Benchmarks build one Table per
 * paper table/figure and print it; an optional CSV dump supports
 * re-plotting the figures.
 */
class Table
{
  public:
    /** Construct with an optional caption printed above the table. */
    explicit Table(std::string caption = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of already-formatted cells. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    size_t rowCount() const { return rows_.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header first if present). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to a file path; warns and continues on failure. */
    void writeCsv(const std::string &path) const;

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sns

#endif // SNS_UTIL_TABLE_HH
