#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sns {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
rrse(const std::vector<double> &predicted, const std::vector<double> &actual)
{
    SNS_ASSERT(predicted.size() == actual.size() && !actual.empty(),
               "rrse() needs equal-length, non-empty inputs");
    RunningStats truth;
    for (double a : actual)
        truth.add(a);

    double sq_err = 0.0;
    double sq_dev = 0.0;
    for (size_t i = 0; i < actual.size(); ++i) {
        const double err = predicted[i] - actual[i];
        const double dev = actual[i] - truth.mean();
        sq_err += err * err;
        sq_dev += dev * dev;
    }
    if (sq_dev <= 0.0) {
        // Constant ground truth: RRSE degenerates; report RMSE instead of
        // dividing by zero so callers still get a sane signal.
        return std::sqrt(sq_err / static_cast<double>(actual.size()));
    }
    return std::sqrt(sq_err / sq_dev);
}

double
maep(const std::vector<double> &predicted, const std::vector<double> &actual)
{
    SNS_ASSERT(predicted.size() == actual.size() && !actual.empty(),
               "maep() needs equal-length, non-empty inputs");
    double total = 0.0;
    size_t used = 0;
    for (size_t i = 0; i < actual.size(); ++i) {
        if (actual[i] == 0.0)
            continue;
        total += std::fabs(predicted[i] - actual[i]) / std::fabs(actual[i]);
        ++used;
    }
    return used == 0 ? 0.0 : 100.0 * total / static_cast<double>(used);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    SNS_ASSERT(xs.size() == ys.size() && xs.size() >= 2,
               "pearson() needs >= 2 paired observations");
    RunningStats sx;
    RunningStats sy;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx.add(xs[i]);
        sy.add(ys[i]);
    }
    double cov = 0.0;
    for (size_t i = 0; i < xs.size(); ++i)
        cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
    cov /= static_cast<double>(xs.size());
    const double denom = sx.stddev() * sy.stddev();
    return denom <= 0.0 ? 0.0 : cov / denom;
}

double
geomean(const std::vector<double> &values)
{
    SNS_ASSERT(!values.empty(), "geomean() of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        SNS_ASSERT(v > 0.0, "geomean() requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
quantile(std::vector<double> values, double p)
{
    SNS_ASSERT(!values.empty(), "quantile() of empty vector");
    SNS_ASSERT(p >= 0.0 && p <= 1.0, "quantile() p out of range");
    std::sort(values.begin(), values.end());
    const double pos = p * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace sns
