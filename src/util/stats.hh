/**
 * @file
 * Statistics helpers and the paper's evaluation metrics.
 *
 * Section 5.1 of the paper defines two accuracy metrics: Mean Absolute
 * Error Percentage (MAEP) and Root Relative Square Error (RRSE). RRSE
 * normalizes the root mean square error by the standard deviation of the
 * ground truth, making it scale-invariant.
 */

#ifndef SNS_UTIL_STATS_HH
#define SNS_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace sns {

/** Online accumulator for mean / variance / min / max. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Arithmetic mean (0 if empty). */
    double mean() const;

    /** Population variance (0 if fewer than 2 observations). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation. */
    double min() const { return min_; }

    /** Largest observation. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Root Relative Square Error: RMSE(pred, truth) / stddev(truth).
 * A predictor that always outputs mean(truth) scores exactly 1.0.
 */
double rrse(const std::vector<double> &predicted,
            const std::vector<double> &actual);

/**
 * Mean Absolute Error Percentage: mean(|pred - truth| / |truth|) * 100.
 * Observations with truth == 0 are skipped.
 */
double maep(const std::vector<double> &predicted,
            const std::vector<double> &actual);

/** Pearson correlation coefficient of two equal-length series. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 for an empty vector). */
double mean(const std::vector<double> &values);

/** p-quantile (0 <= p <= 1) via linear interpolation of sorted values. */
double quantile(std::vector<double> values, double p);

} // namespace sns

#endif // SNS_UTIL_STATS_HH
