#include "util/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace sns {
namespace detail {

void
emitLog(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

void
emitFatal(const std::string &message)
{
    std::fprintf(stderr, "[fatal] %s\n", message.c_str());
    std::exit(1);
}

void
emitPanic(const std::string &message)
{
    std::fprintf(stderr, "[panic] %s\n", message.c_str());
    // Throwing instead of abort() lets tests assert on panics; uncaught,
    // it still terminates the process with a diagnostic.
    throw std::logic_error(message);
}

} // namespace detail
} // namespace sns
