/**
 * @file
 * Small string helpers used across the library.
 */

#ifndef SNS_UTIL_STRING_UTILS_HH
#define SNS_UTIL_STRING_UTILS_HH

#include <string>
#include <vector>

namespace sns {

/** Split a string on a delimiter character; empty fields are kept. */
std::vector<std::string> split(const std::string &text, char delim);

/** Split on arbitrary whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(const std::string &text);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** True if text begins with the given prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Join string pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &sep);

/** printf-style double formatting with the given precision. */
std::string formatDouble(double value, int precision);

/**
 * Human-friendly engineering formatting: 1234567 -> "1.23M".
 */
std::string formatEng(double value);

} // namespace sns

#endif // SNS_UTIL_STRING_UTILS_HH
