/**
 * @file
 * Wall-clock timer used by the runtime-comparison experiments (Fig. 7).
 */

#ifndef SNS_UTIL_TIMER_HH
#define SNS_UTIL_TIMER_HH

#include <chrono>

namespace sns {

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        const auto now = Clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace sns

#endif // SNS_UTIL_TIMER_HH
