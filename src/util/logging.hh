/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * inform() reports normal status, warn() reports recoverable oddities,
 * fatal() terminates on user error (bad input, bad configuration), and
 * panic() aborts on internal invariant violations (library bugs).
 */

#ifndef SNS_UTIL_LOGGING_HH
#define SNS_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace sns {

namespace detail {

/** Stream any number of arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one log line with the given severity tag. */
void emitLog(const char *tag, const std::string &message);

[[noreturn]] void emitFatal(const std::string &message);
[[noreturn]] void emitPanic(const std::string &message);

} // namespace detail

/** Report normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog("info", detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate because of a user-caused condition (bad arguments, malformed
 * input files, impossible configuration). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitFatal(detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort because of an internal bug; something that should never happen
 * regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitPanic(detail::concat(std::forward<Args>(args)...));
}

/** Panic unless the invariant holds. */
#define SNS_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sns::panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

} // namespace sns

#endif // SNS_UTIL_LOGGING_HH
