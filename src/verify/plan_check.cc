#include "verify/plan_check.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "plan/snsp.hh"

namespace sns::verify {

namespace {

using plan::Dim;
using plan::DimKind;
using plan::Epilogue;
using plan::Op;
using plan::OpKind;
using plan::Shape;
using plan::WeightRef;
using plan::WeightRole;

/** The gemm panel width, duplicated from tensor/gemm.hh on purpose:
 * sns_verify stays a leaf library below sns_tensor, and a round-trip
 * test (test_plan.cc) pins the two constants together against drift. */
constexpr size_t kPanelWidth = 16;

std::string
opLocation(size_t index, const Op &op)
{
    return "op " + std::to_string(index) + " (" +
           plan::opKindName(op.kind) + ")";
}

/** Last dimension when it is static; nullopt otherwise. */
std::optional<int32_t>
staticLast(const Shape &shape)
{
    if (shape.ndim == 0)
        return std::nullopt;
    const Dim &last = shape.dims[shape.ndim - 1];
    if (last.kind != DimKind::Static)
        return std::nullopt;
    return last.value;
}

/** Pass 1: every buffer id, weight-table index, and parameter index is
 * in range (P-BUFFER); weight extents are sane (P-SHAPE). */
void
checkIndices(const plan::Plan &plan_ir, Report &report)
{
    const size_t nbuffers = plan_ir.buffers.size();
    const size_t nweights = plan_ir.weights.size();
    const size_t param_limit = plan::canonicalParamCount(plan_ir.config);

    for (size_t i = 0; i < nweights; ++i) {
        const WeightRef &weight = plan_ir.weights[i];
        const std::string where = "weight ref " + std::to_string(i) +
                                  " (" +
                                  plan::weightRoleName(weight.role) + ")";
        if (weight.param_index >= param_limit) {
            report.error(rules::kPlanBuffer, where,
                         "parameter index " +
                             std::to_string(weight.param_index) +
                             " out of range (this architecture has " +
                             std::to_string(param_limit) +
                             " parameters)",
                         "the plan references a parameter the model "
                         "does not have; re-trace it");
        }
        if (weight.rows <= 0 || weight.cols < 0) {
            report.error(rules::kPlanShape, where,
                         "non-positive parameter extent (rows=" +
                             std::to_string(weight.rows) + ", cols=" +
                             std::to_string(weight.cols) + ")");
        }
    }

    for (size_t i = 0; i < plan_ir.ops.size(); ++i) {
        const Op &op = plan_ir.ops[i];
        const std::string where = opLocation(i, op);
        for (uint32_t input : op.inputs) {
            if (input >= nbuffers) {
                report.error(rules::kPlanBuffer, where,
                             "dangling input buffer id " +
                                 std::to_string(input) +
                                 " (plan declares " +
                                 std::to_string(nbuffers) + " buffers)",
                             "re-trace the plan with `sns-cli plan`");
            }
        }
        if (op.out >= nbuffers) {
            report.error(rules::kPlanBuffer, where,
                         "dangling output buffer id " +
                             std::to_string(op.out) +
                             " (plan declares " +
                             std::to_string(nbuffers) + " buffers)");
        }
        for (uint32_t weight : op.weights) {
            if (weight >= nweights) {
                report.error(rules::kPlanBuffer, where,
                             "dangling weight-table index " +
                                 std::to_string(weight) +
                                 " (plan declares " +
                                 std::to_string(nweights) +
                                 " weight refs)");
            }
        }
    }
}

/** Pass 2: SSA + topological order (P-ORDER); unwritten buffers
 * (P-BUFFER). */
void
checkSsa(const plan::Plan &plan_ir, Report &report)
{
    const size_t nbuffers = plan_ir.buffers.size();
    std::vector<int32_t> writer(nbuffers, -1);
    for (size_t i = 0; i < plan_ir.ops.size(); ++i) {
        const Op &op = plan_ir.ops[i];
        const std::string where = opLocation(i, op);
        for (uint32_t input : op.inputs) {
            if (input < nbuffers && writer[input] < 0) {
                report.error(rules::kPlanOrder, where,
                             "reads buffer " + std::to_string(input) +
                                 " before any op writes it",
                             "the op list is not topologically ordered");
            }
        }
        if (op.out < nbuffers) {
            if (writer[op.out] >= 0) {
                report.error(rules::kPlanOrder, where,
                             "buffer " + std::to_string(op.out) +
                                 " already written by op " +
                                 std::to_string(writer[op.out]) +
                                 " (SSA violation)");
            }
            writer[op.out] = static_cast<int32_t>(i);
        }
    }
    for (size_t b = 0; b < nbuffers; ++b) {
        if (writer[b] < 0) {
            report.error(rules::kPlanBuffer,
                         "buffer " + std::to_string(b) + " " +
                             plan::toString(plan_ir.buffers[b]),
                         "declared but never written by any op");
        }
    }
}

/** Pass 3: dataflow shape inference (P-SHAPE). */
void
checkShapes(const plan::Plan &plan_ir, Report &report)
{
    const plan::PlanConfig &config = plan_ir.config;
    for (size_t i = 0; i < plan_ir.ops.size(); ++i) {
        const Op &op = plan_ir.ops[i];
        const std::string where = opLocation(i, op);
        const auto fail = [&](const std::string &message,
                              const std::string &hint = "") {
            report.error(rules::kPlanShape, where, message, hint);
        };
        const auto input = [&](size_t j) -> const Shape * {
            if (j >= op.inputs.size() ||
                op.inputs[j] >= plan_ir.buffers.size())
                return nullptr;
            return &plan_ir.buffers[op.inputs[j]];
        };
        const auto weight = [&](size_t j) -> const WeightRef * {
            if (j >= op.weights.size() ||
                op.weights[j] >= plan_ir.weights.size())
                return nullptr;
            return &plan_ir.weights[op.weights[j]];
        };
        const auto arity = [&](size_t n_in, size_t n_w) {
            if (op.inputs.size() == n_in && op.weights.size() == n_w)
                return true;
            fail("expects " + std::to_string(n_in) + " input(s) and " +
                 std::to_string(n_w) + " weight ref(s), has " +
                 std::to_string(op.inputs.size()) + " and " +
                 std::to_string(op.weights.size()));
            return false;
        };
        const auto requireRole = [&](const WeightRef &ref,
                                     WeightRole role) {
            if (ref.role == role)
                return true;
            fail(std::string("weight ref has role ") +
                 plan::weightRoleName(ref.role) + ", expected " +
                 plan::weightRoleName(role));
            return false;
        };

        std::optional<Shape> expected;
        switch (op.kind) {
          case OpKind::TokenEmbed:
          case OpKind::PosEmbed: {
            if (!arity(0, 1))
                break;
            const WeightRef *table = weight(0);
            if (table == nullptr || !requireRole(*table, WeightRole::Table))
                break;
            const int32_t want_rows = op.kind == OpKind::TokenEmbed
                                          ? config.vocab
                                          : config.max_positions;
            if (table->rows != want_rows || table->cols != config.d_model) {
                fail("embedding table is [" +
                     std::to_string(table->rows) + ", " +
                     std::to_string(table->cols) +
                     "], config requires [" + std::to_string(want_rows) +
                     ", " + std::to_string(config.d_model) + "]");
                break;
            }
            expected = plan::makeShape({plan::batchDim(), plan::timeDim(),
                                        plan::staticDim(config.d_model)});
            break;
          }
          case OpKind::Add: {
            if (!arity(2, 0))
                break;
            const Shape *a = input(0);
            const Shape *b = input(1);
            if (a == nullptr || b == nullptr)
                break;
            if (!(*a == *b)) {
                fail("input shapes " + plan::toString(*a) + " and " +
                     plan::toString(*b) + " differ");
                break;
            }
            expected = *a;
            break;
          }
          case OpKind::LayerNorm: {
            if (!arity(1, 2))
                break;
            const Shape *x = input(0);
            const WeightRef *gamma = weight(0);
            const WeightRef *beta = weight(1);
            if (x == nullptr || gamma == nullptr || beta == nullptr)
                break;
            const auto width = staticLast(*x);
            if (!width) {
                fail("input " + plan::toString(*x) +
                     " must have a static last dimension");
                break;
            }
            if (!requireRole(*gamma, WeightRole::Gamma) ||
                !requireRole(*beta, WeightRole::Beta))
                break;
            if (gamma->rows != *width || beta->rows != *width) {
                fail("gamma/beta length " +
                     std::to_string(gamma->rows) + "/" +
                     std::to_string(beta->rows) +
                     " does not match normalized width " +
                     std::to_string(*width));
                break;
            }
            expected = *x;
            break;
          }
          case OpKind::Gemm: {
            const size_t n_w = op.epilogue == Epilogue::None ? 1 : 2;
            if (!arity(1, n_w))
                break;
            const Shape *x = input(0);
            const WeightRef *matrix = weight(0);
            if (x == nullptr || matrix == nullptr ||
                !requireRole(*matrix, WeightRole::Matrix))
                break;
            if (x->ndim < 2) {
                fail("input " + plan::toString(*x) +
                     " must be 2-D or 3-D");
                break;
            }
            const auto width = staticLast(*x);
            if (!width) {
                fail("input " + plan::toString(*x) +
                     " must have a static last dimension");
                break;
            }
            if (matrix->rows != *width) {
                fail("input width " + std::to_string(*width) +
                     " does not match weight rows " +
                     std::to_string(matrix->rows));
                break;
            }
            if (n_w == 2) {
                const WeightRef *bias = weight(1);
                if (bias == nullptr ||
                    !requireRole(*bias, WeightRole::Bias))
                    break;
                if (bias->rows != matrix->cols) {
                    fail("bias length " + std::to_string(bias->rows) +
                         " does not match weight cols " +
                         std::to_string(matrix->cols));
                    break;
                }
            }
            Shape out = *x;
            out.dims[out.ndim - 1] = plan::staticDim(matrix->cols);
            expected = out;
            break;
          }
          case OpKind::SplitHeads:
          case OpKind::MergeHeads: {
            if (!arity(1, 0))
                break;
            const Shape *x = input(0);
            if (x == nullptr)
                break;
            const auto width = staticLast(*x);
            if (x->ndim != 3 || !width) {
                fail("input " + plan::toString(*x) +
                     " must be 3-D with a static last dimension");
                break;
            }
            if (op.iattr != config.heads || config.heads <= 0) {
                fail("head count attribute " +
                     std::to_string(op.iattr) +
                     " does not match config.heads " +
                     std::to_string(config.heads));
                break;
            }
            if (op.kind == OpKind::SplitHeads) {
                if (x->dims[0].kind != DimKind::Batch ||
                    *width % config.heads != 0) {
                    fail("split-heads needs a [B, T, D] input with D "
                         "divisible by heads, got " +
                         plan::toString(*x));
                    break;
                }
                expected = plan::makeShape(
                    {plan::batchHeadsDim(), x->dims[1],
                     plan::staticDim(*width / config.heads)});
            } else {
                if (x->dims[0].kind != DimKind::BatchHeads) {
                    fail("merge-heads needs a [B*H, T, dh] input, got " +
                         plan::toString(*x));
                    break;
                }
                expected = plan::makeShape(
                    {plan::batchDim(), x->dims[1],
                     plan::staticDim(*width * config.heads)});
            }
            break;
          }
          case OpKind::BmmTransB:
          case OpKind::Bmm: {
            if (!arity(2, 0))
                break;
            const Shape *a = input(0);
            const Shape *b = input(1);
            if (a == nullptr || b == nullptr)
                break;
            if (a->ndim != 3 || b->ndim != 3 ||
                !(a->dims[0] == b->dims[0])) {
                fail("batched matmul needs 3-D inputs with equal batch "
                     "dims, got " + plan::toString(*a) + " x " +
                     plan::toString(*b));
                break;
            }
            const Dim &a_inner = a->dims[2];
            const Dim &b_inner = op.kind == OpKind::BmmTransB
                                     ? b->dims[2]
                                     : b->dims[1];
            if (!(a_inner == b_inner)) {
                fail("inner dimensions do not conform: " +
                     plan::toString(*a) + " x " + plan::toString(*b));
                break;
            }
            const Dim &out_cols = op.kind == OpKind::BmmTransB
                                      ? b->dims[1]
                                      : b->dims[2];
            expected =
                plan::makeShape({a->dims[0], a->dims[1], out_cols});
            break;
          }
          case OpKind::MeanPool: {
            if (!arity(1, 0))
                break;
            const Shape *x = input(0);
            if (x == nullptr)
                break;
            if (x->ndim != 3 || x->dims[0].kind != DimKind::Batch) {
                fail("mean-pool needs a [B, T, D] input, got " +
                     plan::toString(*x));
                break;
            }
            expected = plan::makeShape({x->dims[0], x->dims[2]});
            break;
          }
        }

        if (expected && op.out < plan_ir.buffers.size()) {
            const Shape &declared = plan_ir.buffers[op.out];
            if (!(declared == *expected)) {
                fail("declared output shape " + plan::toString(declared) +
                         " does not match inferred shape " +
                         plan::toString(*expected),
                     "the buffer table disagrees with dataflow shape "
                     "inference");
            }
        }
    }
}

/** Legal fused epilogues per op kind: the elementwise/per-row tails
 * the bitwise argument in docs/plan.md covers, nothing else. */
bool
epilogueLegal(OpKind kind, Epilogue epilogue)
{
    switch (kind) {
      case OpKind::Gemm:
        return epilogue == Epilogue::None || epilogue == Epilogue::Bias ||
               epilogue == Epilogue::BiasGelu ||
               epilogue == Epilogue::BiasRelu;
      case OpKind::BmmTransB:
        return epilogue == Epilogue::None ||
               epilogue == Epilogue::ScaleMaskSoftmax;
      default:
        return epilogue == Epilogue::None;
    }
}

/** Pass 4: fusion legality + structural equality with the canonical
 * module walk (P-ORDER); fingerprint presence (P-MODEL). */
void
checkDeterminism(const plan::Plan &plan_ir, Report &report)
{
    for (size_t i = 0; i < plan_ir.ops.size(); ++i) {
        const Op &op = plan_ir.ops[i];
        if (!epilogueLegal(op.kind, op.epilogue)) {
            report.error(rules::kPlanOrder, opLocation(i, op),
                         std::string("fused epilogue '") +
                             plan::epilogueName(op.epilogue) +
                             "' is not bitwise-legal on this op kind",
                         "only per-element/per-row tails may fuse; "
                         "reductions keep the module-walk order");
        }
    }

    const plan::PlanConfig &config = plan_ir.config;
    if (config.vocab <= 0 || config.max_positions <= 0 ||
        config.d_model <= 0 || config.heads <= 0 || config.layers <= 0 ||
        config.d_ff <= 0 || config.head_hidden <= 0 ||
        config.batch_max <= 0 || config.d_model % config.heads != 0) {
        report.error(rules::kPlanShape, "plan config",
                     "architecture extents must be positive and d_model "
                     "must divide into heads");
        return;  // buildCanonicalPlan would assert on this config
    }
    if (plan_ir.fingerprint == 0) {
        report.error(rules::kPlanModel, "plan header",
                     "plan carries no model fingerprint",
                     "a traced plan always records the fingerprint of "
                     "the model it was traced from");
    }

    const plan::Plan canonical =
        plan::buildCanonicalPlan(config, plan_ir.fingerprint);
    if (plan_ir.ops.size() != canonical.ops.size() ||
        plan_ir.buffers.size() != canonical.buffers.size() ||
        plan_ir.weights.size() != canonical.weights.size()) {
        report.error(
            rules::kPlanOrder, "plan tables",
            "plan has " + std::to_string(plan_ir.ops.size()) + " ops / " +
                std::to_string(plan_ir.buffers.size()) + " buffers / " +
                std::to_string(plan_ir.weights.size()) +
                " weight refs; the canonical module walk for this config "
                "has " + std::to_string(canonical.ops.size()) + " / " +
                std::to_string(canonical.buffers.size()) + " / " +
                std::to_string(canonical.weights.size()),
            "the plan does not trace this architecture's module walk");
        return;
    }
    size_t reported = 0;
    for (size_t i = 0; i < plan_ir.ops.size() && reported < 8; ++i) {
        if (plan_ir.ops[i] == canonical.ops[i])
            continue;
        ++reported;
        report.error(rules::kPlanOrder, opLocation(i, plan_ir.ops[i]),
                     std::string("differs from the canonical module "
                                 "walk (expected ") +
                         plan::opKindName(canonical.ops[i].kind) +
                         " with epilogue '" +
                         plan::epilogueName(canonical.ops[i].epilogue) +
                         "')",
                     "reduction/epilogue order must match the module "
                     "walk exactly");
    }
    for (size_t i = 0; i < plan_ir.weights.size() && reported < 8; ++i) {
        if (plan_ir.weights[i] == canonical.weights[i])
            continue;
        ++reported;
        report.error(rules::kPlanOrder,
                     "weight ref " + std::to_string(i),
                     "differs from the canonical module walk's "
                     "parameter reference table");
    }
}

/**
 * Pass 5: the int8 side table (P-QUANT-*, docs/quantization.md).
 * Every entry must target a Gemm op through an ascending, unique
 * op_index (P-QUANT-OP); carry exactly one finite positive scale per
 * output column (P-QUANT-SCALE); sit on an epilogue whose fp32
 * rescale fusion is legal — the Bias family, nothing attention-shaped
 * (P-QUANT-EPILOGUE); and leave the terminal head projection
 * unquantized so the AggregationHeads boundary stays full precision
 * (P-QUANT-BOUNDARY).
 */
void
checkQuant(const plan::Plan &plan_ir, Report &report)
{
    int64_t prev_index = -1;
    for (size_t i = 0; i < plan_ir.quant.size(); ++i) {
        const plan::QuantizedGemm &entry = plan_ir.quant[i];
        const std::string where =
            "quant entry " + std::to_string(i) + " (op " +
            std::to_string(entry.op_index) + ")";
        if (entry.op_index >= plan_ir.ops.size()) {
            report.error(rules::kPlanQuantOp, where,
                         "op index out of range (plan has " +
                             std::to_string(plan_ir.ops.size()) +
                             " ops)",
                         "re-quantize the plan with `sns-cli quantize`");
            continue;
        }
        if (static_cast<int64_t>(entry.op_index) <= prev_index) {
            report.error(rules::kPlanQuantOp, where,
                         "quant table is not strictly ascending by op "
                         "index (previous entry covers op " +
                             std::to_string(prev_index) + ")",
                         "duplicate or unsorted entries would make the "
                         "kernel binding ambiguous");
        }
        prev_index = entry.op_index;
        const Op &op = plan_ir.ops[entry.op_index];
        if (op.kind != OpKind::Gemm) {
            report.error(rules::kPlanQuantOp, where,
                         std::string("quantization targets a ") +
                             plan::opKindName(op.kind) +
                             " op; only Gemm ops carry int8 kernels");
            continue;
        }
        if (!plan_ir.ops.empty() &&
            entry.op_index == plan_ir.ops.size() - 1) {
            report.error(rules::kPlanQuantBoundary, where,
                         "the terminal head projection must stay full "
                         "precision — its outputs feed the fp64 "
                         "AggregationHeads boundary",
                         "quantizePlan never emits this entry; the "
                         "side table was edited or corrupted");
        }
        if (op.epilogue == Epilogue::ScaleMaskSoftmax) {
            report.error(rules::kPlanQuantEpilogue, where,
                         "int8 rescale cannot fuse into a "
                         "ScaleMaskSoftmax epilogue",
                         "only the None/Bias/BiasGelu/BiasRelu tails "
                         "admit the fp32 dequantize-rescale");
        }
        if (!std::isfinite(entry.x_scale) || entry.x_scale <= 0.0f) {
            report.error(rules::kPlanQuantScale, where,
                         "activation scale " +
                             std::to_string(entry.x_scale) +
                             " is not finite and positive");
        }
        if (op.weights.empty() ||
            op.weights[0] >= plan_ir.weights.size())
            continue;  // pass 1 already reported the dangling ref
        const WeightRef &matrix = plan_ir.weights[op.weights[0]];
        if (entry.w_scales.size() !=
            static_cast<size_t>(matrix.cols)) {
            report.error(rules::kPlanQuantScale, where,
                         "weight-scale tensor has " +
                             std::to_string(entry.w_scales.size()) +
                             " entries, the weight matrix has " +
                             std::to_string(matrix.cols) +
                             " output columns",
                         "per-output-channel quantization needs "
                         "exactly one scale per column");
        }
        for (size_t j = 0; j < entry.w_scales.size(); ++j) {
            if (!std::isfinite(entry.w_scales[j]) ||
                entry.w_scales[j] <= 0.0f) {
                report.error(rules::kPlanQuantScale, where,
                             "weight scale " + std::to_string(j) +
                                 " (" +
                                 std::to_string(entry.w_scales[j]) +
                                 ") is not finite and positive");
                break;  // one bad tensor, one diagnostic
            }
        }
    }
}

} // namespace

Report
checkPlan(const plan::Plan &plan_ir)
{
    Report report;
    checkIndices(plan_ir, report);
    checkSsa(plan_ir, report);
    checkShapes(plan_ir, report);
    checkDeterminism(plan_ir, report);
    checkQuant(plan_ir, report);
    return report;
}

PlanLayout
computePlanLayout(const plan::Plan &plan_ir, Report &report)
{
    PlanLayout layout;
    const size_t nbuffers = plan_ir.buffers.size();
    layout.def_op.assign(nbuffers, -1);
    layout.last_use.assign(nbuffers, -1);
    layout.offsets.assign(nbuffers, 0);

    const auto malformed = [&](const std::string &message) {
        report.error(rules::kPlanAlloc, "plan arena", message,
                     "run checkPlan() first; the layout pass needs an "
                     "index/SSA-clean plan");
        return PlanLayout{};
    };

    for (size_t i = 0; i < plan_ir.ops.size(); ++i) {
        const Op &op = plan_ir.ops[i];
        for (uint32_t input : op.inputs) {
            if (input >= nbuffers || layout.def_op[input] < 0)
                return malformed("op " + std::to_string(i) +
                                 " reads an undefined buffer");
            layout.last_use[input] = static_cast<int32_t>(i);
        }
        if (op.out >= nbuffers || layout.def_op[op.out] >= 0)
            return malformed("op " + std::to_string(i) +
                             " violates SSA");
        layout.def_op[op.out] = static_cast<int32_t>(i);
        layout.last_use[op.out] = static_cast<int32_t>(i);
    }

    const plan::PlanConfig &config = plan_ir.config;
    const int batch = config.batch_max;
    const int time = config.max_positions;

    // Worst-case slot per buffer, rounded up to the panel width so
    // every arena slot starts 64-byte aligned.
    std::vector<size_t> slots(nbuffers, 0);
    for (size_t b = 0; b < nbuffers; ++b) {
        if (layout.def_op[b] < 0)
            return malformed("buffer " + std::to_string(b) +
                             " is never written");
        const size_t numel = plan::resolveNumel(plan_ir.buffers[b], batch,
                                                time, config.heads);
        if (numel == 0)
            return malformed("buffer " + std::to_string(b) +
                             " resolves to zero elements at worst-case "
                             "extents");
        slots[b] = (numel + kPanelWidth - 1) / kPanelWidth * kPanelWidth;
    }

    // First-fit over live ranges, in definition (= op) order. Two
    // buffers interfere when their [def, last_use] intervals overlap;
    // an op's inputs are live *through* the op, so an output never
    // aliases its inputs.
    struct Placed
    {
        size_t begin;
        size_t end;
        int32_t def;
        int32_t last;
        size_t buffer;
    };
    std::vector<Placed> placed;
    placed.reserve(nbuffers);
    for (const Op &op : plan_ir.ops) {
        const size_t b = op.out;
        const int32_t def = layout.def_op[b];
        const int32_t last = layout.last_use[b];
        std::vector<std::pair<size_t, size_t>> busy;
        for (const Placed &other : placed) {
            if (other.def <= last && def <= other.last)
                busy.emplace_back(other.begin, other.end);
        }
        std::sort(busy.begin(), busy.end());
        size_t offset = 0;
        for (const auto &[begin, end] : busy) {
            if (offset + slots[b] <= begin)
                break;
            offset = std::max(offset, end);
        }
        layout.offsets[b] = offset;
        placed.push_back({offset, offset + slots[b], def, last, b});
    }

    size_t arena = 0;
    for (const Placed &entry : placed)
        arena = std::max(arena, entry.end);

    // Shared pack scratch for the per-batch bmm B operands (the only
    // panels not packed at load time).
    size_t scratch = 0;
    for (const Op &op : plan_ir.ops) {
        if (op.kind != OpKind::Bmm && op.kind != OpKind::BmmTransB)
            continue;
        if (op.inputs.size() != 2 || op.inputs[1] >= nbuffers)
            continue;
        const Shape &bv = plan_ir.buffers[op.inputs[1]];
        if (bv.ndim != 3)
            continue;
        const bool trans_b = op.kind == OpKind::BmmTransB;
        const int64_t n = plan::resolveDim(bv.dims[trans_b ? 1 : 2],
                                           batch, time, config.heads);
        const int64_t k = plan::resolveDim(bv.dims[trans_b ? 2 : 1],
                                           batch, time, config.heads);
        if (n <= 0 || k <= 0)
            continue;
        const size_t panels =
            (static_cast<size_t>(n) + kPanelWidth - 1) / kPanelWidth;
        scratch = std::max(scratch,
                           panels * static_cast<size_t>(k) * kPanelWidth);
    }
    layout.scratch_offset = arena;
    layout.scratch_floats = scratch;
    layout.total_floats = arena + scratch;

    // Alias self-check: no two time-overlapping buffers may share arena
    // bytes. First-fit guarantees this; the check is the static proof.
    for (size_t i = 0; i < placed.size(); ++i) {
        for (size_t j = i + 1; j < placed.size(); ++j) {
            const Placed &a = placed[i];
            const Placed &b = placed[j];
            const bool live_overlap = a.def <= b.last && b.def <= a.last;
            const bool range_overlap = a.begin < b.end && b.begin < a.end;
            if (live_overlap && range_overlap) {
                report.error(rules::kPlanAlloc, "plan arena",
                             "buffers " + std::to_string(a.buffer) +
                                 " and " + std::to_string(b.buffer) +
                                 " are live simultaneously but share "
                                 "arena floats [" +
                                 std::to_string(std::max(a.begin,
                                                         b.begin)) +
                                 ", " +
                                 std::to_string(std::min(a.end, b.end)) +
                                 ")");
            }
        }
    }

    report.note(
        rules::kPlanAlloc, "plan arena",
        std::to_string(nbuffers) + " buffers in " +
            std::to_string(arena) + " floats + " +
            std::to_string(scratch) + " pack-scratch floats (" +
            std::to_string(layout.total_floats * sizeof(float) / 1024) +
            " KiB) at worst case B=" + std::to_string(batch) +
            ", T=" + std::to_string(time) +
            "; planned execution performs zero per-batch heap "
            "allocations (weights packed at load, grow-only "
            "thread-local arena)");
    return layout;
}

Report
checkPlanFile(const std::string &path)
{
    Report report;
    plan::Plan parsed;
    if (!plan::readPlanFile(path, parsed, report))
        return report;
    report.merge(checkPlan(parsed));
    if (!report.hasErrors())
        computePlanLayout(parsed, report);
    return report;
}

} // namespace sns::verify
